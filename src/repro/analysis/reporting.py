"""Plain-text rendering of tables and figure series.

The reproduction's "figures" are printed as aligned numeric series (one
row per x-value, one column per curve) so the benchmark harness can
regenerate every table and figure as text.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

#: SI prefixes for engineering notation, exponent -> symbol.
_SI_PREFIXES = {
    -15: "f", -12: "p", -9: "n", -6: "u", -3: "m", 0: "", 3: "k",
    6: "M", 9: "G", 12: "T",
}


def format_engineering(value: float, unit: str = "", digits: int = 3) -> str:
    """Format a value with an SI prefix (e.g. ``1.23e-12 -> 1.23 ps``)."""
    if value == 0:
        return f"0 {unit}".rstrip()
    magnitude = abs(value)
    exponent = -15
    for e in sorted(_SI_PREFIXES):
        if magnitude >= 10.0 ** e:
            exponent = e
    scaled = value / 10.0**exponent
    return f"{scaled:.{digits}g} {_SI_PREFIXES[exponent]}{unit}".rstrip()


def format_table(
    records: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    floatfmt: str = ".4g",
    title: str = "",
) -> str:
    """Render records as an aligned text table.

    Args:
        records: One mapping per row.
        columns: Column order; defaults to the keys of the first record.
        floatfmt: Format spec applied to float values.
        title: Optional heading line.
    """
    if not records:
        raise ValueError("no records to format")
    columns = list(columns) if columns else list(records[0].keys())

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rows = [[cell(r.get(c, "")) for c in columns] for r in records]
    widths = [
        max(len(columns[i]), *(len(row[i]) for row in rows))
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Any],
    curves: Mapping[str, Sequence[float]],
    floatfmt: str = ".4g",
    title: str = "",
) -> str:
    """Render figure curves: one row per x value, one column per curve."""
    for name, ys in curves.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"curve {name!r} has {len(ys)} points, expected {len(x_values)}"
            )
    records: List[Dict[str, Any]] = []
    for i, x in enumerate(x_values):
        record: Dict[str, Any] = {x_label: x}
        for name, ys in curves.items():
            record[name] = float(ys[i])
        records.append(record)
    return format_table(records, floatfmt=floatfmt, title=title)
