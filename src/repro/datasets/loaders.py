"""Loaders for the real evaluation datasets (when files are available).

The synthetic generators in :mod:`repro.datasets.synthetic` stand in for
the paper's datasets offline; users who *do* have the UCI files can load
them into the same :class:`~repro.datasets.synthetic.Dataset` interface
and every experiment driver accepts them unchanged (pass via the
``datasets=`` argument of e.g. :func:`repro.experiments.fig7_hdc_accuracy.run_fig7`).

Supported formats:

- :func:`load_csv_dataset` -- generic delimited text with the label in a
  designated column (covers ISOLET's ``isolet1+2+3+4.data`` /
  ``isolet5.data`` pair, label in the last column),
- :func:`load_ucihar` -- the UCI HAR directory layout
  (``X_train.txt`` / ``y_train.txt`` / ``X_test.txt`` / ``y_test.txt``),
- both standardize features with training statistics, exactly as the
  synthetic pipeline does.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.datasets.synthetic import Dataset

PathLike = Union[str, Path]


def _standardize(x_train: np.ndarray, x_test: np.ndarray):
    """Standardize both splits with training statistics."""
    mu = x_train.mean(axis=0)
    sigma = x_train.std(axis=0) + 1e-8
    return (x_train - mu) / sigma, (x_test - mu) / sigma


def _check_labels(labels: np.ndarray, name: str) -> np.ndarray:
    labels = labels.astype(np.int64)
    if labels.min() < 0:
        raise ValueError(f"{name}: labels must be non-negative after rebasing")
    return labels


def load_csv_dataset(
    name: str,
    train_path: PathLike,
    test_path: PathLike,
    delimiter: str = ",",
    label_column: int = -1,
    label_base: Optional[int] = None,
) -> Dataset:
    """Load a delimited-text dataset pair into a :class:`Dataset`.

    Args:
        name: Dataset identifier carried in the result.
        train_path: Training split file.
        test_path: Test split file.
        delimiter: Field separator.
        label_column: Column index of the class label (default: last).
        label_base: Smallest label value in the files; subtracted so
            labels become 0-based.  Auto-detected from the training split
            when omitted (ISOLET uses 1..26).

    Returns:
        The standardized dataset.
    """
    def read(path: PathLike):
        raw = np.loadtxt(Path(path), delimiter=delimiter)
        if raw.ndim == 1:
            raw = raw[None, :]
        labels = raw[:, label_column]
        features = np.delete(raw, label_column % raw.shape[1], axis=1)
        return features.astype(np.float32), labels

    x_train, y_train = read(train_path)
    x_test, y_test = read(test_path)
    if x_train.shape[1] != x_test.shape[1]:
        raise ValueError(
            f"{name}: train has {x_train.shape[1]} features but test has "
            f"{x_test.shape[1]}"
        )
    base = float(label_base) if label_base is not None else y_train.min()
    y_train = _check_labels(y_train - base, name)
    y_test = _check_labels(y_test - base, name)
    x_train, x_test = _standardize(x_train, x_test)
    return Dataset(
        name=name,
        x_train=x_train.astype(np.float32),
        y_train=y_train,
        x_test=x_test.astype(np.float32),
        y_test=y_test,
        metadata={"source": "file", "label_base": base},
    )


def load_isolet(train_path: PathLike, test_path: PathLike) -> Dataset:
    """Load the real ISOLET pair (UCI format: CSV, label 1..26 last).

    Args:
        train_path: ``isolet1+2+3+4.data``.
        test_path: ``isolet5.data``.
    """
    dataset = load_csv_dataset(
        "isolet", train_path, test_path, delimiter=",", label_base=1
    )
    if dataset.n_features != 617:
        raise ValueError(
            f"ISOLET should have 617 features, got {dataset.n_features}"
        )
    return dataset


def load_ucihar(root: PathLike) -> Dataset:
    """Load the real UCI HAR directory.

    Args:
        root: Directory containing ``train/X_train.txt``,
            ``train/y_train.txt``, ``test/X_test.txt``, ``test/y_test.txt``
            (the UCI archive layout).
    """
    root = Path(root)
    paths = {
        "x_train": root / "train" / "X_train.txt",
        "y_train": root / "train" / "y_train.txt",
        "x_test": root / "test" / "X_test.txt",
        "y_test": root / "test" / "y_test.txt",
    }
    missing = [str(p) for p in paths.values() if not p.exists()]
    if missing:
        raise FileNotFoundError(
            f"UCI HAR files missing: {missing}; expected the UCI archive "
            "directory layout"
        )
    x_train = np.loadtxt(paths["x_train"]).astype(np.float32)
    y_train = _check_labels(np.loadtxt(paths["y_train"]) - 1, "ucihar")
    x_test = np.loadtxt(paths["x_test"]).astype(np.float32)
    y_test = _check_labels(np.loadtxt(paths["y_test"]) - 1, "ucihar")
    x_train, x_test = _standardize(x_train, x_test)
    return Dataset(
        name="ucihar",
        x_train=x_train.astype(np.float32),
        y_train=y_train,
        x_test=x_test.astype(np.float32),
        y_test=y_test,
        metadata={"source": "file"},
    )
