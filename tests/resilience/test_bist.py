"""Tests of the march-style BIST diagnosis."""

import numpy as np
import pytest

from repro.core.array import FastTDAMArray
from repro.core.config import TDAMConfig
from repro.core.faults import Fault, FaultType, FaultyTDAMArray
from repro.resilience.bist import (
    CellFaultKind,
    DiagnosisReport,
    MarchBIST,
    default_backgrounds,
)


def make_dut(faults, n_rows=5, n_stages=16):
    config = TDAMConfig(n_stages=n_stages)
    array = FastTDAMArray(config, n_rows=n_rows)
    return FaultyTDAMArray(array, faults)


class TestBackgrounds:
    def test_default_backgrounds_multilevel(self):
        patterns = default_backgrounds(8, 4)
        assert len(patterns) == 3
        assert (patterns[0] == 0).all()
        assert (patterns[1] == 3).all()
        assert set(np.unique(patterns[2])) == {0, 3}

    def test_binary_has_no_distinct_checkerboard_ends(self):
        patterns = default_backgrounds(8, 2)
        assert len(patterns) == 3
        assert (patterns[1] == 1).all()

    def test_single_level_degenerates(self):
        assert len(default_backgrounds(8, 1)) == 2


class TestDiagnosis:
    def test_healthy_array(self):
        report = MarchBIST().run(make_dut([]))
        assert report.is_healthy
        assert report.dead_rows == ()
        assert report.faulty_cells == ()
        assert report.healthy_rows == (0, 1, 2, 3, 4)

    def test_stuck_mismatch_located_and_classified(self):
        report = MarchBIST().run(
            make_dut([Fault(FaultType.STUCK_MISMATCH, row=1, stage=3)])
        )
        verdict = report.rows[1]
        assert not verdict.dead
        assert verdict.faulty_stages == (3,)
        assert verdict.stuck_mismatch_count == 1
        (cell,) = report.faulty_cells
        assert (cell.row, cell.stage) == (1, 3)
        assert cell.kind == CellFaultKind.STUCK_MISMATCH

    def test_stuck_match_located_and_classified(self):
        report = MarchBIST().run(
            make_dut([Fault(FaultType.STUCK_MATCH, row=4, stage=7)])
        )
        verdict = report.rows[4]
        assert verdict.faulty_stages == (7,)
        assert verdict.stuck_mismatch_count == 0
        (cell,) = report.faulty_cells
        assert cell.kind == CellFaultKind.STUCK_MATCH

    def test_mixed_faults_report_unknown_kind(self):
        """The documented diagnosability limit: mixed kinds on one row
        pin the positions but not which is which."""
        report = MarchBIST().run(
            make_dut(
                [
                    Fault(FaultType.STUCK_MISMATCH, row=2, stage=1),
                    Fault(FaultType.STUCK_MATCH, row=2, stage=9),
                ]
            )
        )
        verdict = report.rows[2]
        assert verdict.faulty_stages == (1, 9)
        assert verdict.stuck_mismatch_count == 1
        assert {c.kind for c in report.faulty_cells} == {
            CellFaultKind.UNKNOWN
        }

    def test_dead_row_detected(self):
        report = MarchBIST().run(
            make_dut([Fault(FaultType.DEAD_ROW, row=2)])
        )
        assert report.dead_rows == (2,)
        assert report.rows[2].faulty_stages == ()
        assert not report.rows[2].healthy

    def test_multi_row_fault_map(self):
        report = MarchBIST().run(
            make_dut(
                [
                    Fault(FaultType.STUCK_MISMATCH, row=0, stage=5),
                    Fault(FaultType.DEAD_ROW, row=3),
                    Fault(FaultType.STUCK_MATCH, row=4, stage=0),
                ]
            )
        )
        assert report.rows[0].faulty_stages == (5,)
        assert report.dead_rows == (3,)
        assert report.rows[4].faulty_stages == (0,)
        assert report.healthy_rows == (1, 2)

    def test_cost_accounting(self):
        report = MarchBIST().run(make_dut([], n_rows=4, n_stages=8))
        patterns = 3  # levels=4 -> low, high, checkerboard
        assert report.n_writes == patterns * 4
        assert report.n_searches == patterns * (8 + 1)

    def test_runs_on_bare_array(self):
        config = TDAMConfig(n_stages=8)
        report = MarchBIST().run(FastTDAMArray(config, n_rows=3))
        assert report.is_healthy

    def test_custom_background_validation(self):
        bist = MarchBIST(backgrounds=[np.zeros(3, dtype=np.int64)])
        with pytest.raises(ValueError, match="background shape"):
            bist.run(make_dut([]))

    def test_summary_mentions_damage(self):
        report = MarchBIST().run(
            make_dut([Fault(FaultType.DEAD_ROW, row=2)])
        )
        assert "1 dead rows" in report.summary()
        assert isinstance(report, DiagnosisReport)
