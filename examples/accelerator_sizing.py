"""Sizing a multi-bank TD-AM accelerator for a deployment target.

Walks the full deployment flow: pick the model shape (ISOLET-like, 26
classes at D = 10240), set a latency target, let the sizer choose the
bank count, and inspect the resulting latency / throughput / energy /
area / model-load budget -- including what a stricter target costs.

Run:
    python examples/accelerator_sizing.py
"""

from repro.core.config import TDAMConfig
from repro.hdc.accelerator import AcceleratorModel, AcceleratorSpec, size_accelerator

def show(model: AcceleratorModel) -> None:
    s = model.summary()
    print(
        f"  {model.spec.n_banks:3d} banks | "
        f"{s['latency_us'] * 1e3:7.1f} ns/query | "
        f"{s['throughput_qps'] / 1e6:6.2f} Mq/s | "
        f"{s['energy_nj']:6.1f} nJ | "
        f"{s['area_mm2'] * 1e3:6.1f} kum^2 | "
        f"load {s['model_load_ms']:.2f} ms"
    )

def main() -> None:
    config = TDAMConfig(bits=2, n_stages=128, vdd=0.6)
    dimension, n_classes, n_features = 10240, 26, 617
    print(f"model: {n_classes} classes x D={dimension} "
          f"({dimension // 128} tiles of 128 stages)\n")

    print("bank-count scaling:")
    for n_banks in (1, 2, 4, 8, 16, 80):
        spec = AcceleratorSpec(config, n_banks, n_classes, dimension,
                               n_features)
        show(AcceleratorModel(spec))

    for target_ns in (1000, 300, 100):
        try:
            model = size_accelerator(
                target_ns * 1e-9, dimension, n_classes, n_features,
                config=config,
            )
            print(f"\ntarget {target_ns} ns -> {model.spec.n_banks} banks "
                  f"({model.query_latency_s() * 1e9:.0f} ns achieved)")
        except ValueError as error:
            print(f"\ntarget {target_ns} ns -> infeasible: {error}")

if __name__ == "__main__":
    main()
