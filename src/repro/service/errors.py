"""The serving layer's exception taxonomy.

Every failure the fault-tolerant service can surface is classified here,
and the classification *is* the retry policy's contract: transient
faults (a refresh holding the array, calibration drift mid-recovery, an
injected device/timeout fault) subclass :class:`TransientServiceError`
and are safe to retry on the same or another shard; everything else is
terminal for the request and retrying would only burn the deadline.

The taxonomy is deliberately small and closed -- a service that cannot
name a failure cannot route around it::

    ServiceError
    ├── InvalidRequestError            (also a ValueError; never retried)
    ├── TransientServiceError          (retryable)
    │   ├── ShardBusyError             (refresh / BIST in progress)
    │   ├── CalibrationDriftError      (replica decode outside margin)
    │   └── ShardTimeoutError          (per-attempt timeout fired)
    ├── AdmissionRejectedError         (load shedding; carries retry_after_s)
    │   ├── OverloadError              (intake queue full / queue-deadline)
    │   └── QuotaExceededError         (per-tenant token bucket empty)
    ├── ReplicaDivergenceError         (write fan-out failed mid-way)
    ├── CircuitOpenError               (shard quarantined; route around)
    ├── DeadlineExceededError          (request out of time)
    ├── RetryBudgetExhaustedError      (global retry budget empty)
    ├── AllShardsUnavailableError      (no shard could serve, even degraded)
    └── CheckpointError
        ├── CheckpointNotFoundError
        └── CheckpointCorruptError     (checksum / manifest mismatch)

Use :func:`is_retryable` instead of ``isinstance`` checks so the
classification lives in one place.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

__all__ = [
    "ServiceError",
    "InvalidRequestError",
    "TransientServiceError",
    "ShardBusyError",
    "CalibrationDriftError",
    "ShardTimeoutError",
    "AdmissionRejectedError",
    "OverloadError",
    "QuotaExceededError",
    "ReplicaDivergenceError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "RetryBudgetExhaustedError",
    "AllShardsUnavailableError",
    "CheckpointError",
    "CheckpointNotFoundError",
    "CheckpointCorruptError",
    "is_retryable",
]


class ServiceError(Exception):
    """Base class of every serving-layer failure."""


class InvalidRequestError(ServiceError, ValueError):
    """The request failed admission (shape, dtype, or level range).

    Subclasses ``ValueError`` too, so callers using the library
    conventions (``pytest.raises(ValueError)``) keep working.  Never
    retried: the same bytes will fail the same way.
    """


class TransientServiceError(ServiceError):
    """A failure expected to clear on its own -- the retryable class."""


class ShardBusyError(TransientServiceError):
    """The shard is mid-refresh / mid-BIST and cannot serve right now."""


class CalibrationDriftError(TransientServiceError):
    """The shard's replica TDC drifted outside the sensing margin."""


class ShardTimeoutError(TransientServiceError):
    """The per-attempt timeout fired before the shard answered."""


class AdmissionRejectedError(ServiceError):
    """The front-end shed the request before any shard was touched.

    An explicit, *typed* "no": the request was never partially served,
    and ``retry_after_s`` tells a well-behaved client when capacity is
    expected back.  Shedding is the overload contract -- a rejection
    promises nothing was computed, unlike a
    :class:`DeadlineExceededError` which means work was attempted and
    ran out of time.

    Attributes:
        retry_after_s: Suggested client back-off before re-submitting.
        reason: Machine-readable shed reason (``queue_full``,
            ``queue_deadline``, ``draining``, ``quota``).
        tenant: The tenant whose request was shed.
    """

    def __init__(
        self,
        message: str,
        retry_after_s: float = 0.0,
        reason: str = "overload",
        tenant: str = "",
    ) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
        self.reason = reason
        self.tenant = tenant


class OverloadError(AdmissionRejectedError):
    """The intake queue is full (or the request was already past its
    deadline on arrival) -- the service says *no* instead of queueing
    unboundedly."""


class QuotaExceededError(AdmissionRejectedError):
    """The tenant's token-bucket quota is empty; other tenants are
    unaffected."""

    def __init__(
        self,
        message: str,
        retry_after_s: float = 0.0,
        tenant: str = "",
    ) -> None:
        super().__init__(
            message, retry_after_s=retry_after_s, reason="quota",
            tenant=tenant,
        )


class ReplicaDivergenceError(ServiceError):
    """A replicated write failed mid-fanout: replicas now disagree.

    Carries exactly which shards hold the new matrix and which were
    left behind, so an operator (or the service itself) can quarantine
    the stale replicas until a full rewrite lands.

    Attributes:
        shards_written: Shard ids holding the *new* matrix.
        shards_unwritten: Shard ids still holding the *old* matrix
            (the failing shard included -- its state is unknown).
        failed_shard: The shard whose write raised.
    """

    def __init__(
        self,
        message: str,
        shards_written: Sequence[str] = (),
        shards_unwritten: Sequence[str] = (),
        failed_shard: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.shards_written: Tuple[str, ...] = tuple(shards_written)
        self.shards_unwritten: Tuple[str, ...] = tuple(shards_unwritten)
        self.failed_shard = failed_shard


class CircuitOpenError(ServiceError):
    """The shard's circuit breaker is open; route to another shard.

    Not a :class:`TransientServiceError`: retrying the *same* shard is
    pointless until the breaker's cool-down elapses, but the router may
    immediately try a different shard.
    """


class DeadlineExceededError(ServiceError):
    """The request's deadline elapsed before an answer was produced."""


class RetryBudgetExhaustedError(ServiceError):
    """The service-wide retry budget is empty (retry storm protection)."""


class AllShardsUnavailableError(ServiceError):
    """No shard could serve the request, even in degraded mode."""


class CheckpointError(ServiceError):
    """Base class of checkpoint save/restore failures."""


class CheckpointNotFoundError(CheckpointError):
    """No checkpoint artifact exists at the configured location."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint failed its checksum or manifest validation."""


def is_retryable(exc: BaseException) -> bool:
    """Whether the retry policy may re-attempt after this failure.

    Transient shard faults are retryable.  Admission failures,
    deadline/budget exhaustion, and checkpoint corruption are not --
    and an open circuit is handled by routing, not by retrying the same
    shard.
    """
    return isinstance(exc, TransientServiceError)
