"""Backward-Euler + damped-Newton transient solver.

The solver works on the pure nodal formulation permitted by
:class:`repro.spice.netlist.Circuit` (grounded voltage sources only):

1. at each timestep the forced-node voltages are read from their source
   waveforms,
2. the free-node voltages are found by Newton iteration on Kirchhoff's
   current law, with each element contributing its currents and an
   element-local finite-difference Jacobian,
3. a voltage-limiting damping step (max 0.3 V per iteration) keeps the
   exponential device models from overflowing.

Energy accounting integrates the current delivered by each voltage source
(trapezoidal over the stored waveforms), giving the switching-energy
numbers used to calibrate :mod:`repro.core.energy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.spice.netlist import Circuit
from repro.spice.waveform import Waveform

#: Maximum Newton update per iteration (V); classic SPICE-style limiting.
_DAMPING_LIMIT = 0.3
#: Perturbation for element-local numeric Jacobians (V).
_JAC_DELTA = 1e-6


class ConvergenceError(RuntimeError):
    """Raised when Newton iteration fails to converge at a timestep."""


@dataclass
class TransientResult:
    """Simulation output: time base plus per-node voltage traces.

    Attributes:
        time: Time points (s), shape (n_steps + 1,).
        voltages: Node name -> voltage trace, same length as ``time``.
        source_currents: Source node -> delivered current trace (A).
        newton_iterations: Total Newton iterations used (diagnostics).
    """

    time: np.ndarray
    voltages: Dict[str, np.ndarray]
    source_currents: Dict[str, np.ndarray] = field(default_factory=dict)
    newton_iterations: int = 0

    def waveform(self, node: str) -> Waveform:
        """The voltage trace of one node as a :class:`Waveform`."""
        try:
            return Waveform(self.time, self.voltages[node], name=node)
        except KeyError:
            known = ", ".join(sorted(self.voltages))
            raise KeyError(f"no node {node!r}; known nodes: {known}") from None

    def source_energy(self, node: str, v_level: Optional[float] = None) -> float:
        """Energy delivered by the source forcing ``node`` (J).

        Integrates ``v(t) * i(t)`` trapezoidally.  ``v_level`` overrides the
        instantaneous voltage with a constant (useful for supplies where
        the waveform is DC anyway).
        """
        i = self.source_currents[node]
        v = np.full_like(i, v_level) if v_level is not None else self.voltages[node]
        return float(np.trapezoid(v * i, self.time))

    def total_supply_energy(self, supply_nodes: Sequence[str]) -> float:
        """Sum of source energies over the given supply nodes (J)."""
        return sum(self.source_energy(n) for n in supply_nodes)


def simulate(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    v_init: Optional[Dict[str, float]] = None,
    max_newton: int = 60,
    abstol: float = 1e-9,
    vtol: float = 1e-6,
    fastpath: bool = True,
) -> TransientResult:
    """Run a fixed-step backward-Euler transient analysis.

    Args:
        circuit: The netlist; validated before the run.
        t_stop: End time (s).
        dt: Timestep (s).
        v_init: Initial voltages for free nodes (missing nodes start at the
            nearest source value of 0 V).  Forced nodes always start at
            their waveform value.
        max_newton: Newton iteration cap per timestep.
        abstol: Residual-current convergence tolerance (A).
        vtol: Voltage-update convergence tolerance (V).
        fastpath: Use the vectorized assembly of
            :mod:`repro.spice.fastpath` when every element type supports
            it (numerically equivalent; set False to force the generic
            per-element path, mostly for testing).

    Returns:
        A :class:`TransientResult` with every node's voltage trace and the
        per-source delivered-current traces.

    Raises:
        ConvergenceError: if a timestep fails to converge even after an
            automatic retry with 4x smaller internal steps.
    """
    if t_stop <= 0:
        raise ValueError(f"t_stop must be positive, got {t_stop}")
    if dt <= 0 or dt > t_stop:
        raise ValueError(f"dt must be in (0, t_stop], got {dt}")
    circuit.validate()

    forced = circuit.source_nodes()
    free = circuit.free_nodes()
    all_nodes = circuit.nodes
    index = {name: k for k, name in enumerate(all_nodes)}
    free_idx = np.array([index[n] for n in free], dtype=int)
    n_all = len(all_nodes)
    n_free = len(free)

    # Bind element nodes to integer indices once (-1 denotes ground).
    bound: List = []
    for element in circuit.elements:
        idx = [index.get(n, -1) if not circuit.is_ground(n) else -1 for n in element.nodes]
        bound.append((element, idx))

    # Map free-node global index -> position in the Newton vector.
    free_pos = {gi: k for k, gi in enumerate(free_idx)}

    # Vectorized fast path when every element type is supported (falls
    # back to the generic per-element loop otherwise).
    from repro.spice.fastpath import try_build

    fast_system = try_build(bound, free_pos, n_free) if fastpath else None

    n_steps = int(round(t_stop / dt))
    time = np.linspace(0.0, n_steps * dt, n_steps + 1)

    volts = np.zeros(n_all)
    for node, wf in forced.items():
        volts[index[node]] = wf.value_at(0.0)
    if v_init:
        for node, value in v_init.items():
            if node in index:
                volts[index[node]] = value

    traces = np.zeros((n_steps + 1, n_all))
    traces[0] = volts
    source_current_traces = {node: np.zeros(n_steps + 1) for node in forced}
    total_newton = 0

    v_prev = volts.copy()
    for step in range(1, n_steps + 1):
        t = time[step]
        v_prev[:] = traces[step - 1]
        volts[:] = v_prev
        for node, wf in forced.items():
            volts[index[node]] = wf.value_at(t)
        def advance(v_now, v_before, t_now, dt_now):
            if fast_system is not None:
                return _solve_step_fast(
                    fast_system, v_now, v_before, dt_now, free_idx,
                    max_newton, abstol, vtol, t_now,
                )
            return _solve_step(
                bound, v_now, v_before, t_now, dt_now, free_idx, free_pos,
                n_free, max_newton, abstol, vtol,
            )

        try:
            total_newton += advance(volts, v_prev, t, dt)
        except ConvergenceError:
            # Retry the step with 4 internal substeps.
            volts[:] = v_prev
            sub_dt = dt / 4.0
            for sub in range(1, 5):
                t_sub = time[step - 1] + sub * sub_dt
                v_sub_prev = volts.copy()
                for node, wf in forced.items():
                    volts[index[node]] = wf.value_at(t_sub)
                total_newton += advance(volts, v_sub_prev, t_sub, sub_dt)
        traces[step] = volts
        _record_source_currents(
            bound, circuit, index, volts, v_prev, t, dt,
            source_current_traces, step,
        )

    voltages = {name: traces[:, index[name]].copy() for name in all_nodes}
    return TransientResult(
        time=time,
        voltages=voltages,
        source_currents=source_current_traces,
        newton_iterations=total_newton,
    )


def _solve_step(bound, volts, v_prev, t, dt, free_idx, free_pos, n_free,
                max_newton, abstol, vtol) -> int:
    """Newton-iterate one timestep in place; returns iterations used."""
    if n_free == 0:
        return 0
    for iteration in range(1, max_newton + 1):
        residual = np.zeros(n_free)
        jac = np.zeros((n_free, n_free))
        for element, idx in bound:
            v_local = [0.0 if i < 0 else volts[i] for i in idx]
            vp_local = [0.0 if i < 0 else v_prev[i] for i in idx]
            base = element.local_currents(v_local, vp_local, t, dt)
            free_terminals = [k for k, i in enumerate(idx) if i >= 0 and i in free_pos]
            for k, i in enumerate(idx):
                if i in free_pos:
                    residual[free_pos[i]] += base[k]
            # Element-local numeric Jacobian: perturb each free terminal.
            for kp in free_terminals:
                v_pert = list(v_local)
                v_pert[kp] += _JAC_DELTA
                pert = element.local_currents(v_pert, vp_local, t, dt)
                col = free_pos[idx[kp]]
                for k, i in enumerate(idx):
                    if i in free_pos:
                        jac[free_pos[i], col] += (pert[k] - base[k]) / _JAC_DELTA
        max_res = float(np.max(np.abs(residual)))
        # Regularize to keep isolated nodes solvable.
        jac += np.eye(n_free) * 1e-12
        try:
            delta = np.linalg.solve(jac, -residual)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(f"singular Jacobian at t={t:.3e}s") from exc
        max_delta = float(np.max(np.abs(delta)))
        if max_delta > _DAMPING_LIMIT:
            delta *= _DAMPING_LIMIT / max_delta
        volts[free_idx] += delta
        if max_res < abstol and max_delta < vtol:
            return iteration
        if max_delta < vtol * 1e-3 and max_res < abstol * 100:
            # Numerically stuck but essentially converged.
            return iteration
    raise ConvergenceError(
        f"no convergence at t={t:.3e}s after {max_newton} iterations "
        f"(max residual {max_res:.3e} A)"
    )


def _solve_step_fast(system, volts, v_prev, dt, free_idx,
                     max_newton, abstol, vtol, t) -> int:
    """Newton-iterate one timestep using the vectorized assembly."""
    if len(free_idx) == 0:
        return 0
    for iteration in range(1, max_newton + 1):
        residual = system.residual(volts, v_prev, dt, t)
        max_res = float(np.max(np.abs(residual)))
        jac = system.jacobian(volts, dt)
        jac += np.eye(system.n_free) * 1e-12
        try:
            delta = np.linalg.solve(jac, -residual)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(f"singular Jacobian at t={t:.3e}s") from exc
        max_delta = float(np.max(np.abs(delta)))
        if max_delta > _DAMPING_LIMIT:
            delta *= _DAMPING_LIMIT / max_delta
        volts[free_idx] += delta
        if max_res < abstol and max_delta < vtol:
            return iteration
        if max_delta < vtol * 1e-3 and max_res < abstol * 100:
            return iteration
    raise ConvergenceError(
        f"no convergence at t={t:.3e}s after {max_newton} iterations "
        f"(max residual {max_res:.3e} A)"
    )


def _record_source_currents(bound, circuit, index, volts, v_prev, t, dt,
                            traces, step) -> None:
    """Compute the current delivered by each source at this timestep.

    By KCL the source injects exactly the current the attached elements
    drain, i.e. the sum of element currents out of the forced node.
    """
    forced_nodes = {node: index[node] for node in traces}
    sums = {gi: 0.0 for gi in forced_nodes.values()}
    for element, idx in bound:
        relevant = [k for k, i in enumerate(idx) if i in sums]
        if not relevant:
            continue
        v_local = [0.0 if i < 0 else volts[i] for i in idx]
        vp_local = [0.0 if i < 0 else v_prev[i] for i in idx]
        currents = element.local_currents(v_local, vp_local, t, dt)
        for k in relevant:
            sums[idx[k]] += currents[k]
    for node, gi in forced_nodes.items():
        traces[node][step] = sums[gi]
