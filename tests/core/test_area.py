"""Tests of the area model."""

import pytest

from repro.core.area import (
    BASELINE_CELLS,
    cell_area_comparison,
    density_advantage,
    f2_to_um2,
    tdam_area,
)
from repro.core.config import TDAMConfig


class TestUnits:
    def test_f2_conversion_at_40nm(self):
        # 1 F^2 at 40 nm = (0.04 um)^2 = 0.0016 um^2.
        assert f2_to_um2(1.0, 40.0) == pytest.approx(0.0016)

    def test_f2_rejects_bad_node(self):
        with pytest.raises(ValueError, match="node_nm"):
            f2_to_um2(100.0, 0.0)


class TestTDAMArea:
    def test_stage_composition(self):
        report = tdam_area(TDAMConfig(), n_rows=8)
        assert report.stage_transistors == 4  # inverter + precharge + switch
        assert report.cell_fefets == 2

    def test_area_scales_with_rows(self):
        small = tdam_area(TDAMConfig(), n_rows=8)
        large = tdam_area(TDAMConfig(), n_rows=16)
        assert large.array_core_um2 == pytest.approx(2 * small.array_core_um2)

    def test_load_cap_dominates_at_large_c(self):
        small_c = tdam_area(TDAMConfig(c_load_f=6e-15), n_rows=4)
        big_c = tdam_area(TDAMConfig(c_load_f=1280e-15), n_rows=4)
        assert big_c.stage_area_um2 > 10 * small_c.stage_area_um2

    def test_density_includes_multibit_gain(self):
        one_bit = tdam_area(TDAMConfig(bits=1), n_rows=8)
        two_bit = tdam_area(TDAMConfig(bits=2), n_rows=8)
        assert two_bit.bits_per_um2 == pytest.approx(
            2 * one_bit.bits_per_um2
        )

    def test_total_is_core_plus_periphery(self):
        report = tdam_area(TDAMConfig(), n_rows=8)
        assert report.total_um2 == pytest.approx(
            report.array_core_um2 + report.periphery_um2
        )

    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError, match="n_rows"):
            tdam_area(TDAMConfig(), n_rows=0)


class TestComparison:
    def test_all_baselines_present(self):
        table = cell_area_comparison()
        assert set(table) == set(BASELINE_CELLS)

    def test_nvm_cells_denser_than_sram(self):
        """The paper's density argument: FeFET cells beat SRAM cells."""
        table = cell_area_comparison()
        assert (
            table["Nat. Electron.'19"]["bits_per_um2"]
            > table["16T TCAM"]["bits_per_um2"]
        )
        assert (
            table["This work"]["bits_per_um2"]
            > table["JSSC'21 (TIMAQ)"]["bits_per_um2"]
        )

    def test_multibit_doubles_bit_density(self):
        """This work stores 2 bits in a 4T-2FeFET cell."""
        table = cell_area_comparison()
        ours = table["This work"]
        assert ours["bits_per_cell"] == 2.0

    def test_density_advantage_vs_timaq_large(self):
        assert density_advantage() > 5.0

    def test_density_advantage_unknown_reference(self):
        with pytest.raises(KeyError, match="known"):
            density_advantage("nonexistent")
