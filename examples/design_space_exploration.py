"""Design-space exploration of the TD-AM (energy / latency / area).

Evaluates the (V_DD, C_load, chain length) grid with the analytic models,
extracts the Pareto front, and picks balanced operating points for two
application profiles -- how a designer would use this library to size a
real instance.

Run:
    python examples/design_space_exploration.py
"""

from repro.analysis.pareto import (
    evaluate_design_space,
    knee_point,
    pareto_front,
)

def describe(point) -> str:
    c = point.config
    return (
        f"V_DD={c.vdd:.1f}V C={c.c_load_f * 1e15:4.0f}fF N={c.n_stages:3d} | "
        f"{point.energy_per_bit_j * 1e15:6.3f} fJ/bit  "
        f"{point.latency_s * 1e9:7.2f} ns  "
        f"{point.area_um2:8.0f} um^2"
    )

def main() -> None:
    points = evaluate_design_space(
        vdds=(0.6, 0.7, 0.8, 0.9, 1.1),
        c_loads_f=(3e-15, 6e-15, 12e-15, 24e-15),
        stage_counts=(32, 64, 128),
    )
    feasible = [p for p in points if p.tdc_feasible]
    front = pareto_front(points)
    print(f"evaluated {len(points)} design points "
          f"({len(feasible)} TDC-feasible); Pareto front has {len(front)}:\n")
    for point in sorted(front, key=lambda p: p.energy_per_bit_j):
        print("  " + describe(point))

    balanced = knee_point(front)
    print("\nbalanced choice (equal log-weights):")
    print("  " + describe(balanced))

    energy_first = knee_point(front, weights={"energy_per_bit_j": 3.0})
    print("energy-constrained profile (edge / implantable):")
    print("  " + describe(energy_first))

    latency_first = knee_point(front, weights={"latency_s": 3.0})
    print("latency-constrained profile (inference server):")
    print("  " + describe(latency_first))

if __name__ == "__main__":
    main()
