"""Crash-safe checkpoint/restore of a resilient shard's full state.

A deployed shard's only durable artifact is its checkpoint; a crash
mid-save must never be able to destroy it.  Three layers of defense:

1. every write goes through :func:`repro.io.atomic_write` (temp file in
   the destination directory, fsync, ``os.replace``) -- a crash between
   the temp write and the publish leaves the previous artifact intact;
2. before publishing a new snapshot the current one is atomically
   copied to ``<path>.prev``, so even a *logically* bad (but
   fully-written) snapshot has a fallback;
3. the payload carries a SHA-256 checksum and a shape manifest;
   :meth:`ServiceCheckpointer.load` rejects any mismatch with
   :class:`~repro.service.errors.CheckpointCorruptError`, and
   :meth:`restore_latest` then falls back to ``.prev``.

The captured state is the *complete* serving state of a
:class:`~repro.resilience.resilient.ResilientTDAMArray` -- shadow image,
row map, spare pool, masked stages, retirement set, drift clocks,
endurance odometers, and the write-time V_TH offsets -- so a restored
shard answers bit-identically to the moment of the snapshot (asserted by
the round-trip tests).

:meth:`attach_probes` subscribes the checkpointer to the
``resilience.repair`` / ``resilience.refresh`` probe points, snapshotting
automatically whenever the closed loop changes the array (telemetry must
be enabled for those probes to fire).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.hdc.quantize import QuantizedModel
from repro.io import FORMAT_VERSION, PathLike, atomic_write
from repro.resilience.resilient import ResilientTDAMArray
from repro.service.errors import (
    CheckpointCorruptError,
    CheckpointNotFoundError,
)
from repro.telemetry import metrics as _metrics
from repro.telemetry.log import get_logger
from repro.telemetry.profile import (
    emit_probe as _emit_probe,
    register_probe,
    unregister_probe,
)
from repro.telemetry.state import STATE as _TM

__all__ = ["ServiceCheckpointer", "CheckpointInfo"]

_log = get_logger(__name__)

_REG = _metrics.get_registry()
_CHECKPOINTS = _REG.counter(
    "service_checkpoints_total",
    "Checkpoint operations, by op (save/restore/reject)",
    labels=("op",),
)

#: Array fields captured in a snapshot, in manifest order.
_ARRAY_FIELDS = (
    "shadow",
    "stored",
    "off_a",
    "off_b",
    "base_off_a",
    "base_off_b",
    "row_age_s",
    "cycles",
    "row_map",
    "free_spares",
    "masked",
    "retired",
)


class CheckpointInfo:
    """Metadata of one loaded/saved snapshot.

    Attributes:
        path: The artifact the snapshot was read from / written to.
        manifest: The embedded manifest (shapes, checksum, trigger).
        metadata: Caller-supplied extras stored at save time.
    """

    def __init__(
        self, path: Path, manifest: Dict[str, Any], metadata: Dict[str, Any]
    ) -> None:
        self.path = path
        self.manifest = manifest
        self.metadata = metadata

    def __repr__(self) -> str:
        return (
            f"CheckpointInfo({self.path.name}, "
            f"trigger={self.manifest.get('trigger')!r})"
        )


def _payload_checksum(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over every payload array, in fixed field order."""
    digest = hashlib.sha256()
    for name in _ARRAY_FIELDS:
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(arrays[name]).tobytes())
    return digest.hexdigest()


class ServiceCheckpointer:
    """Snapshots one shard to disk and brings it back after a crash.

    Args:
        path: The snapshot artifact (``.npz``); the previous snapshot
            is kept alongside as ``<path>.prev``.
        keep_previous: Whether to retain the prior snapshot as the
            corruption fallback (on by default).
    """

    def __init__(self, path: PathLike, keep_previous: bool = True) -> None:
        self.path = Path(path)
        self.keep_previous = keep_previous
        self._hooks: List[Tuple[str, Any]] = []

    @property
    def previous_path(self) -> Path:
        """Location of the retained prior snapshot."""
        return self.path.with_name(self.path.name + ".prev")

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def _capture(self, array: ResilientTDAMArray) -> Dict[str, np.ndarray]:
        phys = array._physical
        return {
            "shadow": array._shadow.copy(),
            "stored": phys._stored.copy(),
            "off_a": phys._off_a.copy(),
            "off_b": phys._off_b.copy(),
            "base_off_a": array._base_off_a.copy(),
            "base_off_b": array._base_off_b.copy(),
            "row_age_s": array._row_age_s.copy(),
            "cycles": array._cycles.copy(),
            "row_map": np.asarray(array._map, dtype=np.int64),
            "free_spares": np.asarray(array._free_spares, dtype=np.int64),
            "masked": np.asarray(array._masked, dtype=np.int64),
            "retired": np.asarray(sorted(array._retired), dtype=np.int64),
        }

    def save(
        self,
        array: ResilientTDAMArray,
        model: Optional[QuantizedModel] = None,
        metadata: Optional[Dict[str, Any]] = None,
        trigger: str = "manual",
    ) -> CheckpointInfo:
        """Atomically snapshot the shard (and optionally its model).

        The current snapshot (if any) is first preserved as ``.prev``;
        only then is the new one published over ``path``.  A crash at
        any point leaves at least one valid artifact on disk.
        """
        arrays = self._capture(array)
        manifest = {
            "_format": FORMAT_VERSION,
            "n_rows": array.n_rows,
            "n_spares": array.n_spares,
            "n_stages": array.config.n_stages,
            "levels": array.config.levels,
            "searches_since_bist": array._searches_since_bist,
            "has_model": model is not None,
            "trigger": trigger,
            "checksum": _payload_checksum(arrays),
        }
        meta = dict(metadata or {})
        payload = dict(arrays)
        payload["manifest"] = np.array([json.dumps(manifest)])
        payload["metadata"] = np.array([json.dumps(meta)])
        if model is not None:
            payload["model_levels"] = model.levels
            payload["model_edges"] = model.edges
            payload["model_centers"] = model.centers
            payload["model_bits"] = np.array([model.bits])
            payload["model_method"] = np.array([model.method])
        if self.keep_previous and self.path.exists():
            current = self.path.read_bytes()
            atomic_write(
                self.previous_path, lambda handle: handle.write(current)
            )
        atomic_write(
            self.path,
            lambda handle: np.savez_compressed(handle, **payload),
        )
        if _TM.enabled:
            _CHECKPOINTS.inc(op="save")
            _emit_probe(
                "service.checkpoint",
                op="save",
                trigger=trigger,
                path=str(self.path),
            )
            _log.info(
                "checkpoint saved",
                extra={"path": str(self.path), "trigger": trigger},
            )
        return CheckpointInfo(self.path, manifest, meta)

    # ------------------------------------------------------------------
    # Load / restore
    # ------------------------------------------------------------------
    def load(
        self, path: Optional[PathLike] = None
    ) -> Tuple[Dict[str, np.ndarray], CheckpointInfo]:
        """Read and checksum-verify one snapshot artifact.

        Raises:
            CheckpointNotFoundError: No artifact at the location.
            CheckpointCorruptError: Unreadable container, missing
                fields, or checksum mismatch.
        """
        target = Path(path) if path is not None else self.path
        if not target.exists():
            raise CheckpointNotFoundError(f"no checkpoint at {target}")
        try:
            with np.load(target, allow_pickle=False) as data:
                arrays = {
                    name: np.array(data[name]) for name in _ARRAY_FIELDS
                }
                manifest = json.loads(str(data["manifest"][0]))
                metadata = json.loads(str(data["metadata"][0]))
                model_arrays = None
                if manifest.get("has_model"):
                    model_arrays = {
                        "levels": data["model_levels"].astype(np.int64),
                        "edges": data["model_edges"].astype(float),
                        "centers": data["model_centers"].astype(float),
                        "bits": int(data["model_bits"][0]),
                        "method": str(data["model_method"][0]),
                    }
        except CheckpointCorruptError:
            raise
        except Exception as exc:
            self._reject(target, f"unreadable container: {exc}")
        version = manifest.get("_format")
        if version != FORMAT_VERSION:
            self._reject(target, f"unsupported format {version}")
        if _payload_checksum(arrays) != manifest.get("checksum"):
            self._reject(target, "payload checksum mismatch")
        arrays["_model"] = model_arrays  # type: ignore[assignment]
        return arrays, CheckpointInfo(target, manifest, metadata)

    def _reject(self, target: Path, reason: str) -> None:
        if _TM.enabled:
            _CHECKPOINTS.inc(op="reject")
            _emit_probe(
                "service.checkpoint",
                op="reject",
                trigger=reason,
                path=str(target),
            )
            _log.warning(
                "checkpoint rejected",
                extra={"path": str(target), "reason": reason},
            )
        raise CheckpointCorruptError(f"checkpoint {target}: {reason}")

    def restore(
        self,
        array: ResilientTDAMArray,
        path: Optional[PathLike] = None,
    ) -> Tuple[CheckpointInfo, Optional[QuantizedModel]]:
        """Load one snapshot into ``array`` (bit-exact state transplant).

        The target array must match the snapshot's geometry (rows,
        spares, stages, levels); its physical state, repair bookkeeping,
        and drift clocks are all overwritten.
        """
        arrays, info = self.load(path)
        manifest = info.manifest
        expected = (
            array.n_rows,
            array.n_spares,
            array.config.n_stages,
            array.config.levels,
        )
        found = (
            manifest["n_rows"],
            manifest["n_spares"],
            manifest["n_stages"],
            manifest["levels"],
        )
        if expected != found:
            raise CheckpointCorruptError(
                f"checkpoint {info.path} geometry {found} does not match "
                f"array {expected}"
            )
        phys = array._physical
        array._shadow = arrays["shadow"].astype(np.int64)
        phys._stored = arrays["stored"].astype(np.int64)
        # Wholesale assignment invalidates the threshold cache.
        phys._off_a = arrays["off_a"]
        phys._off_b = arrays["off_b"]
        phys._written[:] = True
        phys._all_written = True
        array._base_off_a = arrays["base_off_a"]
        array._base_off_b = arrays["base_off_b"]
        array._row_age_s = arrays["row_age_s"]
        array._cycles = arrays["cycles"]
        array._map = [int(r) for r in arrays["row_map"]]
        array._free_spares = [int(r) for r in arrays["free_spares"]]
        array._masked = tuple(int(s) for s in arrays["masked"])
        array._retired = {int(r) for r in arrays["retired"]}
        array._searches_since_bist = int(manifest["searches_since_bist"])
        phys.invalidate_threshold_cache()
        model = None
        model_arrays = arrays.get("_model")
        if model_arrays is not None:
            model = QuantizedModel(**model_arrays)
        if _TM.enabled:
            _CHECKPOINTS.inc(op="restore")
            _emit_probe(
                "service.checkpoint",
                op="restore",
                trigger=manifest.get("trigger", ""),
                path=str(info.path),
            )
            _log.info(
                "checkpoint restored", extra={"path": str(info.path)}
            )
        return info, model

    def restore_latest(
        self, array: ResilientTDAMArray
    ) -> Tuple[CheckpointInfo, Optional[QuantizedModel]]:
        """Restore from the newest *valid* snapshot.

        Tries ``path`` first; on corruption falls back to ``.prev``.
        Raises :class:`CheckpointCorruptError` only when every candidate
        is corrupt, :class:`CheckpointNotFoundError` when none exists.
        """
        try:
            return self.restore(array, self.path)
        except CheckpointNotFoundError:
            if not self.previous_path.exists():
                raise
        except CheckpointCorruptError:
            if not self.previous_path.exists():
                raise
        return self.restore(array, self.previous_path)

    # ------------------------------------------------------------------
    # Probe-driven snapshotting
    # ------------------------------------------------------------------
    def attach_probes(
        self,
        array: ResilientTDAMArray,
        model: Optional[QuantizedModel] = None,
        events: Tuple[str, ...] = ("resilience.repair", "resilience.refresh"),
    ) -> None:
        """Snapshot automatically on the closed loop's probe events.

        Registers one hook per event; each repair/refresh then persists
        the post-event state.  Probes fire only while telemetry is
        enabled.  Call :meth:`detach_probes` to stop.
        """

        def make_hook(event_name: str):
            def hook(event: str, **payload: Any) -> None:
                self.save(array, model=model, trigger=event_name)

            return hook

        for event in events:
            hook = make_hook(event)
            register_probe(event, hook)
            self._hooks.append((event, hook))

    def detach_probes(self) -> None:
        """Unregister every hook installed by :meth:`attach_probes`."""
        for event, hook in self._hooks:
            unregister_probe(event, hook)
        self._hooks.clear()
