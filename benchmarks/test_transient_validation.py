"""Cross-backend validation at paper scale (enabled by the fast path).

Runs the full 32-stage chain of Fig. 4 on the nonlinear transient solver
and checks the analytic backend against it, then runs a transient-level
Monte Carlo to confirm the analytic delay-jitter model is a conservative
bound (the measured V_TH-to-delay coupling of the VC design is ~zero;
the analytic model deliberately over-estimates it).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.calibration import measure_chain_delay
from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel


def _run():
    config = TDAMConfig(n_stages=32)
    timing = TimingEnergyModel(config)
    stored = [0] * 32
    # Step I with all 16 even stages mismatched -- the Fig. 4(a) extreme.
    query = [1 if i % 2 == 0 else 0 for i in range(32)]
    transient = measure_chain_delay(
        config, stored, query, dt=4e-12, rng=np.random.default_rng(4)
    )
    analytic = 32 * timing.d_inv + 16 * timing.d_c

    # Transient Monte Carlo on a short chain: delay spread under 40 mV
    # V_TH variation of the conducting FeFETs.
    mc_config = TDAMConfig(n_stages=4)
    mc_rng = np.random.default_rng(9)
    samples = []
    for _ in range(12):
        offsets = np.zeros((4, 2))
        offsets[:, 0] = mc_rng.normal(0.0, 0.040, size=4)
        samples.append(
            measure_chain_delay(
                mc_config, [0] * 4, [1, 0, 1, 0], dt=4e-12,
                rng=np.random.default_rng(7), vth_offsets=offsets,
            )
        )
    samples = np.array(samples)
    mc_timing = TimingEnergyModel(mc_config)
    # Analytic per-stage jitter bound: sensitivity * sigma / vdd * d_C
    # per mismatched stage, two mismatches in step I.
    analytic_sigma = (
        np.sqrt(2)
        * mc_config.delay_variation_sensitivity
        * 0.040
        / mc_config.vdd
        * mc_timing.d_c
    )
    return transient, analytic, samples, analytic_sigma


def test_transient_validation_paper_scale(benchmark):
    transient, analytic, samples, analytic_sigma = run_once(benchmark, _run)
    print(
        f"\n32-stage step-I, 16 mismatches: transient "
        f"{transient * 1e12:.1f} ps vs analytic {analytic * 1e12:.1f} ps "
        f"({abs(transient - analytic) / transient:.1%} apart)"
    )
    print(
        f"4-stage transient MC (sigma 40 mV): measured delay std "
        f"{samples.std(ddof=1) * 1e15:.1f} fs vs analytic jitter bound "
        f"{analytic_sigma * 1e15:.1f} fs"
    )
    # The analytic model tracks the full nonlinear solve within 15%.
    assert abs(transient - analytic) / transient < 0.15
    # The measured V_TH-to-delay coupling is below the analytic bound:
    # the VC chain is at least as robust as the fast model assumes.
    assert samples.std(ddof=1) <= analytic_sigma
