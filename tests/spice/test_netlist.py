"""Tests of the circuit container."""

import pytest

from repro.spice.elements import Capacitor, Resistor, VoltageSource
from repro.spice.netlist import Circuit


class TestCircuit:
    def test_registers_nodes_in_order(self):
        ckt = Circuit()
        ckt.add(Resistor("a", "b", 1e3))
        ckt.add(Resistor("b", "c", 1e3))
        assert ckt.nodes == ["a", "b", "c"]

    def test_ground_aliases_excluded_from_nodes(self):
        ckt = Circuit()
        ckt.add(Resistor("a", "0", 1e3))
        ckt.add(Resistor("a", "gnd", 1e3))
        assert ckt.nodes == ["a"]

    def test_is_ground(self):
        assert Circuit.is_ground("0")
        assert Circuit.is_ground("gnd")
        assert Circuit.is_ground("GND")
        assert not Circuit.is_ground("out")

    def test_source_nodes_mapping(self):
        ckt = Circuit()
        src = ckt.add(VoltageSource("vin", 1.0))
        ckt.add(Resistor("vin", "out", 1e3))
        assert ckt.source_nodes() == {"vin": src.waveform}

    def test_free_nodes_excludes_forced(self):
        ckt = Circuit()
        ckt.add(VoltageSource("vin", 1.0))
        ckt.add(Resistor("vin", "out", 1e3))
        ckt.add(Capacitor("out", "0", 1e-15))
        assert ckt.free_nodes() == ["out"]

    def test_double_forcing_rejected(self):
        ckt = Circuit()
        ckt.add(VoltageSource("vin", 1.0))
        ckt.add(VoltageSource("vin", 2.0))
        with pytest.raises(ValueError, match="more than one"):
            ckt.source_nodes()

    def test_forcing_ground_rejected(self):
        ckt = Circuit()
        ckt.add(VoltageSource("0", 1.0))
        with pytest.raises(ValueError, match="ground"):
            ckt.source_nodes()

    def test_validate_empty_circuit(self):
        with pytest.raises(ValueError, match="no elements"):
            Circuit("empty").validate()

    def test_validate_passes_good_circuit(self):
        ckt = Circuit()
        ckt.add(VoltageSource("vin", 1.0))
        ckt.add(Resistor("vin", "out", 1e3))
        ckt.add(Capacitor("out", "0", 1e-15))
        ckt.validate()

    def test_add_rejects_non_elements(self):
        with pytest.raises(TypeError, match="not a circuit element"):
            Circuit().add(object())

    def test_extend(self):
        ckt = Circuit()
        ckt.extend([Resistor("a", "b", 1e3), Capacitor("b", "0", 1e-15)])
        assert len(ckt.elements) == 2

    def test_repr_mentions_counts(self):
        ckt = Circuit("demo")
        ckt.add(Resistor("a", "b", 1e3))
        assert "demo" in repr(ckt)
        assert "1 elements" in repr(ckt)
