"""Tests of circuit elements and source waveforms."""

import numpy as np
import pytest

from repro.devices.fefet import FeFET
from repro.devices.mosfet import nmos
from repro.spice.elements import (
    Capacitor,
    ConstantWaveform,
    FeFETElement,
    MOSFETElement,
    PulseWaveform,
    PWLWaveform,
    Resistor,
    StepWaveform,
    VoltageSource,
)


class TestResistor:
    def test_ohms_law(self):
        r = Resistor("a", "b", 1e3)
        currents = r.local_currents([2.0, 1.0], [0, 0], 0, 1e-12)
        assert currents[0] == pytest.approx(1e-3)
        assert currents[1] == pytest.approx(-1e-3)

    def test_current_conservation(self):
        r = Resistor("a", "b", 470.0)
        currents = r.local_currents([0.7, -0.2], [0, 0], 0, 1e-12)
        assert sum(currents) == pytest.approx(0.0)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ValueError, match="resistance"):
            Resistor("a", "b", 0.0)


class TestCapacitor:
    def test_backward_euler_current(self):
        c = Capacitor("a", "0", 1e-12)
        # dV = 0.1 V over dt = 1 ns -> i = C dV/dt = 0.1 mA.
        currents = c.local_currents([1.1, 0.0], [1.0, 0.0], 0, 1e-9)
        assert currents[0] == pytest.approx(1e-4)

    def test_no_current_at_steady_state(self):
        c = Capacitor("a", "0", 1e-12)
        currents = c.local_currents([1.0, 0.0], [1.0, 0.0], 0, 1e-9)
        assert currents[0] == pytest.approx(0.0)

    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(ValueError, match="capacitance"):
            Capacitor("a", "0", -1e-15)


class TestWaveforms:
    def test_step_before_during_after(self):
        wf = StepWaveform(0.0, 1.0, t_step=1e-9, t_rise=2e-10)
        assert wf.value_at(0.5e-9) == 0.0
        assert wf.value_at(1.1e-9) == pytest.approx(0.5)
        assert wf.value_at(2e-9) == 1.0

    def test_pulse_shape(self):
        wf = PulseWaveform(0.0, 1.0, t_delay=1e-9, t_width=2e-9,
                           t_rise=1e-10, t_fall=1e-10)
        assert wf.value_at(0.0) == 0.0
        assert wf.value_at(2e-9) == 1.0
        assert wf.value_at(3.05e-9) == 1.0
        assert wf.value_at(5e-9) == 0.0

    def test_pulse_edges_interpolate(self):
        wf = PulseWaveform(0.0, 1.0, t_delay=0.0, t_width=1e-9,
                           t_rise=2e-10, t_fall=2e-10)
        assert wf.value_at(1e-10) == pytest.approx(0.5)

    def test_pwl_interpolation(self):
        wf = PWLWaveform([(0, 0.0), (1e-9, 1.0), (2e-9, 0.5)])
        assert wf.value_at(0.5e-9) == pytest.approx(0.5)
        assert wf.value_at(1.5e-9) == pytest.approx(0.75)
        assert wf.value_at(5e-9) == 0.5

    def test_pwl_clamps_before_first_point(self):
        wf = PWLWaveform([(1e-9, 2.0), (2e-9, 3.0)])
        assert wf.value_at(0.0) == 2.0

    def test_pwl_rejects_unsorted_times(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            PWLWaveform([(1e-9, 0.0), (0.5e-9, 1.0)])

    def test_pwl_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            PWLWaveform([])

    def test_constant(self):
        wf = ConstantWaveform(0.8)
        assert wf.value_at(0) == 0.8
        assert wf.value_at(1) == 0.8


class TestVoltageSource:
    def test_scalar_becomes_constant_waveform(self):
        src = VoltageSource("vdd", 1.1)
        node, wf = src.forces_node
        assert node == "vdd"
        assert wf.value_at(5e-9) == 1.1

    def test_contributes_no_residual(self):
        src = VoltageSource("vdd", 1.1)
        assert src.local_currents([1.1], [1.1], 0, 1e-12) == [0.0]


class TestMOSFETElement:
    def test_drain_source_currents_balance(self):
        element = MOSFETElement("d", "g", "s", nmos())
        currents = element.local_currents([1.1, 1.1, 0.0], [0] * 3, 0, 1e-12)
        assert currents[0] == pytest.approx(-currents[2])

    def test_gate_current_zero(self):
        element = MOSFETElement("d", "g", "s", nmos())
        currents = element.local_currents([1.1, 1.1, 0.0], [0] * 3, 0, 1e-12)
        assert currents[1] == 0.0

    def test_off_device_leaks_only_gmin(self):
        element = MOSFETElement("d", "g", "s", nmos())
        currents = element.local_currents([1.1, 0.0, 0.0], [0] * 3, 0, 1e-12)
        assert abs(currents[0]) < 1e-8


class TestFeFETElement:
    def test_uses_programmed_state(self):
        low = FeFET(rng=np.random.default_rng(1))
        low.program_vth(0.2)
        high = FeFET(rng=np.random.default_rng(1))
        high.program_vth(1.4)
        e_low = FeFETElement("d", "g", "s", low)
        e_high = FeFETElement("d", "g", "s", high)
        i_low = e_low.local_currents([1.0, 0.8, 0.0], [0] * 3, 0, 1e-12)[0]
        i_high = e_high.local_currents([1.0, 0.8, 0.0], [0] * 3, 0, 1e-12)[0]
        assert i_low > 100 * max(i_high, 1e-30)

    def test_snapshot_frozen_after_construction(self):
        """Re-programming the FeFET does not alter an existing element."""
        dev = FeFET(rng=np.random.default_rng(2))
        dev.program_vth(0.2)
        element = FeFETElement("d", "g", "s", dev)
        before = element.local_currents([1.0, 0.8, 0.0], [0] * 3, 0, 1e-12)[0]
        dev.program_vth(1.4)
        after = element.local_currents([1.0, 0.8, 0.0], [0] * 3, 0, 1e-12)[0]
        assert before == pytest.approx(after)


class TestCurrentSource:
    def test_dc_injection_into_resistor(self):
        from repro.spice.elements import CurrentSource
        from repro.spice.netlist import Circuit
        from repro.spice.transient import simulate

        ckt = Circuit("norton")
        ckt.add(CurrentSource("0", "out", 1e-3))
        ckt.add(Resistor("out", "0", 1e3))
        result = simulate(ckt, t_stop=1e-9, dt=100e-12)
        assert result.waveform("out").settled_value() == pytest.approx(1.0)

    def test_scalar_and_fast_paths_agree(self):
        from repro.spice.elements import CurrentSource, StepWaveform
        from repro.spice.netlist import Circuit
        from repro.spice.transient import simulate

        ckt = Circuit("ramp")
        ckt.add(CurrentSource("0", "out",
                              StepWaveform(0.0, 2e-3, t_step=0.5e-9)))
        ckt.add(Resistor("out", "0", 500.0))
        ckt.add(Capacitor("out", "0", 1e-13))
        fast = simulate(ckt, t_stop=2e-9, dt=20e-12)
        slow = simulate(ckt, t_stop=2e-9, dt=20e-12, fastpath=False)
        assert np.allclose(fast.voltages["out"], slow.voltages["out"],
                           atol=1e-9)

    def test_current_conservation(self):
        from repro.spice.elements import CurrentSource

        src = CurrentSource("a", "b", 5e-6)
        currents = src.local_currents([0.0, 0.0], [0.0, 0.0], 0.0, 1e-12)
        assert currents[0] == pytest.approx(5e-6)
        assert sum(currents) == pytest.approx(0.0)
