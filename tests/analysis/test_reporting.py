"""Tests of the text rendering helpers."""

import pytest

from repro.analysis.reporting import (
    format_engineering,
    format_series,
    format_table,
)


class TestFormatEngineering:
    def test_picoseconds(self):
        assert format_engineering(1.23e-12, "s") == "1.23 ps"

    def test_femtojoules(self):
        assert format_engineering(45.6e-15, "J") == "45.6 fJ"

    def test_zero(self):
        assert format_engineering(0.0, "V") == "0 V"

    def test_unity_range(self):
        assert format_engineering(2.5, "V") == "2.5 V"

    def test_negative_value(self):
        assert format_engineering(-3.3e-9, "s") == "-3.3 ns"


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            [{"name": "a", "value": 1.0}, {"name": "bb", "value": 2.5}]
        )
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert len({len(l) for l in lines}) == 1  # aligned widths

    def test_title(self):
        text = format_table([{"x": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no records"):
            format_table([])


class TestFormatSeries:
    def test_curves_as_columns(self):
        text = format_series("x", [1, 2], {"y": [10.0, 20.0], "z": [3.0, 4.0]})
        header = text.splitlines()[0]
        assert "x" in header and "y" in header and "z" in header

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            format_series("x", [1, 2], {"y": [1.0]})
