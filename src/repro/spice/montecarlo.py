"""Seeded Monte Carlo harness over circuit-level experiments.

The paper's Fig. 6 runs Monte Carlo over FeFET V_TH variation and reports
delay distributions.  This module provides the generic machinery: run a
user-supplied trial function over independently seeded RNG streams and
collect summary statistics.  The trial function owns circuit construction,
so the same harness drives both the full transient backend and the fast
analytic backend.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np


@dataclass
class MonteCarloResult:
    """Samples plus summary statistics of one Monte Carlo experiment.

    Attributes:
        samples: The per-trial scalar outcomes.
        seed: Master seed of the run.
        failures: Number of trials that raised (excluded from samples).
    """

    samples: np.ndarray
    seed: Optional[int]
    failures: int = 0

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return float(self.samples.std(ddof=1))

    @property
    def coefficient_of_variation(self) -> float:
        """sigma/mu -- the relative spread the paper's Fig. 6 examines."""
        mean = self.mean
        if mean == 0:
            raise ValueError("coefficient of variation undefined for zero mean")
        return self.std / abs(mean)

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.samples, q))

    def fraction_within(self, low: float, high: float) -> float:
        """Fraction of samples inside [low, high] -- sensing-margin yield."""
        inside = (self.samples >= low) & (self.samples <= high)
        return float(inside.mean())

    def histogram(self, bins: int = 30) -> Dict[str, np.ndarray]:
        counts, edges = np.histogram(self.samples, bins=bins)
        return {"counts": counts, "edges": edges}

    def summary(self) -> Dict[str, float]:
        return {
            "n": float(len(self.samples)),
            "mean": self.mean,
            "std": self.std,
            "min": float(self.samples.min()),
            "max": float(self.samples.max()),
            "p01": self.percentile(1),
            "p99": self.percentile(99),
            "failures": float(self.failures),
        }


def _run_shard(
    trial: Callable[[np.random.Generator], float],
    children: Sequence[np.random.SeedSequence],
    allow_failures: bool,
) -> List[Optional[float]]:
    """Run one contiguous shard of trials; ``None`` marks a failure.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can
    pickle it; the failure markers keep the per-trial positions so the
    reassembled sample order is independent of the sharding.
    """
    out: List[Optional[float]] = []
    for child in children:
        rng = np.random.default_rng(child)
        try:
            out.append(float(trial(rng)))
        except Exception:
            if not allow_failures:
                raise
            out.append(None)
    return out


def run_monte_carlo(
    trial: Callable[[np.random.Generator], float],
    n_runs: int,
    seed: Optional[int] = None,
    allow_failures: bool = False,
    n_workers: int = 1,
    executor: str = "process",
) -> MonteCarloResult:
    """Run ``trial`` over ``n_runs`` independent RNG streams.

    Every trial gets its own :class:`~numpy.random.SeedSequence`-spawned
    child stream keyed by its trial index, so the result is
    **bit-identical for any worker count**: parallelism only changes
    which process evaluates a trial, never the stream it consumes.

    Args:
        trial: Function taking a seeded generator and returning a scalar
            outcome (e.g. a chain delay in seconds).  Must be picklable
            (a module-level function or dataclass instance) when
            ``n_workers > 1`` with the process executor.
        n_runs: Number of trials.
        seed: Master seed; child streams are spawned deterministically so
            results are reproducible and order-independent.
        allow_failures: When True, trials that raise are counted and
            skipped; when False the exception propagates.
        n_workers: Worker count; 1 runs serially in-process (no pickling
            requirement).
        executor: ``"process"`` (CPU-bound trials, the default) or
            ``"thread"`` (cheap trials or unpicklable state).

    Returns:
        The collected :class:`MonteCarloResult`.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if executor not in ("process", "thread"):
        raise ValueError(
            f"executor must be 'process' or 'thread', got {executor!r}"
        )
    seed_seq = np.random.SeedSequence(seed)
    children = seed_seq.spawn(n_runs)
    n_workers = min(n_workers, n_runs)
    if n_workers == 1:
        raw = _run_shard(trial, children, allow_failures)
    else:
        bounds = np.linspace(0, n_runs, n_workers + 1).astype(int)
        shards = [
            children[bounds[i]:bounds[i + 1]] for i in range(n_workers)
        ]
        pool_cls = (
            concurrent.futures.ProcessPoolExecutor
            if executor == "process"
            else concurrent.futures.ThreadPoolExecutor
        )
        with pool_cls(max_workers=n_workers) as pool:
            futures = [
                pool.submit(_run_shard, trial, shard, allow_failures)
                for shard in shards
            ]
            raw = [x for future in futures for x in future.result()]
    samples = [x for x in raw if x is not None]
    failures = len(raw) - len(samples)
    if not samples:
        raise RuntimeError("all Monte Carlo trials failed")
    return MonteCarloResult(
        samples=np.array(samples), seed=seed, failures=failures
    )
