"""Tests of the crossbar baselines (1-FeFET CAM and COSIME-like AM)."""

import numpy as np
import pytest

from repro.baselines.crossbar import CosineCrossbarAM, MultiBitFeCAMCrossbar


class TestMultiBitFeCAMCrossbar:
    def setup_method(self):
        self.cam = MultiBitFeCAMCrossbar(n_rows=3, n_cols=8, bits=2)
        self.cam.write(0, [0, 1, 2, 3, 0, 1, 2, 3])
        self.cam.write(1, [0, 1, 2, 3, 0, 1, 2, 0])
        self.cam.write(2, [3, 3, 3, 3, 3, 3, 3, 3])

    def test_quantitative_hamming(self):
        distances = self.cam.hamming_search([0, 1, 2, 3, 0, 1, 2, 3])
        assert distances.tolist() == [0, 1, 6]

    def test_match_line_current_proportional(self):
        currents = self.cam.match_line_currents_ua([0, 1, 2, 3, 0, 1, 2, 3])
        assert currents.tolist() == [0.0, 1.0, 6.0]

    def test_adc_resolution_scales_with_columns(self):
        small = MultiBitFeCAMCrossbar(n_rows=1, n_cols=7)
        large = MultiBitFeCAMCrossbar(n_rows=1, n_cols=128)
        assert small.adc_resolution_bits == 3
        assert large.adc_resolution_bits == 8

    def test_energy_includes_static_and_adc(self):
        """The paper's criticism: sensing costs on top of cell energy."""
        cell_only = self.cam.design.search_energy_j(3 * 8 * 2)
        assert self.cam.search_energy_j() > cell_only

    def test_static_energy_grows_with_eval_window(self):
        slow = MultiBitFeCAMCrossbar(n_rows=3, n_cols=8, t_eval_ns=10.0)
        fast = MultiBitFeCAMCrossbar(n_rows=3, n_cols=8, t_eval_ns=1.0)
        assert slow.search_energy_j() > fast.search_energy_j()

    def test_write_validation(self):
        with pytest.raises(ValueError, match="elements"):
            self.cam.write(0, [0, 1, 2, 3, 0, 1, 2, 9])
        with pytest.raises(IndexError, match="row"):
            self.cam.write(5, [0] * 8)

    def test_search_before_write(self):
        cam = MultiBitFeCAMCrossbar(n_rows=2, n_cols=4)
        cam.write(0, [0, 1, 2, 3])
        with pytest.raises(RuntimeError, match="before"):
            cam.hamming_search([0, 1, 2, 3])


class TestCosineCrossbarAM:
    def setup_method(self):
        self.am = CosineCrossbarAM(n_rows=3, n_cols=16)
        rng = np.random.default_rng(4)
        self.vectors = rng.normal(size=(3, 16))
        for row in range(3):
            self.am.write(row, self.vectors[row])

    def test_winner_is_cosine_argmax(self):
        query = self.vectors[1] + 0.05 * np.random.default_rng(5).normal(size=16)
        assert self.am.winner(query) == 1

    def test_scale_invariant(self):
        assert self.am.winner(10.0 * self.vectors[2]) == 2

    def test_no_similarity_value_exposed(self):
        """The capability gap: only the argmax is available."""
        result = self.am.winner(self.vectors[0])
        assert isinstance(result, int)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            self.am.write(0, np.zeros(16))
        with pytest.raises(ValueError, match="zero"):
            self.am.winner(np.zeros(16))

    def test_energy_includes_wta(self):
        mac_only = self.am.design.search_energy_j(3 * 16)
        assert self.am.search_energy_j() > mac_only
