"""One driver per paper table/figure (see DESIGN.md section 4).

Every driver returns a structured result object and has a ``format_*``
companion producing the text rendering the benchmark harness prints.
Drivers accept size parameters so benches can run reduced versions while
``python -m repro.experiments.<driver>`` reproduces the full figure.
"""

from repro.experiments.ext_resilience import run_resilience_study
from repro.experiments.fig1_device import run_fig1
from repro.experiments.fig2_cell import run_fig2
from repro.experiments.fig4_linearity import run_fig4
from repro.experiments.fig5_energy_delay import run_fig5_ab, run_fig5_cd
from repro.experiments.fig6_montecarlo import run_fig6
from repro.experiments.fig7_hdc_accuracy import run_fig7
from repro.experiments.fig8_gpu_comparison import run_fig8
from repro.experiments.table1_comparison import run_table1

__all__ = [
    "run_fig1",
    "run_resilience_study",
    "run_fig2",
    "run_fig4",
    "run_fig5_ab",
    "run_fig5_cd",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_table1",
]
