"""Fig. 7: HDC accuracy vs. bit precision and dimensionality.

The paper's quantization study: train a full-precision HDC model per
(dataset, dimension), quantize the class hypervectors into equal-area
``2**n`` blocks for n in {1, 2, 3, 4}, and measure test accuracy against
the 32-bit reference across D in {512, 1024, 2048, 5120, 10240}.

Two inference semantics are recorded per quantized model (see the
discussion in EXPERIMENTS.md):

- ``accuracy``: cosine against the reconstructed quantized prototypes --
  the model-precision semantics of the paper's Fig. 7 study;
- ``accuracy_hamming``: the TD-AM's native exact-match Hamming inference
  (query quantized to the same levels).

The sweep additionally measures ``accuracy_fabric``: the same Hamming
inference, but with the query *encoded in-fabric* by the quantized
bit-serial MVM projection
(:class:`repro.hdc.encoder.QuantizedProjectionEncoder`) instead of the
float encoder.  The gap to ``accuracy_hamming`` is the full-pipeline
cost of quantizing the encode stage; :meth:`Fig7Result.max_fabric_delta`
reports the worst case over the sweep and the text rendering prints it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


from repro.analysis.reporting import format_table
from repro.datasets.synthetic import Dataset, standard_suite
from repro.hdc.encoder import RandomProjectionEncoder
from repro.hdc.mapping import TDAMInference
from repro.hdc.model import HDCClassifier
from repro.hdc.quantize import quantize_equal_area
from repro.experiments._instrument import instrumented

#: The paper's swept dimensionalities.
PAPER_DIMENSIONS = (512, 1024, 2048, 5120, 10240)
#: The paper's swept precisions (32 = float reference).
PAPER_PRECISIONS = (1, 2, 3, 4, 32)


@dataclass
class Fig7Record:
    """One (dataset, dimension, precision) accuracy measurement."""

    dataset: str
    dimension: int
    bits: int
    accuracy: float
    accuracy_hamming: Optional[float] = None
    accuracy_fabric: Optional[float] = None


@dataclass
class Fig7Result:
    """All accuracy measurements of the Fig. 7 sweep."""

    records: List[Fig7Record]
    dimensions: Sequence[int]
    precisions: Sequence[int]

    def accuracy(self, dataset: str, dimension: int, bits: int) -> float:
        for r in self.records:
            if (r.dataset, r.dimension, r.bits) == (dataset, dimension, bits):
                return r.accuracy
        raise KeyError(f"no record for {(dataset, dimension, bits)}")

    def dimension_to_reach(
        self, dataset: str, bits: int, fraction_of_peak: float = 0.98
    ) -> Optional[int]:
        """Smallest swept D where this precision reaches the given
        fraction of the 32-bit peak accuracy; None if never."""
        peak = max(
            self.accuracy(dataset, d, 32) for d in self.dimensions
        )
        target = fraction_of_peak * peak
        for d in self.dimensions:
            if self.accuracy(dataset, d, bits) >= target:
                return d
        return None

    def _fabric_deltas(self) -> List[float]:
        return [
            r.accuracy_hamming - r.accuracy_fabric
            for r in self.records
            if r.accuracy_hamming is not None
            and r.accuracy_fabric is not None
        ]

    def mean_fabric_delta(self) -> Optional[float]:
        """Mean accuracy cost of the in-fabric quantized encoder:
        ``accuracy_hamming - accuracy_fabric`` averaged over all records
        carrying both (None when the sweep measured neither).  The mean
        is the meaningful encoder-bias statistic -- individual cells
        fluctuate by a few samples because exact-match Hamming inference
        is sensitive to queries that sit on quantization-bin edges."""
        deltas = self._fabric_deltas()
        if not deltas:
            return None
        return sum(deltas) / len(deltas)

    def max_fabric_delta(self) -> Optional[float]:
        """Worst-cell accuracy cost of the in-fabric quantized encoder
        (largest ``accuracy_hamming - accuracy_fabric``)."""
        deltas = self._fabric_deltas()
        if not deltas:
            return None
        return max(deltas)


@instrumented("fig7")
def run_fig7(
    dimensions: Sequence[int] = PAPER_DIMENSIONS,
    precisions: Sequence[int] = PAPER_PRECISIONS,
    datasets: Optional[Sequence[Dataset]] = None,
    dataset_scale: float = 1.0,
    epochs: int = 8,
    include_hamming: bool = True,
    include_fabric: bool = True,
    seed: int = 7,
) -> Fig7Result:
    """Run the full accuracy sweep.

    Args:
        dimensions: Hypervector dimensions to sweep.
        precisions: Bit precisions (32 denotes the float reference).
        datasets: Datasets to evaluate; defaults to the standard suite.
        dataset_scale: Sample-count scale of the default suite.
        epochs: Refinement epochs per model.
        include_hamming: Also record the TD-AM Hamming-inference accuracy.
        include_fabric: Also record the Hamming accuracy with the query
            encoded by the quantized in-fabric projection (requires
            ``include_hamming``).
        seed: Encoder seed.
    """
    if datasets is None:
        datasets = standard_suite(scale=dataset_scale)
    records: List[Fig7Record] = []
    for ds in datasets:
        for dim in dimensions:
            encoder = RandomProjectionEncoder(ds.n_features, int(dim), seed=seed)
            clf = HDCClassifier(encoder, ds.n_classes).fit(
                ds.x_train, ds.y_train, epochs=epochs
            )
            queries = clf.encode(ds.x_test)
            queries_fabric = None
            if include_hamming and include_fabric:
                queries_fabric = clf.encode_with(
                    encoder.quantize(), ds.x_test
                )
            for bits in precisions:
                if bits == 32:
                    records.append(
                        Fig7Record(
                            dataset=ds.name,
                            dimension=int(dim),
                            bits=32,
                            accuracy=clf.accuracy(ds.x_test, ds.y_test),
                        )
                    )
                    continue
                qm = quantize_equal_area(clf.prototypes, int(bits))
                acc = qm.accuracy_cosine(queries, ds.y_test)
                acc_ham = None
                acc_fab = None
                if include_hamming:
                    inference = TDAMInference(qm, n_features=ds.n_features)
                    acc_ham = inference.accuracy(
                        qm.quantize_queries(queries), ds.y_test
                    )
                    if queries_fabric is not None:
                        acc_fab = inference.accuracy(
                            qm.quantize_queries(queries_fabric), ds.y_test
                        )
                records.append(
                    Fig7Record(
                        dataset=ds.name,
                        dimension=int(dim),
                        bits=int(bits),
                        accuracy=acc,
                        accuracy_hamming=acc_ham,
                        accuracy_fabric=acc_fab,
                    )
                )
    return Fig7Result(
        records=records,
        dimensions=list(dimensions),
        precisions=list(precisions),
    )


def format_fig7(result: Fig7Result) -> str:
    """Text rendering: accuracy grid per dataset."""
    blocks = []
    datasets = sorted({r.dataset for r in result.records})
    for ds in datasets:
        rows = []
        for dim in result.dimensions:
            row: Dict[str, object] = {"D": dim}
            for bits in result.precisions:
                label = "32b" if bits == 32 else f"{bits}b"
                row[label] = result.accuracy(ds, dim, bits)
            rows.append(row)
        blocks.append(
            format_table(rows, floatfmt=".3f", title=f"Fig. 7 [{ds}]: accuracy")
        )
    mean_delta = result.mean_fabric_delta()
    if mean_delta is not None:
        blocks.append(
            "in-fabric encoder cost (Hamming accuracy, float encoder - "
            f"fabric encoder): mean {mean_delta * 100:+.2f} points, "
            f"worst cell {result.max_fabric_delta() * 100:+.2f} points"
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    from repro.cli import emit

    emit(format_fig7(run_fig7()))
