"""3T-2FeFET time-domain CIM fabric baseline (Yin et al. [24]).

The closest prior work: a homogeneous processing fabric whose variable-
capacitance delay chain supports both matrix-vector multiplication and
Hamming-distance associative search.  Its IMC cell, however, is *binary*
-- one stored bit per 3T-2FeFET stage -- so an ``n``-bit element costs
``n`` stages (bit-sliced), which is exactly where the proposed multi-bit
TD-AM gains its 1.47x energy advantage in Table I.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import BaselineDesign, SCType

DESIGN = BaselineDesign(
    name="Work [24]",
    reference="[24]",
    signal_domain="Time",
    device="FeFET",
    cell_size="3T-2FeFET",
    sc_type=SCType.MAC_HAMMING_QUANTITATIVE,
    energy_per_bit_fj=0.234,
    technology_nm=40,
    quantitative=True,
    multibit=False,
)


class TDCIMFabric:
    """Functional + energy model of the binary TD-CIM fabric.

    Args:
        n_rows: Stored vectors.
        n_bits: Bits per stored vector (= stages per chain; the cell is
            binary, so multi-bit elements must be bit-sliced).
    """

    design = DESIGN

    def __init__(self, n_rows: int, n_bits: int) -> None:
        if n_rows < 1 or n_bits < 1:
            raise ValueError("n_rows and n_bits must be >= 1")
        self.n_rows = n_rows
        self.n_bits = n_bits
        self._words = np.zeros((n_rows, n_bits), dtype=np.int8)
        self._written = np.zeros(n_rows, dtype=bool)

    def write(self, row: int, word: Sequence[int]) -> None:
        """Store a binary word."""
        word = np.asarray(word, dtype=np.int8)
        if word.shape != (self.n_bits,):
            raise ValueError(
                f"word must have {self.n_bits} bits, got shape {word.shape}"
            )
        if not np.isin(word, (0, 1)).all():
            raise ValueError("word bits must be 0 or 1")
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range")
        self._words[row] = word
        self._written[row] = True

    @staticmethod
    def bit_slice(values: Sequence[int], bits: int) -> np.ndarray:
        """Expand multi-bit elements into a binary vector (LSB first).

        This is how a multi-bit workload must be mapped onto the binary
        fabric, multiplying the chain length by ``bits``.
        """
        arr = np.asarray(values, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= (1 << bits)):
            raise ValueError(f"elements must be in [0, {(1 << bits) - 1}]")
        planes = [(arr >> b) & 1 for b in range(bits)]
        return np.stack(planes, axis=1).reshape(-1).astype(np.int8)

    def hamming_search(self, query: Sequence[int]) -> np.ndarray:
        """Quantitative per-row Hamming distance (the fabric's AM mode)."""
        query = np.asarray(query, dtype=np.int8)
        if query.shape != (self.n_bits,):
            raise ValueError(
                f"query must have {self.n_bits} bits, got shape {query.shape}"
            )
        if not self._written.all():
            raise RuntimeError("search before all rows were written")
        return (self._words != query[None, :]).sum(axis=1)

    def mac(self, query: Sequence[int]) -> np.ndarray:
        """Binary MAC per row (the fabric's MVM mode)."""
        query = np.asarray(query, dtype=np.int64)
        if query.shape != (self.n_bits,):
            raise ValueError(
                f"query must have {self.n_bits} bits, got shape {query.shape}"
            )
        if not self._written.all():
            raise RuntimeError("mac before all rows were written")
        return (self._words.astype(np.int64) * query[None, :]).sum(axis=1)

    def search_energy_j(self) -> float:
        """Energy of one full-array search (J)."""
        return self.design.search_energy_j(self.n_rows * self.n_bits)
