"""Bench: Fig. 7 -- HDC accuracy vs bit precision and dimensionality.

Runs the full three-dataset sweep at reduced sample counts (the paper's
dimension grid is kept) and checks the figure's qualitative claims:

- accuracy grows with D for every precision;
- higher precision reaches the 32-bit peak at smaller D;
- on ISOLET the 2-bit model converges by 2048 while 1-bit needs the full
  10240;
- 1-bit UCIHAR never reaches the 32-bit peak (the paper's exception).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig7_hdc_accuracy import format_fig7, run_fig7


def test_fig7_accuracy_sweep(benchmark):
    result = run_once(
        benchmark, run_fig7,
        dimensions=(512, 1024, 2048, 5120, 10240),
        precisions=(1, 2, 3, 4, 32),
        dataset_scale=0.4,
        epochs=6,
        include_hamming=False,
    )
    print()
    print(format_fig7(result))

    for ds in ("isolet", "ucihar", "face"):
        # Accuracy improves with dimensionality at every precision.
        for bits in (1, 2, 4, 32):
            assert (
                result.accuracy(ds, 10240, bits)
                > result.accuracy(ds, 512, bits) - 0.02
            )
        # At the smallest D, more bits help.
        assert (
            result.accuracy(ds, 512, 4) >= result.accuracy(ds, 512, 1) - 0.02
        )

    # Dimension needed to reach ~the 32-bit peak shrinks with precision.
    for ds in ("isolet", "face"):
        d1 = result.dimension_to_reach(ds, 1, fraction_of_peak=0.97)
        d4 = result.dimension_to_reach(ds, 4, fraction_of_peak=0.97)
        assert d4 is not None
        assert d1 is None or d4 <= d1

    # The paper's exception: 1-bit UCIHAR misses the peak everywhere.
    assert result.dimension_to_reach("ucihar", 1, fraction_of_peak=0.99) is None
