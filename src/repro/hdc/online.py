"""Online (on-device) HDC learning with TD-AM similarity feedback.

The paper argues (Sec. II-B) that associative memories which only flag
match/mismatch cannot support learning algorithms whose updates need the
*exact* similarity value -- OnlineHD's confidence-scaled update being the
canonical example.  The TD-AM's quantitative Hamming output closes that
gap: the TDC count per class is a usable confidence signal.

:class:`OnlineLearner` implements single-pass streaming learning with
three feedback modes, isolating exactly that capability difference:

- ``"exact"`` -- float cosine similarities (the software reference),
- ``"quantitative"`` -- TD-AM match counts (what the proposed design
  provides): a full per-class ranking plus confidence-scaled updates
  from integer similarities,
- ``"binary"`` -- true match-flag CAM semantics (Nat. Electron.'19
  class): a row is reported only when its mismatch count falls within a
  small tolerance; flagged rows cannot be ranked against each other, and
  when nothing matches the CAM returns no answer (the learner falls back
  to a round-robin guess).  No confidence value exists for scaling.

The accompanying experiment (``repro.experiments.ext_online``) measures
the accuracy gap between the modes -- the paper's capability argument,
quantified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hdc.encoder import RandomProjectionEncoder
from repro.hdc.metrics import cosine_similarity, match_count
from repro.hdc.quantize import quantize_equal_area

FEEDBACK_MODES = ("exact", "quantitative", "binary")


@dataclass
class OnlineStats:
    """Streaming-learning statistics.

    Attributes:
        n_seen: Samples processed.
        n_updates: Update steps applied (mistakes or low confidence).
        online_accuracy: Prequential accuracy (predict-then-train).
    """

    n_seen: int = 0
    n_updates: int = 0
    correct: int = 0

    @property
    def online_accuracy(self) -> float:
        return self.correct / self.n_seen if self.n_seen else 0.0


class OnlineLearner:
    """Single-pass streaming HDC learner with selectable feedback.

    Args:
        encoder: Feature encoder (shared with deployment).
        n_classes: Number of classes.
        feedback: Similarity feedback mode (see module docstring).
        bits: Quantization precision used by the "quantitative" mode's
            similarity path (the TD-AM's element precision).
        learning_rate: Update scale.
        seed: Seed of the running quantization refreshes.
    """

    def __init__(
        self,
        encoder: RandomProjectionEncoder,
        n_classes: int,
        feedback: str = "quantitative",
        bits: int = 2,
        learning_rate: float = 0.35,
    ) -> None:
        if feedback not in FEEDBACK_MODES:
            raise ValueError(
                f"feedback must be one of {FEEDBACK_MODES}, got {feedback!r}"
            )
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        self.encoder = encoder
        self.n_classes = n_classes
        self.feedback = feedback
        self.bits = bits
        self.learning_rate = learning_rate
        self.prototypes = np.zeros(
            (n_classes, encoder.dimension), dtype=np.float64
        )
        self.stats = OnlineStats()
        self._center = np.zeros(encoder.dimension, dtype=np.float64)
        self._center_weight = 0.0

    # ------------------------------------------------------------------
    # Encoding with a running center estimate (no offline statistics in
    # a streaming setting).
    # ------------------------------------------------------------------
    def _encode(self, features: np.ndarray) -> np.ndarray:
        raw = self.encoder.encode(features)[0].astype(np.float64)
        # Center with the estimate from *previous* samples (the current
        # one must not cancel itself), then absorb it into the running
        # mean for later samples.
        centered = raw - self._center
        self._center_weight = min(self._center_weight + 1.0, 200.0)
        alpha = 1.0 / self._center_weight
        self._center = (1 - alpha) * self._center + alpha * raw
        norm = np.linalg.norm(centered)
        return centered / norm if norm > 0 else centered

    # ------------------------------------------------------------------
    # Similarity feedback paths
    # ------------------------------------------------------------------
    def _similarities(self, encoded: np.ndarray) -> np.ndarray:
        """Normalized similarity per class in [-1, 1] per the mode."""
        if not self.prototypes.any():
            return np.zeros(self.n_classes)
        if self.feedback == "exact":
            safe = self.prototypes.copy()
            zero_rows = ~safe.any(axis=1)
            safe[zero_rows] = 1e-12
            return cosine_similarity(encoded, safe)[0]
        # Hardware paths quantize the model and the query.
        model = quantize_equal_area(
            np.where(
                self.prototypes.any(axis=1, keepdims=True),
                self.prototypes,
                1e-12,
            ),
            self.bits,
        )
        query_levels = model.quantize_queries(encoded[None, :])
        counts = match_count(query_levels, model.levels)[0]
        dimension = self.encoder.dimension
        normalized = 2.0 * counts / dimension - 1.0
        if self.feedback == "quantitative":
            return normalized
        # Binary CAM: rows within the mismatch tolerance are flagged;
        # flagged rows are indistinguishable from each other and unflagged
        # rows carry no information at all.
        tolerance = max(1, dimension // 50)
        flagged = (dimension - counts) <= tolerance
        out = np.full(self.n_classes, -1.0)
        if flagged.any():
            out[flagged] = 1.0
        else:
            # No CAM response: round-robin fallback guess.
            out[self.stats.n_seen % self.n_classes] = 1.0
        return out

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def partial_fit(self, features: np.ndarray, label: int) -> int:
        """Process one labelled sample (predict, then update).

        Returns:
            The prediction made *before* the update (prequential).
        """
        if not 0 <= label < self.n_classes:
            raise ValueError(
                f"label {label} out of range [0, {self.n_classes - 1}]"
            )
        encoded = self._encode(np.atleast_2d(features))
        sims = self._similarities(encoded)
        prediction = int(np.argmax(sims))
        self.stats.n_seen += 1
        if prediction == label:
            self.stats.correct += 1
        if prediction != label or not self.prototypes[label].any():
            # Confidence-scaled OnlineHD update; in binary mode the
            # confidence terms degenerate to constants.
            alpha_t = 1.0 - sims[label]
            alpha_w = 1.0 - sims[prediction]
            self.prototypes[label] += self.learning_rate * alpha_t * encoded
            if prediction != label:
                self.prototypes[prediction] -= (
                    self.learning_rate * alpha_w * encoded
                )
            self.stats.n_updates += 1
        return prediction

    def fit_stream(self, features: np.ndarray, labels: np.ndarray) -> OnlineStats:
        """Process a labelled stream sample by sample."""
        features = np.asarray(features)
        labels = np.asarray(labels)
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"{features.shape[0]} samples but {labels.shape[0]} labels"
            )
        for x, y in zip(features, labels):
            self.partial_fit(x, int(y))
        return self.stats

    def _encode_batch(self, features: np.ndarray) -> np.ndarray:
        features = np.atleast_2d(np.asarray(features))
        raw = self.encoder.encode(features).astype(np.float64)
        centered = raw - self._center
        norms = np.linalg.norm(centered, axis=1, keepdims=True)
        return centered / np.maximum(norms, 1e-12)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Batch prediction through the mode's *own* inference path.

        The deployed system can only compute what its similarity hardware
        provides: cosine for the software reference, match-count argmax
        for the TD-AM, and the flag-or-fallback protocol for the binary
        CAM.  (This is the point of the capability comparison -- a binary
        CAM has no cosine engine at test time either.)
        """
        encoded = self._encode_batch(features)
        safe = self.prototypes.copy()
        safe[~safe.any(axis=1)] = 1e-12
        if self.feedback == "exact":
            return cosine_similarity(encoded, safe).argmax(axis=1)
        model = quantize_equal_area(safe, self.bits)
        counts = match_count(model.quantize_queries(encoded), model.levels)
        if self.feedback == "quantitative":
            return counts.argmax(axis=1)
        # Binary CAM: flagged-row protocol with round-robin fallback.
        dimension = self.encoder.dimension
        tolerance = max(1, dimension // 50)
        predictions = np.empty(encoded.shape[0], dtype=np.int64)
        for i in range(encoded.shape[0]):
            flagged = (dimension - counts[i]) <= tolerance
            if flagged.any():
                predictions[i] = int(np.argmax(flagged))
            else:
                predictions[i] = i % self.n_classes
        return predictions

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Test accuracy through the mode's own inference path."""
        labels = np.asarray(labels)
        return float((self.predict(features) == labels).mean())
