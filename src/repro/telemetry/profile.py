"""Profiling hooks: an opt-in probe registry at fixed instrumentation
points.

The array / resilience / Monte Carlo code calls
:func:`emit_probe(event, **payload)` at its probe points; payloads are
plain dicts of scalars.  Nothing happens (one dict lookup) unless a
hook was registered for that event -- registering is the opt-in.  This
is the software analog of the waveform probes a hardware evaluation
would attach: per-stage mismatch counts, TDC sense margins in LSBs,
cache hits, repair actions, refresh debt, Monte Carlo shard timings.

The probe-point catalog (:data:`PROBE_EVENTS`) is closed by default --
registering or emitting an undeclared event raises, which turns typos
into errors instead of silent dead probes.  Extensions declare their own
points with :func:`declare_probe_event`.

Hook failures are contained: a raising hook is logged (with the package
logger) and skipped, never allowed to break a search.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Tuple

from repro.telemetry.log import get_logger

Hook = Callable[..., None]

#: The probe-point catalog: event name -> payload description.
PROBE_EVENTS: Dict[str, str] = {
    "array.search": (
        "one scalar search served: rows, stages, best_row, "
        "min/max mismatches, latency_s, energy_j"
    ),
    "array.search_batch": (
        "one batched search served: rows, stages, queries, "
        "min/max mismatches, latency_s (slowest), energy_j (total)"
    ),
    "array.write_all": "full-array program: rows, stages",
    "kernel.autotune": (
        "kernel or query-chunk decision autotuned: key (geometry), "
        "winner, per-candidate best seconds; kind=chunk for chunk-size "
        "decisions, traced=True when quarantined"
    ),
    "mvm.matmul": (
        "one bit-serial MVM product served: kernel, n_out, n_in, "
        "n_batch, weight_bits, activation_bits, modeled latency_s and "
        "energy_j"
    ),
    "mvm.encode": (
        "one in-fabric HDC encode served: n_samples, dimension, "
        "weight_bits, activation_bits, modeled latency_s and energy_j"
    ),
    "topk.pruned": (
        "pruned top-k cascade served: rows, queries, k, survivors, "
        "prefix_stages"
    ),
    "cache.threshold": (
        "threshold/level-table cache event: op in "
        "{hit, rebuild, invalidate}"
    ),
    "tdc.decode": (
        "one TDC decode: n values, min/mean sense margin in LSBs "
        "(0.5 = ideal center, 0 = on a decision boundary)"
    ),
    "resilience.bist": (
        "BIST completed: n_rows, dead_rows, faulty_cells, n_writes"
    ),
    "resilience.repair": (
        "repair plan applied: masked_stages, remapped_rows, retired_rows"
    ),
    "resilience.refresh": (
        "refresh executed: rows_rewritten, age_s cleared, refresh_debt "
        "(age/interval at trigger time)"
    ),
    "resilience.recalibrated": (
        "replica TDC recalibrated after drift exceeded the margin"
    ),
    "mc.run": "Monte Carlo run finished: n_runs, workers, elapsed_s",
    "mc.shard": (
        "one Monte Carlo shard finished: shard, trials, elapsed_s, worker"
    ),
    "mc.fallback_serial": (
        "sharding fell back to serial: requested workers, reason"
    ),
    "experiment.run": "one experiment runner finished: name, elapsed_s",
    "service.request": (
        "one serving-layer request finished: outcome in "
        "{ok, degraded, deadline, rejected, unavailable}, shard, "
        "attempts, elapsed_s"
    ),
    "service.retry": (
        "one retry scheduled: shard, attempt, backoff_s, reason"
    ),
    "service.breaker": (
        "circuit breaker transition: shard, from_state, to_state, reason"
    ),
    "service.deadline_miss": (
        "a request ran out of deadline: elapsed_s, deadline_s, attempts"
    ),
    "service.checkpoint": (
        "checkpoint activity: op in {save, restore, reject}, trigger, path"
    ),
    "chaos.scenario": (
        "one chaos scenario finished: name, requests, deadline_hit_rate, "
        "wrong_unflagged, passed"
    ),
    "service.admission": (
        "front-end admission decision: outcome in {admitted, "
        "shed_queue_full, shed_queue_deadline, shed_quota, "
        "shed_draining}, tenant, queue_depth, retry_after_s"
    ),
    "coalesce.flush": (
        "one coalesced batch dispatched: kind in {search, topk}, size, "
        "reason in {full, window, drain}, waited_s, shed_stale"
    ),
    "frontend.request": (
        "one front-end request finished: outcome in {ok, degraded, "
        "deadline, unavailable, error}, tenant, elapsed_s, batch_size"
    ),
    "frontend.drain": (
        "front-end drained: pending requests flushed at shutdown"
    ),
    "partition.gather": (
        "partitioned scatter/gather merged: queries, partitions_searched, "
        "partitions_skipped, coverage, elapsed_s"
    ),
    "index.route": (
        "coarse-quantizer routing decided: queries, nprobe, clusters "
        "(distinct clusters touched by the batch)"
    ),
    "index.probe": (
        "clustered-index probe served: queries, k, nprobe, rows_probed, "
        "rows_total, candidates (pairs surviving the prune)"
    ),
    "net.frame": (
        "one wire frame processed: direction in {in, out}, type "
        "(message type), bytes (payload size)"
    ),
    "net.drain": (
        "socket server drained: connections notified (GOAWAY), "
        "in-flight requests finished, elapsed_s"
    ),
    "net.fault": (
        "one injected wire fault fired: kind in {disconnect, truncate, "
        "corrupt_length, bit_flip, stall}, direction, offset"
    ),
}

_lock = threading.Lock()
_hooks: Dict[str, Tuple[Hook, ...]] = {}
_log = get_logger(__name__)


def declare_probe_event(event: str, description: str) -> None:
    """Add a probe point to the catalog (idempotent for equal text)."""
    with _lock:
        existing = PROBE_EVENTS.get(event)
        if existing is not None and existing != description:
            raise ValueError(
                f"probe event {event!r} already declared: {existing!r}"
            )
        PROBE_EVENTS[event] = description


def register_probe(event: str, hook: Hook) -> Hook:
    """Attach ``hook`` to a cataloged probe point; returns the hook.

    Hooks are called as ``hook(event, **payload)`` in registration
    order.  Unknown events raise ``ValueError`` (see
    :func:`declare_probe_event`).
    """
    if event not in PROBE_EVENTS:
        raise ValueError(
            f"unknown probe event {event!r}; declare it first "
            f"(known: {sorted(PROBE_EVENTS)})"
        )
    with _lock:
        _hooks[event] = _hooks.get(event, ()) + (hook,)
    return hook


def unregister_probe(event: str, hook: Hook) -> None:
    """Detach one previously registered hook (no-op if absent)."""
    with _lock:
        current = _hooks.get(event, ())
        remaining = tuple(h for h in current if h is not hook)
        if remaining:
            _hooks[event] = remaining
        else:
            _hooks.pop(event, None)


def clear_probes() -> None:
    """Detach every hook (the catalog itself is untouched)."""
    with _lock:
        _hooks.clear()


def active_probe_events() -> Tuple[str, ...]:
    """Events that currently have at least one hook attached."""
    with _lock:
        return tuple(sorted(_hooks))


def emit_probe(event: str, **payload: Any) -> None:
    """Fire the hooks of ``event`` with ``payload``.

    Cheap when dormant: one dict lookup and out.  Unknown events raise
    so an instrumentation typo cannot create a probe point nobody can
    subscribe to.  A raising hook is logged and skipped.
    """
    hooks = _hooks.get(event)
    if hooks is None:
        if event not in PROBE_EVENTS:
            raise ValueError(f"unknown probe event {event!r}")
        return
    for hook in hooks:
        try:
            hook(event, **payload)
        except Exception:
            _log.warning(
                "probe hook failed", exc_info=True,
                extra={"event": event, "hook": repr(hook)},
            )


class ProbeRecorder:
    """A list-backed hook for tests and notebooks.

    Instances are callable with the hook signature and remember every
    ``(event, payload)`` they see::

        rec = ProbeRecorder()
        register_probe("mc.fallback_serial", rec)
        ...
        assert rec.events() == ["mc.fallback_serial"]
    """

    def __init__(self) -> None:
        self.records: List[Tuple[str, Dict[str, Any]]] = []
        self._lock = threading.Lock()

    def __call__(self, event: str, **payload: Any) -> None:
        with self._lock:
            self.records.append((event, payload))

    def events(self) -> List[str]:
        """The observed event names, in order."""
        with self._lock:
            return [event for event, _ in self.records]

    def payloads(self, event: str) -> List[Dict[str, Any]]:
        """Payloads recorded for one event, in order."""
        with self._lock:
            return [p for e, p in self.records if e == event]

    def clear(self) -> None:
        with self._lock:
            self.records.clear()
