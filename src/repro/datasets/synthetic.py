"""Seeded synthetic dataset generators (ISOLET / UCIHAR / FACE shaped).

Each generator draws class-conditional Gaussian data:

- class means sit on a random simplex scaled by a **separability**
  parameter (distance between classes in units of within-class noise);
- an optional **confusable-pairs** mechanism pulls selected class means
  toward each other (UCIHAR's walking vs. walking-upstairs flavor);
- a low-rank structure matrix correlates features, as real sensor
  features are (nothing about HDC encodings is i.i.d.-feature-friendly,
  so this matters for realistic accuracy curves).

The parameters were chosen so the HDC accuracy-vs-(D, precision) trends
of Fig. 7 reproduce: FACE saturates early even at 1 bit, ISOLET needs
either more dimensions or more bits, and UCIHAR cannot reach its peak
accuracy at 1 bit within the swept dimension range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A train/test split with metadata.

    Attributes:
        name: Dataset identifier ("isolet", "ucihar", "face").
        x_train: Training features, shape (n_train, n_features).
        y_train: Training labels.
        x_test: Test features.
        y_test: Test labels.
        metadata: Generator parameters for provenance.
    """

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def n_features(self) -> int:
        return self.x_train.shape[1]

    @property
    def n_classes(self) -> int:
        return int(max(self.y_train.max(), self.y_test.max())) + 1

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, {self.x_train.shape[0]} train / "
            f"{self.x_test.shape[0]} test, {self.n_features} features, "
            f"{self.n_classes} classes)"
        )


def _gaussian_mixture(
    name: str,
    n_classes: int,
    n_features: int,
    n_train: int,
    n_test: int,
    separability: float,
    confusable_pairs: Sequence[Tuple[int, int]] = (),
    confusion_pull: float = 0.75,
    feature_rank: int = 40,
    seed: int = 0,
) -> Dataset:
    """Core generator: correlated Gaussian classes on a random simplex."""
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    if n_train < n_classes or n_test < n_classes:
        raise ValueError("need at least one sample per class in each split")
    rng = np.random.default_rng(seed)
    # ``separability`` is the norm of each class-mean vector in units of
    # the per-feature noise std (==1 by construction below); pairwise
    # class distances are ~separability * sqrt(2).
    means = rng.standard_normal((n_classes, n_features))
    means *= separability / np.sqrt(n_features)
    for a, b in confusable_pairs:
        if not (0 <= a < n_classes and 0 <= b < n_classes):
            raise ValueError(f"confusable pair {(a, b)} out of range")
        mid = 0.5 * (means[a] + means[b])
        means[a] = mid + (means[a] - mid) * (1.0 - confusion_pull)
        means[b] = mid + (means[b] - mid) * (1.0 - confusion_pull)
    # Low-rank correlated noise: features are mixtures of latent factors.
    mixing = rng.standard_normal((feature_rank, n_features)) / np.sqrt(feature_rank)

    def draw(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        latent = rng.standard_normal((n, feature_rank))
        noise = latent @ mixing + 0.35 * rng.standard_normal((n, n_features))
        return (means[labels] + noise).astype(np.float32), labels

    x_train, y_train = draw(n_train)
    x_test, y_test = draw(n_test)
    # Standardize with training statistics (as the UCI pipelines do).
    mu = x_train.mean(axis=0)
    sigma = x_train.std(axis=0) + 1e-8
    return Dataset(
        name=name,
        x_train=(x_train - mu) / sigma,
        y_train=y_train,
        x_test=(x_test - mu) / sigma,
        y_test=y_test,
        metadata={
            "separability": separability,
            "n_classes": float(n_classes),
            "seed": float(seed),
        },
    )


def make_isolet_like(
    n_train: int = 1560,
    n_test: int = 780,
    seed: int = 1,
) -> Dataset:
    """ISOLET-shaped data: 617 features, 26 classes, medium separability."""
    return _gaussian_mixture(
        name="isolet",
        n_classes=26,
        n_features=617,
        n_train=n_train,
        n_test=n_test,
        separability=12.5,
        seed=seed,
    )


def make_ucihar_like(
    n_train: int = 1470,
    n_test: int = 735,
    seed: int = 2,
) -> Dataset:
    """UCIHAR-shaped data: 561 features, 6 activities, confusable pairs.

    Activities 0/1 (walking vs. walking-upstairs) and 3/4 (sitting vs.
    standing) are pulled close together, which is what defeats 1-bit
    quantization in the paper's Fig. 7.
    """
    return _gaussian_mixture(
        name="ucihar",
        n_classes=6,
        n_features=561,
        n_train=n_train,
        n_test=n_test,
        separability=14.0,
        confusable_pairs=((0, 1), (3, 4)),
        confusion_pull=0.85,
        seed=seed,
    )


def make_face_like(
    n_train: int = 1600,
    n_test: int = 800,
    seed: int = 3,
) -> Dataset:
    """FACE-shaped data: 608 features, binary, well separated."""
    return _gaussian_mixture(
        name="face",
        n_classes=2,
        n_features=608,
        n_train=n_train,
        n_test=n_test,
        separability=9.0,
        seed=seed,
    )


def standard_suite(
    scale: float = 1.0, seed_offset: int = 0
) -> List[Dataset]:
    """The paper's three datasets at an adjustable sample-count scale.

    Args:
        scale: Multiplies the default train/test sizes (benches use
            ``scale < 1`` for speed).
        seed_offset: Added to the per-dataset seeds (for replications).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")

    def s(n: int) -> int:
        return max(60, int(n * scale))

    return [
        make_isolet_like(s(1560), s(780), seed=1 + seed_offset),
        make_ucihar_like(s(1470), s(735), seed=2 + seed_offset),
        make_face_like(s(1600), s(800), seed=3 + seed_offset),
    ]


# ----------------------------------------------------------------------
# Clustered level corpora (ANN index benchmarks)
# ----------------------------------------------------------------------
def make_clustered_levels(
    n_rows: int,
    n_stages: int,
    levels: int,
    n_clusters: int,
    noise: float = 0.08,
    seed: int = 0,
    chunk: int = 131072,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A clustered multi-level corpus for ANN index benchmarks.

    Draws ``n_clusters`` uniform-random level centers, assigns each row
    to a uniform-random center, then re-draws each stage independently
    with probability ``noise`` (to a uniform-random level, so a "flip"
    can land back on the center value).  The result has genuine coarse
    structure -- a cluster-routed search with a small ``nprobe`` keeps
    high recall -- unlike i.i.d. uniform rows, on which *no* coarse
    quantizer can beat exhaustive scanning.

    Args:
        n_rows: Corpus rows.
        n_stages: Stages (vector dimensionality).
        levels: Storable levels per stage (``config.levels``).
        n_clusters: Ground-truth cluster count.
        noise: Per-stage re-draw probability within a cluster.
        seed: Generator seed.
        chunk: Rows drawn per block (bounds transient memory at
            million-row sizes).

    Returns:
        ``(rows, centers, assignments)``: uint8 level matrices of shape
        ``(n_rows, n_stages)`` / ``(n_clusters, n_stages)`` and the
        int64 ground-truth assignment per row.
    """
    if n_rows < 1 or n_stages < 1:
        raise ValueError(
            f"n_rows and n_stages must be >= 1, got {n_rows}, {n_stages}"
        )
    if not 2 <= levels <= 256:
        raise ValueError(f"levels must be in [2, 256], got {levels}")
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if not 0.0 <= noise <= 1.0:
        raise ValueError(f"noise must be in [0, 1], got {noise}")
    rng = np.random.default_rng(seed)
    centers = rng.integers(
        0, levels, size=(n_clusters, n_stages), dtype=np.uint8
    )
    assignments = rng.integers(0, n_clusters, size=n_rows, dtype=np.int64)
    rows = np.empty((n_rows, n_stages), dtype=np.uint8)
    for start in range(0, n_rows, chunk):
        block = assignments[start:start + chunk]
        out = centers[block]
        redraw = rng.random((block.shape[0], n_stages)) < noise
        out[redraw] = rng.integers(
            0, levels, size=int(redraw.sum()), dtype=np.uint8
        )
        rows[start:start + chunk] = out
    return rows, centers, assignments


def perturb_levels(
    rows: np.ndarray, levels: int, noise: float = 0.08, seed: int = 0
) -> np.ndarray:
    """Queries derived from corpus rows by per-stage re-draws.

    The standard ANN query model: each query is a stored row with every
    stage independently re-drawn (uniform over levels) with probability
    ``noise``, so its exact nearest neighbor is -- with overwhelming
    probability at realistic geometries -- the row it came from.
    """
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"rows must be 2-D, got shape {rows.shape}")
    if not 0.0 <= noise <= 1.0:
        raise ValueError(f"noise must be in [0, 1], got {noise}")
    rng = np.random.default_rng(seed)
    out = rows.astype(np.uint8, copy=True)
    redraw = rng.random(out.shape) < noise
    out[redraw] = rng.integers(
        0, levels, size=int(redraw.sum()), dtype=np.uint8
    )
    return out
