"""Span tracing: nested timing scopes dumpable to Chrome-trace JSON.

A :class:`Tracer` keeps a per-thread stack of open spans and assembles a
parent/child tree as ``with span(...)`` scopes nest::

    with span("array.search_batch", rows=M, queries=Q):
        with span("array.sense"):
            ...

Each span records its wall-clock start (``time.time``) and a
monotonic-clock duration (``time.perf_counter``), so durations are
immune to clock steps while timestamps stay human-anchorable.

:meth:`Tracer.to_chrome_trace` renders the tree as Chrome-trace
"complete" (``ph: "X"``) events -- load the file in ``chrome://tracing``
or https://ui.perfetto.dev to see the nesting on a timeline.  The CLI's
``--trace-out trace.json`` writes exactly this.

The module-level :func:`span` checks the global telemetry switch first
and returns a shared no-op context manager when disabled, so dormant
instrumentation costs one attribute read.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from contextlib import contextmanager

from repro.telemetry.request import current_request
from repro.telemetry.state import STATE


class Span:
    """One timed scope in the trace tree.

    Attributes:
        name: Scope name, dot-separated by convention
            (``"array.search_batch"``).
        attrs: Structured attributes recorded at entry (plus any added
            via :meth:`set_attr` while open).
        start_wall_s: Wall-clock entry time (``time.time``).
        start_perf_s: Monotonic entry time (``time.perf_counter``).
        duration_s: Monotonic duration; ``None`` while still open.
        thread_id: ``threading.get_ident()`` of the opening thread.
        thread_name: Name of the opening thread.
        children: Child spans, in entry order.
        error: Exception repr when the scope exited by raising.
        flows_out: Flow keys (request ids) departing this span; the
            Chrome export draws an arrow from here to every span that
            lists the same key in ``flows_in``.
        flows_in: Flow keys (request ids) arriving at this span.
    """

    __slots__ = (
        "name", "attrs", "start_wall_s", "start_perf_s", "duration_s",
        "thread_id", "thread_name", "children", "error",
        "flows_out", "flows_in",
    )

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.start_wall_s = time.time()
        self.start_perf_s = time.perf_counter()
        self.duration_s: Optional[float] = None
        self.thread_id = threading.get_ident()
        self.thread_name = threading.current_thread().name
        self.children: List[Span] = []
        self.error: Optional[str] = None
        self.flows_out: List[str] = []
        self.flows_in: List[str] = []

    def set_attr(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one structured attribute."""
        self.attrs[key] = value

    def add_flow_out(self, key: str) -> None:
        """Declare a flow edge leaving this span (e.g. a request id
        handed to another thread)."""
        self.flows_out.append(key)

    def add_flow_in(self, key: str) -> None:
        """Declare a flow edge arriving at this span (the matching
        ``add_flow_out`` key on the producing thread)."""
        self.flows_in.append(key)

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant (depth-first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        dur = (
            f"{self.duration_s * 1e3:.3f} ms"
            if self.duration_s is not None
            else "open"
        )
        return f"Span({self.name!r}, {dur}, {len(self.children)} children)"


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        try:
            return value.item()
        except Exception:
            pass
    return repr(value)


class Tracer:
    """Collects span trees per thread; exports Chrome-trace JSON."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        self._epoch_perf_s = time.perf_counter()
        self._epoch_wall_s = time.time()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; closes (and times) on scope exit.

        When a request context is active
        (:func:`repro.telemetry.request.request_scope`), the span is
        auto-tagged with its ``request_id``/``tenant`` and any baggage
        (prefixed ``bg.``); explicit ``attrs`` win over the context.
        """
        stack = self._stack()
        node = Span(name, attrs)
        ctx = current_request()
        if ctx is not None:
            attrs.setdefault("request_id", ctx.request_id)
            if ctx.tenant:
                attrs.setdefault("tenant", ctx.tenant)
            for key, value in ctx.baggage.items():
                attrs.setdefault(f"bg.{key}", value)
        if stack:
            stack[-1].children.append(node)
        else:
            with self._lock:
                self._roots.append(node)
        stack.append(node)
        try:
            yield node
        except BaseException as exc:
            node.error = repr(exc)
            raise
        finally:
            node.duration_s = time.perf_counter() - node.start_perf_s
            stack.pop()

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def roots(self) -> Tuple[Span, ...]:
        """Snapshot of the completed-or-open root spans."""
        with self._lock:
            return tuple(self._roots)

    def reset(self) -> None:
        """Drop every recorded span (open scopes keep working)."""
        with self._lock:
            self._roots = []

    # -- export ---------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """The span forest as a Chrome-trace (Trace Event Format) dict.

        Every span becomes one complete event (``ph: "X"``) with
        microsecond ``ts``/``dur`` relative to the tracer epoch; nesting
        is implied by timestamp containment per ``tid``, which is how
        the Chrome/Perfetto viewers reconstruct the tree.  Each ``tid``
        gets a ``thread_name`` metadata event, and spans that declared
        flow edges (:meth:`Span.add_flow_out` /
        :meth:`Span.add_flow_in`) emit paired flow events (``ph: "s"``
        / ``ph: "f"``) so a request handed between threads renders as
        an arrow across tracks.
        """
        pid = os.getpid()
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro"},
            }
        ]
        thread_names: Dict[int, str] = {}
        flow_ids: Dict[str, int] = {}

        def _flow_id(key: str) -> int:
            return flow_ids.setdefault(key, len(flow_ids) + 1)

        span_events: List[Dict[str, Any]] = []
        flow_events: List[Dict[str, Any]] = []
        for root in self.roots():
            for node in root.walk():
                thread_names.setdefault(node.thread_id, node.thread_name)
                args = {k: _jsonable(v) for k, v in node.attrs.items()}
                if node.error is not None:
                    args["error"] = node.error
                ts = (node.start_perf_s - self._epoch_perf_s) * 1e6
                span_events.append(
                    {
                        "name": node.name,
                        "cat": "repro",
                        "ph": "X",
                        "ts": ts,
                        "dur": (node.duration_s or 0.0) * 1e6,
                        "pid": pid,
                        "tid": node.thread_id,
                        "args": args,
                    }
                )
                for key in node.flows_out:
                    flow_events.append(
                        {
                            "name": key,
                            "cat": "repro.flow",
                            "ph": "s",
                            "id": _flow_id(key),
                            "ts": ts,
                            "pid": pid,
                            "tid": node.thread_id,
                        }
                    )
                for key in node.flows_in:
                    flow_events.append(
                        {
                            "name": key,
                            "cat": "repro.flow",
                            "ph": "f",
                            "bp": "e",
                            "id": _flow_id(key),
                            "ts": ts + 0.001,
                            "pid": pid,
                            "tid": node.thread_id,
                        }
                    )
        for tid, tname in sorted(thread_names.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": tname},
                }
            )
        events.extend(span_events)
        events.extend(flow_events)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "epoch_wall_s": self._epoch_wall_s,
                "generator": "repro.telemetry.trace",
            },
        }

    def dump_chrome_trace(self, path: str) -> None:
        """Write :meth:`to_chrome_trace` JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)
            handle.write("\n")


class _NoopSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def add_flow_out(self, key: str) -> None:
        pass

    def add_flow_in(self, key: str) -> None:
        pass


_NOOP = _NoopSpan()

#: The process-wide tracer every instrumented module records into.
TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default :class:`Tracer`."""
    return TRACER


def span(name: str, **attrs: Any):
    """A nested timing scope on the default tracer.

    When telemetry is disabled (the default) this returns a shared
    no-op context manager without touching the tracer; likewise in
    metrics-only mode (``STATE.tracing`` off).
    """
    if not (STATE.enabled and STATE.tracing):
        return _NOOP
    return TRACER.span(name, **attrs)


def traced(name: str) -> Callable:
    """Decorator: run the wrapped callable inside ``span(name)``.

    The disabled fast path adds a single boolean check; used on the
    experiment runners so every ``run_*`` shows up as a top-level span.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not (STATE.enabled and STATE.tracing):
                return fn(*args, **kwargs)
            with TRACER.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def dump_chrome_trace(path: str) -> None:
    """Write the default tracer's Chrome trace to ``path``."""
    TRACER.dump_chrome_trace(path)
