"""The serving layer's exception taxonomy.

Every failure the fault-tolerant service can surface is classified here,
and the classification *is* the retry policy's contract: transient
faults (a refresh holding the array, calibration drift mid-recovery, an
injected device/timeout fault) subclass :class:`TransientServiceError`
and are safe to retry on the same or another shard; everything else is
terminal for the request and retrying would only burn the deadline.

The taxonomy is deliberately small and closed -- a service that cannot
name a failure cannot route around it::

    ServiceError
    ├── InvalidRequestError            (also a ValueError; never retried)
    ├── TransientServiceError          (retryable)
    │   ├── ShardBusyError             (refresh / BIST in progress)
    │   ├── CalibrationDriftError      (replica decode outside margin)
    │   └── ShardTimeoutError          (per-attempt timeout fired)
    ├── CircuitOpenError               (shard quarantined; route around)
    ├── DeadlineExceededError          (request out of time)
    ├── RetryBudgetExhaustedError      (global retry budget empty)
    ├── AllShardsUnavailableError      (no shard could serve, even degraded)
    └── CheckpointError
        ├── CheckpointNotFoundError
        └── CheckpointCorruptError     (checksum / manifest mismatch)

Use :func:`is_retryable` instead of ``isinstance`` checks so the
classification lives in one place.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "InvalidRequestError",
    "TransientServiceError",
    "ShardBusyError",
    "CalibrationDriftError",
    "ShardTimeoutError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "RetryBudgetExhaustedError",
    "AllShardsUnavailableError",
    "CheckpointError",
    "CheckpointNotFoundError",
    "CheckpointCorruptError",
    "is_retryable",
]


class ServiceError(Exception):
    """Base class of every serving-layer failure."""


class InvalidRequestError(ServiceError, ValueError):
    """The request failed admission (shape, dtype, or level range).

    Subclasses ``ValueError`` too, so callers using the library
    conventions (``pytest.raises(ValueError)``) keep working.  Never
    retried: the same bytes will fail the same way.
    """


class TransientServiceError(ServiceError):
    """A failure expected to clear on its own -- the retryable class."""


class ShardBusyError(TransientServiceError):
    """The shard is mid-refresh / mid-BIST and cannot serve right now."""


class CalibrationDriftError(TransientServiceError):
    """The shard's replica TDC drifted outside the sensing margin."""


class ShardTimeoutError(TransientServiceError):
    """The per-attempt timeout fired before the shard answered."""


class CircuitOpenError(ServiceError):
    """The shard's circuit breaker is open; route to another shard.

    Not a :class:`TransientServiceError`: retrying the *same* shard is
    pointless until the breaker's cool-down elapses, but the router may
    immediately try a different shard.
    """


class DeadlineExceededError(ServiceError):
    """The request's deadline elapsed before an answer was produced."""


class RetryBudgetExhaustedError(ServiceError):
    """The service-wide retry budget is empty (retry storm protection)."""


class AllShardsUnavailableError(ServiceError):
    """No shard could serve the request, even in degraded mode."""


class CheckpointError(ServiceError):
    """Base class of checkpoint save/restore failures."""


class CheckpointNotFoundError(CheckpointError):
    """No checkpoint artifact exists at the configured location."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint failed its checksum or manifest validation."""


def is_retryable(exc: BaseException) -> bool:
    """Whether the retry policy may re-attempt after this failure.

    Transient shard faults are retryable.  Admission failures,
    deadline/budget exhaustion, and checkpoint corruption are not --
    and an open circuit is handled by routing, not by retrying the same
    shard.
    """
    return isinstance(exc, TransientServiceError)
