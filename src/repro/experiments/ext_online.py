"""Extension experiment: why *quantitative* similarity matters for learning.

The paper contrasts its TD-AM with CAMs that only flag matches: "this
design does not output the exact similarity result, which is crucial for
parameter update in some machine learning algorithms" (Sec. II-B, on
COSIME).  This experiment quantifies that claim with the online learner
of :mod:`repro.hdc.online`: the same streaming task is learned with

- exact float similarities (software upper bound),
- the TD-AM's quantitative match counts,
- a binary winner flag (plain-CAM capability),

and the accuracy gap between the last two is the measured value of the
quantitative output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


from repro.analysis.reporting import format_table
from repro.datasets.synthetic import Dataset, make_isolet_like
from repro.hdc.encoder import RandomProjectionEncoder
from repro.hdc.online import FEEDBACK_MODES, OnlineLearner
from repro.experiments._instrument import instrumented


@dataclass
class OnlineRecord:
    """One feedback mode's streaming-learning outcome.

    Attributes:
        feedback: The similarity feedback mode.
        online_accuracy: Prequential accuracy over the stream.
        test_accuracy: Post-stream accuracy on held-out data.
        n_updates: Update steps consumed.
    """

    feedback: str
    online_accuracy: float
    test_accuracy: float
    n_updates: int


@instrumented("online")
def run_online_study(
    dataset: Optional[Dataset] = None,
    dimension: int = 2048,
    modes: Sequence[str] = FEEDBACK_MODES,
    seed: int = 7,
) -> List[OnlineRecord]:
    """Stream the dataset through each feedback mode."""
    ds = dataset or make_isolet_like(1000, 500)
    records: List[OnlineRecord] = []
    for mode in modes:
        encoder = RandomProjectionEncoder(ds.n_features, dimension, seed=seed)
        learner = OnlineLearner(encoder, ds.n_classes, feedback=mode)
        stats = learner.fit_stream(ds.x_train, ds.y_train)
        records.append(
            OnlineRecord(
                feedback=mode,
                online_accuracy=stats.online_accuracy,
                test_accuracy=learner.accuracy(ds.x_test, ds.y_test),
                n_updates=stats.n_updates,
            )
        )
    return records


def format_online(records: List[OnlineRecord]) -> str:
    """Text rendering plus the quantitative-vs-binary gap."""
    rows = [
        {
            "feedback": r.feedback,
            "online_acc": r.online_accuracy,
            "test_acc": r.test_accuracy,
            "updates": r.n_updates,
        }
        for r in records
    ]
    body = format_table(
        rows,
        title="Extension: streaming learning vs similarity-feedback capability",
        floatfmt=".3f",
    )
    by_mode = {r.feedback: r for r in records}
    if "quantitative" in by_mode and "binary" in by_mode:
        gap = (
            by_mode["quantitative"].test_accuracy
            - by_mode["binary"].test_accuracy
        )
        body += (
            f"\nquantitative-similarity advantage over binary match flag: "
            f"{gap:+.3f} test accuracy"
        )
    return body


if __name__ == "__main__":
    from repro.cli import emit

    emit(format_online(run_online_study()))
