"""Feature-to-hypervector encoders.

Two standard constructions plus the fabric-quantized variant:

- :class:`RandomProjectionEncoder` -- the OnlineHD-style nonlinear random
  projection used by the paper's reference framework [35]: a fixed seeded
  Gaussian matrix projects the feature vector into D dimensions, followed
  by an optional cosine nonlinearity.
- :class:`QuantizedProjectionEncoder` -- the in-fabric version of the
  same encoder: the projection is quantized to narrow signed integers
  and served as an exact bit-serial MVM through
  :class:`repro.core.mvm.MVMPlan`, modeling the TD-CIM array doing the
  projection itself (arXiv 2209.11971).
- :class:`RecordEncoder` -- the classical record-based (ID x level)
  scheme: each feature gets a random ID hypervector, its value picks a
  correlated level hypervector, and the feature bindings are bundled.
  The bundling is served as a one-hot integer MVM over the bound
  item memory -- bit-identical to the per-feature reference loop.

Performance note.  The nonlinear projection is algebraically
rearranged for the fast path: with ``p = X @ P.T`` and phase ``b``,

    ``cos(p + b) * sin(p) = 0.5 * (sin(2p + b) - sin(b))``

so one GEMM against a pre-doubled, phase-augmented weight matrix plus a
single vectorized ``sin`` replaces the two trig evaluations, and every
array stays float32 end to end (the historical path silently promoted
to float64 through a float64 scalar divide, dragging the trig calls
onto the scalar libm path).  The identity is exact in real arithmetic;
in float32 the outputs agree with the direct form to ~1e-6 and remain
bounded by 1 in magnitude.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import TDAMConfig
from repro.core.mvm import MVMCost, MVMPlan
from repro.hdc.hypervector import level_hypervectors, random_bipolar
from repro.telemetry.profile import emit_probe as _emit_probe
from repro.telemetry.state import STATE as _TM


class RandomProjectionEncoder:
    """Nonlinear random-projection encoder (OnlineHD style).

    ``H = cos(X @ P.T + b) * sin(X @ P.T)`` with a seeded Gaussian ``P``
    and uniform phase ``b`` when ``nonlinear=True``; plain ``X @ P.T``
    otherwise.

    Args:
        n_features: Input feature count.
        dimension: Hypervector dimension D.
        nonlinear: Apply the trigonometric nonlinearity.
        seed: Projection seed (fixes the encoder).
    """

    def __init__(
        self,
        n_features: int,
        dimension: int,
        nonlinear: bool = True,
        seed: Optional[int] = 0,
    ) -> None:
        if n_features < 1 or dimension < 1:
            raise ValueError("n_features and dimension must be >= 1")
        self.n_features = n_features
        self.dimension = dimension
        self.nonlinear = nonlinear
        rng = np.random.default_rng(seed)
        self._projection = (
            rng.standard_normal((dimension, n_features)) / np.sqrt(n_features)
        ).astype(np.float32)
        self._phase = rng.uniform(0, 2 * np.pi, size=dimension).astype(
            np.float32
        )
        if nonlinear:
            # Fast-path weights: [2P | b] so one GEMM yields 2p + b
            # directly, and the constant sin(b) offset of the
            # product-to-sum identity.
            aug = np.empty((dimension, n_features + 1), dtype=np.float32)
            aug[:, :n_features] = 2.0 * self._projection
            aug[:, n_features] = self._phase
            self._aug = aug
            self._sin_phase = np.sin(self._phase).astype(np.float32)
            self._half_sin = (0.5 * self._sin_phase).astype(np.float32)
            # Full-width sin(b) tiles per batch size: a same-shape
            # subtrahend runs one long contiguous loop where a (D, 1)
            # broadcast pays per-row overhead on small batches.
            self._sin_tiles: dict = {}

    def _validate(self, features: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(features, dtype=np.float32))
        if x.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {x.shape[1]}"
            )
        return x

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Encode feature rows into hypervectors.

        Args:
            features: Shape (n_samples, n_features) or (n_features,).

        Returns:
            Float hypervectors, shape (n_samples, dimension) (2-D even
            for a single sample).
        """
        x = self._validate(features)
        if not self.nonlinear:
            return x @ self._projection.T
        # (F+1, S) augmented activations; the GEMM runs in the
        # (D, F+1) x (F+1, S) orientation (measurably faster than the
        # skinny-M transpose on small batches) and the trig identity
        # halves the elementwise work.  See the module docstring.
        n = x.shape[0]
        xa = np.empty((self.n_features + 1, n), dtype=np.float32)
        xa[: self.n_features] = x.T
        xa[self.n_features] = 1.0
        t = self._aug @ xa  # (D, S) == 2p + b
        np.sin(t, out=t)
        t -= self._sin_tile(n)
        t *= np.float32(0.5)
        return t.T

    def _sin_tile(self, n: int) -> np.ndarray:
        tile = self._sin_tiles.get(n)
        if tile is None:
            tile = np.repeat(self._sin_phase[:, None], n, axis=1)
            self._sin_tiles[n] = tile
        return tile

    def quantize(
        self,
        weight_bits: int = 8,
        act_bits: int = 8,
        config: Optional[TDAMConfig] = None,
    ) -> "QuantizedProjectionEncoder":
        """The in-fabric quantized variant of this encoder."""
        return QuantizedProjectionEncoder(
            self, weight_bits=weight_bits, act_bits=act_bits, config=config
        )


class QuantizedProjectionEncoder:
    """In-fabric random projection: quantized weights, bit-serial MVM.

    Quantizes the base encoder's Gaussian projection to signed
    ``weight_bits`` integers (symmetric, one scale per output
    dimension), quantizes each activation row to signed ``act_bits``
    integers (symmetric, one scale per sample), and serves the
    projection as an **exact** integer MVM through
    :class:`repro.core.mvm.MVMPlan` -- the same packed/gemm/loop
    kernels, autotune and fabric cost model as every other MVM
    geometry.  Dequantization and the trigonometric nonlinearity then
    run exactly like the float encoder, so the only accuracy impact is
    the projection quantization itself (measured on the fig. 7 harness
    -- see ``repro.experiments.fig7_hdc_accuracy``).

    Args:
        base: The float encoder to quantize (geometry, seed and
            nonlinearity are inherited).
        weight_bits: Stored projection width, 2..8 (signed).
        act_bits: Streamed activation width, 2..8 (signed).
        config: Fabric design point for the MVM cost model.
    """

    def __init__(
        self,
        base: RandomProjectionEncoder,
        weight_bits: int = 8,
        act_bits: int = 8,
        config: Optional[TDAMConfig] = None,
    ) -> None:
        if not 2 <= weight_bits <= 8:
            raise ValueError(
                f"weight_bits must be in [2, 8], got {weight_bits}"
            )
        if not 2 <= act_bits <= 8:
            raise ValueError(f"act_bits must be in [2, 8], got {act_bits}")
        self.base = base
        self.n_features = base.n_features
        self.dimension = base.dimension
        self.nonlinear = base.nonlinear
        self.weight_bits = weight_bits
        self.act_bits = act_bits
        top = float((1 << (weight_bits - 1)) - 1)
        magnitude = np.abs(base._projection).max(axis=1)
        self._w_scale = np.where(magnitude > 0, magnitude / top, 1.0).astype(
            np.float32
        )
        w_int = np.rint(
            base._projection / self._w_scale[:, None]
        ).astype(np.int64)
        self.plan = MVMPlan(
            w_int, bits=weight_bits, signed=True, config=config
        )
        self._act_top = float((1 << (act_bits - 1)) - 1)

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Encode feature rows through the quantized fabric projection."""
        x = self.base._validate(features)
        amax = np.abs(x).max(axis=1) if x.size else np.zeros(x.shape[0])
        a_scale = np.where(amax > 0, amax / self._act_top, 1.0).astype(
            np.float32
        )
        acts = np.rint(x / a_scale[:, None]).astype(np.int64)
        counts = self.plan.matmul(
            acts, bits=self.act_bits, signed=True
        )  # (S, D) exact int64
        projected = counts.astype(np.float32)
        projected *= a_scale[:, None]
        projected *= self._w_scale[None, :]
        if _TM.enabled:
            cost = self.encode_cost(x.shape[0])
            _emit_probe(
                "mvm.encode",
                n_samples=int(x.shape[0]),
                dimension=self.dimension,
                weight_bits=self.weight_bits,
                activation_bits=self.act_bits,
                latency_s=cost.latency_s,
                energy_j=cost.energy_j,
            )
        if not self.nonlinear:
            return projected
        t = 2.0 * projected
        t += self.base._phase
        np.sin(t, out=t)
        t *= np.float32(0.5)
        t -= self.base._half_sin[None, :]
        return t

    def encode_cost(self, n_samples: int = 1) -> MVMCost:
        """Modeled fabric latency/energy of encoding ``n_samples`` rows."""
        return self.plan.cost(
            activation_bits=self.act_bits, n_batch=n_samples
        )


class RecordEncoder:
    """Record-based (ID x level) encoder.

    Args:
        n_features: Input feature count.
        dimension: Hypervector dimension D.
        n_levels: Quantization levels of the feature values.
        feature_range: (low, high) range the features are clipped to
            before level lookup.
        seed: Item-memory seed.
    """

    def __init__(
        self,
        n_features: int,
        dimension: int,
        n_levels: int = 16,
        feature_range: "tuple[float, float]" = (-1.0, 1.0),
        seed: Optional[int] = 0,
    ) -> None:
        if n_features < 1 or dimension < 1:
            raise ValueError("n_features and dimension must be >= 1")
        if n_levels < 2:
            raise ValueError(f"n_levels must be >= 2, got {n_levels}")
        low, high = feature_range
        if low >= high:
            raise ValueError(f"feature_range must be (low, high), got {feature_range}")
        self.n_features = n_features
        self.dimension = dimension
        self.n_levels = n_levels
        self.feature_range = (float(low), float(high))
        rng = np.random.default_rng(seed)
        self._ids = random_bipolar(n_features, dimension, rng)
        self._levels = level_hypervectors(n_levels, dimension, rng)
        self._plan: Optional[MVMPlan] = None

    def _level_index(self, values: np.ndarray) -> np.ndarray:
        low, high = self.feature_range
        clipped = np.clip(values, low, high)
        scaled = (clipped - low) / (high - low)
        return np.minimum(
            (scaled * self.n_levels).astype(np.int64), self.n_levels - 1
        )

    def _bound_plan(self) -> MVMPlan:
        """Weight-stationary plan over the bound item memory.

        Entry ``(f, l)`` of the ``(D, F * L)`` weight matrix is
        ``ids[f] * levels[l]`` -- the ID x level binding, a bipolar
        integer.  Built lazily (it is the fabric's one-time program
        step) and cached for the life of the encoder.
        """
        if self._plan is None:
            shape = (self.dimension, self.n_features, self.n_levels)
            bound = np.empty(shape, dtype=np.int8)
            ids_t = self._ids.T.astype(np.int8)  # (D, F)
            levels_t = self._levels.T.astype(np.int8)  # (D, L)
            np.multiply(
                ids_t[:, :, None], levels_t[:, None, :], out=bound
            )
            weights = bound.reshape(
                self.dimension, self.n_features * self.n_levels
            )
            self._plan = MVMPlan(weights, bits=2, signed=True)
        return self._plan

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Encode feature rows: bundle of ID (x) level bindings per row.

        Served as a one-hot integer MVM over the bound item memory:
        sample ``s`` activates entry ``(f, level_idx[s, f])`` for every
        feature, so the exact int64 product against the binding matrix
        is the bundled sum.  Bit-identical to the per-feature reference
        loop ``sum_f ids[f] * levels[level_idx[:, f]]`` -- every
        partial sum is a small exact integer, so the float32 cast at
        the end is exact too (the equivalence test asserts it).
        """
        x = np.atleast_2d(np.asarray(features, dtype=np.float32))
        if x.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {x.shape[1]}"
            )
        level_idx = self._level_index(x)  # (n_samples, n_features)
        n = x.shape[0]
        flat = level_idx + (
            np.arange(self.n_features, dtype=np.int64) * self.n_levels
        )[None, :]
        onehot = np.zeros(
            (n, self.n_features * self.n_levels), dtype=np.uint8
        )
        np.put_along_axis(onehot, flat, 1, axis=1)
        counts = self._bound_plan().matmul(onehot, bits=1, signed=False)
        return counts.astype(np.float32)
