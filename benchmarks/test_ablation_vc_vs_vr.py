"""Ablation bench: variable-capacitance vs variable-resistance chains.

Quantifies the paper's central robustness argument against designs that
put the FeFET in the signal path ([22]): at equal V_TH sigma, the VC
chain's delay spread stays an order of magnitude tighter.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import (
    format_ablation_vc_vs_vr,
    run_ablation_vc_vs_vr,
)


def test_ablation_vc_vs_vr(benchmark):
    records = run_once(
        benchmark, run_ablation_vc_vs_vr,
        sigmas_mv=(10.0, 20.0, 40.0, 60.0), n_stages=64, n_runs=200,
    )
    print()
    print(format_ablation_vc_vs_vr(records))

    for record in records:
        assert record.vc_delay_cv < 0.2 * record.vr_delay_cv
    # The VR chain's worst case degrades visibly at 60 mV.
    assert records[-1].vr_worst_over_nominal > 1.05
    # The VC chain's spread grows linearly with sigma (no blow-up).
    assert records[-1].vc_delay_cv < 6.5 * records[0].vc_delay_cv
