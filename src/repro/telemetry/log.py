"""Structured logging: one ``get_logger`` wrapper over stdlib ``logging``.

Two formatters are provided for the same records:

- :class:`ConsoleFormatter` -- human-readable one-liners; structured
  extras are appended as ``key=value`` pairs.
- :class:`JsonLinesFormatter` -- one JSON object per line, machine
  readable (``jq``-able); structured extras become top-level fields.

Structured fields ride on the stdlib ``extra=`` mechanism::

    log = get_logger(__name__)
    log.info("batch served", extra={"queries": 256, "rows": 26})

Level resolution (first hit wins): explicit ``configure_logging(level=)``
argument, the ``REPRO_LOG_LEVEL`` environment variable, ``WARNING``.
The CLI forwards ``--log-level`` / ``--log-json`` here.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import Any, Optional, TextIO, Union

from repro.telemetry.request import current_request

#: Root of the package's logger hierarchy; ``configure_logging`` attaches
#: exactly one handler here and disables propagation so embedding
#: applications never see duplicate lines.
ROOT_LOGGER_NAME = "repro"

#: Environment variable consulted when no explicit level is given.
LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"

#: Attributes every ``LogRecord`` carries; anything else was supplied via
#: ``extra=`` and is treated as a structured field.
_RECORD_DEFAULTS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}

_handler: Optional[logging.Handler] = None


def parse_level(level: Union[str, int, None]) -> int:
    """Resolve a level name/number to the stdlib numeric level.

    Accepts ``"debug"``/``"INFO"``/..., numeric strings, ints, and
    ``None`` (falls back to ``REPRO_LOG_LEVEL``, then ``WARNING``).
    """
    if level is None:
        level = os.environ.get(LEVEL_ENV_VAR) or "warning"
    if isinstance(level, int):
        return level
    text = str(level).strip()
    if text.lstrip("+-").isdigit():
        return int(text)
    resolved = logging.getLevelName(text.upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    return resolved


def _jsonable(value: Any) -> Any:
    """Coerce a structured field to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        try:
            return value.item()  # numpy scalars
        except Exception:
            pass
    if hasattr(value, "tolist"):
        try:
            return value.tolist()  # numpy arrays
        except Exception:
            pass
    return repr(value)


def record_fields(record: logging.LogRecord) -> dict:
    """The structured (``extra=``) fields attached to a record."""
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _RECORD_DEFAULTS and not key.startswith("_")
    }


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, msg, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record_fields(record).items():
            payload[key] = _jsonable(value)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=repr)


class ConsoleFormatter(logging.Formatter):
    """Human one-liners; structured extras appended as ``key=value``."""

    def __init__(self) -> None:
        super().__init__(
            fmt="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        )

    def format(self, record: logging.LogRecord) -> str:
        line = super().format(record)
        fields = record_fields(record)
        if fields:
            rendered = " ".join(
                f"{key}={_jsonable(value)}" for key, value in fields.items()
            )
            line = f"{line} [{rendered}]"
        return line


class RequestContextFilter(logging.Filter):
    """Stamps the active request context onto every record.

    When a :func:`repro.telemetry.request.request_scope` is active,
    records gain ``request_id`` (and ``tenant`` when attributed) as
    structured fields -- both formatters render them like any
    ``extra=`` field, so a request's log lines grep by its id.
    Explicit ``extra={"request_id": ...}`` wins over the context.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        ctx = current_request()
        if ctx is not None:
            if not hasattr(record, "request_id"):
                record.request_id = ctx.request_id
            if ctx.tenant and not hasattr(record, "tenant"):
                record.tenant = ctx.tenant
        return True


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger inside the ``repro`` hierarchy.

    Pass ``__name__``; names already under ``repro`` are used as-is,
    anything else is nested under the root so one ``configure_logging``
    call governs every emitter.
    """
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    level: Union[str, int, None] = None,
    json_lines: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Install (or replace) the package log handler; returns the root.

    Idempotent: repeated calls swap the single managed handler instead
    of stacking new ones.  Diagnostics go to ``stream`` (default
    ``sys.stderr``) so they never interleave with the CLI's stdout
    results.
    """
    global _handler
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if _handler is not None:
        root.removeHandler(_handler)
    _handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    _handler.setFormatter(
        JsonLinesFormatter() if json_lines else ConsoleFormatter()
    )
    _handler.addFilter(RequestContextFilter())
    root.addHandler(_handler)
    root.setLevel(parse_level(level))
    root.propagate = False
    return root


def reset_logging() -> None:
    """Remove the managed handler and restore default propagation."""
    global _handler
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if _handler is not None:
        root.removeHandler(_handler)
        _handler = None
    root.setLevel(logging.NOTSET)
    root.propagate = True
