"""Closed-loop resilience: the TD-AM that detects, repairs, and refreshes.

The fault, variation, and drift models elsewhere in the package are
*passive* -- they measure how much damage an effect does.  This
subsystem closes the loop so the array survives the damage in service:

- :mod:`~repro.resilience.bist` -- a march-style built-in self-test that
  diagnoses per-cell faults purely from decoded distances.
- :mod:`~repro.resilience.repair` -- turns a diagnosis into spare-row
  remapping, array-wide stage masking, and (last resort) row
  retirement, plus the binomial yield model for spare provisioning.
- :mod:`~repro.resilience.refresh` -- schedules rewrites before
  retention drift eats the half-LSB sensing margin, budgeted against
  endurance fatigue.
- :mod:`~repro.resilience.resilient` --
  :class:`~repro.resilience.resilient.ResilientTDAMArray`, the
  self-healing wrapper that runs the whole loop and serves searches
  with explicit health/confidence metadata and a degraded-mode flag.
"""

from repro.resilience.bist import (
    CellDiagnosis,
    CellFaultKind,
    DiagnosisReport,
    MarchBIST,
    RowDiagnosis,
    default_backgrounds,
)
from repro.resilience.refresh import RefreshPlan, RefreshScheduler
from repro.resilience.repair import (
    RepairEngine,
    RepairPlan,
    repair_yield,
    row_failure_probability,
    spares_for_yield,
)
from repro.resilience.resilient import (
    HealthReport,
    ResilientBatchSearchResult,
    ResilientSearchResult,
    ResilientTDAMArray,
    TopKResult,
)

__all__ = [
    "MarchBIST",
    "DiagnosisReport",
    "RowDiagnosis",
    "CellDiagnosis",
    "CellFaultKind",
    "default_backgrounds",
    "RepairEngine",
    "RepairPlan",
    "row_failure_probability",
    "repair_yield",
    "spares_for_yield",
    "RefreshScheduler",
    "RefreshPlan",
    "ResilientTDAMArray",
    "ResilientSearchResult",
    "ResilientBatchSearchResult",
    "TopKResult",
    "HealthReport",
]
