"""Experiment-runner instrumentation.

One decorator, applied to every ``run_*`` driver in this subpackage: it
wraps the runner in an ``experiment.<name>`` trace span and fires the
``experiment.run`` probe (name, elapsed wall clock) when it returns.
Dormant-telemetry cost is a single boolean check per call -- runners are
called once per experiment, never in a hot loop.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, TypeVar

from repro.telemetry.log import get_logger
from repro.telemetry.profile import emit_probe as _emit_probe
from repro.telemetry.state import STATE as _TM
from repro.telemetry.trace import span as _span

F = TypeVar("F", bound=Callable[..., Any])

_log = get_logger(__name__)


def instrumented(name: str) -> Callable[[F], F]:
    """Wrap an experiment runner in a span plus the ``experiment.run``
    probe.

    Args:
        name: The experiment's registry name (``"fig6"``,
            ``"resilience"``, ...) -- becomes the span name suffix and
            the probe payload.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _TM.enabled:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            with _span(f"experiment.{name}"):
                result = fn(*args, **kwargs)
            elapsed = time.perf_counter() - start
            _emit_probe("experiment.run", name=name, elapsed_s=elapsed)
            _log.info(
                "experiment finished",
                extra={"experiment": name, "elapsed_s": elapsed},
            )
            return result

        return wrapper  # type: ignore[return-value]

    return decorate
