"""Chaos harness: break the serving layer on purpose, assert the SLOs.

Each scenario builds a fresh replicated service on a **fake clock**
(time advances only when the harness says so) with **seeded** fault and
jitter streams, injects one failure class -- device fault maps, attempt
timeouts, checkpoint corruption, a crash between a checkpoint's
temp-write and its publish -- then replays a deterministic request
stream and scores it against the service-level objectives:

- **honesty**: zero responses whose ``best_row`` disagrees with the
  ideal-Hamming oracle *without* the ``degraded`` flag set;
- **deadline**: in the timeout scenario, the deadline hit-rate stays at
  or above :data:`DEADLINE_SLO` (p99);
- **durability**: after checkpoint corruption or a mid-save crash, the
  service restores the newest *valid* snapshot and serves the
  snapshotted content correctly.

Scenario results are plain dataclasses; :func:`run_chaos_suite` is the
entry point the ``repro chaos`` CLI subcommand and
``experiments/ext_chaos.py`` wrap.  Runs are bit-deterministic given the
seed: everything random is a seeded ``numpy`` generator and everything
temporal is the fake clock.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.io as _io
from repro.core.config import TDAMConfig
from repro.core.faults import FaultInjector
from repro.resilience.resilient import ResilientTDAMArray
from repro.service.checkpoint import ServiceCheckpointer
from repro.service.errors import (
    AllShardsUnavailableError,
    CheckpointCorruptError,
    DeadlineExceededError,
    ShardTimeoutError,
)
from repro.service.retry import RetryBudget, RetryPolicy
from repro.service.server import TDAMSearchService
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.profile import ProbeRecorder, register_probe
from repro.telemetry.state import STATE as _TM, enabled_scope
from repro.telemetry.profile import emit_probe as _emit_probe

__all__ = [
    "FakeClock",
    "ChaosScenarioResult",
    "ChaosReport",
    "DEADLINE_SLO",
    "BURST_P99_FACTOR",
    "run_chaos_suite",
    "last_flight_recorder",
]

#: The overload scenario's tail-sampling recorder from the most recent
#: :func:`run_chaos_suite` call (``None`` before the first run) -- the
#: ``repro chaos --flights-out`` artifact reads it after the suite.
last_flight_recorder: Optional[FlightRecorder] = None

#: The deadline SLO asserted in the timeout scenario (p99 hit-rate).
DEADLINE_SLO = 0.99


class FakeClock:
    """A monotonic clock that only moves when told to.

    Doubles as the service's ``sleep``: sleeping advances the clock, so
    backoffs consume *simulated* deadline budget and chaos runs are
    wall-clock-free and deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    def sleep(self, dt_s: float) -> None:
        """Advance time by ``dt_s`` (the injected sleep)."""
        self.advance(dt_s)

    def advance(self, dt_s: float) -> None:
        """Advance time by ``dt_s`` seconds."""
        if dt_s < 0:
            raise ValueError(f"dt_s must be >= 0, got {dt_s}")
        self._now += dt_s


@dataclass(frozen=True)
class ChaosScenarioResult:
    """Scorecard of one scenario.

    Attributes:
        name: Scenario identifier.
        n_requests: Requests replayed.
        ok: Responses served cleanly (no degraded flag).
        degraded: Responses served with the degraded flag.
        deadline_misses: Requests that raised ``DeadlineExceededError``.
        unavailable: Requests that raised ``AllShardsUnavailableError``.
        wrong_unflagged: Responses whose answer disagreed with the
            oracle *without* the degraded flag -- the honesty SLO;
            must be zero.
        retries: Retries scheduled (from the ``service.retry`` probe).
        breaker_opens: Breaker open transitions (``service.breaker``).
        deadline_hit_rate: Fraction of requests answered in deadline.
        passed: Whether every SLO of the scenario held.
        notes: Human-readable detail (which check failed, or stats).
    """

    name: str
    n_requests: int
    ok: int
    degraded: int
    deadline_misses: int
    unavailable: int
    wrong_unflagged: int
    retries: int
    breaker_opens: int
    deadline_hit_rate: float
    passed: bool
    notes: str


@dataclass(frozen=True)
class ChaosReport:
    """The whole suite's outcome."""

    scenarios: List[ChaosScenarioResult]
    seed: int
    quick: bool

    @property
    def passed(self) -> bool:
        """Whether every scenario passed its SLOs."""
        return all(s.passed for s in self.scenarios)


# ----------------------------------------------------------------------
# Infrastructure
# ----------------------------------------------------------------------
def _build_shards(
    config: TDAMConfig,
    n_rows: int,
    n_shards: int,
    n_spares: int,
    fault_counts: Optional[Sequence[Tuple[int, int, int]]] = None,
    seed: int = 0,
) -> List[ResilientTDAMArray]:
    """Replica arrays, optionally seeded with per-shard fault maps.

    ``fault_counts[i]`` is ``(n_stuck_mismatch, n_stuck_match,
    n_dead_rows)`` for shard ``i``; masking repairs are disabled so the
    ideal-Hamming oracle stays exact for non-degraded answers.
    """
    shards = []
    for i in range(n_shards):
        faults = ()
        if fault_counts is not None:
            injector = FaultInjector(
                config, n_rows + n_spares, seed=seed + 1000 * i
            )
            sm, sma, dead = fault_counts[i]
            faults = injector.draw(
                n_stuck_mismatch=sm, n_stuck_match=sma, n_dead_rows=dead
            )
        shards.append(
            ResilientTDAMArray(
                config,
                n_rows=n_rows,
                n_spares=n_spares,
                faults=list(faults),
                max_masked_stages=0,
            )
        )
    return shards


def _ideal_best(stored: np.ndarray, query: np.ndarray) -> int:
    """The oracle winner: smallest ideal Hamming distance, lowest row.

    Matches the array's resolution rule exactly for variation-free
    replicas (nominal delays are monotone in distance, so the delay
    tie-break never reorders equal-distance rows above ``argmin``'s
    first-minimum rule).
    """
    return int((stored != query[None, :]).sum(axis=1).argmin())


class _Outcomes:
    """Tallies one scenario's request stream against the oracle."""

    def __init__(self, stored: np.ndarray) -> None:
        self.stored = stored
        self.ok = 0
        self.degraded = 0
        self.deadline_misses = 0
        self.unavailable = 0
        self.wrong_unflagged = 0
        self.n = 0

    def serve(
        self,
        service: TDAMSearchService,
        query: np.ndarray,
        deadline_s: Optional[float] = None,
    ) -> None:
        self.n += 1
        try:
            response = service.search(query, deadline_s=deadline_s)
        except DeadlineExceededError:
            self.deadline_misses += 1
            return
        except AllShardsUnavailableError:
            self.unavailable += 1
            return
        if response.degraded:
            self.degraded += 1
        else:
            self.ok += 1
            if response.best_row != _ideal_best(self.stored, query):
                self.wrong_unflagged += 1

    @property
    def hit_rate(self) -> float:
        answered = self.n - self.deadline_misses - self.unavailable
        return answered / self.n if self.n else 1.0


def _result(
    name: str,
    outcomes: _Outcomes,
    recorder: ProbeRecorder,
    passed: bool,
    notes: str,
) -> ChaosScenarioResult:
    retries = len(recorder.payloads("service.retry"))
    opens = sum(
        1
        for p in recorder.payloads("service.breaker")
        if p.get("to_state") == "open"
    )
    result = ChaosScenarioResult(
        name=name,
        n_requests=outcomes.n,
        ok=outcomes.ok,
        degraded=outcomes.degraded,
        deadline_misses=outcomes.deadline_misses,
        unavailable=outcomes.unavailable,
        wrong_unflagged=outcomes.wrong_unflagged,
        retries=retries,
        breaker_opens=opens,
        deadline_hit_rate=outcomes.hit_rate,
        passed=passed,
        notes=notes,
    )
    if _TM.enabled:
        _emit_probe(
            "chaos.scenario",
            name=name,
            requests=outcomes.n,
            deadline_hit_rate=outcomes.hit_rate,
            wrong_unflagged=outcomes.wrong_unflagged,
            passed=passed,
        )
    return result


def _recording_service(
    shards: Sequence[ResilientTDAMArray],
    clock: FakeClock,
    **kwargs,
) -> Tuple[TDAMSearchService, ProbeRecorder]:
    """A service on the fake clock plus a probe recorder on its events."""
    recorder = ProbeRecorder()
    for event in ("service.retry", "service.breaker", "service.request",
                  "service.deadline_miss", "service.checkpoint"):
        register_probe(event, recorder)
    service = TDAMSearchService(
        shards, clock=clock.now, sleep=clock.sleep, **kwargs
    )
    return service, recorder


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _scenario_baseline(
    config: TDAMConfig, n_rows: int, n_requests: int, seed: int
) -> ChaosScenarioResult:
    """No injection: every answer exact, every deadline met."""
    rng = np.random.default_rng(seed)
    clock = FakeClock()
    shards = _build_shards(config, n_rows, n_shards=2, n_spares=2)
    service, recorder = _recording_service(shards, clock)
    stored = rng.integers(0, config.levels, (n_rows, config.n_stages))
    service.write_all(stored)
    outcomes = _Outcomes(stored)
    for _ in range(n_requests):
        clock.advance(1e-4)
        outcomes.serve(
            service, rng.integers(0, config.levels, config.n_stages)
        )
    passed = (
        outcomes.wrong_unflagged == 0
        and outcomes.degraded == 0
        and outcomes.hit_rate == 1.0
    )
    return _result(
        "baseline", outcomes, recorder, passed,
        "clean replicas must serve exactly and in deadline",
    )


def _scenario_device_faults(
    config: TDAMConfig, n_rows: int, n_requests: int, seed: int
) -> ChaosScenarioResult:
    """Hard fault maps: answers are exact or explicitly degraded.

    Shard 0 is wrecked (dead rows beyond its spare pool -- the repair
    loop must retire rows and the health check must trip its breaker);
    shard 1 carries a repairable sprinkling of cell faults.  The router
    must converge on shard 1 and the honesty SLO must hold throughout.
    """
    rng = np.random.default_rng(seed)
    clock = FakeClock()
    shards = _build_shards(
        config,
        n_rows,
        n_shards=2,
        n_spares=2,
        fault_counts=[(2, 2, 4), (1, 1, 0)],
        seed=seed,
    )
    service, recorder = _recording_service(shards, clock)
    stored = rng.integers(0, config.levels, (n_rows, config.n_stages))
    service.write_all(stored)
    for shard in service.shards:
        shard.array.self_test_and_repair()
    states = service.run_health_checks()
    outcomes = _Outcomes(stored)
    for _ in range(n_requests):
        clock.advance(1e-4)
        outcomes.serve(
            service, rng.integers(0, config.levels, config.n_stages)
        )
    passed = outcomes.wrong_unflagged == 0 and outcomes.hit_rate == 1.0
    return _result(
        "device_faults", outcomes, recorder, passed,
        f"post-repair breaker states: "
        f"{ {k: v.value for k, v in states.items()} }",
    )


def _scenario_timeouts(
    config: TDAMConfig, n_rows: int, n_requests: int, seed: int
) -> ChaosScenarioResult:
    """Injected attempt timeouts: retries keep the deadline SLO.

    Every attempt costs simulated service time; a seeded fraction of
    attempts on each shard instead burns the per-attempt timeout and
    raises :class:`ShardTimeoutError`.  With two replicas, retry +
    failover must keep the deadline hit-rate at or above
    :data:`DEADLINE_SLO`.
    """
    rng = np.random.default_rng(seed)
    fault_rng = np.random.default_rng(seed + 1)
    clock = FakeClock()
    shards = _build_shards(config, n_rows, n_shards=2, n_spares=2)
    service, recorder = _recording_service(
        shards,
        clock,
        retry_policy=RetryPolicy(
            max_attempts=4,
            backoff_base_s=0.0005,
            backoff_cap_s=0.004,
            jitter_seed=seed,
        ),
        retry_budget=RetryBudget(deposit_per_request=0.5, max_balance=50.0),
        default_deadline_s=0.050,
        failure_threshold=5,
        reset_timeout_s=0.020,
    )
    attempt_cost_s = 0.001
    attempt_timeout_s = 0.008
    timeout_rate = 0.15

    def flaky(shard_id: str, queries: np.ndarray) -> None:
        if fault_rng.uniform() < timeout_rate:
            clock.advance(attempt_timeout_s)
            raise ShardTimeoutError(
                f"{shard_id}: attempt timed out after "
                f"{attempt_timeout_s * 1e3:.0f} ms"
            )
        clock.advance(attempt_cost_s)

    service.add_interceptor(flaky)
    stored = rng.integers(0, config.levels, (n_rows, config.n_stages))
    service.write_all(stored)
    outcomes = _Outcomes(stored)
    for _ in range(n_requests):
        clock.advance(1e-4)
        outcomes.serve(
            service, rng.integers(0, config.levels, config.n_stages)
        )
    passed = (
        outcomes.wrong_unflagged == 0
        and outcomes.hit_rate >= DEADLINE_SLO
    )
    return _result(
        "timeouts", outcomes, recorder, passed,
        f"hit rate {outcomes.hit_rate:.4f} vs SLO {DEADLINE_SLO:.2f} "
        f"({outcomes.deadline_misses} misses, "
        f"{len(recorder.payloads('service.retry'))} retries)",
    )


def _scenario_checkpoint_corruption(
    config: TDAMConfig, n_rows: int, n_requests: int, seed: int
) -> ChaosScenarioResult:
    """Corrupted snapshot: restore falls back to the previous one."""
    rng = np.random.default_rng(seed)
    clock = FakeClock()
    shards = _build_shards(config, n_rows, n_shards=1, n_spares=2)
    service, recorder = _recording_service(shards, clock)
    stored = rng.integers(0, config.levels, (n_rows, config.n_stages))
    service.write_all(stored)
    notes: List[str] = []
    with tempfile.TemporaryDirectory() as tmpdir:
        ckpt = ServiceCheckpointer(Path(tmpdir) / "shard0.npz")
        ckpt.save(shards[0], trigger="chaos-initial")
        ckpt.save(shards[0], trigger="chaos-second")  # rotates .prev
        # Corrupt the primary artifact in place (bit rot / torn write).
        blob = bytearray(ckpt.path.read_bytes())
        for i in range(64, min(1600, len(blob)), 13):
            blob[i] ^= 0xFF
        ckpt.path.write_bytes(bytes(blob))
        rejected = False
        try:
            ckpt.restore(shards[0])
        except CheckpointCorruptError:
            rejected = True
        notes.append(f"corrupt primary rejected: {rejected}")
        # The fallback must land on the intact .prev snapshot.
        restored_ok = True
        try:
            info, _ = ckpt.restore_latest(shards[0])
            notes.append(f"fell back to {info.path.name}")
        except Exception as exc:  # pragma: no cover - scenario failure
            restored_ok = False
            notes.append(f"fallback failed: {exc!r}")
    outcomes = _Outcomes(stored)
    for _ in range(n_requests):
        clock.advance(1e-4)
        outcomes.serve(
            service, rng.integers(0, config.levels, config.n_stages)
        )
    passed = (
        rejected
        and restored_ok
        and outcomes.wrong_unflagged == 0
        and outcomes.hit_rate == 1.0
    )
    return _result(
        "checkpoint_corruption", outcomes, recorder, passed,
        "; ".join(notes),
    )


class _SimulatedCrash(BaseException):
    """Raised by the crash hook; BaseException so nothing swallows it."""


def _scenario_crash_mid_save(
    config: TDAMConfig, n_rows: int, n_requests: int, seed: int
) -> ChaosScenarioResult:
    """Process dies between a checkpoint's temp-write and its publish.

    The ``repro.io`` publish seam is replaced by a raiser, a snapshot is
    attempted, and the scenario asserts the pre-crash artifact survives
    bit-for-bit and still restores the shard to its snapshotted state.
    """
    rng = np.random.default_rng(seed)
    clock = FakeClock()
    shards = _build_shards(config, n_rows, n_shards=1, n_spares=2)
    service, recorder = _recording_service(shards, clock)
    stored = rng.integers(0, config.levels, (n_rows, config.n_stages))
    service.write_all(stored)
    notes: List[str] = []
    with tempfile.TemporaryDirectory() as tmpdir:
        ckpt = ServiceCheckpointer(
            Path(tmpdir) / "shard0.npz", keep_previous=False
        )
        ckpt.save(shards[0], trigger="pre-crash")
        good_bytes = ckpt.path.read_bytes()
        # Overwrite the stored content, then crash mid-snapshot.
        stored2 = rng.integers(0, config.levels, (n_rows, config.n_stages))
        service.write_all(stored2)

        def crash(tmp: str, dst: str) -> None:
            raise _SimulatedCrash(
                "process killed between temp write and os.replace"
            )

        original = _io._REPLACE
        _io._REPLACE = crash
        crashed = False
        try:
            ckpt.save(shards[0], trigger="crashing")
        except _SimulatedCrash:
            crashed = True
        finally:
            _io._REPLACE = original
        notes.append(f"crash injected: {crashed}")
        intact = ckpt.path.read_bytes() == good_bytes
        notes.append(f"pre-crash artifact intact: {intact}")
        leftovers = [
            name
            for name in os.listdir(tmpdir)
            if name.endswith(".tmp")
        ]
        notes.append(f"temp leftovers: {len(leftovers)}")
        ckpt.restore_latest(shards[0])
        restored_matches = bool(
            (shards[0]._shadow == stored).all()
        )
        notes.append(f"restored pre-crash content: {restored_matches}")
    outcomes = _Outcomes(stored)
    for _ in range(n_requests):
        clock.advance(1e-4)
        outcomes.serve(
            service, rng.integers(0, config.levels, config.n_stages)
        )
    passed = (
        crashed
        and intact
        and restored_matches
        and outcomes.wrong_unflagged == 0
        and outcomes.hit_rate == 1.0
    )
    return _result(
        "crash_mid_save", outcomes, recorder, passed, "; ".join(notes)
    )


def _scenario_combined(
    config: TDAMConfig, n_rows: int, n_requests: int, seed: int
) -> ChaosScenarioResult:
    """Device faults *and* injected timeouts at once: honesty holds."""
    rng = np.random.default_rng(seed)
    fault_rng = np.random.default_rng(seed + 2)
    clock = FakeClock()
    shards = _build_shards(
        config,
        n_rows,
        n_shards=3,
        n_spares=2,
        fault_counts=[(2, 2, 4), (1, 1, 0), (0, 0, 0)],
        seed=seed,
    )
    service, recorder = _recording_service(
        shards,
        clock,
        retry_policy=RetryPolicy(
            max_attempts=4,
            backoff_base_s=0.0005,
            backoff_cap_s=0.004,
            jitter_seed=seed,
        ),
        retry_budget=RetryBudget(deposit_per_request=0.5, max_balance=50.0),
        default_deadline_s=0.050,
        failure_threshold=5,
        reset_timeout_s=0.020,
    )

    def flaky(shard_id: str, queries: np.ndarray) -> None:
        if fault_rng.uniform() < 0.10:
            clock.advance(0.008)
            raise ShardTimeoutError(f"{shard_id}: injected timeout")
        clock.advance(0.001)

    service.add_interceptor(flaky)
    stored = rng.integers(0, config.levels, (n_rows, config.n_stages))
    service.write_all(stored)
    for shard in service.shards:
        shard.array.self_test_and_repair()
    service.run_health_checks()
    outcomes = _Outcomes(stored)
    for _ in range(n_requests):
        clock.advance(1e-4)
        outcomes.serve(
            service, rng.integers(0, config.levels, config.n_stages)
        )
    passed = (
        outcomes.wrong_unflagged == 0
        and outcomes.hit_rate >= DEADLINE_SLO
    )
    return _result(
        "combined", outcomes, recorder, passed,
        f"hit rate {outcomes.hit_rate:.4f}, "
        f"{outcomes.degraded} degraded responses",
    )


# ----------------------------------------------------------------------
# Overload scenarios (driven through the coalescing front-end)
# ----------------------------------------------------------------------
#: Burst latency SLO: p99 of *admitted* requests under a saturating
#: burst must stay within this factor of the uncontended p99 -- the
#: whole point of bounded admission (shed the excess, protect the rest).
BURST_P99_FACTOR = 2.0


def _load_result(
    name: str,
    report,
    recorder: ProbeRecorder,
    passed: bool,
    notes: str,
) -> ChaosScenarioResult:
    """A scenario scorecard built from a load-generator report."""
    retries = len(recorder.payloads("service.retry"))
    opens = sum(
        1
        for p in recorder.payloads("service.breaker")
        if p.get("to_state") == "open"
    )
    answered = report.goodput
    result = ChaosScenarioResult(
        name=name,
        n_requests=report.offered,
        ok=report.ok,
        degraded=report.degraded,
        deadline_misses=report.deadline_misses,
        unavailable=report.unavailable,
        wrong_unflagged=report.wrong_unflagged,
        retries=retries,
        breaker_opens=opens,
        deadline_hit_rate=(
            answered / report.admitted if report.admitted else 1.0
        ),
        passed=passed,
        notes=notes,
    )
    if _TM.enabled:
        _emit_probe(
            "chaos.scenario",
            name=name,
            requests=report.offered,
            deadline_hit_rate=result.deadline_hit_rate,
            wrong_unflagged=report.wrong_unflagged,
            passed=passed,
        )
    return result


def _load_recorder() -> ProbeRecorder:
    recorder = ProbeRecorder()
    for event in ("service.retry", "service.breaker", "service.admission",
                  "coalesce.flush", "frontend.request"):
        register_probe(event, recorder)
    return recorder


def _scenario_overload_burst(
    config: TDAMConfig, n_rows: int, n_requests: int, seed: int
) -> ChaosScenarioResult:
    """A saturating burst: shed the excess, protect the admitted.

    Two open-loop runs on the same seeded geometry: an uncontended one
    establishing the baseline p99, then a burst far beyond capacity
    against a bounded queue.  The SLOs: honest answers throughout, a
    nonzero shed rate with every rejection typed, and the admitted
    requests' p99 within :data:`BURST_P99_FACTOR` of uncontended --
    overload must cost the excess, not everyone.
    """
    # Deferred import: loadgen builds on this module's FakeClock.
    from repro.service.loadgen import LoadConfig, run_load

    global last_flight_recorder
    duration_s = max(0.05, n_requests * 6e-4)
    common = dict(
        duration_s=duration_s,
        deadline_s=0.050,
        n_rows=n_rows,
        n_stages=config.n_stages,
        max_queue_depth=48,
        seed=seed,
    )
    recorder = _load_recorder()
    # Tail-based sampling under overload: every non-goodput request
    # (deadline miss, shed, ...) must survive in the ring buffer, so
    # size it above the whole offered load.
    flights = FlightRecorder(capacity=8192)
    last_flight_recorder = flights
    calm = run_load(LoadConfig(rate_per_s=1500.0, **common))
    burst = run_load(
        LoadConfig(rate_per_s=30000.0, **common), flight_recorder=flights
    )
    sheds_typed = burst.sheds == burst.offered - burst.admitted
    p99_ok = burst.p99_s <= BURST_P99_FACTOR * calm.p99_s
    retained = set(flights.request_ids())
    tail_retained = all(
        rid in retained for rid in burst.tail_request_ids
    )
    passed = (
        calm.honest
        and burst.honest
        and calm.sheds == 0
        and burst.sheds > 0
        and sheds_typed
        and burst.goodput > 0
        and p99_ok
        and tail_retained
    )
    return _load_result(
        "overload_burst", burst, recorder, passed,
        f"calm p99 {calm.p99_s * 1e3:.2f} ms, burst p99 "
        f"{burst.p99_s * 1e3:.2f} ms (SLO <= {BURST_P99_FACTOR:g}x), "
        f"shed {burst.sheds}/{burst.offered} "
        f"({burst.shed_rate:.1%}, all typed: {sheds_typed}); "
        f"tail flights retained {len(retained)} "
        f"(all {len(burst.tail_request_ids)} misses: {tail_retained})",
    )


def _scenario_slow_shard_under_load(
    config: TDAMConfig, n_rows: int, n_requests: int, seed: int
) -> ChaosScenarioResult:
    """One replica times out under load: breaker shifts the traffic.

    A two-replica service where shard0 burns its attempt timeout and
    fails every attempt.  Under sustained load the breaker must open on
    shard0, failover must keep goodput flowing from shard1, and every
    served answer must stay honest.
    """
    from repro.service.loadgen import LoadConfig, run_load

    clock = FakeClock()
    shards = _build_shards(config, n_rows, n_shards=2, n_spares=2)
    recorder = _load_recorder()
    service = TDAMSearchService(
        shards,
        clock=clock.now,
        sleep=clock.sleep,
        retry_policy=RetryPolicy(
            max_attempts=3,
            backoff_base_s=0.0002,
            backoff_cap_s=0.002,
            jitter_seed=seed,
        ),
        retry_budget=RetryBudget(deposit_per_request=0.5, max_balance=50.0),
        default_deadline_s=0.050,
        failure_threshold=3,
        reset_timeout_s=0.100,
    )
    load = LoadConfig(
        duration_s=max(0.05, n_requests * 6e-4),
        rate_per_s=1500.0,
        deadline_s=0.050,
        n_rows=n_rows,
        n_stages=config.n_stages,
        seed=seed,
    )

    def slow(shard_id: str, queries: np.ndarray) -> None:
        clock.advance(0.006)
        raise ShardTimeoutError(f"{shard_id}: drowning under load")

    def cost(shard_id: str, queries: np.ndarray) -> None:
        clock.advance(
            load.attempt_base_s + load.attempt_per_query_s * queries.shape[0]
        )

    service.add_interceptor(slow, shard_id="shard0")
    service.add_interceptor(cost, shard_id="shard1")
    report = run_load(load, service=service, clock=clock)
    opens = sum(
        1
        for p in recorder.payloads("service.breaker")
        if p.get("to_state") == "open" and p.get("shard") == "shard0"
    )
    answered_rate = (
        report.goodput / report.admitted if report.admitted else 0.0
    )
    passed = (
        report.honest
        and opens > 0
        and report.goodput > 0
        and answered_rate >= DEADLINE_SLO
    )
    return _load_result(
        "slow_shard_under_load", report, recorder, passed,
        f"shard0 breaker opened {opens}x, answered "
        f"{answered_rate:.4f} of admitted vs SLO {DEADLINE_SLO:.2f}",
    )


def _scenario_tenant_stampede(
    config: TDAMConfig, n_rows: int, n_requests: int, seed: int
) -> ChaosScenarioResult:
    """One tenant stampedes: its quota burns, the others stay whole.

    Tenant ``t0`` sends ~85% of a heavy offered load against a small
    token-bucket quota; ``t1``..``t3`` stay modest and unlimited.  The
    SLOs: t0's excess is shed on *quota* (typed, with retry hints,
    before it can become queue pressure), every well-behaved tenant is
    fully answered, and honesty holds throughout.
    """
    from repro.service.loadgen import LoadConfig, run_load

    recorder = _load_recorder()
    report = run_load(
        LoadConfig(
            duration_s=max(0.05, n_requests * 6e-4),
            rate_per_s=4000.0,
            deadline_s=0.050,
            n_tenants=4,
            tenant_weights=(0.85, 0.05, 0.05, 0.05),
            quota_overrides={"t0": (400.0, 16.0)},
            n_rows=n_rows,
            n_stages=config.n_stages,
            seed=seed,
        )
    )
    t0 = report.tenants["t0"]
    others = [report.tenants[f"t{i}"] for i in (1, 2, 3)]
    others_whole = all(
        t.answered == t.offered for t in others if t.offered
    )
    passed = (
        report.honest
        and t0.shed_quota > 0
        and report.shed_queue_full == 0
        and others_whole
        and t0.answered > 0
    )
    return _load_result(
        "tenant_stampede", report, recorder, passed,
        f"t0 offered {t0.offered}, quota-shed {t0.shed_quota}, "
        f"answered {t0.answered}; bystanders whole: {others_whole}",
    )


# ----------------------------------------------------------------------
# Network scenarios (real sockets; implemented in repro.net.chaos and
# imported lazily so the service layer never depends on the transport)
# ----------------------------------------------------------------------
def _scenario_net_flaky_link(
    config: TDAMConfig, n_rows: int, n_requests: int, seed: int
) -> ChaosScenarioResult:
    """Seeded wire faults between client and server: exact or typed."""
    from repro.net.chaos import scenario_net_flaky_link

    return scenario_net_flaky_link(config, n_rows, n_requests, seed)


def _scenario_net_slow_loris(
    config: TDAMConfig, n_rows: int, n_requests: int, seed: int
) -> ChaosScenarioResult:
    """A stalling peer is evicted; healthy clients are unharmed."""
    from repro.net.chaos import scenario_net_slow_loris

    return scenario_net_slow_loris(config, n_rows, n_requests, seed)


def _scenario_net_server_kill(
    config: TDAMConfig, n_rows: int, n_requests: int, seed: int
) -> ChaosScenarioResult:
    """Server sockets severed mid-stream: typed errors, then recovery."""
    from repro.net.chaos import scenario_net_server_kill

    return scenario_net_server_kill(config, n_rows, n_requests, seed)


_SCENARIOS: Dict[str, Callable[[TDAMConfig, int, int, int],
                               ChaosScenarioResult]] = {
    "baseline": _scenario_baseline,
    "device_faults": _scenario_device_faults,
    "timeouts": _scenario_timeouts,
    "checkpoint_corruption": _scenario_checkpoint_corruption,
    "crash_mid_save": _scenario_crash_mid_save,
    "combined": _scenario_combined,
    "overload_burst": _scenario_overload_burst,
    "slow_shard_under_load": _scenario_slow_shard_under_load,
    "tenant_stampede": _scenario_tenant_stampede,
    "net_flaky_link": _scenario_net_flaky_link,
    "net_slow_loris": _scenario_net_slow_loris,
    "net_server_kill": _scenario_net_server_kill,
}


def run_chaos_suite(
    quick: bool = False,
    seed: int = 7,
    scenarios: Optional[Sequence[str]] = None,
    config: Optional[TDAMConfig] = None,
) -> ChaosReport:
    """Run the chaos scenarios and score them against the SLOs.

    Args:
        quick: Reduced sizes for CI smoke runs (same scenarios).
        seed: Master seed of every fault / data / jitter stream.
        scenarios: Subset of scenario names (default: all, in order).
        config: Design point override (default: 16-stage quick /
            32-stage full).

    Returns:
        A :class:`ChaosReport`; ``report.passed`` is the gate.

    The suite runs inside ``telemetry.enabled_scope()`` -- the service's
    counters and probes are live and each scenario's tallies come from
    the same probe stream an operator would subscribe to.  Existing
    hooks/metrics are left untouched apart from the counters the run
    increments.
    """
    names = list(scenarios) if scenarios is not None else list(_SCENARIOS)
    unknown = [n for n in names if n not in _SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown chaos scenarios {unknown}; "
            f"known: {sorted(_SCENARIOS)}"
        )
    if config is None:
        config = TDAMConfig(n_stages=16 if quick else 32)
    n_rows = 8 if quick else 16
    n_requests = 40 if quick else 250
    results: List[ChaosScenarioResult] = []
    with enabled_scope():
        for name in names:
            before = _snapshot_hooks()
            try:
                results.append(
                    _SCENARIOS[name](config, n_rows, n_requests, seed)
                )
            finally:
                _restore_hooks(before)
    return ChaosReport(scenarios=results, seed=seed, quick=quick)


def _snapshot_hooks():
    from repro.telemetry import profile

    with profile._lock:
        return dict(profile._hooks)


def _restore_hooks(snapshot) -> None:
    from repro.telemetry import profile

    with profile._lock:
        profile._hooks.clear()
        profile._hooks.update(snapshot)
