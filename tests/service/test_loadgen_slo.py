"""Load generator x telemetry: sketches, SLO verdicts, tail retention."""

from repro import telemetry
from repro.service import LoadConfig, run_load
from repro.service import chaos as chaos_mod
from repro.service.chaos import run_chaos_suite
from repro.telemetry import FlightRecorder, SLOEngine, default_serving_slos


def calm_config(**overrides):
    base = dict(
        duration_s=0.05,
        rate_per_s=1200.0,
        deadline_s=0.040,
        n_tenants=2,
        n_rows=8,
        pool_size=8,
        seed=5,
    )
    base.update(overrides)
    return LoadConfig(**base)


def missing_config():
    """Overload shaped to produce real post-admission deadline misses:
    a queue deep enough to admit far more than the deadline can absorb,
    so admitted requests expire while queued or mid-dispatch."""
    return LoadConfig(
        duration_s=0.08,
        rate_per_s=4000.0,
        deadline_s=0.008,
        max_queue_depth=256,
        n_tenants=2,
        n_rows=8,
        pool_size=8,
        seed=5,
    )


class TestSketchReporting:
    def test_sketch_p99_within_stated_bound_of_rank_exact(self):
        report = run_load(calm_config())
        assert report.goodput > 50
        assert report.sketch_relative_accuracy == 0.01
        err = (
            abs(report.sketch_p99_s - report.p99_rank_s)
            / report.p99_rank_s
        )
        assert err <= report.sketch_relative_accuracy

    def test_sketch_estimates_are_ordered(self):
        report = run_load(calm_config())
        assert (
            report.sketch_p50_s
            <= report.sketch_p95_s
            <= report.sketch_p99_s
        )

    def test_rank_exact_p99_at_most_interpolated(self):
        # The order statistic floor(q*(n-1)) never exceeds numpy's
        # linearly interpolated percentile of the same sample.
        report = run_load(calm_config())
        assert report.p99_rank_s <= report.p99_s

    def test_sketch_lands_in_the_json_artifact(self):
        payload = run_load(calm_config()).to_dict()
        sketch = payload["latency"]["sketch"]
        assert sketch["relative_accuracy"] == 0.01
        assert sketch["p99_s"] > 0
        assert payload["latency"]["p99_rank_s"] > 0


class TestDeadlineMissRetention:
    def test_every_deadline_miss_is_retained_with_spans(self):
        telemetry.enable()
        config = missing_config()
        recorder = FlightRecorder(
            capacity=4096, slow_threshold_s=config.deadline_s
        )
        report = run_load(config, flight_recorder=recorder)
        # The scenario must actually produce post-admission misses --
        # a run where everything sheds at the door proves nothing.
        assert report.deadline_misses > 0
        assert len(report.tail_request_ids) > 0
        retained = set(recorder.request_ids())
        missing = [
            rid for rid in report.tail_request_ids
            if rid not in retained
        ]
        assert not missing, f"tail sampler lost {missing}"
        # Retained tail flights carry their span trees (tracing on).
        by_id = {r.request_id: r for r in recorder.records()}
        for rid in report.tail_request_ids:
            assert by_id[rid].spans, f"{rid}: no spans retained"

    def test_tail_ids_need_telemetry(self):
        # Ids are minted at admission only when telemetry is on; an
        # untraced run reports no tail ids (and misses still count).
        report = run_load(missing_config())
        assert report.deadline_misses > 0
        assert report.tail_request_ids == ()


class TestSLOIntegration:
    def test_calm_run_meets_the_default_objectives(self):
        telemetry.enable()
        engine = SLOEngine(
            default_serving_slos(
                latency_p50_s=0.050, latency_p99_s=0.100
            ),
            windows_s=(0.0125, 0.05),
        )
        run_load(calm_config(), slo_engine=engine)
        assert engine.n_samples > 2
        report = engine.evaluate()
        assert report.ok
        by_name = {v.spec.name: v for v in report.verdicts}
        assert set(by_name) == {
            "latency_p50", "latency_p99", "shed_rate",
            "error_rate", "honesty",
        }
        # The honesty objective judged real audited answers.
        assert by_name["honesty"].cumulative.events > 0
        assert by_name["latency_p99"].cumulative.events > 0
        assert by_name["shed_rate"].cumulative.value == 0.0

    def test_impossible_latency_target_is_violated(self):
        telemetry.enable()
        engine = SLOEngine(
            default_serving_slos(latency_p99_s=1e-7),
            windows_s=(0.05,),
        )
        run_load(calm_config(), slo_engine=engine)
        report = engine.evaluate()
        assert not report.ok
        by_name = {v.spec.name: v for v in report.verdicts}
        assert not by_name["latency_p99"].ok
        assert by_name["latency_p99"].cumulative.burn > 1.0

    def test_engine_without_telemetry_sees_no_events(self):
        # Metrics are gated on the switch: an untraced run leaves the
        # registry silent and every window trivially ok.
        engine = SLOEngine(default_serving_slos(), windows_s=(0.05,))
        run_load(calm_config(), slo_engine=engine)
        report = engine.evaluate()
        assert report.ok
        assert all(
            v.cumulative.events == 0 for v in report.verdicts
        )


class TestChaosOverloadRetention:
    def test_overload_burst_retains_every_deadline_miss(self):
        suite = run_chaos_suite(
            quick=True, seed=7, scenarios=["overload_burst"]
        )
        (scenario,) = suite.scenarios
        assert scenario.passed
        assert "misses: True" in scenario.notes
        recorder = chaos_mod.last_flight_recorder
        assert recorder is not None
        assert recorder.kept > 0
        assert len(recorder) == len(recorder.request_ids())
