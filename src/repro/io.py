"""Persistence: save/load configs, quantized models, and array images.

A deployed TD-AM system needs its artifacts on disk: the design point
(for the controller), the quantized class hypervectors (the array image),
and the quantization edges (for the query path).  This module provides a
single-file NPZ container for the model artifacts and JSON round-tripping
for configurations:

- :func:`save_config` / :func:`load_config` -- :class:`TDAMConfig` as
  JSON (device/tech parameter sets included),
- :func:`save_quantized_model` / :func:`load_quantized_model` -- a
  :class:`~repro.hdc.quantize.QuantizedModel` plus optional metadata as a
  compressed ``.npz``,
- :func:`export_array_image` -- the row-major level matrix a programming
  controller consumes, with a checksum for write verification.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from repro.core.config import TDAMConfig
from repro.devices.fefet import FeFETParams
from repro.devices.params import TechnologyParams
from repro.hdc.quantize import QuantizedModel

PathLike = Union[str, Path]

__all__ = [
    "config_to_dict",
    "config_from_dict",
    "save_config",
    "load_config",
    "save_quantized_model",
    "load_quantized_model",
    "export_array_image",
    "load_array_image",
    "image_checksum",
    "atomic_write",
]

#: Format tag written into every artifact for forward compatibility.
FORMAT_VERSION = 1

#: The publish step of :func:`atomic_write`.  Kept as a module attribute
#: so the chaos harness and crash tests can intercept it to simulate a
#: process dying between the temp-file write and the rename.
_REPLACE = os.replace


def atomic_write(
    path: PathLike, write_payload: Callable[[Any], None]
) -> None:
    """Crash-safe single-file publish: temp write, fsync, ``os.replace``.

    ``write_payload(handle)`` streams the artifact into a temporary file
    created *in the destination directory* (so the final rename never
    crosses a filesystem), the file is fsynced, and only then atomically
    renamed over ``path``.  A crash at any point -- mid-write, or between
    the temp write and the replace -- leaves the previous artifact at
    ``path`` intact; the orphaned temp file is removed on error when the
    process survives to do so.

    Args:
        path: Final artifact location.
        write_payload: Callback receiving a binary file handle.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            write_payload(handle)
            handle.flush()
            os.fsync(handle.fileno())
        _REPLACE(tmp, str(path))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# Configs
# ----------------------------------------------------------------------
def config_to_dict(config: TDAMConfig) -> Dict[str, Any]:
    """A JSON-serializable dict of a design point."""
    payload = dataclasses.asdict(config)
    payload["tech"] = dataclasses.asdict(config.tech)
    payload["fefet"] = dataclasses.asdict(config.fefet)
    payload["_format"] = FORMAT_VERSION
    return payload


def config_from_dict(payload: Dict[str, Any]) -> TDAMConfig:
    """Rebuild a design point from :func:`config_to_dict` output."""
    payload = dict(payload)
    version = payload.pop("_format", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported config format {version} (supported: {FORMAT_VERSION})"
        )
    tech = TechnologyParams(**payload.pop("tech"))
    fefet = FeFETParams(**payload.pop("fefet"))
    payload["vth_window"] = tuple(payload["vth_window"])
    return TDAMConfig(tech=tech, fefet=fefet, **payload)


def save_config(config: TDAMConfig, path: PathLike) -> None:
    """Write a design point as JSON (atomically, see :func:`atomic_write`)."""
    payload = json.dumps(config_to_dict(config), indent=2).encode()
    atomic_write(path, lambda handle: handle.write(payload))


def load_config(path: PathLike) -> TDAMConfig:
    """Read a design point written by :func:`save_config`."""
    return config_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Quantized models
# ----------------------------------------------------------------------
def save_quantized_model(
    model: QuantizedModel,
    path: PathLike,
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a quantized model (levels, edges, centers) as ``.npz``.

    Args:
        model: The quantized model.
        metadata: Optional JSON-serializable extras (dataset name,
            accuracy, training seed, ...), stored alongside.
    """
    meta = dict(metadata or {})
    meta["_format"] = FORMAT_VERSION
    atomic_write(
        path,
        lambda handle: np.savez_compressed(
            handle,
            levels=model.levels,
            edges=model.edges,
            centers=model.centers,
            bits=np.array([model.bits]),
            method=np.array([model.method]),
            metadata=np.array([json.dumps(meta)]),
        ),
    )


def load_quantized_model(
    path: PathLike,
) -> "tuple[QuantizedModel, Dict[str, Any]]":
    """Read a model written by :func:`save_quantized_model`.

    Returns:
        ``(model, metadata)``.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        metadata = json.loads(str(data["metadata"][0]))
        version = metadata.pop("_format", FORMAT_VERSION)
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported model format {version} "
                f"(supported: {FORMAT_VERSION})"
            )
        model = QuantizedModel(
            levels=data["levels"].astype(np.int64),
            edges=data["edges"].astype(float),
            centers=data["centers"].astype(float),
            bits=int(data["bits"][0]),
            method=str(data["method"][0]),
        )
    return model, metadata


# ----------------------------------------------------------------------
# Array images
# ----------------------------------------------------------------------
def image_checksum(levels: np.ndarray) -> str:
    """Content checksum of an array image (write verification)."""
    canonical = np.ascontiguousarray(levels, dtype=np.int64)
    return hashlib.sha256(canonical.tobytes()).hexdigest()[:16]


def export_array_image(
    model: QuantizedModel,
    config: TDAMConfig,
    path: PathLike,
) -> Dict[str, Any]:
    """Write the tile-padded array image the programmer consumes.

    Pads the model's dimension up to whole tiles of ``config.n_stages``
    with always-match level 0 (the padding convention of the mapping
    layer) and records a checksum.

    Returns:
        The manifest (also embedded in the file).
    """
    if model.bits != config.bits:
        raise ValueError(
            f"model bits {model.bits} != config bits {config.bits}"
        )
    n_stages = config.n_stages
    n_tiles = -(-model.dimension // n_stages)
    padded = np.zeros((model.n_classes, n_tiles * n_stages), dtype=np.int64)
    padded[:, : model.dimension] = model.levels
    manifest = {
        "_format": FORMAT_VERSION,
        "n_classes": model.n_classes,
        "dimension": model.dimension,
        "n_tiles": n_tiles,
        "n_stages": n_stages,
        "bits": model.bits,
        "checksum": image_checksum(padded),
    }
    atomic_write(
        path,
        lambda handle: np.savez_compressed(
            handle,
            image=padded,
            manifest=np.array([json.dumps(manifest)]),
        ),
    )
    return manifest


def load_array_image(path: PathLike) -> "tuple[np.ndarray, Dict[str, Any]]":
    """Read an array image; verifies the checksum.

    Returns:
        ``(image, manifest)``.

    Raises:
        ValueError: on checksum mismatch (corrupted artifact).
    """
    with np.load(Path(path), allow_pickle=False) as data:
        image = data["image"].astype(np.int64)
        manifest = json.loads(str(data["manifest"][0]))
    if image_checksum(image) != manifest["checksum"]:
        raise ValueError(f"array image {path} failed its checksum")
    return image, manifest
