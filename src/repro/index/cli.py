"""`repro index build|search` -- the ANN index from the command line.

``build`` packs a seeded synthetic clustered corpus into a published
:class:`BitPlaneStore`; ``search`` reopens it in a *fresh process* and
probes it, reporting queries/s, recall@k against the exhaustive
(``nprobe = n_clusters``) answer -- bit-identical to in-RAM exhaustive
search, see ``tests/index/`` -- and the process's peak RSS.  The CI
smoke job drives both and turns ``--min-recall`` / ``--max-rss-mb``
violations into non-zero exits: the store must serve a 10^5-row corpus
correctly while staying far below what the in-RAM pipeline would
resident-set.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from typing import Any, Dict

import numpy as np

from repro.core.config import TDAMConfig
from repro.datasets.synthetic import make_clustered_levels, perturb_levels
from repro.index.cluster_index import ClusteredTDAMIndex
from repro.index.store import BitPlaneStore

__all__ = ["run_index_build", "run_index_search"]


def _emit(line: str) -> None:
    # Deferred import: repro.cli owns the stdout channel.
    from repro.cli import emit

    emit(line)


def peak_rss_mb() -> float:
    """This process's peak resident set size, in MiB."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    scale = 1024.0 if sys.platform == "darwin" else 1.0
    return peak * scale / 1024.0


def run_index_build(args: argparse.Namespace) -> int:
    """Generate a clustered corpus and publish its store + quantizer."""
    config = TDAMConfig(bits=args.bits, n_stages=args.stages)
    rows, _, _ = make_clustered_levels(
        n_rows=args.rows,
        n_stages=config.n_stages,
        levels=config.levels,
        n_clusters=args.clusters,
        noise=args.noise,
        seed=args.seed,
    )
    start = time.perf_counter()
    index = ClusteredTDAMIndex.build(
        args.out,
        rows,
        config,
        n_clusters=args.clusters,
        seed=args.seed,
        sample_size=args.sample,
    )
    elapsed = time.perf_counter() - start
    _emit(
        f"built {index.n_rows} rows x {config.n_stages} stages "
        f"({config.bits}-bit) into {index.store.n_shards} shards "
        f"({index.n_clusters} clusters) at {args.out} "
        f"in {elapsed:.1f} s (generation {index.store.generation})"
    )
    return 0


def _sample_queries(
    store: BitPlaneStore, n_queries: int, noise: float, seed: int
) -> np.ndarray:
    """Queries perturbed from stored rows, sampled across shards.

    Samples shard-by-shard (weighted by shard size) so only the touched
    level pages are faulted in -- the query path must not need the
    whole corpus resident.
    """
    rng = np.random.default_rng(seed)
    sizes = np.array(
        [store.shard(i).n_rows for i in range(store.n_shards)],
        dtype=np.float64,
    )
    picks = rng.choice(
        store.n_shards, size=n_queries, p=sizes / sizes.sum()
    )
    rows = np.empty((n_queries, store.n_stages), dtype=np.uint8)
    for s in np.unique(picks):
        where = np.flatnonzero(picks == s)
        shard = store.shard(int(s))
        pos = np.sort(rng.integers(0, shard.n_rows, size=where.shape[0]))
        rows[where] = shard.levels[pos]
    return perturb_levels(rows, store.levels, noise=noise, seed=seed + 1)


def run_index_search(args: argparse.Namespace) -> int:
    """Probe a published store; gate on recall and peak RSS."""
    store = BitPlaneStore(args.store)
    index = ClusteredTDAMIndex(store, nprobe=args.nprobe)
    queries = _sample_queries(
        store, args.queries, args.query_noise, args.seed
    )
    # Warm + time the routed probe.
    result = index.top_k(queries, args.k, nprobe=args.nprobe)
    best_s = float("inf")
    for _ in range(max(1, args.repeats)):
        start = time.perf_counter()
        repeat = index.top_k(queries, args.k, nprobe=args.nprobe)
        best_s = min(best_s, time.perf_counter() - start)
    if not np.array_equal(repeat.rows, result.rows):
        _emit("FAIL: repeated probes disagree (non-deterministic index)")
        return 1
    qps = args.queries / best_s
    # Ground truth: the full-probe answer, proven bit-identical to
    # exhaustive in-RAM top_k_batch (tests/index/, the ann bench gate).
    truth = index.top_k(queries, args.k, nprobe=index.n_clusters)
    hits = sum(
        len(set(result.rows[i]) & set(truth.rows[i]))
        for i in range(args.queries)
    )
    recall = hits / float(args.queries * args.k)
    rss_mb = peak_rss_mb()
    report: Dict[str, Any] = {
        "store": str(args.store),
        "rows": store.n_rows,
        "stages": store.n_stages,
        "shards": store.n_shards,
        "queries": args.queries,
        "k": args.k,
        "nprobe": result.nprobe,
        "probe_fraction": result.probe_fraction,
        "queries_per_s": qps,
        "recall_at_k": recall,
        "peak_rss_mb": rss_mb,
    }
    _emit(
        f"probed {store.n_rows} rows ({store.n_shards} shards) with "
        f"{args.queries} queries, k={args.k}, nprobe={result.nprobe}: "
        f"{qps:.0f} queries/s, recall@{args.k} {recall:.4f}, "
        f"probe fraction {result.probe_fraction:.4f}, "
        f"peak RSS {rss_mb:.0f} MiB"
    )
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        _emit(f"json report written to {args.json_out}")
    code = 0
    if args.min_recall is not None and recall < args.min_recall:
        _emit(
            f"FAIL: recall@{args.k} {recall:.4f} < required "
            f"{args.min_recall:.4f}"
        )
        code = 1
    if args.max_rss_mb is not None and rss_mb > args.max_rss_mb:
        _emit(
            f"FAIL: peak RSS {rss_mb:.0f} MiB > budget "
            f"{args.max_rss_mb:.0f} MiB"
        )
        code = 1
    return code
