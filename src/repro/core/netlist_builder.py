"""Builds :mod:`repro.spice` netlists of TD-AM circuits.

Three builders mirror the paper's figures:

- :func:`build_cell_circuit` -- one 2-FeFET IMC cell with its precharge
  PMOS and match-node capacitance (Fig. 2(d-f) transients);
- :func:`build_chain_circuit` -- an N-stage variable-capacitance delay
  chain wired for one step of the 2-step scheme (Fig. 4 waveforms);
- the returned :class:`ChainNetlist` carries the node names, the input
  waveform timing, and the initial conditions needed to run and measure
  the transient.

Timeline of a chain transient (one step):

1. ``0 .. T_PRECHARGE`` -- precharge PMOS on, all search lines at 0 V;
2. ``T_PRECHARGE ..`` -- precharge off, search lines driven with the step's
   encoding (query on active stages, V_SL0 on parked stages); mismatched
   match nodes discharge;
3. ``T_PULSE`` -- the input edge launches into the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import TDAMConfig
from repro.core.encoding import LevelEncoding
from repro.core.stage import STEP_I, STEP_II
from repro.devices.fefet import FeFET
from repro.devices.mosfet import nmos, pmos
from repro.spice.elements import (
    Capacitor,
    FeFETElement,
    MOSFETElement,
    StepWaveform,
    VoltageSource,
)
from repro.spice.netlist import Circuit

#: Precharge window (s).
T_PRECHARGE = 0.2e-9
#: Search lines applied this long after precharge ends (s).
T_SL = 0.25e-9
#: Input edge launch time (s).
T_PULSE = 0.8e-9


def _programmed_fefet(
    config: TDAMConfig,
    target_vth: float,
    rng: np.random.Generator,
    vth_offset: float,
    name: str,
) -> FeFET:
    """A FeFET programmed to a ladder level, with a variation offset."""
    device = FeFET(
        config.fefet,
        rng=np.random.default_rng(rng.integers(2**32)),
        vth_offset=vth_offset,
        name=name,
    )
    device.program_vth(target_vth)
    return device


@dataclass
class CellNetlist:
    """A cell netlist plus the probe points of the Fig. 2 transients."""

    circuit: Circuit
    mn_node: str = "mn"
    v_init: Dict[str, float] = field(default_factory=dict)
    t_settle: float = T_PRECHARGE + T_SL + 1.0e-9


def build_cell_circuit(
    config: TDAMConfig,
    stored: int,
    query: int,
    rng: Optional[np.random.Generator] = None,
    vth_offsets: Tuple[float, float] = (0.0, 0.0),
) -> CellNetlist:
    """One IMC cell: precharge then compute against ``query``.

    The circuit reproduces the Fig. 2(d-f) experiment: probe the match
    node and observe whether it stays at V_DD (match) or discharges
    (mismatch).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    encoding = LevelEncoding(config)
    drive = encoding.drive_for_query(query)
    fa = _programmed_fefet(config, encoding.vth_for_fa(stored), rng, vth_offsets[0], "FA")
    fb = _programmed_fefet(config, encoding.vth_for_fb(stored), rng, vth_offsets[1], "FB")

    ckt = Circuit(f"cell_s{stored}_q{query}")
    ckt.add(VoltageSource("vdd", config.vdd))
    # Precharge PMOS: gate low during the precharge window, then off.
    ckt.add(VoltageSource("preb", StepWaveform(0.0, config.vdd, t_step=T_PRECHARGE)))
    ckt.add(MOSFETElement("mn", "preb", "vdd", pmos(config.tech, width=2.0), name="Mpre"))
    # Search lines: 0 V until the compute phase, then the query encoding.
    t_on = T_PRECHARGE + T_SL
    ckt.add(VoltageSource("sla", StepWaveform(0.0, drive.vsl_a, t_step=t_on)))
    ckt.add(VoltageSource("slb", StepWaveform(0.0, drive.vsl_b, t_step=t_on)))
    ckt.add(FeFETElement("mn", "sla", "0", fa, name="FA"))
    ckt.add(FeFETElement("mn", "slb", "0", fb, name="FB"))
    ckt.add(Capacitor("mn", "0", config.c_mn_f, name="Cmn"))
    return CellNetlist(circuit=ckt, v_init={"mn": 0.0})


@dataclass
class ChainNetlist:
    """A chain netlist plus everything needed to run and measure it.

    Attributes:
        circuit: The netlist.
        input_node: Chain input (driven by the step edge).
        output_node: Final stage output.
        stage_out_nodes: Per-stage inverter outputs.
        mn_nodes: Per-stage match nodes.
        v_init: Consistent pre-pulse initial conditions.
        t_pulse: Launch time of the input edge (s).
        t_stop_hint: Suggested simulation end time (s).
        output_edge_rising: Whether the measured output edge is rising
            (depends on the chain's inversion parity).
        active_mismatches: Number of stages expected to add d_C in this
            step (ideal encoding semantics; the transient may differ under
            injected variation, which is the point of comparing).
    """

    circuit: Circuit
    input_node: str
    output_node: str
    stage_out_nodes: List[str]
    mn_nodes: List[str]
    v_init: Dict[str, float]
    t_pulse: float
    t_stop_hint: float
    output_edge_rising: bool
    active_mismatches: int


def build_chain_circuit(
    config: TDAMConfig,
    stored: Sequence[int],
    query: Sequence[int],
    step: str = STEP_I,
    rising_input: bool = True,
    rng: Optional[np.random.Generator] = None,
    vth_offsets: Optional[np.ndarray] = None,
    t_stop_margin: float = 4.0,
) -> ChainNetlist:
    """An N-stage delay chain wired for one step of the 2-step scheme.

    Args:
        config: Design point (N = ``config.n_stages``).
        stored: Stored vector (one level per stage).
        query: Query vector.
        step: ``"I"`` (even stages active) or ``"II"`` (odd stages).
        rising_input: Edge polarity launched at the input; the paper's
            step I processes the rising edge and step II the falling edge.
        rng: Seed source for the FeFET ensembles.
        vth_offsets: Optional (N, 2) per-stage device V_TH shifts.
        t_stop_margin: End time as a multiple of the worst-case delay.

    Returns:
        The assembled :class:`ChainNetlist`.
    """
    if step not in (STEP_I, STEP_II):
        raise ValueError(f"step must be 'I' or 'II', got {step!r}")
    rng = rng if rng is not None else np.random.default_rng(0)
    encoding = LevelEncoding(config)
    stored = encoding.validate_vector(stored)
    query = encoding.validate_vector(query)
    n = config.n_stages
    if len(stored) != n or len(query) != n:
        raise ValueError(
            f"stored/query must have length {n}, got {len(stored)}/{len(query)}"
        )
    if vth_offsets is None:
        vth_offsets = np.zeros((n, 2))
    vth_offsets = np.asarray(vth_offsets, dtype=float)

    vdd = config.vdd
    ckt = Circuit(f"chain{n}_step{step}")
    ckt.add(VoltageSource("vdd", vdd))
    ckt.add(VoltageSource("preb", StepWaveform(0.0, vdd, t_step=T_PRECHARGE)))
    if rising_input:
        input_wf = StepWaveform(0.0, vdd, t_step=T_PULSE, t_rise=20e-12)
        v_in0 = 0.0
    else:
        input_wf = StepWaveform(vdd, 0.0, t_step=T_PULSE, t_rise=20e-12)
        v_in0 = vdd
    ckt.add(VoltageSource("in", input_wf))

    t_sl = T_PRECHARGE + T_SL
    v_init: Dict[str, float] = {}
    stage_out_nodes: List[str] = []
    mn_nodes: List[str] = []
    active_mismatches = 0

    prev_node = "in"
    prev_level = v_in0
    inv_n = nmos(config.tech, width=config.inverter_nmos_width)
    inv_p = pmos(config.tech, width=config.inverter_pmos_width)
    sw_p = pmos(config.tech, width=config.switch_pmos_width)
    pre_p = pmos(config.tech, width=2.0)

    for i in range(n):
        out = f"s{i}_out"
        mn = f"s{i}_mn"
        cap = f"s{i}_cap"
        stage_out_nodes.append(out)
        mn_nodes.append(mn)
        # Inverter.
        ckt.add(MOSFETElement(out, prev_node, "0", inv_n, name=f"s{i}_Mn"))
        ckt.add(MOSFETElement(out, prev_node, "vdd", inv_p, name=f"s{i}_Mp"))
        ckt.add(Capacitor(out, "0", config.c_stage_par_f, name=f"s{i}_Cpar"))
        # IMC cell with the step's search-line drive.
        active = (step == STEP_I) == (i % 2 == 0)
        drive = (
            encoding.drive_for_query(int(query[i]))
            if active
            else encoding.drive_deactivated()
        )
        fa = _programmed_fefet(
            config, encoding.vth_for_fa(int(stored[i])), rng,
            float(vth_offsets[i, 0]), f"s{i}_FA",
        )
        fb = _programmed_fefet(
            config, encoding.vth_for_fb(int(stored[i])), rng,
            float(vth_offsets[i, 1]), f"s{i}_FB",
        )
        if active and int(stored[i]) != int(query[i]):
            active_mismatches += 1
        ckt.add(VoltageSource(f"s{i}_sla", StepWaveform(0.0, drive.vsl_a, t_step=t_sl)))
        ckt.add(VoltageSource(f"s{i}_slb", StepWaveform(0.0, drive.vsl_b, t_step=t_sl)))
        ckt.add(FeFETElement(mn, f"s{i}_sla", "0", fa, name=f"s{i}_FA"))
        ckt.add(FeFETElement(mn, f"s{i}_slb", "0", fb, name=f"s{i}_FB"))
        ckt.add(MOSFETElement(mn, "preb", "vdd", pre_p, name=f"s{i}_Mpre"))
        ckt.add(Capacitor(mn, "0", config.c_mn_f, name=f"s{i}_Cmn"))
        # Load branch: PMOS switch gated by MN, load capacitor behind it.
        ckt.add(MOSFETElement(cap, mn, out, sw_p, name=f"s{i}_Msw"))
        ckt.add(Capacitor(cap, "0", config.c_load_f, name=f"s{i}_Cload"))

        level = vdd - prev_level  # inverter output at DC
        v_init[out] = level
        v_init[cap] = level
        v_init[mn] = vdd
        prev_node = out
        prev_level = level

    # Worst-case delay bound for the stop-time hint.
    from repro.core.energy import TimingEnergyModel

    timing = TimingEnergyModel(config)
    worst = n * timing.d_inv + active_mismatches * timing.d_c
    t_stop = T_PULSE + max(t_stop_margin * max(worst, timing.d_c), 2e-9)

    # Output polarity: N inversions flip odd N.
    output_edge_rising = rising_input if n % 2 == 0 else not rising_input
    return ChainNetlist(
        circuit=ckt,
        input_node="in",
        output_node=stage_out_nodes[-1],
        stage_out_nodes=stage_out_nodes,
        mn_nodes=mn_nodes,
        v_init=v_init,
        t_pulse=T_PULSE,
        t_stop_hint=t_stop,
        output_edge_rising=output_edge_rising,
        active_mismatches=active_mismatches,
    )
