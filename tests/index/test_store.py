"""Bit-plane store: round trips, crash safety, corruption detection."""

import json

import numpy as np
import pytest

import repro.io
from repro.core.bitplane import pack_query_masks, packed_mismatch_counts
from repro.core.config import TDAMConfig
from repro.index import (
    BitPlaneStore,
    StoreCorruptionError,
    StoreManifestError,
    build_store,
    level_inequality_planes,
)
from repro.index.store import MANIFEST_NAME


@pytest.fixture
def config():
    return TDAMConfig(n_stages=32)


@pytest.fixture
def corpus(rng, config):
    return rng.integers(
        0, config.levels, size=(64, config.n_stages)
    ).astype(np.int64)


class _SimulatedCrash(BaseException):
    """Out of the Exception tree so nothing accidentally swallows it."""


class TestRoundTrip:
    def test_single_shard_round_trip(self, tmp_path, corpus, config):
        store = build_store(tmp_path / "s", corpus, config)
        assert store.n_rows == 64
        assert store.n_shards == 1
        shard = store.shard(0)
        assert np.array_equal(shard.levels, corpus.astype(np.uint8))
        assert np.array_equal(shard.row_ids, np.arange(64))
        expected = level_inequality_planes(
            corpus.astype(np.uint8), config.levels
        )
        assert np.array_equal(shard.planes, expected)

    def test_reopen_without_repacking(self, tmp_path, corpus, config):
        built = build_store(tmp_path / "s", corpus, config)
        reopened = BitPlaneStore(tmp_path / "s")
        assert reopened.generation == built.generation
        assert np.array_equal(
            reopened.shard(0).planes, built.shard(0).planes
        )

    def test_clustered_shards_partition_the_corpus(
        self, tmp_path, corpus, config, rng
    ):
        assignments = rng.integers(0, 4, size=64)
        cents = rng.integers(
            0, config.levels, size=(4, config.n_stages)
        ).astype(np.uint8)
        store = build_store(
            tmp_path / "s", corpus, config,
            assignments=assignments, centroid_levels=cents,
        )
        seen = []
        for i in range(store.n_shards):
            shard = store.shard(i)
            ids = np.asarray(shard.row_ids)
            # Ascending global ids within a shard, levels match source.
            assert np.all(np.diff(ids) > 0)
            assert np.array_equal(
                shard.levels, corpus[ids].astype(np.uint8)
            )
            assert np.all(assignments[ids] == shard.cluster)
            seen.append(ids)
        assert np.array_equal(np.sort(np.concatenate(seen)), np.arange(64))
        assert np.array_equal(store.centroid_levels, cents)

    def test_memmapped_planes_feed_the_packed_kernels(
        self, tmp_path, corpus, config, rng
    ):
        store = build_store(tmp_path / "s", corpus, config)
        queries = rng.integers(
            0, config.levels, size=(5, config.n_stages)
        )
        masks = pack_query_masks(queries, config.levels)
        counts = packed_mismatch_counts(store.shard(0).planes, masks)
        expected = (queries[:, None, :] != corpus[None, :, :]).sum(axis=2)
        assert np.array_equal(counts, expected)

    def test_shards_map_lazily(self, tmp_path, corpus, config, rng):
        assignments = rng.integers(0, 4, size=64)
        cents = rng.integers(
            0, config.levels, size=(4, config.n_stages)
        ).astype(np.uint8)
        build_store(
            tmp_path / "s", corpus, config,
            assignments=assignments, centroid_levels=cents,
        )
        store = BitPlaneStore(tmp_path / "s")
        assert store.n_mapped_shards == 0
        store.shard(0).planes
        assert store.n_mapped_shards == 1

    def test_rebuild_bumps_generation_and_collects_stale(
        self, tmp_path, corpus, config
    ):
        first = build_store(tmp_path / "s", corpus, config)
        second = build_store(tmp_path / "s", corpus[:32], config)
        assert second.generation == first.generation + 1
        assert not list((tmp_path / "s").glob("g000000.*"))
        assert second.n_rows == 32


class TestValidation:
    def test_stage_mismatch_rejected(self, tmp_path, corpus, config):
        with pytest.raises(ValueError, match="stages"):
            build_store(
                tmp_path / "s", corpus[:, :16], config
            )

    def test_bad_assignment_shape_rejected(self, tmp_path, corpus, config):
        with pytest.raises(ValueError, match="assignments"):
            build_store(
                tmp_path / "s", corpus, config,
                assignments=np.zeros(3, dtype=np.int64),
            )

    def test_assignment_beyond_centroids_rejected(
        self, tmp_path, corpus, config
    ):
        cents = np.zeros((2, config.n_stages), dtype=np.uint8)
        with pytest.raises(ValueError, match="centroids"):
            build_store(
                tmp_path / "s", corpus, config,
                assignments=np.full(64, 5, dtype=np.int64),
                centroid_levels=cents,
            )


class TestCrashSafety:
    def _crash_on_manifest(self, monkeypatch):
        original = repro.io._REPLACE

        def crash(tmp, dst):
            if str(dst).endswith(MANIFEST_NAME):
                raise _SimulatedCrash()
            return original(tmp, dst)

        monkeypatch.setattr(repro.io, "_REPLACE", crash)

    def test_crash_before_manifest_keeps_previous_generation(
        self, tmp_path, corpus, config, monkeypatch
    ):
        root = tmp_path / "s"
        build_store(root, corpus, config)
        before = BitPlaneStore(root)
        planes_before = np.array(before.shard(0).planes)
        self._crash_on_manifest(monkeypatch)
        with pytest.raises(_SimulatedCrash):
            build_store(root, corpus[:16], config)
        monkeypatch.undo()
        after = BitPlaneStore(root)
        assert after.generation == before.generation
        assert after.n_rows == 64
        assert np.array_equal(after.shard(0).planes, planes_before)

    def test_crash_mid_components_keeps_previous_generation(
        self, tmp_path, corpus, config, monkeypatch
    ):
        root = tmp_path / "s"
        build_store(root, corpus, config)
        before = json.loads((root / MANIFEST_NAME).read_text())

        def crash(tmp, dst):
            raise _SimulatedCrash()

        monkeypatch.setattr(repro.io, "_REPLACE", crash)
        with pytest.raises(_SimulatedCrash):
            build_store(root, corpus[:16], config)
        monkeypatch.undo()
        assert json.loads((root / MANIFEST_NAME).read_text()) == before
        store = BitPlaneStore(root)
        assert store.n_rows == 64
        # The interrupted generation's components must still verify for
        # the *published* generation -- the probe path works unchanged.
        assert store.shard(0).planes.shape[0] == config.levels

    def test_crash_on_first_build_leaves_no_store(
        self, tmp_path, corpus, config, monkeypatch
    ):
        root = tmp_path / "s"
        self._crash_on_manifest(monkeypatch)
        with pytest.raises(_SimulatedCrash):
            build_store(root, corpus, config)
        monkeypatch.undo()
        with pytest.raises(StoreManifestError, match="manifest"):
            BitPlaneStore(root)


class TestCorruptionDetection:
    def test_flipped_plane_byte_raises_typed_error(
        self, tmp_path, corpus, config
    ):
        build_store(tmp_path / "s", corpus, config)
        victim = next((tmp_path / "s").glob("*.planes"))
        blob = bytearray(victim.read_bytes())
        blob[0] ^= 0xFF
        victim.write_bytes(bytes(blob))
        store = BitPlaneStore(tmp_path / "s")
        with pytest.raises(StoreCorruptionError, match="checksum"):
            store.shard(0).planes

    def test_truncated_component_raises_typed_error(
        self, tmp_path, corpus, config
    ):
        build_store(tmp_path / "s", corpus, config)
        victim = next((tmp_path / "s").glob("*.rows"))
        victim.write_bytes(victim.read_bytes()[:-8])
        store = BitPlaneStore(tmp_path / "s")
        with pytest.raises(StoreCorruptionError, match="bytes"):
            store.shard(0).row_ids

    def test_missing_component_raises_typed_error(
        self, tmp_path, corpus, config
    ):
        build_store(tmp_path / "s", corpus, config)
        next((tmp_path / "s").glob("*.levels")).unlink()
        store = BitPlaneStore(tmp_path / "s")
        with pytest.raises(StoreCorruptionError, match="missing"):
            store.shard(0).levels

    def test_garbage_manifest_raises_manifest_error(
        self, tmp_path, corpus, config
    ):
        build_store(tmp_path / "s", corpus, config)
        (tmp_path / "s" / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(StoreManifestError, match="JSON"):
            BitPlaneStore(tmp_path / "s")

    def test_unsupported_format_raises_manifest_error(
        self, tmp_path, corpus, config
    ):
        build_store(tmp_path / "s", corpus, config)
        payload = json.loads(
            (tmp_path / "s" / MANIFEST_NAME).read_text()
        )
        payload["format"] = 99
        (tmp_path / "s" / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(StoreManifestError, match="format"):
            BitPlaneStore(tmp_path / "s")

    def test_row_sum_mismatch_raises_manifest_error(
        self, tmp_path, corpus, config
    ):
        build_store(tmp_path / "s", corpus, config)
        payload = json.loads(
            (tmp_path / "s" / MANIFEST_NAME).read_text()
        )
        payload["geometry"]["n_rows"] = 63
        (tmp_path / "s" / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(StoreManifestError, match="sum"):
            BitPlaneStore(tmp_path / "s")
