"""Batched-search kernel selection: override, autotune, dispatch.

:meth:`FastTDAMArray.search_batch` has three interchangeable kernels --
``packed`` (bit-plane popcount), ``gemm`` (one-hot matmul), and ``loop``
(the per-query reference) -- all bit-exact against each other, so
choosing between them is purely a performance decision.  This module
makes that choice:

1. an explicit override wins: :func:`force_kernel` (tests, benchmarks)
   beats the :data:`KERNEL_ENV_VAR` environment variable (``auto`` /
   ``packed`` / ``gemm`` / ``loop``), which beats autotuning;
2. otherwise the dispatcher **autotunes**: the candidate kernels are
   timed once on a small query sample and the winner is cached per
   array geometry (rows, stages, levels, timing mode) for the life of
   the process.

The ``loop`` kernel is reachable only by explicit override -- it exists
as the bit-exactness reference and is never worth autotuning.
Autotune decisions are observable through the ``kernel.autotune``
telemetry probe and :func:`autotune_decisions`.

Decisions persist across processes through a per-machine **profile
file** (:func:`autotune_profile_path`, default
``~/.cache/repro/autotune.json``, overridable via
:data:`AUTOTUNE_PROFILE_ENV`; an empty value disables persistence).
The profile is loaded lazily on the first cache miss and written with
:func:`repro.io.atomic_write`, so cold processes -- Monte Carlo worker
pools, shard processes, index builders -- start on the right kernel
instead of re-measuring.  Decisions timed while telemetry tracing is
enabled are quarantined in a separate cache: the enabled-path overhead
(~30% on instrumented thunks) can flip the winner, and such a decision
must outlive neither the tracing session nor the process.

Query-chunk decisions ride in the same profile.  The batched kernels
auto-size their query chunk with a memory-budget heuristic
(:func:`repro.core.array.resolve_query_chunk`); for large batches
:func:`select_query_chunk` measures a few candidate sizes around that
heuristic and caches the winner per geometry, under exactly the same
precedence (explicit chunk argument wins upstream), persistence
(``chunks`` map next to ``entries``) and traced-timing quarantine as
the kernel decisions.  Chunking never changes results, so this too is
purely a performance decision.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.telemetry.profile import emit_probe as _emit_probe
from repro.telemetry.state import STATE as _TM

__all__ = [
    "AUTOTUNE_PROFILE_ENV",
    "KERNEL_ENV_VAR",
    "autotune_decisions",
    "autotune_profile_path",
    "available_kernels",
    "chunk_decisions",
    "clear_autotune_cache",
    "force_kernel",
    "kernel_override",
    "select_kernel",
    "select_query_chunk",
]

#: Environment variable naming the batched-search kernel to use.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Environment variable overriding the autotune profile location; an
#: empty (or whitespace) value disables persistence entirely.
AUTOTUNE_PROFILE_ENV = "REPRO_AUTOTUNE_PROFILE"

#: Format tag of the persisted profile, bumped on layout changes.
_PROFILE_FORMAT = 1

_KERNELS = ("packed", "gemm", "loop")
# Best-of-N timing per candidate; the thunks are microsecond-scale, so
# a few extra repeats cost nothing and keep scheduler noise (single-CPU
# boxes especially) from flipping the cached decision.
_AUTOTUNE_REPEATS = 7
# Chunk candidates run full chunked count passes (milliseconds, not
# microseconds), so fewer repeats keep the one-off measurement cheap.
_CHUNK_REPEATS = 3

_forced: Optional[str] = None
_autotune_cache: Dict[Tuple, str] = {}
_chunk_cache: Dict[Tuple, int] = {}
# Decisions timed under enabled telemetry tracing; kept apart from
# _autotune_cache so they are never persisted and never consulted once
# tracing is off again (the instrumented timings are not trustworthy).
_traced_cache: Dict[Tuple, str] = {}
_traced_chunk_cache: Dict[Tuple, int] = {}
# Whether the persisted profile has been merged into _autotune_cache.
_profile_loaded = False


def available_kernels() -> Tuple[str, ...]:
    """Names of the selectable batched-search kernels."""
    return _KERNELS


def _validate(name: str, allow_auto: bool) -> str:
    value = name.strip().lower()
    valid = _KERNELS + (("auto",) if allow_auto else ())
    if value not in valid:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {sorted(valid)}"
        )
    return value


def kernel_override() -> Optional[str]:
    """The kernel forced by :func:`force_kernel` or the environment.

    Returns ``None`` when no override is active (``auto`` included), so
    the dispatcher falls through to autotuning.  An unknown name in
    :data:`KERNEL_ENV_VAR` raises instead of silently autotuning.
    """
    if _forced is not None:
        return _forced
    value = os.environ.get(KERNEL_ENV_VAR, "")
    if not value.strip():
        return None
    value = _validate(value, allow_auto=True)
    return None if value == "auto" else value


@contextmanager
def force_kernel(name: str) -> Iterator[None]:
    """Force one batched-search kernel inside a ``with`` block.

    Takes precedence over :data:`KERNEL_ENV_VAR`; the previous override
    (usually none) is restored on exit.  The benchmark harness and the
    bit-exactness tests use this to pin each kernel in turn.
    """
    global _forced
    previous = _forced
    _forced = _validate(name, allow_auto=False)
    try:
        yield
    finally:
        _forced = previous


def clear_autotune_cache() -> None:
    """Forget every cached autotune decision (tests, re-benchmarking).

    Also forgets that the persisted profile was loaded, so the next
    :func:`select_kernel` miss re-reads it -- i.e. this restores a
    cold-process state, not an empty-machine state.  Point
    :data:`AUTOTUNE_PROFILE_ENV` at an empty value first to force
    genuine re-measurement.
    """
    global _profile_loaded
    _autotune_cache.clear()
    _chunk_cache.clear()
    _traced_cache.clear()
    _traced_chunk_cache.clear()
    _profile_loaded = False


def autotune_decisions() -> Dict[Tuple, str]:
    """A copy of the cached (geometry key -> winning kernel) decisions.

    Only trustworthy (untraced) decisions appear here; winners timed
    under enabled telemetry tracing are quarantined internally.
    """
    return dict(_autotune_cache)


def chunk_decisions() -> Dict[Tuple, int]:
    """A copy of the cached (geometry key -> query chunk) decisions.

    Same contract as :func:`autotune_decisions`: traced winners are
    quarantined and never appear here.
    """
    return dict(_chunk_cache)


def autotune_profile_path() -> Optional[Path]:
    """Location of the persisted autotune profile, or ``None``.

    :data:`AUTOTUNE_PROFILE_ENV` overrides the default
    ``~/.cache/repro/autotune.json``; setting it to an empty value
    disables persistence (the in-process cache still works).
    """
    value = os.environ.get(AUTOTUNE_PROFILE_ENV)
    if value is not None:
        value = value.strip()
        return Path(value) if value else None
    return Path.home() / ".cache" / "repro" / "autotune.json"


def _load_profile() -> None:
    """Merge the persisted profile into the in-process cache, once.

    A missing, unreadable, or corrupt profile is ignored -- the
    dispatcher simply re-measures, exactly as if the file were absent.
    In-process decisions win over persisted ones.
    """
    global _profile_loaded
    if _profile_loaded:
        return
    _profile_loaded = True
    path = autotune_profile_path()
    if path is None:
        return
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return
    if not isinstance(payload, dict) or payload.get("format") != _PROFILE_FORMAT:
        return
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        return
    for key_str, winner in entries.items():
        if winner not in _KERNELS:
            continue
        try:
            key = tuple(json.loads(key_str))
        except ValueError:
            continue
        _autotune_cache.setdefault(key, winner)
    chunks = payload.get("chunks")
    if not isinstance(chunks, dict):
        return
    for key_str, winner in chunks.items():
        if not isinstance(winner, int) or isinstance(winner, bool) or winner < 1:
            continue
        try:
            key = tuple(json.loads(key_str))
        except ValueError:
            continue
        _chunk_cache.setdefault(key, winner)


def _save_profile() -> None:
    """Persist the untraced cache (merge-over-existing, atomic publish).

    The profile is an optimization, never a correctness artifact: any
    I/O failure is swallowed and the in-process cache carries on.
    """
    path = autotune_profile_path()
    if path is None:
        return
    from repro.io import atomic_write  # local: avoids an import cycle

    entries: Dict[str, str] = {}
    chunks: Dict[str, int] = {}
    try:
        payload = json.loads(path.read_text())
        if isinstance(payload, dict) and payload.get("format") == _PROFILE_FORMAT:
            existing = payload.get("entries")
            if isinstance(existing, dict):
                entries.update(existing)
            existing_chunks = payload.get("chunks")
            if isinstance(existing_chunks, dict):
                chunks.update(existing_chunks)
    except (OSError, ValueError):
        pass
    entries.update(
        {json.dumps(list(key)): winner
         for key, winner in _autotune_cache.items()}
    )
    chunks.update(
        {json.dumps(list(key)): winner
         for key, winner in _chunk_cache.items()}
    )
    doc = json.dumps(
        {"format": _PROFILE_FORMAT, "entries": entries, "chunks": chunks},
        indent=2,
        sort_keys=True,
    )
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write(path, lambda handle: handle.write(doc.encode("utf-8")))
    except OSError:
        pass


def select_kernel(
    key: Tuple, candidates: Dict[str, Callable[[], None]]
) -> str:
    """Pick the batched-search kernel for one array geometry.

    Args:
        key: Hashable geometry/timing key the decision is cached under
            (rows, stages, levels, nominal-timing flag).
        candidates: Kernel name -> zero-argument thunk running that
            kernel on a small representative sample; only consulted
            when no override is active and the key is not cached.

    Returns:
        The kernel name to run.  An override may name a kernel outside
        ``candidates`` (the ``loop`` reference); autotune only ever
        returns a candidate.
    """
    override = kernel_override()
    if override is not None:
        return override
    cached = _autotune_cache.get(key)
    if cached is None and not _profile_loaded:
        _load_profile()
        cached = _autotune_cache.get(key)
    if cached is not None and cached in candidates:
        return cached
    if _TM.enabled:
        traced = _traced_cache.get(key)
        if traced is not None and traced in candidates:
            return traced
    timings: Dict[str, float] = {}
    for name, thunk in candidates.items():
        thunk()  # warm: first call may build caches
        best = float("inf")
        for _ in range(_AUTOTUNE_REPEATS):
            start = time.perf_counter()
            thunk()
            best = min(best, time.perf_counter() - start)
        timings[name] = best
    winner = min(timings, key=timings.get)
    if _TM.enabled:
        # Tracing inflates every instrumented thunk, which can flip the
        # winner; quarantine the decision so it never reaches the
        # untraced cache or the persisted profile.
        _traced_cache[key] = winner
        _emit_probe(
            "kernel.autotune",
            key=repr(key),
            winner=winner,
            traced=True,
            **{f"{name}_s": t for name, t in timings.items()},
        )
    else:
        _autotune_cache[key] = winner
        _save_profile()
    return winner


def select_query_chunk(
    key: Tuple, candidates: Dict[int, Callable[[], None]]
) -> int:
    """Pick the batched-kernel query chunk for one array geometry.

    The chunked-counts analog of :func:`select_kernel`: candidate chunk
    sizes (built by the caller around the
    :func:`~repro.core.array.resolve_query_chunk` heuristic) are timed
    best-of-:data:`_CHUNK_REPEATS` on a representative sample, and the
    winner is cached per geometry and persisted in the ``chunks`` map
    of the autotune profile.  Decisions timed under enabled telemetry
    tracing are quarantined exactly like kernel decisions.  There is no
    environment override -- an explicit ``chunk`` argument upstream
    already bypasses this path entirely.

    Args:
        key: Hashable geometry key the decision is cached under.
        candidates: Chunk size -> zero-argument thunk running the
            chunked kernel at that size on a representative sample.

    Returns:
        The chunk size to use (always one of ``candidates``).
    """
    if not candidates:
        raise ValueError("select_query_chunk needs at least one candidate")
    cached = _chunk_cache.get(key)
    if cached is None and not _profile_loaded:
        _load_profile()
        cached = _chunk_cache.get(key)
    if cached is not None and cached in candidates:
        return cached
    if _TM.enabled:
        traced = _traced_chunk_cache.get(key)
        if traced is not None and traced in candidates:
            return traced
    timings: Dict[int, float] = {}
    for size, thunk in candidates.items():
        thunk()  # warm: first call may build caches
        best = float("inf")
        for _ in range(_CHUNK_REPEATS):
            start = time.perf_counter()
            thunk()
            best = min(best, time.perf_counter() - start)
        timings[size] = best
    winner = min(timings, key=timings.get)
    if _TM.enabled:
        _traced_chunk_cache[key] = winner
        _emit_probe(
            "kernel.autotune",
            key=repr(key),
            winner=str(winner),
            kind="chunk",
            traced=True,
            **{f"chunk_{size}_s": t for size, t in timings.items()},
        )
    else:
        _chunk_cache[key] = winner
        _save_profile()
    return winner
