"""Tests of the event-level array controller."""

import numpy as np
import pytest

from repro.core.config import TDAMConfig
from repro.core.controller import (
    T_ROW_WRITE_S,
    ArrayController,
    Command,
    Phase,
)


@pytest.fixture
def controller():
    config = TDAMConfig(n_stages=16)
    ctrl = ArrayController(config, n_rows=4, seed=1)
    rng = np.random.default_rng(0)
    stored = rng.integers(0, 4, size=(4, 16))
    ctrl.run([Command("write", row=r, vector=stored[r]) for r in range(4)])
    return ctrl, stored


class TestCommands:
    def test_command_validation(self):
        with pytest.raises(ValueError, match="op"):
            Command("erase")
        with pytest.raises(ValueError, match="row"):
            Command("write", vector=np.zeros(4))
        with pytest.raises(ValueError, match="vector"):
            Command("search")

    def test_write_then_search(self, controller):
        ctrl, stored = controller
        result = ctrl.execute(Command("search", vector=stored[2]))
        assert result.best_row == 2
        assert result.hamming_distances[2] == 0

    def test_read_returns_latched_result(self, controller):
        ctrl, stored = controller
        search = ctrl.execute(Command("search", vector=stored[1]))
        read = ctrl.execute(Command("read"))
        assert read is search
        assert np.array_equal(ctrl.state.counters, search.counts)

    def test_read_before_search_raises(self, controller):
        ctrl, _ = controller
        with pytest.raises(RuntimeError, match="before any search"):
            ctrl.execute(Command("read"))


class TestTrace:
    def test_write_phase_logged(self, controller):
        ctrl, _ = controller
        writes = [e for e in ctrl.state.events if e.phase is Phase.WRITE]
        assert len(writes) == 4
        assert all(
            e.duration_s == pytest.approx(T_ROW_WRITE_S) for e in writes
        )

    def test_search_phases_in_order(self, controller):
        ctrl, stored = controller
        ctrl.execute(Command("search", vector=stored[0]))
        phases = [e.phase for e in ctrl.state.events[-5:]]
        assert phases == [
            Phase.PRECHARGE, Phase.SL_SETUP, Phase.STEP_I, Phase.STEP_II,
            Phase.READOUT,
        ]

    def test_time_monotone(self, controller):
        ctrl, stored = controller
        ctrl.execute(Command("search", vector=stored[0]))
        events = ctrl.state.events
        for a, b in zip(events, events[1:]):
            assert b.t_start_s == pytest.approx(a.t_end_s)

    def test_search_time_matches_scheduler(self, controller):
        """The controller's logged search time equals the analytic
        phase schedule -- the cross-model consistency contract."""
        ctrl, stored = controller
        before = ctrl.elapsed_s
        ctrl.execute(Command("search", vector=stored[0]))
        logged = ctrl.elapsed_s - before
        assert logged == pytest.approx(ctrl.search_latency_s())

    def test_phase_durations_accumulate(self, controller):
        ctrl, stored = controller
        ctrl.execute(Command("search", vector=stored[0]))
        ctrl.execute(Command("search", vector=stored[1]))
        durations = ctrl.phase_durations()
        assert durations[Phase.WRITE] == pytest.approx(4 * T_ROW_WRITE_S)
        assert durations[Phase.PRECHARGE] > 0

    def test_format_trace(self, controller):
        ctrl, stored = controller
        ctrl.execute(Command("search", vector=stored[0]))
        text = ctrl.format_trace()
        assert "readout" in text
        assert "ns" in text
