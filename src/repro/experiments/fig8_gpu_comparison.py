"""Fig. 8: TD-AM system vs. GPU -- speedup and energy efficiency.

The paper's system comparison at the 128-stage, 0.6 V operating point:
per-query inference latency and energy of the TD-AM architecture (FeFET
encoder + tile-serial associative search) against the RTX 4070 cost
model, across the Fig. 7 dimensionalities and all three datasets.

Headline numbers to compare shapes against (paper Sec. IV-B):

- speedup 194x (ISOLET) .. 287x (FACE) at the smallest dimensionality,
  attenuating to an 11.65x average at D = 10240;
- 124.8x average speedup at the 3-4 bit / 1024-D accuracy-parity point;
- energy efficiency 5061x .. 5790x at small D, 303x average at the
  highest D, 2837x at the 3-4 bit / 1024-D point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.baselines.gpu import GPUCostModel, GPUWorkload
from repro.core.config import TDAMConfig
from repro.hdc.mapping import TDAMInference
from repro.hdc.quantize import QuantizedModel
from repro.experiments._instrument import instrumented

#: Dataset shapes of the comparison (features, classes).
DATASET_SHAPES: Dict[str, "tuple[int, int]"] = {
    "isolet": (617, 26),
    "ucihar": (561, 6),
    "face": (608, 2),
}

#: The paper's Fig. 8 operating point.
FIG8_CONFIG = dict(bits=2, n_stages=128, vdd=0.6)


@dataclass
class Fig8Record:
    """One (dataset, dimension) comparison point."""

    dataset: str
    dimension: int
    tdam_latency_s: float
    tdam_energy_j: float
    gpu_latency_s: float
    gpu_energy_j: float

    @property
    def speedup(self) -> float:
        return self.gpu_latency_s / self.tdam_latency_s

    @property
    def energy_efficiency(self) -> float:
        return self.gpu_energy_j / self.tdam_energy_j


@dataclass
class Fig8Result:
    """The full Fig. 8 comparison."""

    records: List[Fig8Record]
    dimensions: Sequence[int]

    def by(self, dataset: str, dimension: int) -> Fig8Record:
        for r in self.records:
            if (r.dataset, r.dimension) == (dataset, dimension):
                return r
        raise KeyError(f"no record for {(dataset, dimension)}")

    def speedup_range_at(self, dimension: int) -> "tuple[float, float]":
        values = [r.speedup for r in self.records if r.dimension == dimension]
        return min(values), max(values)

    def average_speedup_at(self, dimension: int) -> float:
        values = [r.speedup for r in self.records if r.dimension == dimension]
        return float(np.mean(values))

    def average_efficiency_at(self, dimension: int) -> float:
        values = [
            r.energy_efficiency for r in self.records if r.dimension == dimension
        ]
        return float(np.mean(values))


def _placeholder_model(bits: int, dimension: int, n_classes: int) -> QuantizedModel:
    """A structurally correct quantized model for cost evaluation.

    Fig. 8 measures latency/energy, which depend only on the model's
    shape (D, classes, bits), not its contents.
    """
    rng = np.random.default_rng(0)
    levels = rng.integers(0, 2**bits, size=(n_classes, dimension))
    edges = np.linspace(-1, 1, 2**bits + 1)[1:-1]
    centers = np.linspace(-1, 1, 2**bits)
    return QuantizedModel(
        levels=levels, edges=edges, centers=centers, bits=bits,
        method="equal-area",
    )


@instrumented("fig8")
def run_fig8(
    dimensions: Sequence[int] = (512, 1024, 2048, 5120, 10240),
    bits: int = 2,
    gpu: Optional[GPUCostModel] = None,
    config: Optional[TDAMConfig] = None,
    mismatch_fraction: float = 0.5,
) -> Fig8Result:
    """Run the system comparison across dimensions and datasets."""
    gpu = gpu or GPUCostModel()
    base = config or TDAMConfig(**{**FIG8_CONFIG, "bits": bits})
    records: List[Fig8Record] = []
    for name, (n_features, n_classes) in DATASET_SHAPES.items():
        for dim in dimensions:
            model = _placeholder_model(bits, int(dim), n_classes)
            inference = TDAMInference(model, config=base, n_features=n_features)
            cost = inference.query_cost(mismatch_fraction=mismatch_fraction)
            workload = GPUWorkload(
                dimension=int(dim), n_classes=n_classes, n_features=n_features
            )
            records.append(
                Fig8Record(
                    dataset=name,
                    dimension=int(dim),
                    tdam_latency_s=cost.latency_s,
                    tdam_energy_j=cost.energy_j,
                    gpu_latency_s=gpu.per_query_time_s(workload),
                    gpu_energy_j=gpu.per_query_energy_j(workload),
                )
            )
    return Fig8Result(records=records, dimensions=list(dimensions))


def format_fig8(result: Fig8Result) -> str:
    """Text rendering of the speedup/efficiency series."""
    rows = []
    for r in result.records:
        rows.append(
            {
                "dataset": r.dataset,
                "D": r.dimension,
                "tdam_us": r.tdam_latency_s * 1e6,
                "gpu_us": r.gpu_latency_s * 1e6,
                "speedup": r.speedup,
                "tdam_nJ": r.tdam_energy_j * 1e9,
                "gpu_uJ": r.gpu_energy_j * 1e6,
                "energy_eff": r.energy_efficiency,
            }
        )
    body = format_table(
        rows, title="Fig. 8: TD-AM (128 stages, 0.6 V) vs. GPU model"
    )
    d_min, d_max = min(result.dimensions), max(result.dimensions)
    lo, hi = result.speedup_range_at(d_min)
    return (
        f"{body}\n"
        f"speedup at D={d_min}: {lo:.0f}x..{hi:.0f}x "
        f"(paper: 194x..287x); average at D={d_max}: "
        f"{result.average_speedup_at(d_max):.1f}x (paper: 11.65x)\n"
        f"energy efficiency average at D={d_max}: "
        f"{result.average_efficiency_at(d_max):.0f}x (paper: 303x)"
    )


if __name__ == "__main__":
    from repro.cli import emit

    emit(format_fig8(run_fig8()))
