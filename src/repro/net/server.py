"""The asyncio TCP server fronting a :class:`CoalescingFrontend`.

One :class:`TDAMSocketServer` adopts an already-built front end (and
whatever service stack sits behind it) and serves the wire protocol of
:mod:`repro.net.wire` to any number of concurrent connections.  The
design keeps every robustness property the in-process stack earned:

- **typed failures cross the wire** -- every exception the front end
  raises is encoded losslessly (:func:`~repro.net.wire.encode_error`)
  and re-raised as the same type client-side; a malformed byte stream
  gets a connection-level typed error and the connection is dropped
  (framing is unrecoverable after corruption);
- **bounded in-flight window** -- each connection may have at most
  ``max_in_flight`` requests being served; the reader coroutine blocks
  on the window *before* reading more frames, so an overdriving client
  is throttled by TCP backpressure instead of ballooning server
  memory.  Admission control (queue bounds, quotas) still happens in
  the front end -- the window is per-connection flow control, not a
  second admission layer;
- **remaining-budget deadlines** -- requests carry ``budget_s``, the
  budget left at client send time; the server dates the deadline from
  frame arrival, so time spent on the wire is spent out of the same
  budget and no wall-clock agreement between hosts is needed;
- **request-id propagation** -- a client-minted ``request_id`` becomes
  the server-side :class:`~repro.telemetry.request.RequestContext`, so
  traces and flight-recorder stories span the wire;
- **graceful drain** -- on SIGTERM (or :meth:`drain`): stop accepting,
  send ``goaway`` on every live connection, let in-flight requests
  finish under ``drain_grace_s``, then close sockets and drain the
  front end.  In-flight work is answered; only *new* work is refused.

The front end itself is thread-blocking (futures, dispatcher thread),
so the server bridges via ``run_in_executor``: the event loop never
blocks on a search, and the GIL-released numpy kernels behind the
front end keep the executor threads cheap.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import socket
from typing import Dict, Optional, Set

from repro.net.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameCorruptError,
    FrameDecoder,
    FrameTimeoutError,
    HandshakeError,
    PROTOCOL_VERSION,
    WireProtocolError,
    encode_frame,
    error_message,
    goaway_message,
    hello_ok_message,
    note_frame,
    note_wire_error,
    response_message,
)
from repro.service.errors import (
    DeadlineExceededError,
    InvalidRequestError,
    ServiceError,
)
from repro.telemetry import metrics as _metrics
from repro.telemetry.log import get_logger
from repro.telemetry.profile import emit_probe as _emit_probe
from repro.telemetry.request import RequestContext, request_scope
from repro.telemetry.state import STATE as _TM

__all__ = ["TDAMSocketServer", "serve_until_signal"]

_log = get_logger(__name__)

_REG = _metrics.get_registry()
_CONNECTIONS = _REG.counter(
    "net_connections_total",
    "Connections accepted by the socket server",
)
_ACTIVE = _REG.gauge(
    "net_connections_active",
    "Connections currently open on the socket server",
)
_REQUESTS = _REG.counter(
    "net_requests_total",
    "Remote requests served, by outcome (ok/error)",
    labels=("outcome",),
)
_DRAINS = _REG.counter(
    "net_drains_total",
    "Graceful drains executed by the socket server",
)

_READ_CHUNK = 1 << 16


class _Connection:
    """Per-connection state: writer, window, and in-flight tasks."""

    def __init__(
        self, writer: asyncio.StreamWriter, max_in_flight: int
    ) -> None:
        self.writer = writer
        self.window = asyncio.Semaphore(max_in_flight)
        self.write_lock = asyncio.Lock()
        self.tasks: Set[asyncio.Task] = set()
        self.greeted = False
        self.closing = False


class TDAMSocketServer:
    """Serve one coalescing front end over asyncio TCP.

    Args:
        frontend: A started :class:`~repro.service.frontend
            .CoalescingFrontend` (``auto_dispatch=True``); the server
            adopts it and drains it at shutdown.
        host: Bind address (default loopback).
        port: Bind port (0 = ephemeral; read :attr:`port` after
            :meth:`start`).
        max_in_flight: Per-connection in-flight request window.
        max_frame_bytes: Hard frame cap handed to the decoder.
        frame_timeout_s: Max quiet time between reads on a connection
            before it is dropped (slow-loris defense; also the idle
            timeout -- an idle client should reconnect, not squat).
        drain_grace_s: How long :meth:`drain` waits for in-flight
            requests before force-closing connections.
        name: Label for logs.
    """

    def __init__(
        self,
        frontend,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = 8,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        frame_timeout_s: float = 30.0,
        drain_grace_s: float = 5.0,
        name: str = "tdam-server",
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.frontend = frontend
        self.host = host
        self.name = name
        self.max_in_flight = max_in_flight
        self.max_frame_bytes = max_frame_bytes
        self.frame_timeout_s = frame_timeout_s
        self.drain_grace_s = drain_grace_s
        self._requested_port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Dict[int, _Connection] = {}
        self._conn_seq = 0
        self._draining = False
        self._drained = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        sockets = self._server.sockets or []
        for s in sockets:
            return int(s.getsockname()[1])
        return self._requested_port

    async def start(self) -> "TDAMSocketServer":
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        _log.info(
            "socket server listening",
            extra={"host": self.host, "port": self.port},
        )
        return self

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain gracefully."""
        if self._server is None:
            await self.start()
        await stop.wait()
        await self.drain()

    async def drain(self, reason: str = "draining") -> int:
        """Graceful shutdown; returns in-flight requests awaited.

        Stop accepting, tell every live connection ``goaway``, give
        in-flight requests ``drain_grace_s`` to finish, then close
        everything and drain the front end.  Idempotent: later calls
        await the first and return 0.
        """
        if self._draining:
            await self._drained.wait()
            return 0
        self._draining = True
        loop = asyncio.get_running_loop()
        started = loop.time()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        conns = list(self._connections.values())
        in_flight = [t for c in conns for t in list(c.tasks)]
        for conn in conns:
            conn.closing = True
            with contextlib.suppress(Exception):
                await self._send(conn, goaway_message(reason))
        if in_flight:
            done, pending = await asyncio.wait(
                in_flight, timeout=self.drain_grace_s
            )
            for task in pending:
                task.cancel()
        for conn in conns:
            self._close_writer(conn.writer)
        # The front end flushes its own pending batches; run off-loop
        # because drain() dispatches blocking service calls.
        await loop.run_in_executor(None, self.frontend.drain)
        elapsed = loop.time() - started
        if _TM.enabled:
            _DRAINS.inc()
            _emit_probe(
                "net.drain",
                connections=len(conns),
                in_flight=len(in_flight),
                elapsed_s=elapsed,
            )
        _log.info(
            "socket server drained",
            extra={
                "connections": len(conns),
                "in_flight": len(in_flight),
                "elapsed_s": elapsed,
            },
        )
        self._drained.set()
        return len(in_flight)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            self._close_writer(writer)
            return
        self._conn_seq += 1
        conn_id = self._conn_seq
        conn = _Connection(writer, self.max_in_flight)
        self._connections[conn_id] = conn
        if _TM.enabled:
            _CONNECTIONS.inc()
            _ACTIVE.set(float(len(self._connections)))
        decoder = FrameDecoder(self.max_frame_bytes)
        try:
            await self._read_loop(conn, reader, decoder)
        except WireProtocolError as exc:
            note_wire_error(exc)
            # Best-effort typed goodbye; framing is gone, so close.
            with contextlib.suppress(Exception):
                await self._send(conn, error_message(None, exc))
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            conn.closing = True
            if conn.tasks:
                await asyncio.wait(
                    list(conn.tasks), timeout=self.drain_grace_s
                )
            self._close_writer(writer)
            self._connections.pop(conn_id, None)
            if _TM.enabled:
                _ACTIVE.set(float(len(self._connections)))

    async def _read_loop(
        self,
        conn: _Connection,
        reader: asyncio.StreamReader,
        decoder: FrameDecoder,
    ) -> None:
        while not conn.closing:
            try:
                chunk = await asyncio.wait_for(
                    reader.read(_READ_CHUNK), timeout=self.frame_timeout_s
                )
            except asyncio.TimeoutError:
                raise FrameTimeoutError(
                    f"no bytes from peer within {self.frame_timeout_s}s"
                ) from None
            if not chunk:
                # EOF: clean only on a frame boundary.
                decoder.eof()
                return
            for message in decoder.feed(chunk):
                if not await self._handle_message(conn, message):
                    return

    async def _handle_message(
        self, conn: _Connection, message: Dict[str, object]
    ) -> bool:
        """Process one decoded message; False ends the connection."""
        mtype = message.get("type")
        note_frame("in", str(mtype), 0)
        if not conn.greeted:
            if mtype != "hello":
                raise HandshakeError(
                    f"expected hello, got {mtype!r}"
                )
            if message.get("version") != PROTOCOL_VERSION:
                exc = HandshakeError(
                    f"protocol version mismatch: server speaks "
                    f"{PROTOCOL_VERSION}, client offered "
                    f"{message.get('version')!r}"
                )
                with contextlib.suppress(Exception):
                    await self._send(conn, error_message(None, exc))
                return False
            conn.greeted = True
            service = self.frontend.service
            config = getattr(service, "config", None)
            await self._send(conn, hello_ok_message(
                n_rows=int(service.n_rows),
                n_stages=int(getattr(config, "n_stages", 0)),
                levels=int(getattr(config, "levels", 0)),
                default_deadline_s=float(service.default_deadline_s),
                server=self.name,
            ))
            return True
        if mtype == "bye":
            return False
        if mtype == "request":
            if not isinstance(message.get("id"), int):
                raise FrameCorruptError(
                    "request frame missing an integer id"
                )
            if self._draining:
                await self._send(conn, goaway_message())
                return False
            # Backpressure point: no further frames are read until a
            # window slot frees up.
            await conn.window.acquire()
            task = asyncio.ensure_future(self._serve(conn, message))
            conn.tasks.add(task)
            task.add_done_callback(conn.tasks.discard)
            return True
        raise FrameCorruptError(f"unknown message type {mtype!r}")

    # ------------------------------------------------------------------
    # Request serving
    # ------------------------------------------------------------------
    async def _serve(
        self, conn: _Connection, message: Dict[str, object]
    ) -> None:
        loop = asyncio.get_running_loop()
        req_id = message.get("id")
        try:
            try:
                kind, response = await loop.run_in_executor(
                    None, self._serve_blocking, message
                )
            except ServiceError as exc:
                if _TM.enabled:
                    _REQUESTS.inc(outcome="error")
                await self._send(conn, error_message(req_id, exc))
                return
            except Exception as exc:  # pragma: no cover - backstop
                _log.warning(
                    "remote request failed untyped", exc_info=True
                )
                if _TM.enabled:
                    _REQUESTS.inc(outcome="error")
                await self._send(conn, error_message(req_id, exc))
                return
            if _TM.enabled:
                _REQUESTS.inc(outcome="ok")
            await self._send(
                conn, response_message(int(req_id), kind, response)
            )
        except (ConnectionError, OSError):
            # The client vanished mid-answer; nothing left to tell it.
            conn.closing = True
        finally:
            conn.window.release()

    def _serve_blocking(self, message: Dict[str, object]):
        """Run one request through the front end (executor thread)."""
        kind = message.get("kind")
        if kind not in ("search", "topk"):
            raise InvalidRequestError(f"unknown request kind {kind!r}")
        try:
            budget_s = float(message["budget_s"])
            query = message["query"]
            tenant = str(message.get("tenant", "default"))
            k = int(message.get("k", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidRequestError(
                f"malformed request frame: {exc!r}"
            ) from exc
        if budget_s <= 0.0:
            # The budget died on the wire: work was never attempted
            # here, but the *request* ran out of time -- a deadline,
            # not a shed (nothing was admitted to shed).
            raise DeadlineExceededError(
                "request budget exhausted before server admission"
            )
        request_id = message.get("request_id")
        ctx = None
        if _TM.enabled and request_id:
            ctx = RequestContext(
                request_id=str(request_id), tenant=tenant
            )
        with request_scope(ctx) if ctx is not None \
                else contextlib.nullcontext():
            if kind == "search":
                future = self.frontend.submit(
                    query, tenant=tenant, deadline_s=budget_s
                )
            else:
                future = self.frontend.submit_top_k(
                    query, k, tenant=tenant, deadline_s=budget_s
                )
        try:
            # The front end sheds/answers by the deadline on its own;
            # the pad only covers dispatch scheduling jitter.
            response = future.result(timeout=budget_s + 5.0)
        except TimeoutError:
            raise DeadlineExceededError(
                "request future unfulfilled past its budget"
            ) from None
        return kind, response

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    async def _send(
        self, conn: _Connection, message: Dict[str, object]
    ) -> None:
        frame = encode_frame(message, self.max_frame_bytes)
        async with conn.write_lock:
            conn.writer.write(frame)
            await conn.writer.drain()
        note_frame("out", str(message.get("type")), len(frame))

    @staticmethod
    def _close_writer(writer: asyncio.StreamWriter) -> None:
        with contextlib.suppress(Exception):
            writer.close()


def serve_until_signal(
    frontend,
    host: str = "127.0.0.1",
    port: int = 0,
    max_in_flight: int = 8,
    frame_timeout_s: float = 30.0,
    drain_grace_s: float = 5.0,
    on_listening=None,
) -> None:
    """Run a socket server on this thread until SIGTERM/SIGINT.

    The blocking entry point behind ``repro serve``: builds the event
    loop, installs signal handlers that trigger the graceful drain,
    and returns once the drain completes.  ``on_listening(host, port)``
    fires after bind (the CLI prints the endpoint; tests grab the
    ephemeral port).
    """

    async def _main() -> None:
        server = TDAMSocketServer(
            frontend,
            host=host,
            port=port,
            max_in_flight=max_in_flight,
            frame_timeout_s=frame_timeout_s,
            drain_grace_s=drain_grace_s,
        )
        await server.start()
        if on_listening is not None:
            on_listening(server.host, server.port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                # Non-main thread / platforms without signal support:
                # the server still drains when stop is set by hand.
                pass
        await server.serve_until(stop)

    asyncio.run(_main())
