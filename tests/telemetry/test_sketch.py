"""QuantileSketch: error bound, exact merge, serialization, bounds."""

import math

import numpy as np
import pytest

from repro.telemetry import QuantileSketch


def rank_exact(values, q):
    """The exact sample quantile under the sketch's rank convention:
    the order statistic at index ``floor(q * (n - 1))``."""
    data = np.sort(np.asarray(values, dtype=float))
    return float(data[int(math.floor(q * (data.size - 1)))])


class TestValidation:
    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5, 2.0])
    def test_relative_accuracy_bounds(self, alpha):
        with pytest.raises(ValueError, match="relative_accuracy"):
            QuantileSketch(relative_accuracy=alpha)

    def test_max_bins_floor(self):
        with pytest.raises(ValueError, match="max_bins"):
            QuantileSketch(max_bins=1)

    def test_min_value_positive(self):
        with pytest.raises(ValueError, match="min_value"):
            QuantileSketch(min_value=0.0)

    @pytest.mark.parametrize("bad", [-1.0, float("nan")])
    def test_rejects_negative_and_nan(self, bad):
        with pytest.raises(ValueError, match="finite values"):
            QuantileSketch().add(bad)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError, match="count"):
            QuantileSketch().add(1.0, count=0)

    @pytest.mark.parametrize("q", [-0.1, 1.1])
    def test_quantile_domain(self, q):
        with pytest.raises(ValueError, match="quantile"):
            QuantileSketch().quantile(q)


class TestEmpty:
    def test_empty_queries_are_none(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.99) is None
        assert sketch.mean() is None
        assert sketch.min is None
        assert sketch.max is None
        assert sketch.count == 0


class TestErrorBound:
    @pytest.mark.parametrize("alpha", [0.01, 0.05])
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99])
    def test_within_relative_error_of_rank_exact(self, alpha, q):
        rng = np.random.default_rng(7)
        # Latency-shaped data: lognormal body plus a heavy tail.
        values = np.concatenate([
            rng.lognormal(mean=-6.0, sigma=1.0, size=4000),
            rng.lognormal(mean=-3.0, sigma=0.5, size=200),
        ])
        sketch = QuantileSketch(relative_accuracy=alpha)
        for v in values:
            sketch.add(v)
        exact = rank_exact(values, q)
        estimate = sketch.quantile(q)
        assert abs(estimate - exact) / exact <= alpha

    def test_extreme_quantiles_clamp_to_observed_range(self):
        sketch = QuantileSketch()
        for v in (0.001, 0.002, 0.040):
            sketch.add(v)
        assert sketch.quantile(0.0) >= sketch.min
        assert sketch.quantile(1.0) <= sketch.max

    def test_subthreshold_values_report_zero(self):
        sketch = QuantileSketch(min_value=1e-9)
        sketch.add(0.0)
        sketch.add(1e-12)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.count == 2

    def test_weighted_add_matches_repetition(self):
        once = QuantileSketch()
        for _ in range(5):
            once.add(0.003)
        bulk = QuantileSketch()
        bulk.add(0.003, count=5)
        assert bulk.to_dict() == once.to_dict()


class TestDeterminism:
    def test_identical_inputs_identical_estimates(self):
        rng = np.random.default_rng(11)
        values = rng.lognormal(size=1000)
        a, b = QuantileSketch(), QuantileSketch()
        for v in values:
            a.add(v)
            b.add(v)
        assert a.to_dict() == b.to_dict()
        assert a.quantile(0.99) == b.quantile(0.99)


class TestMerge:
    def test_merge_is_exact(self):
        rng = np.random.default_rng(3)
        left = rng.lognormal(size=800)
        right = rng.lognormal(mean=2.0, size=300)
        a, b, combined = (
            QuantileSketch(), QuantileSketch(), QuantileSketch()
        )
        for v in left:
            a.add(v)
            combined.add(v)
        for v in right:
            b.add(v)
            combined.add(v)
        a.merge(b)
        # Bin-identical, not just close: merging loses nothing.  (The
        # running ``sum`` is the one field allowed to differ in the
        # last ulp -- addition order changes.)
        merged_state, combined_state = a.to_dict(), combined.to_dict()
        assert merged_state.pop("sum") == pytest.approx(
            combined_state.pop("sum")
        )
        assert merged_state == combined_state

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ValueError, match="accuracy"):
            QuantileSketch(relative_accuracy=0.01).merge(
                QuantileSketch(relative_accuracy=0.02)
            )

    def test_merge_rejects_non_sketch(self):
        with pytest.raises(TypeError):
            QuantileSketch().merge([1.0, 2.0])


class TestCollapse:
    def test_bin_count_stays_bounded(self):
        sketch = QuantileSketch(max_bins=32)
        rng = np.random.default_rng(5)
        # Spread over many decades to force far more than 32 raw bins.
        for v in rng.uniform(-9, 1, size=5000):
            sketch.add(10.0 ** v)
        assert sketch.n_bins <= 32
        assert sketch.count == 5000

    def test_tail_accuracy_survives_collapse(self):
        rng = np.random.default_rng(5)
        values = 10.0 ** rng.uniform(-9, 1, size=5000)
        sketch = QuantileSketch(relative_accuracy=0.01, max_bins=256)
        for v in values:
            sketch.add(v)
        # Collapse folds *low* bins, so the p99 bound still holds.
        exact = rank_exact(values, 0.99)
        assert abs(sketch.quantile(0.99) - exact) / exact <= 0.01


class TestSerialization:
    def test_round_trip_is_exact(self):
        rng = np.random.default_rng(9)
        sketch = QuantileSketch()
        for v in rng.lognormal(size=500):
            sketch.add(v)
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.to_dict() == sketch.to_dict()
        assert clone.quantile(0.99) == sketch.quantile(0.99)
        assert clone.mean() == sketch.mean()

    def test_snapshot_shape(self):
        sketch = QuantileSketch()
        sketch.add(0.002)
        snap = sketch.snapshot()
        assert snap["count"] == 1
        assert snap["relative_accuracy"] == 0.01
        assert set(snap) >= {"p50", "p90", "p95", "p99", "min", "max"}
