"""Circuit container: nodes, elements, and validation.

A :class:`Circuit` is a flat netlist.  Nodes are referenced by string name;
``"0"`` and ``"gnd"`` are the ground node.  Voltage sources may only be
grounded (they force the voltage of one node), which keeps the solver a
pure nodal formulation -- every circuit in this reproduction (inverters,
delay stages, IMC cells) satisfies that restriction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

GROUND_NAMES = ("0", "gnd", "GND")


class Circuit:
    """A netlist of elements over named nodes.

    Example::

        from repro.spice import Circuit, Resistor, Capacitor, VoltageSource
        from repro.spice import StepWaveform, simulate

        ckt = Circuit("rc")
        ckt.add(VoltageSource("in", StepWaveform(0.0, 1.0, t_step=0.0)))
        ckt.add(Resistor("in", "out", 1e3))
        ckt.add(Capacitor("out", "0", 1e-12))
        result = simulate(ckt, t_stop=10e-9, dt=10e-12)
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.elements: List[object] = []
        self._node_order: List[str] = []
        self._seen_nodes: set = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, element: object) -> object:
        """Add an element and register its nodes; returns the element."""
        nodes = getattr(element, "nodes", None)
        if nodes is None:
            raise TypeError(
                f"{element!r} is not a circuit element (missing .nodes)"
            )
        for node in nodes:
            self._register_node(node)
        self.elements.append(element)
        return element

    def extend(self, elements: Iterable[object]) -> None:
        """Add several elements in order."""
        for element in elements:
            self.add(element)

    def _register_node(self, node: str) -> None:
        if node in self._seen_nodes:
            return
        self._seen_nodes.add(node)
        if not self.is_ground(node):
            self._node_order.append(node)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @staticmethod
    def is_ground(node: str) -> bool:
        """Whether a node name denotes ground."""
        return node in GROUND_NAMES

    @property
    def nodes(self) -> List[str]:
        """Non-ground nodes in registration order."""
        return list(self._node_order)

    def source_nodes(self) -> Dict[str, object]:
        """Map of node name -> waveform for every voltage-source node."""
        forced: Dict[str, object] = {}
        for element in self.elements:
            waveform = getattr(element, "forces_node", None)
            if waveform is None:
                continue
            node, wf = waveform
            if node in forced:
                raise ValueError(
                    f"node {node!r} is forced by more than one voltage source"
                )
            if self.is_ground(node):
                raise ValueError("a voltage source may not force the ground node")
            forced[node] = wf
        return forced

    def free_nodes(self) -> List[str]:
        """Nodes whose voltage is solved for (not ground, not forced)."""
        forced = set(self.source_nodes())
        return [n for n in self._node_order if n not in forced]

    def validate(self) -> None:
        """Sanity-check the netlist before simulation.

        Raises:
            ValueError: on an empty netlist, a doubly-forced node, or a
                free node with no capacitive or conductive path at all
                (which would make the nodal matrix singular).
        """
        if not self.elements:
            raise ValueError(f"circuit {self.name!r} has no elements")
        self.source_nodes()  # raises on double-forcing
        touched: Dict[str, int] = {}
        for element in self.elements:
            for node in element.nodes:
                touched[node] = touched.get(node, 0) + 1
        for node in self.free_nodes():
            if touched.get(node, 0) < 1:
                raise ValueError(f"free node {node!r} is not connected")

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, {len(self.elements)} elements, "
            f"{len(self._node_order)} nodes)"
        )
