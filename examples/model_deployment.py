"""End-to-end model deployment: train, persist, program, verify.

The full artifact pipeline a production flow needs: train an HDC model,
save the design point and quantized model to disk, export the tile-padded
array image with its checksum, then "manufacture" the device -- load the
artifacts back, program the array through the command controller, and
verify the image landed intact.

Run:
    python examples/model_deployment.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.config import TDAMConfig
from repro.core.controller import ArrayController, Command
from repro.datasets import make_ucihar_like
from repro.hdc import (
    HDCClassifier,
    RandomProjectionEncoder,
    TDAMInference,
    quantize_equal_area,
)
from repro.io import (
    export_array_image,
    image_checksum,
    load_array_image,
    load_config,
    load_quantized_model,
    save_config,
    save_quantized_model,
)

def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="tdam_deploy_"))
    print(f"artifact directory: {workdir}\n")

    # --- Training side -------------------------------------------------
    ds = make_ucihar_like(1000, 500)
    config = TDAMConfig.fig8_system()
    encoder = RandomProjectionEncoder(ds.n_features, 1024, seed=7)
    clf = HDCClassifier(encoder, ds.n_classes).fit(ds.x_train, ds.y_train,
                                                   epochs=6)
    quantized = quantize_equal_area(clf.prototypes, config.bits)
    accuracy = quantized.accuracy_cosine(clf.encode(ds.x_test), ds.y_test)
    print(f"trained {ds.n_classes}-class model at D=1024, "
          f"quantized accuracy {accuracy:.3f}")

    save_config(config, workdir / "design_point.json")
    save_quantized_model(quantized, workdir / "model.npz",
                         metadata={"dataset": ds.name, "accuracy": accuracy})
    manifest = export_array_image(quantized, config, workdir / "image.npz")
    print(f"exported artifacts: {manifest['n_tiles']} tiles x "
          f"{manifest['n_stages']} stages, checksum {manifest['checksum']}\n")

    # --- Device side ----------------------------------------------------
    loaded_config = load_config(workdir / "design_point.json")
    image, loaded_manifest = load_array_image(workdir / "image.npz")
    assert loaded_config == config
    print("programming tile 0 through the controller ...")
    controller = ArrayController(loaded_config,
                                 n_rows=loaded_manifest["n_classes"], seed=1)
    tile0 = image[:, : loaded_config.n_stages]
    for row in range(loaded_manifest["n_classes"]):
        controller.execute(Command("write", row=row, vector=tile0[row]))
    print(f"  programmed in {controller.elapsed_s * 1e6:.1f} us "
          f"(simulated wall time)")

    # Read-back verification against the artifact checksum.
    readback = controller.array._stored.copy()
    padded = image.copy()
    padded[:, : loaded_config.n_stages] = readback
    assert image_checksum(padded) == loaded_manifest["checksum"]
    print("  read-back checksum verified")

    # The deployed model still classifies.
    model, metadata = load_quantized_model(workdir / "model.npz")
    inference = TDAMInference(model, config=loaded_config,
                              n_features=ds.n_features)
    levels = model.quantize_queries(clf.encode(ds.x_test[:100]))
    deployed_accuracy = inference.accuracy(levels, ds.y_test[:100])
    print(f"\ndeployed hardware accuracy on 100 held-out samples: "
          f"{deployed_accuracy:.2f} "
          f"(training-side estimate was {metadata['accuracy']:.2f})")

if __name__ == "__main__":
    main()
