"""Tests of the CAM baselines (16T TCAM and 2-FeFET TCAM)."""

import numpy as np
import pytest

from repro.baselines.fecam import FeFETTCAM
from repro.baselines.tcam16t import CMOSTCAM16T, X


class TestCMOSTCAM16T:
    def setup_method(self):
        self.cam = CMOSTCAM16T(n_rows=3, word_bits=4)
        self.cam.write(0, [0, 1, 0, 1])
        self.cam.write(1, [1, 1, 1, 1])
        self.cam.write(2, [0, X, 0, X])

    def test_exact_match(self):
        matches = self.cam.search([0, 1, 0, 1])
        assert matches.tolist() == [True, False, True]

    def test_dont_care_matches_both(self):
        assert self.cam.search([0, 0, 0, 0]).tolist() == [False, False, True]
        assert self.cam.search([0, 1, 0, 0]).tolist() == [False, False, True]

    def test_single_bit_mismatch_kills_match(self):
        """The capability gap vs. the TD-AM: one mismatch = no match,
        and 1 mismatch is indistinguishable from 4."""
        near = self.cam.search([0, 1, 0, 0])  # distance 1 from row 0
        far = self.cam.search([1, 0, 1, 0])   # distance 4 from row 0
        assert not near[0] and not far[0]

    def test_search_before_full_write_raises(self):
        cam = CMOSTCAM16T(n_rows=2, word_bits=2)
        cam.write(0, [0, 1])
        with pytest.raises(RuntimeError, match="before all rows"):
            cam.search([0, 1])

    def test_rejects_bad_symbols(self):
        with pytest.raises(ValueError, match="0, 1, or X"):
            self.cam.write(0, [0, 1, 2, 1])

    def test_rejects_x_in_query(self):
        with pytest.raises(ValueError, match="query bits"):
            self.cam.search([0, 1, X, 1])

    def test_energy_uses_published_per_bit(self):
        assert self.cam.search_energy_j() == pytest.approx(
            0.59e-15 * 3 * 4
        )

    def test_design_metadata(self):
        assert not self.cam.design.quantitative
        assert self.cam.design.cell_size == "16T"


class TestFeFETTCAM:
    def setup_method(self):
        self.cam = FeFETTCAM(n_rows=2, word_bits=8, mismatch_tolerance=1)
        self.cam.write(0, [0] * 8)
        self.cam.write(1, [1] * 8)

    def test_exact_match(self):
        assert self.cam.search([0] * 8).tolist() == [True, False]

    def test_tolerates_one_mismatch(self):
        query = [1] + [0] * 7
        assert self.cam.search(query).tolist() == [True, False]

    def test_two_mismatches_lost(self):
        query = [1, 1] + [0] * 6
        assert self.cam.search(query).tolist() == [False, False]

    def test_non_quantitative(self):
        """Distance 2 and distance 5 from row 0 are indistinguishable."""
        near = self.cam.search([1, 1] + [0] * 6)       # d = 2 / 6
        far = self.cam.search([1] * 5 + [0] * 3)       # d = 5 / 3
        assert near.tolist() == far.tolist() == [False, False]

    def test_energy_cheaper_than_cmos_tcam(self):
        cmos = CMOSTCAM16T(n_rows=2, word_bits=8)
        assert self.cam.search_energy_j() < cmos.search_energy_j()

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            FeFETTCAM(n_rows=1, word_bits=4, mismatch_tolerance=-1)
