"""Fig. 4: delay-chain transients and delay-vs-mismatch linearity.

Fig. 4(a)(b) show the rising/falling output edges shifting out as the
number of mismatched even/odd stages grows; Fig. 4(c) shows the total
delay growing strictly linearly with the mismatch count.  This driver
measures the same on either backend:

- ``backend="analytic"`` evaluates the closed-form model (fast; used to
  sweep all mismatch counts 0..N);
- ``backend="transient"`` builds the chain netlist per mismatch count and
  measures the 50% edge crossings (the Spectre-equivalent run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_series
from repro.core.calibration import measure_chain_delay
from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel
from repro.core.stage import STEP_I, STEP_II
from repro.experiments._instrument import instrumented


@dataclass
class Fig4Result:
    """Delay vs. mismatch data.

    Attributes:
        mismatch_counts: Swept total mismatch counts.
        delays_total_s: Total 2-step delay per count.
        delays_rising_s: Step I delay per count.
        delays_falling_s: Step II delay per count.
        linear_fit: (slope, intercept) of delay vs. mismatches.
        r_squared: Coefficient of determination of the linear fit.
        backend: Which backend produced the data.
    """

    mismatch_counts: np.ndarray
    delays_total_s: np.ndarray
    delays_rising_s: np.ndarray
    delays_falling_s: np.ndarray
    linear_fit: "tuple[float, float]"
    r_squared: float
    backend: str


def _spread_mismatches(n_stages: int, n_mismatch: int) -> "tuple[list, list]":
    """Stored/query vectors with ``n_mismatch`` mismatches spread over
    even and odd stages as evenly as possible."""
    stored = [0] * n_stages
    query = [0] * n_stages
    even = list(range(0, n_stages, 2))
    odd = list(range(1, n_stages, 2))
    order = [idx for pair in zip(even, odd) for idx in pair]
    order += even[len(odd):] + odd[len(even):]
    for idx in order[:n_mismatch]:
        query[idx] = 1
    return stored, query


@instrumented("fig4")
def run_fig4(
    n_stages: int = 32,
    mismatch_counts: Optional[Sequence[int]] = None,
    backend: str = "analytic",
    config: Optional[TDAMConfig] = None,
    dt: float = 2e-12,
    seed: int = 11,
) -> Fig4Result:
    """Measure delay vs. mismatch count on the requested backend."""
    config = (config or TDAMConfig()).with_(n_stages=n_stages)
    if mismatch_counts is None:
        mismatch_counts = list(range(0, n_stages + 1, max(1, n_stages // 8)))
    counts = np.array(sorted(set(int(c) for c in mismatch_counts)))
    if counts.min() < 0 or counts.max() > n_stages:
        raise ValueError(f"mismatch counts must be in [0, {n_stages}]")

    rising, falling = [], []
    for count in counts:
        stored, query = _spread_mismatches(n_stages, int(count))
        n_even = sum(
            1 for i in range(0, n_stages, 2) if stored[i] != query[i]
        )
        n_odd = int(count) - n_even
        if backend == "analytic":
            model = TimingEnergyModel(config)
            rising.append(model.step_delay(n_even))
            falling.append(model.step_delay(n_odd))
        elif backend == "transient":
            rng = np.random.default_rng(seed)
            rising.append(
                measure_chain_delay(config, stored, query, step=STEP_I,
                                    rising_input=True, dt=dt, rng=rng)
            )
            rng = np.random.default_rng(seed)
            falling.append(
                measure_chain_delay(config, stored, query, step=STEP_II,
                                    rising_input=False, dt=dt, rng=rng)
            )
        else:
            raise ValueError(
                f"backend must be 'analytic' or 'transient', got {backend!r}"
            )
    rising = np.array(rising)
    falling = np.array(falling)
    total = rising + falling
    slope, intercept = np.polyfit(counts, total, 1)
    predicted = slope * counts + intercept
    ss_res = float(((total - predicted) ** 2).sum())
    ss_tot = float(((total - total.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return Fig4Result(
        mismatch_counts=counts,
        delays_total_s=total,
        delays_rising_s=rising,
        delays_falling_s=falling,
        linear_fit=(float(slope), float(intercept)),
        r_squared=r_squared,
        backend=backend,
    )


def format_fig4(result: Fig4Result) -> str:
    """Text rendering of the Fig. 4(c) linearity data."""
    body = format_series(
        "n_mismatch",
        list(result.mismatch_counts),
        {
            "rising_ps": result.delays_rising_s * 1e12,
            "falling_ps": result.delays_falling_s * 1e12,
            "total_ps": result.delays_total_s * 1e12,
        },
        title=f"Fig. 4: delay vs. mismatches ({result.backend} backend)",
    )
    slope, intercept = result.linear_fit
    return (
        f"{body}\n"
        f"linear fit: d_tot = {slope * 1e12:.3f} ps/mismatch * N_mis "
        f"+ {intercept * 1e12:.3f} ps (R^2 = {result.r_squared:.6f})"
    )


if __name__ == "__main__":
    from repro.cli import emit

    emit(format_fig4(run_fig4(backend="analytic")))
    emit()
    emit(format_fig4(run_fig4(n_stages=8, backend="transient",
                               mismatch_counts=(0, 2, 4, 6, 8))))


@dataclass
class Fig4Waveforms:
    """Output-edge waveform data behind Fig. 4(a)(b).

    Attributes:
        mismatch_counts: Active (even-stage) mismatch counts, one
            transient each.
        edge_times_s: Output 50% rising-edge crossing time per count,
            relative to the input edge.
        waveforms: The output-node waveforms (for plotting/inspection).
        input_waveform: The launched input edge.
    """

    mismatch_counts: np.ndarray
    edge_times_s: np.ndarray
    waveforms: list
    input_waveform: object


@instrumented("fig4_waveforms")
def run_fig4_waveforms(
    n_stages: int = 32,
    mismatch_counts: Sequence[int] = (0, 4, 8, 12, 16),
    dt: float = 4e-12,
    config: Optional[TDAMConfig] = None,
    seed: int = 11,
) -> Fig4Waveforms:
    """The actual Fig. 4(a) experiment: output waveforms marching out.

    Runs one step-I transient per even-stage mismatch count on the full
    chain and records the output edge; the rising edges shift out by
    ``d_C`` per additional mismatch, which is what the paper's waveform
    panel shows.
    """
    from repro.core.netlist_builder import build_chain_circuit
    from repro.spice.transient import simulate

    config = (config or TDAMConfig()).with_(n_stages=n_stages)
    n_even = (n_stages + 1) // 2
    counts = sorted(set(int(c) for c in mismatch_counts))
    if counts[0] < 0 or counts[-1] > n_even:
        raise ValueError(f"even-stage mismatch counts must be in [0, {n_even}]")
    waveforms = []
    edge_times = []
    input_waveform = None
    for count in counts:
        stored = [0] * n_stages
        query = [0] * n_stages
        placed = 0
        for i in range(0, n_stages, 2):
            if placed == count:
                break
            query[i] = 1
            placed += 1
        net = build_chain_circuit(
            config, stored, query, step="I", rising_input=True,
            rng=np.random.default_rng(seed),
        )
        result = simulate(net.circuit, t_stop=net.t_stop_hint, dt=dt,
                          v_init=net.v_init)
        w_in = result.waveform(net.input_node)
        w_out = result.waveform(net.output_node)
        level = config.vdd / 2.0
        t_in = w_in.first_crossing(level, rising=True,
                                   after=net.t_pulse - 50e-12)
        t_out = w_out.first_crossing(level, rising=net.output_edge_rising,
                                     after=t_in)
        waveforms.append(w_out)
        edge_times.append(t_out - t_in)
        input_waveform = w_in
    return Fig4Waveforms(
        mismatch_counts=np.array(counts),
        edge_times_s=np.array(edge_times),
        waveforms=waveforms,
        input_waveform=input_waveform,
    )
