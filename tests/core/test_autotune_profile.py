"""Persisted autotune profile + traced-decision quarantine."""

import json
import time

import pytest

from repro import telemetry
from repro.core.kernels import (
    autotune_decisions,
    autotune_profile_path,
    chunk_decisions,
    clear_autotune_cache,
    select_kernel,
    select_query_chunk,
)

KEY = (26, 128, 4, True)
CHUNK_KEY = ("chunk", 26, 128, 4, True)


class Thunks:
    """Candidate thunks with call counting and a deterministic winner."""

    def __init__(self):
        self.calls = {"packed": 0, "gemm": 0}

    def candidates(self):
        def packed():
            self.calls["packed"] += 1

        def gemm():
            self.calls["gemm"] += 1
            time.sleep(0.002)  # always loses to the no-op

        return {"packed": packed, "gemm": gemm}

    @property
    def total(self):
        return sum(self.calls.values())


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_autotune_cache()
    yield
    clear_autotune_cache()


@pytest.fixture
def profile(tmp_path, monkeypatch):
    path = tmp_path / "autotune.json"
    monkeypatch.setenv("REPRO_AUTOTUNE_PROFILE", str(path))
    return path


class TestPersistence:
    def test_decision_is_written_to_the_profile(self, profile):
        winner = select_kernel(KEY, Thunks().candidates())
        assert winner == "packed"
        payload = json.loads(profile.read_text())
        assert payload["format"] == 1
        assert payload["entries"][json.dumps(list(KEY))] == "packed"

    def test_cold_process_serves_from_the_profile_without_timing(
        self, profile
    ):
        select_kernel(KEY, Thunks().candidates())
        clear_autotune_cache()  # simulate a fresh process
        cold = Thunks()
        assert select_kernel(KEY, cold.candidates()) == "packed"
        assert cold.total == 0  # no re-measurement at all
        assert autotune_decisions() == {KEY: "packed"}

    def test_corrupt_profile_is_ignored_then_replaced(self, profile):
        profile.write_text("{definitely not json")
        fresh = Thunks()
        assert select_kernel(KEY, fresh.candidates()) == "packed"
        assert fresh.total > 0  # had to measure
        payload = json.loads(profile.read_text())
        assert payload["entries"][json.dumps(list(KEY))] == "packed"

    def test_unknown_winner_in_profile_is_skipped(self, profile):
        profile.write_text(json.dumps({
            "format": 1,
            "entries": {json.dumps(list(KEY)): "not_a_kernel"},
        }))
        fresh = Thunks()
        assert select_kernel(KEY, fresh.candidates()) == "packed"
        assert fresh.total > 0

    def test_empty_env_value_disables_persistence(self, monkeypatch):
        # The suite-wide default: conftest pins the env var to "".
        assert autotune_profile_path() is None
        select_kernel(KEY, Thunks().candidates())
        # Decision cached in-process, nothing on disk anywhere to check:
        assert autotune_decisions() == {KEY: "packed"}

    def test_profile_merges_over_existing_entries(self, profile):
        other_key = json.dumps([1, 2, 3, False])
        profile.write_text(json.dumps({
            "format": 1, "entries": {other_key: "gemm"},
        }))
        select_kernel(KEY, Thunks().candidates())
        payload = json.loads(profile.read_text())
        assert payload["entries"][other_key] == "gemm"
        assert payload["entries"][json.dumps(list(KEY))] == "packed"


class ChunkThunks:
    """Chunk-size candidates with call counts; 64 always wins."""

    def __init__(self):
        self.calls = {32: 0, 64: 0, 128: 0}

    def candidates(self):
        def make(size):
            def thunk():
                self.calls[size] += 1
                if size != 64:
                    time.sleep(0.002)

            return thunk

        return {size: make(size) for size in self.calls}

    @property
    def total(self):
        return sum(self.calls.values())


class TestChunkPersistence:
    def test_decision_is_written_alongside_kernel_entries(self, profile):
        select_kernel(KEY, Thunks().candidates())
        winner = select_query_chunk(CHUNK_KEY, ChunkThunks().candidates())
        assert winner == 64
        payload = json.loads(profile.read_text())
        assert payload["format"] == 1
        assert payload["entries"][json.dumps(list(KEY))] == "packed"
        assert payload["chunks"][json.dumps(list(CHUNK_KEY))] == 64
        assert chunk_decisions() == {CHUNK_KEY: 64}

    def test_cold_process_serves_chunk_from_profile(self, profile):
        select_query_chunk(CHUNK_KEY, ChunkThunks().candidates())
        clear_autotune_cache()
        cold = ChunkThunks()
        assert select_query_chunk(CHUNK_KEY, cold.candidates()) == 64
        assert cold.total == 0
        assert chunk_decisions() == {CHUNK_KEY: 64}

    def test_invalid_chunk_winner_in_profile_is_skipped(self, profile):
        for bad in ("64", -3, 0, True):
            profile.write_text(json.dumps({
                "format": 1,
                "entries": {},
                "chunks": {json.dumps(list(CHUNK_KEY)): bad},
            }))
            clear_autotune_cache()
            fresh = ChunkThunks()
            assert select_query_chunk(CHUNK_KEY, fresh.candidates()) == 64
            assert fresh.total > 0  # had to measure

    def test_profile_winner_absent_from_candidates_is_remeasured(
        self, profile
    ):
        profile.write_text(json.dumps({
            "format": 1,
            "entries": {},
            "chunks": {json.dumps(list(CHUNK_KEY)): 4096},
        }))
        fresh = ChunkThunks()
        assert select_query_chunk(CHUNK_KEY, fresh.candidates()) == 64
        assert fresh.total > 0

    def test_traced_chunk_decisions_are_quarantined(self, profile):
        telemetry.reset()
        telemetry.enable()
        try:
            first = ChunkThunks()
            assert select_query_chunk(CHUNK_KEY, first.candidates()) == 64
            assert first.total > 0
            assert chunk_decisions() == {}
            assert not profile.exists()
            # Cached for the rest of the traced session.
            second = ChunkThunks()
            select_query_chunk(CHUNK_KEY, second.candidates())
            assert second.total == 0
        finally:
            telemetry.reset()
        # Untraced again: the quarantined winner is not trusted.
        third = ChunkThunks()
        assert select_query_chunk(CHUNK_KEY, third.candidates()) == 64
        assert third.total > 0
        assert chunk_decisions() == {CHUNK_KEY: 64}
        assert profile.exists()


class TestTracedQuarantine:
    def test_traced_decisions_never_reach_profile_or_decisions(
        self, profile
    ):
        telemetry.reset()
        telemetry.enable()
        try:
            first = Thunks()
            select_kernel(KEY, first.candidates())
            assert first.total > 0
            # Quarantined: not in the public decisions, not on disk.
            assert autotune_decisions() == {}
            assert not profile.exists()
            # But cached for the rest of the traced session.
            second = Thunks()
            select_kernel(KEY, second.candidates())
            assert second.total == 0
        finally:
            telemetry.reset()
        # Untraced again: the quarantined winner is not trusted.
        third = Thunks()
        select_kernel(KEY, third.candidates())
        assert third.total > 0
        assert autotune_decisions() == {KEY: "packed"}
        assert profile.exists()
