"""Configuration of the TD-AM design.

:class:`TDAMConfig` gathers every knob of the paper's design space:

- **bit precision** of the stored/query elements (the paper demonstrates
  2-bit and argues 3-4 bit headroom in Sec. IV-A),
- the **V_TH ladder** of the FeFETs and the matching **V_SL ladder** of
  the search-line drivers (Fig. 2(b)(c): 0.2/0.6/1.0/1.4 V and
  0/0.4/0.8/1.2 V for 2 bits),
- the **load capacitor** of the delay stage (6 fF default, swept to
  1280 fF in Fig. 5),
- the **supply voltage** (1.1 V nominal 40 nm, scaled down to 0.5 V in
  Fig. 5(c)(d) and run at 0.6 V for the Fig. 8 system comparison),
- the **chain length** (32/64/128 stages in the paper's experiments).

The generalized ladders keep the paper's margins at any precision: V_TH
levels are evenly spaced over the programmable window and each V_SL level
sits half a step below its V_TH level, so an equal query leaves the FeFET
off while a one-level mismatch overdrives it by half a step.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.devices.fefet import FeFETParams
from repro.devices.params import TechnologyParams, UMC40_LIKE


@dataclass(frozen=True)
class TDAMConfig:
    """Design-point description of one TD-AM instance.

    Attributes:
        bits: Element precision in bits (1..4); the number of storable
            levels is ``2**bits``.
        n_stages: Delay stages per chain (elements per stored vector).
        c_load_f: Load capacitor per stage (F); paper default 6 fF.
        vdd: Chain supply voltage (V).
        vth_window: (low, high) of the FeFET programmable window (V); the
            paper's ladder spans 0.2..1.4 V.
        c_mn_f: Match-node capacitance (F) -- precharge PMOS junction +
            FeFET drains + stage-PMOS gate.
        c_stage_par_f: Parasitic capacitance at each inverter output (F),
            excluding the switched load.
        inverter_nmos_width: Relative width of the stage inverter NMOS.
            The inverter is deliberately weak (minimum size): the load
            capacitor couples through the switch as a *current-limited*
            transfer, so a weak inverter maximizes the mismatch delay
            signal ``d_C`` relative to the intrinsic delay ``d_INV``.
        inverter_pmos_width: Relative width of the stage inverter PMOS.
        switch_pmos_width: Relative width of the load-switch PMOS.  Sized
            wide so the switch resistance does not decouple the load
            capacitor from the propagating edge.
        tdc_clock_ghz: Counter TDC clock (GHz).
        delay_variation_sensitivity: Fractional change of the mismatch
            delay ``d_C`` per volt of FeFET V_TH shift.  The cell only
            *controls* the load switch, so this coupling is weak by design;
            the default is calibrated against the transient backend (see
            ``repro.core.calibration``).
        tech: Technology parameter set.
        fefet: FeFET device parameters.
    """

    bits: int = 2
    n_stages: int = 32
    c_load_f: float = 6e-15
    vdd: float = 1.1
    vth_window: Tuple[float, float] = (0.2, 1.4)
    c_mn_f: float = 0.6e-15
    c_stage_par_f: float = 0.2e-15
    inverter_nmos_width: float = 1.0
    inverter_pmos_width: float = 2.0
    switch_pmos_width: float = 8.0
    tdc_clock_ghz: float = 40.0
    delay_variation_sensitivity: float = 0.35
    tech: TechnologyParams = field(default_factory=lambda: UMC40_LIKE)
    fefet: FeFETParams = field(default_factory=FeFETParams)

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 4:
            raise ValueError(f"bits must be in 1..4, got {self.bits}")
        if self.n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {self.n_stages}")
        if self.c_load_f <= 0:
            raise ValueError(f"c_load_f must be positive, got {self.c_load_f}")
        if self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        low, high = self.vth_window
        if low >= high:
            raise ValueError(f"vth_window must be (low, high), got {self.vth_window}")
        if not (self.fefet.vth_low - 1e-9 <= low and high <= self.fefet.vth_high + 1e-9):
            raise ValueError(
                f"vth_window {self.vth_window} exceeds the FeFET programmable "
                f"window [{self.fefet.vth_low}, {self.fefet.vth_high}]"
            )
        if self.tdc_clock_ghz <= 0:
            raise ValueError(f"tdc_clock_ghz must be positive, got {self.tdc_clock_ghz}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        """Number of storable levels, ``2**bits``."""
        return 2**self.bits

    @property
    def level_step(self) -> float:
        """V_TH spacing between adjacent levels (V)."""
        low, high = self.vth_window
        if self.levels == 1:
            return high - low
        return (high - low) / (self.levels - 1)

    @property
    def vth_levels(self) -> Tuple[float, ...]:
        """The V_TH ladder, lowest level first (Fig. 2(b))."""
        low, _ = self.vth_window
        return tuple(low + k * self.level_step for k in range(self.levels))

    @property
    def vsl_levels(self) -> Tuple[float, ...]:
        """The V_SL ladder: each level half a step below its V_TH level.

        For the paper's 2-bit point this evaluates to exactly
        0 / 0.4 / 0.8 / 1.2 V.
        """
        half = self.level_step / 2.0
        return tuple(v - half for v in self.vth_levels)

    @property
    def conduction_margin(self) -> float:
        """Gate overdrive separating match from mismatch (V).

        A matching query under-drives each FeFET by this margin; a
        one-level mismatch over-drives one of them by the same amount.
        V_TH variation beyond roughly this margin (minus the switch
        turn-on overdrive) can flip a comparison.
        """
        return self.level_step / 2.0

    def with_(self, **overrides) -> "TDAMConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **overrides)

    @classmethod
    def paper_default(cls) -> "TDAMConfig":
        """The paper's circuit-evaluation point: 2-bit, 32 stages,
        6 fF load, nominal 1.1 V supply (Sec. IV-A)."""
        return cls()

    @classmethod
    def fig8_system(cls) -> "TDAMConfig":
        """The paper's system-benchmark point: 128 stages at 0.6 V
        (the configuration of the Fig. 8 GPU comparison, and the
        operating point of the 0.159 fJ/bit headline)."""
        return cls(bits=2, n_stages=128, vdd=0.6)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"TD-AM {self.bits}-bit, {self.n_stages} stages, "
            f"C_load={self.c_load_f * 1e15:.0f} fF, VDD={self.vdd:.2f} V, "
            f"V_TH={['%.2f' % v for v in self.vth_levels]}, "
            f"V_SL={['%.2f' % v for v in self.vsl_levels]}"
        )
