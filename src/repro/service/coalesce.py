"""Request coalescing: many concurrent single queries, one batched call.

``BENCH_search.json`` records a ~31x advantage for
``search_batch`` over a loop of single ``search`` calls -- a win a
concurrent front-end can only harvest by *coalescing*: compatible
single-query requests arriving within a small batching window are
grouped and served through one ``search_batch`` / ``top_k_batch``
call, then split back into per-request responses.  Batching is
bit-exact by construction (PR 2's batched engine guarantees
``search_batch(qs)[i] == search(qs[i])``), so coalescing changes
latency economics, never answers.

This module is the *passive* half: :class:`Coalescer` owns the pending
batches and the flush rules, :class:`FrontendFuture` carries one
request's eventual result across threads.  The active half -- actually
dispatching a flushed batch into the service -- lives in
:mod:`repro.service.frontend`, which also decides *when* to flush
(a dispatcher thread on the real clock, or explicit ``pump()`` calls
on a fake one).

Flush triggers, in priority order:

- **full**: a batch reaching ``max_batch`` is ready immediately;
- **window**: a batch whose oldest member has waited ``window_s`` is
  ready (bounded added latency);
- **drain**: shutdown flushes everything regardless.

Requests are grouped by compatibility key -- endpoint kind and ``k`` --
and *never* by deadline: a batch may hold mixed deadlines and is
dispatched under the tightest one still alive, while members already
past their deadline are shed before the shard is touched (a shed, not
a miss: no work was attempted for them).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.telemetry.request import RequestContext
from repro.telemetry.trace import Span

__all__ = ["CoalescePolicy", "CoalescerClosed", "FrontendFuture",
           "PendingRequest", "ReadyBatch", "Coalescer"]


class CoalescerClosed(RuntimeError):
    """An :meth:`Coalescer.add` raced past a close.

    Deliberately *not* a ``ServiceError``: this is an internal signal
    between coalescer and front end, which converts it into the typed
    ``draining`` shed the caller is owed.  Without it, a request that
    slipped past the front-end's draining check could land in an
    already-flushed coalescer and its future would never be fulfilled
    -- a caller hung forever at shutdown.
    """


@dataclass(frozen=True)
class CoalescePolicy:
    """How long to wait, and how many to gather, before dispatching.

    Args:
        window_s: Max time a request may wait for batch-mates; the
            latency the front-end is willing to add to harvest the
            batch speedup.
        max_batch: Flush immediately at this many compatible requests.
    """

    window_s: float = 0.002
    max_batch: int = 32

    def __post_init__(self) -> None:
        if self.window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {self.window_s}")
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )


class FrontendFuture:
    """One request's eventual response, shared across threads.

    A stripped-down future: the dispatcher fulfills it exactly once
    (result or exception); callers block on :meth:`result`.  The
    fulfillment clock time is stamped so the load generator can measure
    per-request latency without wrapping every call.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result = None
        self._exception: Optional[BaseException] = None
        #: Clock time at fulfillment (set by the front-end).
        self.completed_at: Optional[float] = None
        #: Telemetry request id (set at admission when tracing is on).
        self.request_id: Optional[str] = None

    def done(self) -> bool:
        """Whether the request has been fulfilled."""
        return self._event.is_set()

    def set_result(self, result, completed_at: Optional[float] = None) -> None:
        """Fulfill with a response (dispatcher side)."""
        self._result = result
        self.completed_at = completed_at
        self._event.set()

    def set_exception(
        self, exc: BaseException, completed_at: Optional[float] = None
    ) -> None:
        """Fulfill with a typed failure (dispatcher side)."""
        self._exception = exc
        self.completed_at = completed_at
        self._event.set()

    def result(self, timeout: Optional[float] = None):
        """Block until fulfilled; returns the response or raises.

        Raises:
            TimeoutError: Not fulfilled within ``timeout`` seconds.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request not fulfilled within {timeout}s"
            )
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> Optional[BaseException]:
        """The stored exception, if fulfilled with one (non-blocking)."""
        return self._exception


@dataclass
class PendingRequest:
    """One admitted, not-yet-dispatched request.

    ``ctx`` and ``submit_span`` are set by the front end when telemetry
    is on: the request context crosses the submit->dispatch thread hop
    with the request itself (contextvars do not), and the submit-side
    span is kept so a tail-sampled flight can attach both halves of
    the story.
    """

    kind: str                     # "search" | "topk"
    query: np.ndarray             # 1-D admitted query
    tenant: str
    deadline_at: float            # absolute, on the front-end clock
    enqueued_at: float
    future: FrontendFuture = field(default_factory=FrontendFuture)
    k: int = 0                    # top-k size (kind == "topk")
    ctx: Optional[RequestContext] = None
    submit_span: Optional[Span] = None

    @property
    def key(self) -> Tuple[str, int]:
        """Compatibility key: requests sharing it may share a batch."""
        return (self.kind, self.k)


@dataclass
class ReadyBatch:
    """A flushed batch on its way to the service."""

    kind: str
    k: int
    requests: List[PendingRequest]
    reason: str                   # "full" | "window" | "drain"
    oldest_enqueued_at: float

    def __len__(self) -> int:
        return len(self.requests)


class Coalescer:
    """Pending-batch store with full/window/drain flush rules.

    Thread-safe; pure data structure (no clock, no service) so the
    same coalescer runs under a dispatcher thread on wall time or an
    explicit pump loop on a fake clock, and unit tests can drive every
    interleaving deterministically.
    """

    def __init__(self, policy: Optional[CoalescePolicy] = None) -> None:
        self.policy = policy if policy is not None else CoalescePolicy()
        self._pending: Dict[Tuple[str, int], List[PendingRequest]] = {}
        self._lock = threading.Lock()
        self._closed = False

    @property
    def depth(self) -> int:
        """Requests currently pending (all batches)."""
        with self._lock:
            return sum(len(v) for v in self._pending.values())

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (no further adds accepted)."""
        with self._lock:
            return self._closed

    def close(self, reason: str = "drain") -> List[ReadyBatch]:
        """Refuse further adds and flush everything still pending.

        Idempotent: the first call flushes and closes, later calls
        return an empty list.  After close, :meth:`add` raises
        :class:`CoalescerClosed` so a racing submit is *rejected*
        instead of stranded in a store nobody will ever flush again.
        """
        with self._lock:
            if self._closed:
                return []
            self._closed = True
        return self.pop_all(reason)

    def add(self, request: PendingRequest) -> Optional[ReadyBatch]:
        """Enqueue one request; returns a batch if it just became full.

        Raises:
            CoalescerClosed: :meth:`close` already ran -- the caller
                must shed the request, not enqueue it.
        """
        with self._lock:
            if self._closed:
                raise CoalescerClosed(
                    "coalescer is closed; request must be shed"
                )
            group = self._pending.setdefault(request.key, [])
            group.append(request)
            if len(group) >= self.policy.max_batch:
                del self._pending[request.key]
                return ReadyBatch(
                    kind=request.kind,
                    k=request.k,
                    requests=group,
                    reason="full",
                    oldest_enqueued_at=group[0].enqueued_at,
                )
            return None

    def next_due(self) -> Optional[float]:
        """Earliest time any pending batch must flush (None when empty).

        A full batch is due immediately (its oldest enqueue time); a
        partial one is due when its oldest member's window expires.
        """
        with self._lock:
            due = None
            for group in self._pending.values():
                oldest = group[0].enqueued_at
                t = (
                    oldest
                    if len(group) >= self.policy.max_batch
                    else oldest + self.policy.window_s
                )
                due = t if due is None else min(due, t)
            return due

    def pop_due(self, now: float) -> List[ReadyBatch]:
        """Flush every batch that is full or whose window has expired."""
        ready: List[ReadyBatch] = []
        with self._lock:
            for key in list(self._pending):
                group = self._pending[key]
                full = len(group) >= self.policy.max_batch
                expired = (
                    group[0].enqueued_at + self.policy.window_s <= now
                )
                if full or expired:
                    del self._pending[key]
                    ready.append(
                        ReadyBatch(
                            kind=key[0],
                            k=key[1],
                            requests=group,
                            reason="full" if full else "window",
                            oldest_enqueued_at=group[0].enqueued_at,
                        )
                    )
        return ready

    def pop_all(self, reason: str = "drain") -> List[ReadyBatch]:
        """Flush everything (shutdown path)."""
        ready: List[ReadyBatch] = []
        with self._lock:
            for key, group in self._pending.items():
                ready.append(
                    ReadyBatch(
                        kind=key[0],
                        k=key[1],
                        requests=group,
                        reason=reason,
                        oldest_enqueued_at=group[0].enqueued_at,
                    )
                )
            self._pending.clear()
        return ready
