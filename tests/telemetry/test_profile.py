"""Probe hooks: catalog enforcement, opt-in dispatch, failure containment."""

import pytest

from repro.telemetry.profile import (
    PROBE_EVENTS,
    ProbeRecorder,
    active_probe_events,
    clear_probes,
    declare_probe_event,
    emit_probe,
    register_probe,
    unregister_probe,
)


class TestCatalog:
    def test_known_probe_points_exist(self):
        for event in (
            "array.search",
            "array.search_batch",
            "tdc.decode",
            "cache.threshold",
            "resilience.bist",
            "resilience.repair",
            "resilience.refresh",
            "mc.run",
            "mc.shard",
            "mc.fallback_serial",
            "experiment.run",
        ):
            assert event in PROBE_EVENTS

    def test_register_unknown_event_raises(self):
        with pytest.raises(ValueError, match="unknown probe event"):
            register_probe("array.serach", lambda e, **p: None)  # typo

    def test_emit_unknown_event_raises(self):
        with pytest.raises(ValueError, match="unknown probe event"):
            emit_probe("no.such.event", x=1)

    def test_declare_extends_catalog(self):
        declare_probe_event("myext.tick", "test-only event")
        try:
            rec = ProbeRecorder()
            register_probe("myext.tick", rec)
            emit_probe("myext.tick", n=1)
            assert rec.payloads("myext.tick") == [{"n": 1}]
        finally:
            PROBE_EVENTS.pop("myext.tick", None)

    def test_declare_conflicting_text_raises(self):
        declare_probe_event("myext.tock", "one description")
        try:
            declare_probe_event("myext.tock", "one description")  # idempotent
            with pytest.raises(ValueError, match="already declared"):
                declare_probe_event("myext.tock", "different description")
        finally:
            PROBE_EVENTS.pop("myext.tock", None)


class TestDispatch:
    def test_emit_without_hooks_is_a_noop(self):
        emit_probe("array.search", rows=1)  # must not raise

    def test_hooks_called_in_registration_order(self):
        order = []
        register_probe("mc.run", lambda e, **p: order.append("a"))
        register_probe("mc.run", lambda e, **p: order.append("b"))
        emit_probe("mc.run", n_runs=1, workers=1, elapsed_s=0.0)
        assert order == ["a", "b"]

    def test_unregister_detaches_one_hook(self):
        rec = ProbeRecorder()
        register_probe("mc.run", rec)
        unregister_probe("mc.run", rec)
        emit_probe("mc.run", n_runs=1, workers=1, elapsed_s=0.0)
        assert rec.records == []
        assert "mc.run" not in active_probe_events()

    def test_clear_probes_detaches_everything(self):
        register_probe("mc.run", ProbeRecorder())
        register_probe("mc.shard", ProbeRecorder())
        clear_probes()
        assert active_probe_events() == ()

    def test_raising_hook_is_contained(self):
        rec = ProbeRecorder()

        def bad(event, **payload):
            raise RuntimeError("hook bug")

        register_probe("tdc.decode", bad)
        register_probe("tdc.decode", rec)
        emit_probe("tdc.decode", n=1, min_margin_lsb=0.4, mean_margin_lsb=0.5)
        # The search was not broken and later hooks still ran.
        assert rec.events() == ["tdc.decode"]


class TestProbeRecorder:
    def test_records_events_and_payloads(self):
        rec = ProbeRecorder()
        rec("a.b", x=1)
        rec("c.d", y=2)
        rec("a.b", x=3)
        assert rec.events() == ["a.b", "c.d", "a.b"]
        assert rec.payloads("a.b") == [{"x": 1}, {"x": 3}]
        rec.clear()
        assert rec.records == []
