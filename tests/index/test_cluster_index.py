"""Clustered index: exactness ladder, routing, recall, padding."""

import numpy as np
import pytest

from repro import telemetry
from repro.core.array import FastTDAMArray
from repro.core.config import TDAMConfig
from repro.datasets.synthetic import make_clustered_levels, perturb_levels
from repro.index import (
    BitPlaneStore,
    BitPlaneStoreError,
    ClusteredTDAMIndex,
    build_store,
)


def _build(tmp_path, rows, config, n_clusters, **kwargs):
    return ClusteredTDAMIndex.build(
        tmp_path / "idx", rows, config,
        n_clusters=n_clusters, seed=3, **kwargs,
    )


class TestExactness:
    @pytest.mark.parametrize("n_stages", [32, 160])
    def test_full_probe_is_bit_identical_to_exhaustive(
        self, tmp_path, rng, n_stages
    ):
        # n_stages=160 spills past the 8-byte prefix window, exercising
        # the suffix-refine (packed_pair_counts) leg of the cascade.
        config = TDAMConfig(n_stages=n_stages)
        rows = rng.integers(0, config.levels, size=(300, n_stages))
        queries = rng.integers(0, config.levels, size=(17, n_stages))
        index = _build(tmp_path, rows, config, n_clusters=8)
        result = index.top_k(queries, 5, nprobe=index.n_clusters)
        array = FastTDAMArray(config, n_rows=300)
        array.write_all(rows)
        assert np.array_equal(result.rows, array.top_k_batch(queries, 5))

    def test_reopened_store_serves_identical_answers(
        self, tmp_path, rng, config
    ):
        rows = rng.integers(0, config.levels, size=(200, config.n_stages))
        queries = rng.integers(0, config.levels, size=(9, config.n_stages))
        index = _build(tmp_path, rows, config, n_clusters=6)
        want = index.top_k(queries, 4, nprobe=3)
        reopened = ClusteredTDAMIndex(BitPlaneStore(tmp_path / "idx"))
        got = reopened.top_k(queries, 4, nprobe=3)
        assert np.array_equal(got.rows, want.rows)
        assert np.array_equal(got.distances, want.distances)
        assert np.array_equal(got.delays_s, want.delays_s)

    def test_distances_and_delays_match_the_exhaustive_keys(
        self, tmp_path, rng, config
    ):
        rows = rng.integers(0, config.levels, size=(150, config.n_stages))
        queries = rng.integers(0, config.levels, size=(7, config.n_stages))
        index = _build(tmp_path, rows, config, n_clusters=5)
        result = index.top_k(queries, 3, nprobe=index.n_clusters)
        # Hamming distance of each selected row, recomputed directly.
        for i in range(queries.shape[0]):
            for j in range(3):
                row = result.rows[i, j]
                hamming = int((rows[row] != queries[i]).sum())
                assert result.distances[i, j] == hamming


class TestRouting:
    def test_route_is_deterministic_and_shaped(self, tmp_path, rng, config):
        rows = rng.integers(0, config.levels, size=(200, config.n_stages))
        queries = rng.integers(0, config.levels, size=(11, config.n_stages))
        index = _build(tmp_path, rows, config, n_clusters=6)
        first = index.route(queries, nprobe=4)
        assert first.shape == (11, 4)
        assert np.array_equal(first, index.route(queries, nprobe=4))
        # Routed clusters are distinct per query.
        for row in first:
            assert len(set(row.tolist())) == 4

    def test_recall_on_clustered_corpus(self, tmp_path):
        config = TDAMConfig(n_stages=64)
        rows, _, _ = make_clustered_levels(
            4000, config.n_stages, config.levels, 16, noise=0.05, seed=5
        )
        queries = perturb_levels(rows[:32], config.levels, 0.05, seed=6)
        index = _build(tmp_path, rows, config, n_clusters=16)
        truth = index.top_k(queries, 10, nprobe=index.n_clusters)
        approx = index.top_k(queries, 10, nprobe=4)
        hits = sum(
            len(set(approx.rows[i]) & set(truth.rows[i]))
            for i in range(32)
        )
        assert hits / 320.0 >= 0.95
        assert approx.rows_probed < truth.rows_probed
        assert 0.0 < approx.probe_fraction < 1.0

    def test_probes_fire_when_telemetry_enabled(
        self, tmp_path, rng, config
    ):
        rows = rng.integers(0, config.levels, size=(120, config.n_stages))
        queries = rng.integers(0, config.levels, size=(4, config.n_stages))
        index = _build(tmp_path, rows, config, n_clusters=4)
        telemetry.reset()
        telemetry.enable()
        try:
            rec = telemetry.ProbeRecorder()
            telemetry.register_probe("index.route", rec)
            telemetry.register_probe("index.probe", rec)
            index.top_k(queries, 2, nprobe=2)
            events = rec.events()
        finally:
            telemetry.reset()
        assert "index.route" in events
        assert "index.probe" in events
        payload = rec.payloads("index.probe")[0]
        assert payload["queries"] == 4
        assert payload["rows_total"] == 120


class TestPaddingAndErrors:
    def test_short_probe_pads_with_minus_one(self, tmp_path, rng, config):
        rows = rng.integers(0, config.levels, size=(40, config.n_stages))
        queries = rng.integers(0, config.levels, size=(3, config.n_stages))
        # Hand-built store: exactly 10 rows per cluster, so nprobe=1
        # can never reach k=20 rows and padding is guaranteed.
        store = build_store(
            tmp_path / "idx", rows, config,
            assignments=np.arange(40, dtype=np.int64) % 4,
            centroid_levels=rows[:4].astype(np.uint8),
        )
        index = ClusteredTDAMIndex(store)
        k = 20
        result = index.top_k(queries, k, nprobe=1)
        assert result.rows.shape == (3, k)
        for i in range(3):
            padded = result.rows[i] == -1
            assert padded.any()
            # Pads are trailing and carry sentinel keys.
            first_pad = int(np.argmax(padded))
            assert np.all(result.rows[i, first_pad:] == -1)
            assert np.all(result.distances[i][padded] == -1)
            assert np.all(np.isinf(result.delays_s[i][padded]))

    def test_store_without_centroids_is_rejected(
        self, tmp_path, rng, config
    ):
        rows = rng.integers(0, config.levels, size=(50, config.n_stages))
        store = build_store(tmp_path / "flat", rows, config)
        with pytest.raises(BitPlaneStoreError, match="centroid"):
            ClusteredTDAMIndex(store)

    def test_bad_arguments_are_rejected(self, tmp_path, rng, config):
        rows = rng.integers(0, config.levels, size=(60, config.n_stages))
        queries = rng.integers(0, config.levels, size=(2, config.n_stages))
        index = _build(tmp_path, rows, config, n_clusters=4)
        with pytest.raises(ValueError, match="k must be"):
            index.top_k(queries, 0)
        with pytest.raises(ValueError, match="nprobe"):
            index.top_k(queries, 1, nprobe=0)
        with pytest.raises(ValueError, match="stages"):
            index.top_k(queries[:, :-1], 1)
        with pytest.raises(ValueError, match="n_clusters"):
            _build(tmp_path / "bad", rows, config, n_clusters=1)
