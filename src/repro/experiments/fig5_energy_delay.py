"""Fig. 5: energy/delay scaling with load capacitor, chain length, V_DD.

- Fig. 5(a)(b): energy and delay of the worst-case (all-mismatch) search
  over a 2-D grid of load capacitance (6 fF..1280 fF) and chain length
  (1..64).  The paper's observation: iso-energy and iso-delay contours
  run diagonally, i.e. both are proportional to ``C_load * N_mis``.
- Fig. 5(c)(d): average energy and latency of 32/64/128-stage chains
  under supply-voltage scaling; energy drops ~V^2 while delay grows as
  the drive current collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_series, format_table
from repro.analysis.sweeps import SweepResult, grid_sweep
from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel
from repro.experiments._instrument import instrumented


@dataclass
class Fig5ABResult:
    """The (C_load, N) grid of worst-case search energy and delay."""

    sweep: SweepResult
    c_loads_f: Sequence[float]
    stage_counts: Sequence[int]

    def energy_grid(self) -> np.ndarray:
        """Energy (J), shape (len(c_loads), len(stage_counts))."""
        return self.sweep.grid("energy_j")

    def delay_grid(self) -> np.ndarray:
        """Delay (s), same shape."""
        return self.sweep.grid("delay_s")


@instrumented("fig5_ab")
def run_fig5_ab(
    c_loads_f: Optional[Sequence[float]] = None,
    stage_counts: Optional[Sequence[int]] = None,
    config: Optional[TDAMConfig] = None,
) -> Fig5ABResult:
    """Sweep the (load capacitor, chain length) grid at worst case."""
    base = config or TDAMConfig()
    if c_loads_f is None:
        c_loads_f = [6e-15 * (2**k) for k in range(8)]  # 6 fF .. 768 fF
        c_loads_f.append(1280e-15)
    if stage_counts is None:
        stage_counts = [1, 2, 4, 8, 16, 32, 64]

    def evaluate(c_load_f: float, n_stages: int):
        cfg = base.with_(c_load_f=c_load_f, n_stages=n_stages)
        model = TimingEnergyModel(cfg)
        cost = model.search_cost(n_stages)  # worst case: all mismatch
        return {"energy_j": cost.energy_j, "delay_s": cost.delay_s}

    sweep = grid_sweep(
        {"c_load_f": list(c_loads_f), "n_stages": list(stage_counts)},
        evaluate,
    )
    return Fig5ABResult(
        sweep=sweep, c_loads_f=list(c_loads_f), stage_counts=list(stage_counts)
    )


@dataclass
class Fig5CDResult:
    """Energy/latency vs. V_DD for several chain lengths."""

    vdds: np.ndarray
    stage_counts: Sequence[int]
    energy_j: np.ndarray  # (n_vdd, n_chains)
    latency_s: np.ndarray  # (n_vdd, n_chains)
    energy_per_bit_j: np.ndarray  # (n_vdd, n_chains)

    def best_energy_per_bit(self) -> "tuple[float, float, int]":
        """(J/bit, V_DD, n_stages) of the most efficient point."""
        idx = np.unravel_index(
            np.argmin(self.energy_per_bit_j), self.energy_per_bit_j.shape
        )
        return (
            float(self.energy_per_bit_j[idx]),
            float(self.vdds[idx[0]]),
            int(self.stage_counts[idx[1]]),
        )


@instrumented("fig5_cd")
def run_fig5_cd(
    vdds: Optional[Sequence[float]] = None,
    stage_counts: Sequence[int] = (32, 64, 128),
    mismatch_fraction: float = 0.5,
    config: Optional[TDAMConfig] = None,
) -> Fig5CDResult:
    """Sweep supply voltage for 32/64/128-stage chains.

    Energy/latency are evaluated at an average-case activity
    (``mismatch_fraction`` of the stages mismatching), as the paper's
    "average energy and computational latency" wording implies.
    """
    base = config or TDAMConfig()
    if vdds is None:
        vdds = np.linspace(0.5, 1.1, 13)
    vdds = np.asarray(list(vdds), dtype=float)
    energy = np.zeros((len(vdds), len(stage_counts)))
    latency = np.zeros_like(energy)
    per_bit = np.zeros_like(energy)
    for i, vdd in enumerate(vdds):
        for j, n in enumerate(stage_counts):
            cfg = base.with_(vdd=float(vdd), n_stages=int(n))
            model = TimingEnergyModel(cfg)
            n_mis = int(round(mismatch_fraction * n))
            cost = model.search_cost(n_mis)
            energy[i, j] = cost.energy_j
            latency[i, j] = cost.delay_s
            per_bit[i, j] = model.energy_per_bit()
    return Fig5CDResult(
        vdds=vdds,
        stage_counts=list(stage_counts),
        energy_j=energy,
        latency_s=latency,
        energy_per_bit_j=per_bit,
    )


def format_fig5_ab(result: Fig5ABResult) -> str:
    """Text rendering: energy and delay tables over the grid."""
    records = []
    for record in result.sweep.records:
        records.append(
            {
                "c_load_fF": record["c_load_f"] * 1e15,
                "n_stages": record["n_stages"],
                "energy_fJ": record["energy_j"] * 1e15,
                "delay_ps": record["delay_s"] * 1e12,
                "c_times_n": record["c_load_f"] * 1e15 * record["n_stages"],
            }
        )
    return format_table(
        records,
        title="Fig. 5(a)(b): worst-case search energy/delay vs (C_load, N)",
    )


def format_fig5_cd(result: Fig5CDResult) -> str:
    """Text rendering: the V_DD scaling curves."""
    curves = {}
    for j, n in enumerate(result.stage_counts):
        curves[f"E_{n}st_fJ"] = result.energy_j[:, j] * 1e15
        curves[f"t_{n}st_ns"] = result.latency_s[:, j] * 1e9
    body = format_series(
        "vdd_V", [f"{v:.2f}" for v in result.vdds], curves,
        title="Fig. 5(c)(d): energy and latency under V_DD scaling",
    )
    best, vdd, n = result.best_energy_per_bit()
    return (
        f"{body}\n"
        f"best energy efficiency: {best * 1e15:.3f} fJ/bit at "
        f"V_DD={vdd:.2f} V, {n} stages (paper: 0.159 fJ/bit)"
    )


if __name__ == "__main__":
    from repro.cli import emit

    emit(format_fig5_ab(run_fig5_ab()))
    emit()
    emit(format_fig5_cd(run_fig5_cd()))
