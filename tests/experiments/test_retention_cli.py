"""Tests of the retention extension experiment and the CLI."""

import pytest

from repro.cli import EXPERIMENTS, REPORT_ORDER, main
from repro.experiments.ext_retention import (
    format_endurance,
    format_retention,
    run_endurance_study,
    run_retention_study,
)


class TestRetentionStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_retention_study(
            times_s=(1.0, 3.2e7, 3.2e8), n_rows=6, n_queries=6
        )

    def test_fresh_array_is_exact(self, result):
        fresh = result.records[0]
        assert fresh.distance_rmse == 0.0
        assert fresh.exact_fraction == 1.0

    def test_fidelity_degrades_with_age(self, result):
        rmse = [r.distance_rmse for r in result.records]
        assert rmse[-1] > rmse[0]

    def test_margin_shrinks_with_age(self, result):
        margins = [r.match_margin_v for r in result.records]
        assert margins == sorted(margins, reverse=True)

    def test_compensation_rescues_old_arrays(self, result):
        """The aging-aware SL re-bias avoids the catastrophic mismatch-
        detection loss of the fixed ladder."""
        oldest = result.records[-1]
        assert oldest.distance_rmse_compensated < 0.5 * oldest.distance_rmse

    def test_lifetime_positive(self, result):
        assert result.lifetime_s > 0

    def test_formatting(self, result):
        text = format_retention(result)
        assert "lifetime" in text


class TestEnduranceStudy:
    def test_ladder_fits_until_fatigue(self):
        records = run_endurance_study(cycles=(1e2, 1e8))
        assert records[0].ladder_fits
        assert not records[1].ladder_fits

    def test_formatting(self):
        text = format_endurance(run_endurance_study(cycles=(1e2,)))
        assert "cycles" in text


class TestCLI:
    def test_registry_covers_report_order(self):
        assert set(REPORT_ORDER) == set(EXPERIMENTS)

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in REPORT_ORDER:
            assert name in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "This work" in out

    def test_run_area(self, capsys):
        assert main(["run", "area"]) == 0
        assert "bit-density advantage" in capsys.readouterr().out

    def test_run_fig6_fast(self, capsys):
        assert main(["run", "fig6", "--fast"]) == 0
        assert "yield" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonexistent"])

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()


class TestBatchStudy:
    def test_crossover_structure(self):
        from repro.experiments.ext_batch import (
            format_batch_study,
            run_batch_study,
        )

        study = run_batch_study(batches=(1, 1_000, 100_000),
                                bank_counts=(1, 8))
        by_key = {(r.batch, r.n_banks): r for r in study.records}
        assert by_key[(1, 1)].tdam_wins
        assert not by_key[(100_000, 1)].tdam_wins
        assert study.crossover_batch(8) is None
        assert "winner" in format_batch_study(study)


class TestTemperatureDriver:
    def test_replica_beats_fixed(self):
        from repro.experiments.ext_temperature import (
            format_temperature,
            run_temperature_study,
        )

        records = run_temperature_study(temperatures_k=(298.0, 398.0))
        room, hot = records
        assert room.fixed_exact_fraction == 1.0
        assert hot.replica_exact_fraction > hot.fixed_exact_fraction
        assert "replica" in format_temperature(records)


class TestOnlineDriver:
    def test_modes_ranked(self):
        from repro.datasets.synthetic import make_face_like
        from repro.experiments.ext_online import run_online_study

        records = run_online_study(
            dataset=make_face_like(200, 100), dimension=512,
        )
        by_mode = {r.feedback: r for r in records}
        assert (
            by_mode["exact"].test_accuracy
            >= by_mode["binary"].test_accuracy
        )
