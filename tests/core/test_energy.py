"""Tests of the analytic timing/energy model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel


@pytest.fixture
def model(config):
    return TimingEnergyModel(config)


class TestDelayLaw:
    def test_paper_formula(self, config, model):
        """d_tot = 2 * N_tot * d_INV + N_mis * d_C (Sec. III-B)."""
        n = config.n_stages
        for n_mis in (0, 1, 7, n):
            expected = 2 * n * model.d_inv + n_mis * model.d_c
            assert model.chain_delay(n_mis) == pytest.approx(expected)

    def test_step_delay(self, config, model):
        n = config.n_stages
        assert model.step_delay(3) == pytest.approx(n * model.d_inv + 3 * model.d_c)

    def test_d_c_dominates_d_inv(self, model):
        """The mismatch signal is much larger than the intrinsic delay."""
        assert model.d_c > 5 * model.d_inv

    def test_delay_inversion_roundtrip(self, model):
        delay = model.chain_delay(13)
        assert model.delay_to_mismatches(delay) == pytest.approx(13.0)

    def test_rejects_out_of_range_mismatches(self, config, model):
        with pytest.raises(ValueError, match="n_mismatch"):
            model.chain_delay(config.n_stages + 1)
        with pytest.raises(ValueError, match="n_mismatch"):
            model.chain_delay(-1)

    def test_overrides_take_effect(self, config):
        model = TimingEnergyModel(config, d_inv_override=5e-12, d_c_override=50e-12)
        assert model.d_inv == 5e-12
        assert model.d_c == 50e-12


class TestScaling:
    def test_d_c_linear_in_load_cap(self, config):
        d1 = TimingEnergyModel(config.with_(c_load_f=6e-15)).d_c
        d2 = TimingEnergyModel(config.with_(c_load_f=12e-15)).d_c
        assert d2 / d1 == pytest.approx(2.0)

    def test_delay_grows_at_low_vdd(self, config):
        nominal = TimingEnergyModel(config)
        scaled = TimingEnergyModel(config.with_(vdd=0.6))
        assert scaled.d_inv > nominal.d_inv
        assert scaled.d_c > nominal.d_c

    def test_energy_drops_at_low_vdd(self, config):
        nominal = TimingEnergyModel(config).search_cost(16).energy_j
        scaled = TimingEnergyModel(config.with_(vdd=0.6)).search_cost(16).energy_j
        assert scaled < nominal

    def test_energy_proportional_to_c_times_mismatches(self, config):
        """The Fig. 5(a) diagonal-contour property: the load-cap term
        scales with C_load * N_mis."""
        m1 = TimingEnergyModel(config.with_(c_load_f=6e-15))
        m2 = TimingEnergyModel(config.with_(c_load_f=12e-15))
        load1 = m1.search_cost(8).energy_breakdown_j["load_caps"]
        load2a = m2.search_cost(4).energy_breakdown_j["load_caps"]
        load2b = m1.search_cost(16).energy_breakdown_j["load_caps"]
        assert load1 == pytest.approx(load2a)
        assert load2b == pytest.approx(2 * load1)


class TestSearchCost:
    def test_breakdown_sums_to_total(self, model):
        cost = model.search_cost(10)
        assert cost.energy_j == pytest.approx(
            sum(cost.energy_breakdown_j.values())
        )

    def test_zero_mismatch_has_no_load_energy(self, model):
        cost = model.search_cost(0)
        assert cost.energy_breakdown_j["load_caps"] == 0.0
        assert cost.energy_breakdown_j["match_nodes"] == 0.0

    def test_per_step_delays_sum(self, model):
        cost = model.search_cost(9, n_mismatch_even=4)
        assert cost.delay_s == pytest.approx(
            cost.delay_rising_s + cost.delay_falling_s
        )

    def test_bad_even_split_rejected(self, model):
        with pytest.raises(ValueError, match="n_mismatch_even"):
            model.search_cost(3, n_mismatch_even=5)

    def test_tdc_excludable(self, model):
        with_tdc = model.search_cost(5).energy_j
        without = model.search_cost(5, include_tdc=False).energy_j
        assert without < with_tdc

    def test_array_cost_latency_is_slowest_chain(self, model):
        cost = model.array_search_cost([0, 5, 20])
        assert cost.delay_s == pytest.approx(model.search_cost(20).delay_s)

    def test_array_cost_energy_sums(self, model):
        individual = [model.search_cost(m).energy_j for m in (0, 5, 20)]
        cost = model.array_search_cost([0, 5, 20])
        assert cost.energy_j == pytest.approx(sum(individual))

    def test_array_cost_empty_rejected(self, model):
        with pytest.raises(ValueError, match="empty"):
            model.array_search_cost([])


class TestEfficiency:
    def test_best_point_near_paper_headline(self):
        """0.159 fJ/bit at the paper's 0.6 V system operating point."""
        model = TimingEnergyModel(TDAMConfig(vdd=0.6))
        assert model.energy_per_bit() * 1e15 == pytest.approx(0.159, rel=0.1)

    def test_energy_per_bit_custom_activity(self, model):
        low = model.energy_per_bit(n_mismatch=1)
        high = model.energy_per_bit(n_mismatch=30)
        assert low < high


class TestMonotonicityProperties:
    @given(
        n_mis=st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=30, deadline=None)
    def test_delay_strictly_increasing_in_mismatches(self, n_mis):
        model = TimingEnergyModel(TDAMConfig())
        assert model.chain_delay(n_mis + 1) > model.chain_delay(n_mis)

    @given(
        n_mis=st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=30, deadline=None)
    def test_energy_nondecreasing_in_mismatches(self, n_mis):
        model = TimingEnergyModel(TDAMConfig())
        assert (
            model.search_cost(n_mis + 1).energy_j
            >= model.search_cost(n_mis).energy_j
        )

    @given(vdd=st.floats(min_value=0.5, max_value=1.1))
    @settings(max_examples=20, deadline=None)
    def test_delays_positive_across_vdd(self, vdd):
        model = TimingEnergyModel(TDAMConfig().with_(vdd=vdd))
        assert model.d_inv > 0
        assert model.d_c > 0
