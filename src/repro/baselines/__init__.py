"""Comparison designs: the Table I baselines and the GPU cost model.

Each baseline is implemented as a small functional model (its search /
MAC semantics) plus an energy model anchored to the energy-per-bit number
the paper's Table I quotes for it.  This lets the reproduction *generate*
Table I and also contrast capabilities in code (e.g. the CAMs' inability
to produce quantitative similarity).

- :mod:`~repro.baselines.tcam16t` -- 16T CMOS TCAM [29].
- :mod:`~repro.baselines.fecam` -- 2-FeFET TCAM (Nat. Electron.'19 [15]).
- :mod:`~repro.baselines.timaq` -- TIMAQ, CMOS time-domain IMC (JSSC'21
  [20]).
- :mod:`~repro.baselines.fefinfet` -- Fe-FinFET TD mixed-signal IMC
  (IEDM'21 [22]).
- :mod:`~repro.baselines.td_cim` -- 3T-2FeFET TD compute-in-memory fabric
  (Work [24]).
- :mod:`~repro.baselines.gpu` -- RTX 4070-class GPU roofline/overhead
  cost model for the Fig. 8 system comparison.
- :mod:`~repro.baselines.registry` -- Table I assembly.
"""

from repro.baselines.base import BaselineDesign, SCType
from repro.baselines.crossbar import CosineCrossbarAM, MultiBitFeCAMCrossbar
from repro.baselines.fecam import FeFETTCAM
from repro.baselines.fefinfet import FeFinFETTimeDomainIMC
from repro.baselines.gpu import GPUCostModel, GPUWorkload
from repro.baselines.registry import TableIRow, build_table_i
from repro.baselines.rram_tdcam import RRAMTimeDomainCAM
from repro.baselines.tcam16t import CMOSTCAM16T
from repro.baselines.td_cim import TDCIMFabric
from repro.baselines.timaq import TIMAQ

__all__ = [
    "BaselineDesign",
    "SCType",
    "CMOSTCAM16T",
    "FeFETTCAM",
    "TIMAQ",
    "FeFinFETTimeDomainIMC",
    "TDCIMFabric",
    "GPUCostModel",
    "GPUWorkload",
    "TableIRow",
    "build_table_i",
    "MultiBitFeCAMCrossbar",
    "CosineCrossbarAM",
    "RRAMTimeDomainCAM",
]
