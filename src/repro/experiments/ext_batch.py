"""Extension experiment: where the GPU catches up -- batched inference.

Fig. 8 compares *single-query* (latency-critical edge) inference, where
the GPU pays its full dispatch overhead per query and the TD-AM wins by
orders of magnitude.  Under batching the GPU amortizes that overhead and
becomes compute/bandwidth-bound, while the TD-AM's throughput is set by
its tile cadence regardless of batch size.  This study locates the
**crossover batch size** where the GPU's amortized per-query time drops
below the TD-AM's -- and shows how adding banks moves it.

This is deliberately an *unfavourable-direction* extension: a credible
reproduction should report where the proposed design stops winning, not
only where it wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


from repro.analysis.reporting import format_table
from repro.baselines.gpu import GPUCostModel, GPUWorkload
from repro.core.config import TDAMConfig
from repro.hdc.accelerator import AcceleratorModel, AcceleratorSpec
from repro.experiments._instrument import instrumented


@dataclass
class BatchRecord:
    """One (batch size, bank count) comparison point.

    Attributes:
        batch: GPU batch size.
        n_banks: TD-AM banks.
        gpu_per_query_s: Amortized GPU time per query.
        tdam_per_query_s: TD-AM steady-state time per query.
        tdam_wins: Whether the TD-AM is still faster.
    """

    batch: int
    n_banks: int
    gpu_per_query_s: float
    tdam_per_query_s: float

    @property
    def tdam_wins(self) -> bool:
        return self.tdam_per_query_s < self.gpu_per_query_s


@dataclass
class BatchStudy:
    """The full sweep plus derived crossovers."""

    records: List[BatchRecord]
    dimension: int

    def crossover_batch(self, n_banks: int) -> Optional[int]:
        """Smallest swept batch where the GPU beats ``n_banks`` banks."""
        for record in self.records:
            if record.n_banks == n_banks and not record.tdam_wins:
                return record.batch
        return None


@instrumented("batch")
def run_batch_study(
    batches: Sequence[int] = (1, 10, 100, 1_000, 10_000, 100_000),
    bank_counts: Sequence[int] = (1, 8),
    dimension: int = 2048,
    n_classes: int = 26,
    n_features: int = 617,
    gpu: Optional[GPUCostModel] = None,
    config: Optional[TDAMConfig] = None,
) -> BatchStudy:
    """Sweep GPU batch size against TD-AM bank counts."""
    gpu = gpu or GPUCostModel()
    config = config or TDAMConfig(bits=2, n_stages=128, vdd=0.6)
    records: List[BatchRecord] = []
    for n_banks in bank_counts:
        spec = AcceleratorSpec(
            config=config, n_banks=int(n_banks), n_classes=n_classes,
            dimension=dimension, n_features=n_features,
        )
        tdam_per_query = 1.0 / AcceleratorModel(spec).throughput_qps()
        for batch in batches:
            workload = GPUWorkload(
                dimension=dimension, n_classes=n_classes,
                n_features=n_features, batch=int(batch),
            )
            records.append(
                BatchRecord(
                    batch=int(batch),
                    n_banks=int(n_banks),
                    gpu_per_query_s=gpu.per_query_time_s(workload),
                    tdam_per_query_s=tdam_per_query,
                )
            )
    return BatchStudy(records=records, dimension=dimension)


def format_batch_study(study: BatchStudy) -> str:
    """Text rendering plus the crossover summary."""
    rows = [
        {
            "batch": r.batch,
            "n_banks": r.n_banks,
            "gpu_ns_per_q": r.gpu_per_query_s * 1e9,
            "tdam_ns_per_q": r.tdam_per_query_s * 1e9,
            "winner": "TD-AM" if r.tdam_wins else "GPU",
        }
        for r in study.records
    ]
    body = format_table(
        rows,
        title=(
            f"Extension: batched inference at D={study.dimension} -- "
            "amortized per-query time"
        ),
    )
    notes = []
    for n_banks in sorted({r.n_banks for r in study.records}):
        crossover = study.crossover_batch(n_banks)
        if crossover is None:
            notes.append(
                f"{n_banks} bank(s): TD-AM faster at every swept batch size"
            )
        else:
            notes.append(
                f"{n_banks} bank(s): GPU overtakes at batch >= {crossover}"
            )
    return body + "\n" + "\n".join(notes)


if __name__ == "__main__":
    from repro.cli import emit

    emit(format_batch_study(run_batch_study()))
