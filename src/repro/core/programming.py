"""Array programming: write-verify orchestration, time and energy.

Deploying a model onto the TD-AM means programming every FeFET of every
cell through the erase-then-partial-program scheme with verify retries
(:class:`~repro.devices.write.WriteScheme`).  This module budgets that
operation at array scale:

- per-pulse energy from the gate-stack capacitance and write amplitude,
- per-cell pulse counts including verify retries (drawn from a retry
  distribution calibrated on the device model),
- column-parallel scheduling: all cells of a row program together, the
  slowest cell (most retries) sets the row time,

and produces a :class:`ProgrammingReport` for a whole model deployment --
the "how long does loading my HDC model take" answer, plus the endurance
budget it consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import TDAMConfig
from repro.devices.nonideal import EnduranceModel

#: FeFET gate-stack capacitance during a write pulse (F); the MFM stack
#: switching charge dominates ordinary gate capacitance.
C_WRITE_GATE_F = 1.2e-15
#: Write pulse width (s).
T_WRITE_PULSE_S = 100e-9
#: Verify (read) time per attempt (s).
T_VERIFY_S = 20e-9
#: Verify read energy per cell (J).
E_VERIFY_J = 2e-15


@dataclass(frozen=True)
class ProgrammingReport:
    """Cost of programming one array image.

    Attributes:
        n_rows: Rows programmed.
        n_cells: Cells programmed (rows x stages).
        total_time_s: Wall-clock programming time (rows serial, cells of
            a row parallel).
        total_energy_j: Pulse + verify energy over all cells.
        mean_pulses_per_cell: Average write pulses (erase+program pairs).
        worst_pulses_per_cell: Largest per-cell pulse count observed.
        endurance_cycles_consumed: Program/erase cycles added to every
            cell of the array image.
    """

    n_rows: int
    n_cells: int
    total_time_s: float
    total_energy_j: float
    mean_pulses_per_cell: float
    worst_pulses_per_cell: int
    endurance_cycles_consumed: float


class ProgrammingModel:
    """Write-path cost model of one TD-AM instance.

    Args:
        config: Design point (supplies erase/program voltages and size).
        retry_p: Probability that a verify fails and another erase/program
            pair is needed (geometric retry model; ~0.25 matches the
            verify loop's behaviour on the device model at 20 mV
            tolerance).
        max_retries: Retry cap per cell (write scheme default).
        seed: Seed of the retry draws.
    """

    def __init__(
        self,
        config: TDAMConfig,
        retry_p: float = 0.25,
        max_retries: int = 12,
        seed: Optional[int] = 0,
    ) -> None:
        if not 0.0 <= retry_p < 1.0:
            raise ValueError(f"retry_p must be in [0, 1), got {retry_p}")
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        self.config = config
        self.retry_p = retry_p
        self.max_retries = max_retries
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Per-pulse primitives
    # ------------------------------------------------------------------
    @property
    def pulse_energy_j(self) -> float:
        """Energy of one erase + one program pulse on one FeFET (J)."""
        erase = C_WRITE_GATE_F * self.config.fefet.erase_voltage**2
        program = C_WRITE_GATE_F * self.config.fefet.program_voltage**2
        return erase + program

    @property
    def attempt_time_s(self) -> float:
        """Time of one erase+program+verify attempt (s)."""
        return 2 * T_WRITE_PULSE_S + T_VERIFY_S

    def draw_pulse_counts(self, n_cells: int) -> np.ndarray:
        """Geometric verify-retry pulse counts per cell (capped)."""
        if n_cells < 1:
            raise ValueError(f"n_cells must be >= 1, got {n_cells}")
        attempts = self._rng.geometric(1.0 - self.retry_p, size=n_cells)
        return np.minimum(attempts, self.max_retries)

    # ------------------------------------------------------------------
    # Array-image programming
    # ------------------------------------------------------------------
    def program_image(self, n_rows: int) -> ProgrammingReport:
        """Cost of programming ``n_rows`` of ``config.n_stages`` cells.

        Rows program serially (shared write drivers); within a row every
        cell's two FeFETs program in parallel, so the slowest cell of
        each row sets the row time.
        """
        if n_rows < 1:
            raise ValueError(f"n_rows must be >= 1, got {n_rows}")
        n_stages = self.config.n_stages
        total_time = 0.0
        total_energy = 0.0
        all_attempts = []
        worst = 0
        for _ in range(n_rows):
            attempts = self.draw_pulse_counts(n_stages)
            all_attempts.append(attempts)
            worst = max(worst, int(attempts.max()))
            total_time += float(attempts.max()) * self.attempt_time_s
            # Two FeFETs per cell, each pulsed `attempts` times.
            total_energy += float(
                (attempts * 2 * self.pulse_energy_j).sum()
                + (attempts * 2 * E_VERIFY_J).sum()
            )
        attempts_flat = np.concatenate(all_attempts)
        return ProgrammingReport(
            n_rows=n_rows,
            n_cells=n_rows * n_stages,
            total_time_s=total_time,
            total_energy_j=total_energy,
            mean_pulses_per_cell=float(attempts_flat.mean()),
            worst_pulses_per_cell=worst,
            endurance_cycles_consumed=float(attempts_flat.mean()),
        )

    def deployments_until_fatigue(
        self,
        n_rows: int,
        endurance: Optional[EnduranceModel] = None,
        window_floor: float = 0.97,
    ) -> float:
        """How many model re-deployments the array survives.

        The configured V_TH ladder spans the whole pristine window, so
        already a few percent of fatigue narrowing breaks the outer
        levels; ``window_floor`` sets the accepted narrowing.
        """
        endurance = endurance or EnduranceModel(params=self.config.fefet)
        cycles_budget = endurance.cycles_to_window_fraction(window_floor)
        report = self.program_image(n_rows)
        return cycles_budget / report.endurance_cycles_consumed
