"""Tests of the F_A/F_B level encodings (Fig. 2(b)(c))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TDAMConfig
from repro.core.encoding import LevelEncoding


@pytest.fixture
def enc():
    return LevelEncoding(TDAMConfig(bits=2))


class TestStoredSide:
    def test_fa_uses_direct_ladder(self, enc):
        assert enc.vth_for_fa(0) == pytest.approx(0.2)
        assert enc.vth_for_fa(3) == pytest.approx(1.4)

    def test_fb_uses_reversed_ladder(self, enc):
        assert enc.vth_for_fb(0) == pytest.approx(1.4)
        assert enc.vth_for_fb(3) == pytest.approx(0.2)

    def test_out_of_range_value(self, enc):
        with pytest.raises(ValueError, match="out of range"):
            enc.vth_for_fa(4)


class TestQuerySide:
    def test_drive_for_query_levels(self, enc):
        drive = enc.drive_for_query(1)
        assert drive.vsl_a == pytest.approx(0.4)
        assert drive.vsl_b == pytest.approx(0.8)  # reversed: level 2
        assert drive.active

    def test_deactivated_drive_is_vsl0(self, enc):
        drive = enc.drive_deactivated()
        assert drive.vsl_a == pytest.approx(0.0)
        assert drive.vsl_b == pytest.approx(0.0)
        assert not drive.active


class TestComparisonSemantics:
    def test_paper_example_stored_1(self, enc):
        """Fig. 2(d-f): stored '1' vs inputs 0/1/2."""
        assert enc.fb_conducts(1, 0) and not enc.fa_conducts(1, 0)
        assert enc.matches(1, 1)
        assert enc.fa_conducts(1, 2) and not enc.fb_conducts(1, 2)

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_full_truth_table(self, bits):
        enc = LevelEncoding(TDAMConfig(bits=bits))
        for stored in range(enc.levels):
            for query in range(enc.levels):
                assert enc.fa_conducts(stored, query) == (query > stored)
                assert enc.fb_conducts(stored, query) == (query < stored)
                assert enc.matches(stored, query) == (query == stored)

    def test_exactly_one_fefet_conducts_on_mismatch(self, enc):
        for stored in range(4):
            for query in range(4):
                if stored == query:
                    continue
                assert enc.fa_conducts(stored, query) != enc.fb_conducts(
                    stored, query
                )


class TestVectorHelpers:
    def test_validate_accepts_integer_floats(self, enc):
        out = enc.validate_vector([0.0, 1.0, 3.0])
        assert out.dtype == np.int64

    def test_validate_rejects_fractional(self, enc):
        with pytest.raises(ValueError, match="integers"):
            enc.validate_vector([0.5, 1.0])

    def test_validate_rejects_out_of_range(self, enc):
        with pytest.raises(ValueError, match="must be in"):
            enc.validate_vector([0, 4])

    def test_validate_rejects_2d(self, enc):
        with pytest.raises(ValueError, match="1-D"):
            enc.validate_vector(np.zeros((2, 2)))

    def test_hamming_distance(self, enc):
        assert enc.hamming_distance([0, 1, 2, 3], [0, 1, 2, 3]) == 0
        assert enc.hamming_distance([0, 1, 2, 3], [3, 1, 2, 0]) == 2

    def test_mismatch_vector_shape_check(self, enc):
        with pytest.raises(ValueError, match="shape mismatch"):
            enc.mismatch_vector([0, 1], [0, 1, 2])


class TestEncodingProperties:
    @given(
        bits=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_voltage_margins_guarantee_semantics(self, bits, data):
        """The physical voltage comparison implied by the ladders agrees
        with the ideal semantics for every (stored, query) pair, with at
        least half a level step of margin."""
        enc = LevelEncoding(TDAMConfig(bits=bits))
        stored = data.draw(st.integers(0, enc.levels - 1))
        query = data.draw(st.integers(0, enc.levels - 1))
        half = enc.config.level_step / 2
        drive = enc.drive_for_query(query)
        overdrive_a = drive.vsl_a - enc.vth_for_fa(stored)
        overdrive_b = drive.vsl_b - enc.vth_for_fb(stored)
        if query > stored:
            assert overdrive_a >= half - 1e-9
        else:
            assert overdrive_a <= -half + 1e-9
        if query < stored:
            assert overdrive_b >= half - 1e-9
        else:
            assert overdrive_b <= -half + 1e-9

    @given(bits=st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_deactivation_blocks_all_stored_values(self, bits):
        """Both FeFETs stay under-driven for every stored value when the
        cell is parked (the 2-step scheme's requirement)."""
        enc = LevelEncoding(TDAMConfig(bits=bits))
        drive = enc.drive_deactivated()
        for stored in range(enc.levels):
            assert drive.vsl_a < enc.vth_for_fa(stored)
            assert drive.vsl_b < enc.vth_for_fb(stored)
