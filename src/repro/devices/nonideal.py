"""FeFET non-idealities beyond device-to-device variation.

The paper's Monte Carlo covers programming-time V_TH spread.  Deployed
NVM arrays additionally face two time-dependent effects, both well
documented for HfO2 FeFETs and both relevant to an associative memory
that holds its model weights for long periods:

- **retention**: remnant polarization decays (depolarization field,
  charge detrapping), moving every programmed V_TH toward the neutral
  point.  The standard empirical form is linear-in-log-time: a fixed
  percentage of the polarization is lost per decade.
- **endurance**: program/erase cycling first slightly opens (wake-up)
  and then narrows (fatigue) the memory window, and adds cycle-to-cycle
  V_TH noise.

Both models output *effective V_TH shifts* compatible with the variation
hooks of the arrays (:class:`repro.core.array.FastTDAMArray` offsets), so
their system-level impact is measured with the same machinery as Fig. 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.devices.fefet import FeFETParams

#: Seconds in ten years -- the canonical NVM retention target.
TEN_YEARS_S = 10 * 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class RetentionModel:
    """Log-time polarization decay.

    ``P(t) = P0 * (1 - loss_per_decade * log10(1 + t / t0))``, clamped at
    zero polarization; V_TH moves proportionally toward the window
    center.

    Attributes:
        loss_per_decade: Fraction of remnant polarization lost per decade
            of time (HfO2 FeFETs: typically 1-5 % per decade).
        t0_s: Onset time of the decay (s); retention is flat below it.
        params: Device parameters (window geometry).
    """

    loss_per_decade: float = 0.03
    t0_s: float = 1.0
    params: FeFETParams = FeFETParams()

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_per_decade < 1.0:
            raise ValueError(
                f"loss_per_decade must be in [0, 1), got {self.loss_per_decade}"
            )
        if self.t0_s <= 0:
            raise ValueError(f"t0_s must be positive, got {self.t0_s}")

    def polarization_fraction(self, t_seconds: float) -> float:
        """Remaining polarization fraction after ``t_seconds``."""
        if t_seconds < 0:
            raise ValueError(f"t_seconds must be >= 0, got {t_seconds}")
        decades = math.log10(1.0 + t_seconds / self.t0_s)
        return max(0.0, 1.0 - self.loss_per_decade * decades)

    def vth_after(self, programmed_vth: float, t_seconds: float) -> float:
        """Threshold voltage after retention decay.

        The V_TH excursion from the window center shrinks by the lost
        polarization fraction.
        """
        center = self.params.vth_center
        return center + (programmed_vth - center) * self.polarization_fraction(
            t_seconds
        )

    def vth_shifts(
        self, programmed_vths: Sequence[float], t_seconds: float
    ) -> np.ndarray:
        """Effective V_TH shifts (aged minus programmed) for an array."""
        programmed = np.asarray(programmed_vths, dtype=float)
        center = self.params.vth_center
        frac = self.polarization_fraction(t_seconds)
        return (center + (programmed - center) * frac) - programmed

    def retention_time_to_loss(self, fraction: float) -> float:
        """Time (s) at which the given polarization fraction is lost."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        if fraction >= self.loss_per_decade * 20:
            # Guard absurd extrapolation beyond ~20 decades.
            pass
        decades = fraction / self.loss_per_decade
        return self.t0_s * (10.0**decades - 1.0)


@dataclass(frozen=True)
class EnduranceModel:
    """Cycling-induced window narrowing and write noise.

    ``window(n) = window0 * wake_up(n) * fatigue(n)`` with a small
    wake-up bump at low cycle counts and log-cycles fatigue beyond
    ``fatigue_onset_cycles``; cycle-to-cycle write noise grows with the
    square root of accumulated fatigue.

    Attributes:
        fatigue_per_decade: Window fraction lost per decade of cycles
            past the onset.
        fatigue_onset_cycles: Cycle count where fatigue begins.
        wakeup_gain: Peak fractional window gain from wake-up.
        wakeup_cycles: Cycle count of maximum wake-up.
        write_noise_mv_at_onset: Cycle-to-cycle V_TH sigma (mV) at the
            fatigue onset.
        params: Device parameters.
    """

    fatigue_per_decade: float = 0.05
    fatigue_onset_cycles: float = 1e5
    wakeup_gain: float = 0.05
    wakeup_cycles: float = 1e3
    write_noise_mv_at_onset: float = 10.0
    params: FeFETParams = FeFETParams()

    def __post_init__(self) -> None:
        if self.fatigue_per_decade < 0 or self.fatigue_per_decade >= 1:
            raise ValueError(
                f"fatigue_per_decade must be in [0, 1), got {self.fatigue_per_decade}"
            )
        if self.fatigue_onset_cycles <= 0 or self.wakeup_cycles <= 0:
            raise ValueError("cycle constants must be positive")

    def window_fraction(self, n_cycles: float) -> float:
        """Memory-window fraction (of pristine) after ``n_cycles``."""
        if n_cycles < 0:
            raise ValueError(f"n_cycles must be >= 0, got {n_cycles}")
        # Wake-up: rises to (1 + gain) around wakeup_cycles, then fades.
        x = math.log10(1.0 + n_cycles) / math.log10(1.0 + self.wakeup_cycles)
        wakeup = 1.0 + self.wakeup_gain * math.exp(-((x - 1.0) ** 2))
        if n_cycles <= self.fatigue_onset_cycles:
            fatigue = 1.0
        else:
            decades = math.log10(n_cycles / self.fatigue_onset_cycles)
            fatigue = max(0.0, 1.0 - self.fatigue_per_decade * decades)
        return wakeup * fatigue

    def window_after(self, n_cycles: float) -> float:
        """Absolute memory window (V) after cycling."""
        return self.params.vth_range * self.window_fraction(n_cycles)

    def write_noise_sigma_v(self, n_cycles: float) -> float:
        """Cycle-to-cycle write-noise sigma (V) after cycling."""
        if n_cycles < 0:
            raise ValueError(f"n_cycles must be >= 0, got {n_cycles}")
        base = self.write_noise_mv_at_onset * 1e-3
        if n_cycles <= self.fatigue_onset_cycles:
            return base
        decades = math.log10(n_cycles / self.fatigue_onset_cycles)
        return base * math.sqrt(1.0 + decades)

    def cycles_to_window_fraction(self, fraction: float) -> float:
        """Cycles at which the window shrinks to ``fraction`` (fatigue
        regime; wake-up ignored for the inverse)."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        decades = (1.0 - fraction) / self.fatigue_per_decade
        return self.fatigue_onset_cycles * 10.0**decades


def aged_match_margin(
    vth_levels: Sequence[float],
    vsl_levels: Sequence[float],
    retention: RetentionModel,
    t_seconds: float,
    turn_on_overdrive: float = 0.077,
) -> float:
    """Worst-case false-conduction margin (V) of a *matching* cell after
    retention decay.

    The search-line ladder is fixed at design time while the programmed
    thresholds drift toward the window center, so a high-level cell's
    V_TH falls toward its own (fixed) search voltage.  The margin is
    ``min over levels of (V_TH_aged[k] + v_on - V_SL[k])``: positive
    means every match still holds its match node, zero/negative means
    the aged array starts reporting false mismatches.
    """
    if len(vth_levels) != len(vsl_levels):
        raise ValueError("vth_levels and vsl_levels must have equal length")
    frac = retention.polarization_fraction(t_seconds)
    center = retention.params.vth_center
    margins = []
    for vth, vsl in zip(vth_levels, vsl_levels):
        vth_aged = center + (vth - center) * frac
        margins.append(vth_aged + turn_on_overdrive - vsl)
    return float(min(margins))


@dataclass(frozen=True)
class DisturbModel:
    """Write-disturb of half-selected cells.

    Writing one row drives the shared search/write lines, so every
    *unselected* cell on those columns sees a partial gate pulse.  Below
    the minimum domain coercive voltage nothing switches (the V_W/2
    biasing scheme's design target); above it, each disturb event nudges
    the cell's polarization toward the pulse polarity by the fraction of
    domains whose coercive voltage the partial amplitude clears.

    Attributes:
        half_select_fraction: Fraction of the full program amplitude seen
            by half-selected cells (1/2 for the classic V/2 scheme, 1/3
            for V/3).
        coercive_mean: Mean domain coercive voltage (V).
        coercive_sigma: Coercive-voltage spread (V).
        activation_floor_v: Nucleation threshold for the *short* disturb
            pulses (V): ferroelectric switching is strongly time-dependent
            (nucleation-limited), so the brief half-select glitches flip
            nothing below this amplitude even where the quasi-static
            coercive tail would.  Write pulses are orders of magnitude
            longer and are unaffected.
        params: Device parameters (program amplitude, window geometry).
    """

    half_select_fraction: float = 0.5
    coercive_mean: float = 3.0
    coercive_sigma: float = 0.45
    activation_floor_v: float = 2.0
    params: FeFETParams = FeFETParams()

    def __post_init__(self) -> None:
        if not 0.0 < self.half_select_fraction < 1.0:
            raise ValueError(
                "half_select_fraction must be in (0, 1), got "
                f"{self.half_select_fraction}"
            )
        if self.activation_floor_v < 0:
            raise ValueError(
                f"activation_floor_v must be >= 0, got {self.activation_floor_v}"
            )

    @property
    def disturb_amplitude_v(self) -> float:
        """Gate amplitude a half-selected cell sees during a write (V)."""
        return self.params.program_voltage * self.half_select_fraction

    def switch_fraction_per_event(self) -> float:
        """Domain fraction flipped by one disturb event.

        Zero below the short-pulse nucleation floor; above it, the
        Gaussian tail of the coercive spectrum below the disturb
        amplitude.  With the default 4.5 V program voltage this makes the
        classic V/2 scheme (2.25 V disturbs) *unsafe* (~5 % of domains
        per event) while V/3 (1.5 V) is safe -- a concrete biasing
        requirement of this device configuration.
        """
        from math import erf, sqrt

        if self.disturb_amplitude_v < self.activation_floor_v:
            return 0.0
        z = (self.disturb_amplitude_v - self.coercive_mean) / (
            self.coercive_sigma * sqrt(2.0)
        )
        return max(0.0, 0.5 * (1.0 + erf(z)))

    def vth_shift_after(self, n_events: int, toward_low_vth: bool = True) -> float:
        """Accumulated V_TH shift after ``n_events`` disturb pulses (V).

        Each event flips the same *remaining* down-domain tail fraction,
        so the polarization approaches saturation geometrically.

        Args:
            n_events: Disturb pulses experienced (≈ writes to other rows
                sharing the lines).
            toward_low_vth: Positive program-polarity disturbs push the
                polarization up, lowering V_TH (the usual case); pass
                False for erase-polarity disturbs.
        """
        if n_events < 0:
            raise ValueError(f"n_events must be >= 0, got {n_events}")
        f = self.switch_fraction_per_event()
        flipped = 1.0 - (1.0 - f) ** n_events
        delta = flipped * self.params.vth_range / 2.0
        return -delta if toward_low_vth else delta

    def events_to_margin(self, margin_v: float) -> float:
        """Disturb events until the accumulated shift reaches a margin.

        Returns ``inf`` when the disturb amplitude never switches any
        domain (safe biasing).
        """
        import math

        if margin_v <= 0:
            raise ValueError(f"margin_v must be positive, got {margin_v}")
        f = self.switch_fraction_per_event()
        if f <= 0.0:
            return math.inf
        target_flip = min(margin_v / (self.params.vth_range / 2.0), 1.0)
        if target_flip >= 1.0:
            return math.inf if f < 1.0 else 1.0
        return math.log(1.0 - target_flip) / math.log(1.0 - f)


def compensated_vsl_levels(
    vth_levels: Sequence[float],
    retention: RetentionModel,
    t_seconds: float,
) -> np.ndarray:
    """Aging-aware search-line ladder.

    As the programmed thresholds relax toward the window center, the
    *fixed* V_SL ladder loses its half-step alignment: adjacent-level
    mismatches stop over-driving their FeFET and go undetected.  The
    mitigation is to re-bias the search lines so each level's V_SL sits
    half an *aged* step below its *aged* V_TH:

        V_SL_comp[k] = V_TH_aged[k] - f * step / 2

    which restores symmetric +-f*step/2 margins.  Effective while
    ``f * step / 2`` exceeds the switch turn-on overdrive; beyond that
    the array needs a refresh (re-program).
    """
    vth = np.asarray(vth_levels, dtype=float)
    if vth.ndim != 1 or len(vth) < 2:
        raise ValueError("vth_levels must be a 1-D ladder with >= 2 levels")
    frac = retention.polarization_fraction(t_seconds)
    center = retention.params.vth_center
    vth_aged = center + (vth - center) * frac
    step = float(vth[1] - vth[0])
    return vth_aged - frac * step / 2.0


def retention_limited_lifetime_s(
    vth_levels: Sequence[float],
    vsl_levels: Sequence[float],
    retention: RetentionModel,
    turn_on_overdrive: float = 0.077,
    t_max_s: float = 100 * TEN_YEARS_S,
) -> float:
    """Time until the worst-case match margin collapses to zero (s).

    Bisects :func:`aged_match_margin` over log-time; returns ``t_max_s``
    when the margin survives the whole horizon.
    """
    if aged_match_margin(vth_levels, vsl_levels, retention, t_max_s,
                         turn_on_overdrive) > 0:
        return t_max_s
    lo, hi = 0.0, t_max_s
    for _ in range(80):
        mid = (lo + hi) / 2.0
        margin = aged_match_margin(
            vth_levels, vsl_levels, retention, mid, turn_on_overdrive
        )
        if margin > 0:
            lo = mid
        else:
            hi = mid
    return hi
