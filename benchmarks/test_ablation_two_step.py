"""Ablation bench: 2-step even/odd scheme vs buffer-based chain."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import (
    format_ablation_two_step,
    run_ablation_two_step,
)


def test_ablation_two_step(benchmark):
    result = run_once(benchmark, run_ablation_two_step, n_stages=32,
                      n_mismatch=16)
    print()
    print(format_ablation_two_step(result))

    # The 2-step organization saves both energy and transistors at equal
    # end-to-end latency -- the design-choice rationale of Sec. III-B.
    assert result.energy_saving > 1.05
    assert result.area_saving > 1.3
    assert result.two_step_latency_s == result.buffer_latency_s
    # Per stage: 4T + 2 FeFET vs 6T + 2 FeFET.
    assert result.two_step_transistors == 32 * 6
    assert result.buffer_transistors == 32 * 8
