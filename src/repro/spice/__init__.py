"""A small nonlinear transient circuit simulator.

This subpackage stands in for the Cadence Spectre runs of the paper.  It
implements nodal analysis over grounded voltage sources with backward-Euler
integration and damped Newton iteration, which is sufficient for the
TD-AM circuits: inverter chains, precharge/discharge dynamics of the match
node, and the variable-capacitance delay stages.

- :mod:`~repro.spice.netlist` -- circuit container and node bookkeeping.
- :mod:`~repro.spice.elements` -- R, C, grounded sources (PWL / pulse),
  MOSFET and FeFET elements with local Jacobian contributions.
- :mod:`~repro.spice.transient` -- the solver.
- :mod:`~repro.spice.waveform` -- waveform containers and delay/crossing
  measurements.
- :mod:`~repro.spice.montecarlo` -- seeded Monte Carlo harness.
"""

from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    FeFETElement,
    MOSFETElement,
    PulseWaveform,
    PWLWaveform,
    Resistor,
    StepWaveform,
    VoltageSource,
)
from repro.spice.dc import solve_dc, sweep_dc
from repro.spice.montecarlo import (
    MonteCarloResult,
    resolve_worker_count,
    run_monte_carlo,
    shutdown_executor_pools,
)
from repro.spice.netlist import Circuit
from repro.spice.transient import TransientResult, simulate
from repro.spice.waveform import Waveform

__all__ = [
    "Circuit",
    "Resistor",
    "Capacitor",
    "CurrentSource",
    "VoltageSource",
    "MOSFETElement",
    "FeFETElement",
    "PWLWaveform",
    "PulseWaveform",
    "StepWaveform",
    "TransientResult",
    "simulate",
    "Waveform",
    "MonteCarloResult",
    "run_monte_carlo",
    "resolve_worker_count",
    "shutdown_executor_pools",
    "solve_dc",
    "sweep_dc",
]
