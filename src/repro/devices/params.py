"""Technology parameter sets for the behavioral device models.

The paper simulates with the UMC 40 nm PDK.  That PDK is proprietary, so we
define a 40 nm-class parameter set (``UMC40_LIKE``) with representative
values for a low-power 40 nm process: nominal supply 1.1 V (the paper scales
V_DD down to ~0.5 V in Fig. 5(c)(d)), |V_TH| around 0.45 V, and drive
strengths that place an FO1 inverter delay in the tens of picoseconds.

Only *relative* behaviour matters for the reproduction (delay linearity,
energy scaling, variation tolerance); see DESIGN.md section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class TechnologyParams:
    """A bundle of process parameters used across the circuit models.

    Attributes:
        name: Human-readable identifier of the parameter set.
        node_nm: Feature size in nanometres (documentation only).
        vdd_nominal: Nominal supply voltage in volts.
        vdd_min: Minimum supply voltage considered functional.
        vth_n: NMOS threshold voltage (V).
        vth_p: PMOS threshold voltage (V, negative).
        kp_n: NMOS transconductance parameter ``mu_n * C_ox`` (A/V^2) for a
            unit-W/L device.
        kp_p: PMOS transconductance parameter (A/V^2), positive magnitude.
        lambda_n: NMOS channel-length modulation (1/V).
        lambda_p: PMOS channel-length modulation (1/V).
        subthreshold_swing_mv: Subthreshold swing in mV/decade.
        c_gate_min_ff: Gate capacitance of a minimum-size device (fF).
        c_junction_min_ff: Drain/source junction capacitance of a
            minimum-size device (fF).
        temperature_k: Simulation temperature (K).
    """

    name: str = "umc40-like"
    node_nm: float = 40.0
    vdd_nominal: float = 1.1
    vdd_min: float = 0.5
    vth_n: float = 0.35
    vth_p: float = -0.35
    kp_n: float = 320e-6
    kp_p: float = 160e-6
    lambda_n: float = 0.08
    lambda_p: float = 0.10
    subthreshold_swing_mv: float = 85.0
    c_gate_min_ff: float = 0.04
    c_junction_min_ff: float = 0.04
    temperature_k: float = 300.0

    def scaled(self, **overrides: float) -> "TechnologyParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    @property
    def thermal_voltage(self) -> float:
        """kT/q at the simulation temperature, in volts."""
        boltzmann = 1.380649e-23
        charge = 1.602176634e-19
        return boltzmann * self.temperature_k / charge


#: The default 40 nm-class technology used throughout the reproduction.
UMC40_LIKE = TechnologyParams()

#: Named registry so experiments can request parameter sets by name.
TECHNOLOGIES: Dict[str, TechnologyParams] = {
    UMC40_LIKE.name: UMC40_LIKE,
    "umc40-fast": UMC40_LIKE.scaled(name="umc40-fast", kp_n=400e-6, kp_p=200e-6),
    "umc40-slow": UMC40_LIKE.scaled(name="umc40-slow", kp_n=260e-6, kp_p=130e-6),
}


def get_technology(name: str) -> TechnologyParams:
    """Look up a technology parameter set by name.

    Raises:
        KeyError: if ``name`` is not registered; the message lists the
            available names.
    """
    try:
        return TECHNOLOGIES[name]
    except KeyError:
        available = ", ".join(sorted(TECHNOLOGIES))
        raise KeyError(f"unknown technology {name!r}; available: {available}") from None
