"""Fig. 2(d-f): IMC-cell match/mismatch transients.

The paper illustrates the 2-FeFET cell on a stored '1' with inputs 0, 1
and 2: on the match (input 1) the match node stays at V_DD, on the
mismatches it is discharged by F_B (input 0, query below stored) or F_A
(input 2, query above stored).  This driver runs those transients on the
:mod:`repro.spice` backend and reports the settled MN voltages and which
FeFET conducted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.config import TDAMConfig
from repro.core.encoding import LevelEncoding
from repro.core.netlist_builder import build_cell_circuit
from repro.spice.transient import simulate
from repro.spice.waveform import Waveform
from repro.experiments._instrument import instrumented


@dataclass
class CellCase:
    """One transient of the cell experiment.

    Attributes:
        stored: Stored level.
        query: Query level.
        mn_waveform: The match-node voltage trace.
        mn_final_v: Settled MN voltage (V).
        mn_high: Whether MN counts as high (> V_DD / 2).
        expected_match: Ideal encoding semantics for this pair.
        conducting: "FA", "FB", or "none" per the ideal semantics.
    """

    stored: int
    query: int
    mn_waveform: Waveform
    mn_final_v: float
    mn_high: bool
    expected_match: bool
    conducting: str


@dataclass
class Fig2Result:
    """All transients of the Fig. 2(d-f) experiment."""

    cases: List[CellCase]
    vdd: float


@instrumented("fig2")
def run_fig2(
    stored: int = 1,
    queries: Sequence[int] = (0, 1, 2),
    config: TDAMConfig = None,
    dt: float = 2e-12,
    seed: int = 9,
) -> Fig2Result:
    """Run the cell transients for one stored value and several queries."""
    config = config or TDAMConfig()
    encoding = LevelEncoding(config)
    cases: List[CellCase] = []
    for query in queries:
        net = build_cell_circuit(
            config, stored, int(query), rng=np.random.default_rng(seed)
        )
        result = simulate(
            net.circuit, t_stop=net.t_settle, dt=dt, v_init=net.v_init
        )
        wf = result.waveform(net.mn_node)
        final = wf.settled_value()
        if encoding.matches(stored, int(query)):
            conducting = "none"
        elif encoding.fa_conducts(stored, int(query)):
            conducting = "FA"
        else:
            conducting = "FB"
        cases.append(
            CellCase(
                stored=stored,
                query=int(query),
                mn_waveform=wf,
                mn_final_v=final,
                mn_high=final > config.vdd / 2,
                expected_match=encoding.matches(stored, int(query)),
                conducting=conducting,
            )
        )
    return Fig2Result(cases=cases, vdd=config.vdd)


def format_fig2(result: Fig2Result) -> str:
    """Text rendering of the settled cell states."""
    records = [
        {
            "stored": c.stored,
            "query": c.query,
            "MN_final_V": c.mn_final_v,
            "MN_state": "HIGH (match)" if c.mn_high else "LOW (mismatch)",
            "conducting": c.conducting,
        }
        for c in result.cases
    ]
    return format_table(
        records, title="Fig. 2(d-f): cell compute-phase outcomes"
    )


if __name__ == "__main__":
    from repro.cli import emit

    emit(format_fig2(run_fig2()))
