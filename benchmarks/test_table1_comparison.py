"""Bench: Table I -- comparison with state-of-the-art TD-IMC designs."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.table1_comparison import format_table1, run_table1


def test_table1_comparison(benchmark):
    rows = run_once(benchmark, run_table1)
    print()
    print(format_table1(rows))

    by_name = {r.design.name: r for r in rows}
    # The proposed design's measured energy/bit vs the paper's 0.159 fJ.
    ours = by_name["This work"].design
    assert ours.energy_per_bit_fj == pytest.approx(0.159, rel=0.1)
    # The paper's headline multipliers.
    assert by_name["JSSC'21 (TIMAQ)"].energy_ratio == pytest.approx(13.84, rel=0.1)
    assert by_name["Work [24]"].energy_ratio == pytest.approx(1.47, rel=0.1)
    assert by_name["16T TCAM"].energy_ratio == pytest.approx(3.71, rel=0.1)
    assert by_name["Nat. Electron.'19"].energy_ratio == pytest.approx(2.52, rel=0.1)
    assert by_name["IEDM'21"].energy_ratio == pytest.approx(0.245, rel=0.1)
