"""Fe-FinFET time-domain IMC baseline (Luo et al., IEDM 2021 [22]).

This design places the FeFETs *directly in the pull-down path* of each
delay stage and uses them as tunable resistors.  That yields a very
compact 2T-1FeFET stage and ultra-low reported energy (0.039 fJ/bit at
14 nm, under an optimized measurement configuration the paper flags as
not directly comparable), but it exposes the delay to FeFET variation
exponentially: near or below threshold, the channel resistance grows
exponentially with a V_TH shift, and an OFF-state FeFET can interrupt
propagation entirely.

The delay model here implements exactly that mechanism so the
VC-vs-variable-resistance ablation (DESIGN.md section 5) can quantify the
robustness argument of the proposed variable-capacitance chain.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineDesign, SCType

DESIGN = BaselineDesign(
    name="IEDM'21",
    reference="[22]",
    signal_domain="Time",
    device="FeFET",
    cell_size="2T-1FeFET",
    sc_type=SCType.MAC_COSINE_QUANTITATIVE,
    energy_per_bit_fj=0.039,
    technology_nm=14,
    quantitative=True,
    multibit=True,
    notes=(
        "Ultra-low energy attributed to 14 nm technology and an optimized "
        "measurement configuration; not directly comparable (paper Sec. IV-A)."
    ),
)


class FeFinFETTimeDomainIMC:
    """Variable-*resistance* delay-chain model.

    Each stage's delay is ``R(V_ov) * C`` with the FeFET channel in the
    signal path; ``R`` is inversely proportional to overdrive above
    threshold and grows exponentially (subthreshold slope) below it.

    Args:
        n_stages: Stages per chain.
        c_stage_f: Stage capacitance (F).
        r_on_ohm: Channel resistance at nominal ON overdrive (ohm).
        v_overdrive: Nominal gate overdrive of an ON FeFET (V).
        subthreshold_slope_v: Exponential slope of the below-threshold
            resistance increase (V per e-fold).
    """

    design = DESIGN

    def __init__(
        self,
        n_stages: int,
        c_stage_f: float = 1e-15,
        r_on_ohm: float = 20e3,
        v_overdrive: float = 0.3,
        subthreshold_slope_v: float = 0.037,
    ) -> None:
        if n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {n_stages}")
        self.n_stages = n_stages
        self.c_stage_f = c_stage_f
        self.r_on_ohm = r_on_ohm
        self.v_overdrive = v_overdrive
        self.subthreshold_slope_v = subthreshold_slope_v

    def stage_resistance(self, vth_shift: float) -> float:
        """Channel resistance under a V_TH shift (ohm).

        A positive shift eats into the overdrive; once the device crosses
        into subthreshold the resistance explodes exponentially -- the
        failure mode the proposed VC design avoids.
        """
        overdrive = self.v_overdrive - vth_shift
        if overdrive > 0.05:
            return self.r_on_ohm * self.v_overdrive / overdrive
        # Subthreshold: exponential from the 50 mV boundary resistance.
        r_boundary = self.r_on_ohm * self.v_overdrive / 0.05
        deficit = 0.05 - overdrive
        return r_boundary * float(np.exp(deficit / self.subthreshold_slope_v))

    def chain_delay(self, vth_shifts: Optional[Sequence[float]] = None) -> float:
        """Total chain delay (s) under per-stage V_TH shifts."""
        if vth_shifts is None:
            shifts = np.zeros(self.n_stages)
        else:
            shifts = np.asarray(vth_shifts, dtype=float)
            if shifts.shape != (self.n_stages,):
                raise ValueError(
                    f"vth_shifts must have shape ({self.n_stages},), "
                    f"got {shifts.shape}"
                )
        resistances = np.array([self.stage_resistance(s) for s in shifts])
        return float((resistances * self.c_stage_f).sum())

    def nominal_delay(self) -> float:
        """Chain delay with no variation (s)."""
        return self.n_stages * self.r_on_ohm * self.c_stage_f

    def mac_energy_j(self, n_elements: int, bits: int = 1) -> float:
        """Energy of one n-element MAC (J) at the published per-bit cost."""
        if n_elements < 0 or bits < 1:
            raise ValueError("n_elements must be >= 0 and bits >= 1")
        return self.design.search_energy_j(n_elements * bits)
