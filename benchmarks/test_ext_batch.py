"""Extension bench: the batching crossover vs the GPU.

The honest flip side of Fig. 8: under large batches the GPU amortizes
its dispatch overhead and overtakes a single TD-AM bank; adding banks
pushes the crossover out of reach.
"""

from benchmarks.conftest import run_once
from repro.experiments.ext_batch import format_batch_study, run_batch_study


def test_ext_batch_crossover(benchmark):
    study = run_once(benchmark, run_batch_study)
    print()
    print(format_batch_study(study))

    by_key = {(r.batch, r.n_banks): r for r in study.records}
    # Single queries: the Fig. 8 regime -- TD-AM wins by ~two orders.
    single = by_key[(1, 1)]
    assert single.gpu_per_query_s > 50 * single.tdam_per_query_s
    # Large batches amortize the GPU's overhead past one bank...
    crossover = study.crossover_batch(1)
    assert crossover is not None
    assert 100 < crossover <= 10_000
    # ... but an 8-bank instance stays ahead at every swept batch.
    assert study.crossover_batch(8) is None
    # GPU per-query time is monotone non-increasing in batch size.
    gpu_times = [by_key[(b, 1)].gpu_per_query_s
                 for b in (1, 10, 100, 1_000, 10_000)]
    assert all(b <= a for a, b in zip(gpu_times, gpu_times[1:]))
