"""Tests of the multi-bank accelerator model."""

import pytest

from repro.core.config import TDAMConfig
from repro.hdc.accelerator import (
    AcceleratorModel,
    AcceleratorSpec,
    size_accelerator,
)

FIG8 = TDAMConfig(bits=2, n_stages=128, vdd=0.6)


def make_model(n_banks=4, dimension=2048, n_classes=26):
    spec = AcceleratorSpec(
        config=FIG8, n_banks=n_banks, n_classes=n_classes,
        dimension=dimension, n_features=617,
    )
    return AcceleratorModel(spec)


class TestSpec:
    def test_tile_geometry(self):
        model = make_model(n_banks=4, dimension=2048)
        assert model.spec.n_tiles == 16
        assert model.spec.tile_rounds == 4

    def test_single_bank_rounds_equal_tiles(self):
        model = make_model(n_banks=1, dimension=2048)
        assert model.spec.tile_rounds == model.spec.n_tiles

    def test_validation(self):
        with pytest.raises(ValueError, match="n_banks"):
            AcceleratorSpec(FIG8, 0, 26, 2048, 617)


class TestPerformance:
    def test_more_banks_cut_latency(self):
        one = make_model(n_banks=1).query_latency_s()
        four = make_model(n_banks=4).query_latency_s()
        assert four < 0.5 * one

    def test_latency_floor_at_full_parallelism(self):
        """With a bank per tile, latency is one schedule plus readout."""
        model = make_model(n_banks=16, dimension=2048)
        schedule = model.scheduler.schedule()
        assert model.query_latency_s() == pytest.approx(
            schedule.latency_s + 26 * 1.5e-9
        )

    def test_throughput_scales_with_banks(self):
        one = make_model(n_banks=1).throughput_qps()
        four = make_model(n_banks=4).throughput_qps()
        assert four == pytest.approx(4 * one, rel=0.01)

    def test_energy_independent_of_banks(self):
        """Banks change latency, not work: energy per query is fixed."""
        one = make_model(n_banks=1).query_cost().energy_j
        eight = make_model(n_banks=8).query_cost().energy_j
        assert one == pytest.approx(eight)

    def test_mismatch_fraction_validated(self):
        with pytest.raises(ValueError, match="mismatch_fraction"):
            make_model().query_cost(mismatch_fraction=2.0)


class TestCost:
    def test_area_scales_with_banks(self):
        one = make_model(n_banks=1).area_um2()
        four = make_model(n_banks=4).area_um2()
        assert four == pytest.approx(4 * one)

    def test_model_load_parallel_across_banks(self):
        one = make_model(n_banks=1).model_load_time_s()
        four = make_model(n_banks=4).model_load_time_s()
        assert four < one

    def test_summary_keys(self):
        summary = make_model().summary()
        for key in ("latency_us", "throughput_qps", "energy_nj",
                    "area_mm2", "model_load_ms"):
            assert key in summary


class TestSizing:
    def test_sizer_meets_target(self):
        model = size_accelerator(300e-9, dimension=10240, n_classes=26,
                                 n_features=617)
        assert model.query_latency_s() <= 300e-9
        # And the next-smaller configuration would miss it.
        if model.spec.n_banks > 1:
            smaller = AcceleratorModel(
                AcceleratorSpec(
                    config=model.spec.config,
                    n_banks=model.spec.n_banks - 1,
                    n_classes=26, dimension=10240, n_features=617,
                )
            )
            assert smaller.query_latency_s() > 300e-9

    def test_impossible_target_raises(self):
        with pytest.raises(ValueError, match="cannot reach"):
            size_accelerator(1e-12, dimension=10240, n_classes=26,
                             n_features=617)

    def test_target_validation(self):
        with pytest.raises(ValueError, match="positive"):
            size_accelerator(0.0, 1024, 2, 10)
