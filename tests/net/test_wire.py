"""Frame codec and typed-envelope round trips.

The wire layer's contract is losslessness: every typed error and every
response class must cross a frame encode/decode cycle bit-for-bit, and
every malformed byte stream must surface as a typed
:class:`~repro.net.wire.WireProtocolError` -- never a crash, never a
partial decode.
"""

import struct
import zlib

import numpy as np
import pytest

from repro.net.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_BYTES,
    ConnectionLostError,
    FrameCorruptError,
    FrameDecoder,
    FrameTimeoutError,
    FrameTooLargeError,
    HandshakeError,
    RemoteSearchResponse,
    RemoteTopKResponse,
    WireProtocolError,
    decode_error,
    decode_response,
    encode_error,
    encode_frame,
    encode_response,
    error_message,
    hello_message,
    request_message,
)
from repro.service.errors import (
    AdmissionRejectedError,
    AllShardsUnavailableError,
    CalibrationDriftError,
    CircuitOpenError,
    DeadlineExceededError,
    InvalidRequestError,
    OverloadError,
    QuotaExceededError,
    ReplicaDivergenceError,
    RetryBudgetExhaustedError,
    ServiceError,
    ShardBusyError,
    ShardTimeoutError,
    TransientServiceError,
)

_HEADER = struct.Struct("!4sII")


def _frame_round_trip(message):
    decoder = FrameDecoder()
    messages = decoder.feed(encode_frame(message))
    assert len(messages) == 1
    return messages[0]


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_single_message_round_trip(self):
        message = hello_message()
        assert _frame_round_trip(message) == message

    def test_many_messages_one_buffer(self):
        msgs = [
            hello_message(),
            request_message(1, "search", [0, 1, 2], budget_s=0.05),
            error_message(2, DeadlineExceededError("late")),
        ]
        stream = b"".join(encode_frame(m) for m in msgs)
        decoder = FrameDecoder()
        assert decoder.feed(stream) == msgs

    def test_byte_at_a_time_feed(self):
        message = request_message(
            7, "topk", list(range(16)), budget_s=0.125, tenant="t1", k=3
        )
        stream = encode_frame(message)
        decoder = FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i:i + 1]))
        assert out == [message]
        assert decoder.pending_bytes == 0

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame({"blob": "x" * 64}, max_frame_bytes=32)

    def test_declared_length_above_cap_is_typed(self):
        header = _HEADER.pack(b"TDAM", DEFAULT_MAX_FRAME_BYTES + 1, 0)
        with pytest.raises(FrameTooLargeError):
            FrameDecoder().feed(header)

    def test_bad_magic_is_typed(self):
        frame = bytearray(encode_frame(hello_message()))
        frame[:4] = b"XXXX"
        with pytest.raises(FrameCorruptError):
            FrameDecoder().feed(bytes(frame))

    def test_checksum_mismatch_is_typed(self):
        frame = bytearray(encode_frame(hello_message()))
        frame[HEADER_BYTES] ^= 0x01  # flip one payload bit
        with pytest.raises(FrameCorruptError):
            FrameDecoder().feed(bytes(frame))

    def test_invalid_json_is_typed(self):
        payload = b"{not json"
        frame = _HEADER.pack(
            b"TDAM", len(payload), zlib.crc32(payload)
        ) + payload
        with pytest.raises(FrameCorruptError):
            FrameDecoder().feed(frame)

    def test_non_object_payload_is_typed(self):
        payload = b"[1,2,3]"
        frame = _HEADER.pack(
            b"TDAM", len(payload), zlib.crc32(payload)
        ) + payload
        with pytest.raises(FrameCorruptError):
            FrameDecoder().feed(frame)

    def test_decoder_dead_after_framing_error(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameCorruptError):
            decoder.feed(b"XXXX" + b"\x00" * 8)
        # No resync on a corrupted stream: even valid frames are
        # refused until the connection is dropped.
        with pytest.raises(FrameCorruptError):
            decoder.feed(encode_frame(hello_message()))

    def test_eof_mid_frame_is_truncation(self):
        stream = encode_frame(hello_message())
        decoder = FrameDecoder()
        decoder.feed(stream[: len(stream) - 3])
        with pytest.raises(ConnectionLostError):
            decoder.eof()

    def test_eof_on_frame_boundary_is_clean(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(hello_message()))
        decoder.eof()  # no pending bytes: clean close


# ----------------------------------------------------------------------
# Typed-error envelope: every class, bit-for-bit (satellite)
# ----------------------------------------------------------------------
_ERROR_CASES = [
    QuotaExceededError("quota dry", retry_after_s=0.125, tenant="t3"),
    OverloadError(
        "queue full", retry_after_s=0.002, reason="queue_full",
        tenant="t1",
    ),
    OverloadError(
        "draining", retry_after_s=0.0, reason="draining", tenant="t0",
    ),
    AdmissionRejectedError(
        "shed", retry_after_s=0.25, reason="queue_deadline",
        tenant="t2",
    ),
    InvalidRequestError("bad shape (2, 2)"),
    DeadlineExceededError("budget exhausted after 3 attempts"),
    AllShardsUnavailableError("all replicas down"),
    RetryBudgetExhaustedError("budget empty"),
    CircuitOpenError("breaker open on s1"),
    ReplicaDivergenceError(
        "write fanout failed",
        shards_written=["s0"],
        shards_unwritten=["s1", "s2"],
        failed_shard="s1",
    ),
    ShardTimeoutError("s0 slow"),
    ShardBusyError("s1 mid-refresh"),
    CalibrationDriftError("replica TDC drifted"),
    TransientServiceError("blip"),
    FrameTooLargeError("5 MiB declared"),
    FrameCorruptError("checksum mismatch"),
    FrameTimeoutError("no frame in 30s"),
    ConnectionLostError("peer reset"),
    HandshakeError("version 2 vs 1"),
    WireProtocolError("generic wire failure"),
    ServiceError("generic service failure"),
]


class TestErrorEnvelope:
    @pytest.mark.parametrize(
        "exc", _ERROR_CASES, ids=lambda e: type(e).__name__
    )
    def test_round_trip_exact(self, exc):
        message = _frame_round_trip(error_message(11, exc))
        assert message["type"] == "error"
        assert message["id"] == 11
        decoded = decode_error(message)
        assert type(decoded) is type(exc)
        assert str(decoded) == str(exc)

    @pytest.mark.parametrize(
        "exc",
        [e for e in _ERROR_CASES
         if isinstance(e, AdmissionRejectedError)],
        ids=lambda e: f"{type(e).__name__}-{e.reason}",
    )
    def test_admission_metadata_survives(self, exc):
        decoded = decode_error(_frame_round_trip(error_message(1, exc)))
        assert decoded.retry_after_s == exc.retry_after_s
        assert decoded.reason == exc.reason
        assert decoded.tenant == exc.tenant

    def test_divergence_shard_lists_survive(self):
        exc = next(
            e for e in _ERROR_CASES
            if isinstance(e, ReplicaDivergenceError)
        )
        decoded = decode_error(_frame_round_trip(error_message(1, exc)))
        assert decoded.shards_written == exc.shards_written
        assert decoded.shards_unwritten == exc.shards_unwritten
        assert decoded.failed_shard == exc.failed_shard

    def test_unknown_code_decodes_to_service_error(self):
        decoded = decode_error(
            {"code": "from_the_future", "message": "???"}
        )
        assert type(decoded) is ServiceError
        assert str(decoded) == "???"

    def test_unnamed_exception_encodes_as_internal(self):
        envelope = encode_error(RuntimeError("surprise"))
        assert envelope["code"] == "internal"
        decoded = decode_error(envelope)
        assert type(decoded) is ServiceError


# ----------------------------------------------------------------------
# Response payloads: full honesty metadata, bit-for-bit (satellite)
# ----------------------------------------------------------------------
_SEARCH_CASES = [
    RemoteSearchResponse(
        best_row=3, best_distance=7.0, degraded=False, outcome="ok",
        coverage=1.0, partitions_skipped=(), shard_id="s0",
        attempts=1, retries=0, elapsed_s=0.0031,
    ),
    RemoteSearchResponse(
        best_row=0, best_distance=2.0, degraded=True,
        outcome="degraded", coverage=0.5,
        partitions_skipped=("p1", "p3"), shard_id="s1",
        attempts=3, retries=2, elapsed_s=0.0482,
    ),
    RemoteSearchResponse(
        best_row=-1, best_distance=-1.0, degraded=True,
        outcome="degraded", coverage=0.0,
        partitions_skipped=("p0", "p1"), shard_id="",
        attempts=2, retries=1, elapsed_s=0.05,
    ),
]

_TOPK_CASES = [
    RemoteTopKResponse(
        rows=np.asarray([4, 1, 7], dtype=np.int64), k=3,
        degraded=False, outcome="ok", coverage=1.0,
        partitions_skipped=(), pruned=False, shard_id="s0",
        attempts=1, retries=0, elapsed_s=0.002,
    ),
    RemoteTopKResponse(
        rows=np.asarray([2, -1, -1], dtype=np.int64), k=3,
        degraded=True, outcome="degraded", coverage=0.25,
        partitions_skipped=("p1", "p2", "p3"), pruned=True,
        shard_id="s1", attempts=2, retries=1, elapsed_s=0.031,
    ),
]


class TestResponsePayloads:
    @pytest.mark.parametrize(
        "response", _SEARCH_CASES,
        ids=[r.outcome + str(r.best_row) for r in _SEARCH_CASES],
    )
    def test_search_round_trip_exact(self, response):
        payload = _frame_round_trip(
            {"type": "response", "payload":
             encode_response("search", response)}
        )["payload"]
        decoded = decode_response("search", payload)
        assert decoded == response

    @pytest.mark.parametrize(
        "response", _TOPK_CASES,
        ids=[r.outcome for r in _TOPK_CASES],
    )
    def test_topk_round_trip_exact(self, response):
        payload = _frame_round_trip(
            {"type": "response", "payload":
             encode_response("topk", response)}
        )["payload"]
        decoded = decode_response("topk", payload)
        assert np.array_equal(decoded.rows, response.rows)
        for field in (
            "k", "degraded", "outcome", "coverage",
            "partitions_skipped", "pruned", "shard_id", "attempts",
            "retries", "elapsed_s",
        ):
            assert getattr(decoded, field) == getattr(response, field)

    def test_malformed_response_payload_is_typed(self):
        with pytest.raises(FrameCorruptError):
            decode_response("search", {"degraded": False})
        with pytest.raises(FrameCorruptError):
            decode_response("topk", {"rows": "not-a-list"})
        with pytest.raises(FrameCorruptError):
            decode_response("search", {
                "degraded": False, "outcome": "ok", "coverage": "x",
                "partitions_skipped": [], "shard_id": "", "attempts": 1,
                "retries": 0, "elapsed_s": 0.0, "best_row": 0,
                "best_distance": 1.0,
            })
