"""Client behavior against a scripted server: retries, pooling, budgets.

A tiny in-test server speaks just enough of the protocol to script
exact failure sequences, so every retry decision is asserted
deterministically: transport failures retry (budgeted), typed server
errors never do.
"""

import socket
import threading
import types

import pytest

from repro.net.client import RemoteFrontend
from repro.net.wire import (
    ConnectionLostError,
    FrameDecoder,
    WireProtocolError,
    encode_frame,
    error_message,
    goaway_message,
    hello_ok_message,
    response_message,
)
from repro.service.errors import (
    DeadlineExceededError,
    InvalidRequestError,
    QuotaExceededError,
    RetryBudgetExhaustedError,
)
from repro.service.retry import RetryBudget, RetryPolicy


def _fake_search_response(best_row=2, best_distance=3.0):
    """A response-shaped object for ``response_message``."""
    return types.SimpleNamespace(
        best_row=best_row, best_distance=best_distance,
        degraded=False, outcome="ok", coverage=1.0,
        partitions_skipped=(), shard_id="s0", attempts=1, retries=0,
        elapsed_s=0.001,
    )


class ScriptedServer:
    """Accepts connections, handshakes, then runs ``handler`` per
    request frame.  ``handler(sock, message, conn_no)`` returns False
    to close the connection."""

    def __init__(self, handler):
        self.handler = handler
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]
        self.connections = 0
        self.requests = []
        self._stopping = False
        self._thread = threading.Thread(target=self._accept, daemon=True)
        self._thread.start()

    def _accept(self):
        self.listener.settimeout(0.1)
        while not self._stopping:
            try:
                sock, _ = self.listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            threading.Thread(
                target=self._serve, args=(sock, self.connections),
                daemon=True,
            ).start()

    def _serve(self, sock, conn_no):
        decoder = FrameDecoder()
        sock.settimeout(5.0)
        try:
            while True:
                data = sock.recv(65536)
                if not data:
                    return
                for message in decoder.feed(data):
                    if message.get("type") == "hello":
                        sock.sendall(encode_frame(hello_ok_message(
                            n_rows=8, n_stages=4, levels=4,
                            default_deadline_s=0.5,
                        )))
                    elif message.get("type") == "bye":
                        return
                    else:
                        self.requests.append(message)
                        if not self.handler(sock, message, conn_no):
                            return
        except (OSError, WireProtocolError):
            pass
        finally:
            sock.close()

    def stop(self):
        self._stopping = True
        try:
            self.listener.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()


def _fast_policy(max_attempts=3):
    return RetryPolicy(
        max_attempts=max_attempts, backoff_base_s=0.001,
        backoff_cap_s=0.002, jitter_seed=1,
    )


@pytest.mark.timeout(30)
class TestTypedServerErrors:
    def test_typed_error_never_retried_metadata_exact(self):
        def handler(sock, message, conn_no):
            sock.sendall(encode_frame(error_message(
                message["id"],
                QuotaExceededError(
                    "tenant dry", retry_after_s=0.125, tenant="t9"
                ),
            )))
            return True

        with ScriptedServer(handler) as server:
            with RemoteFrontend(
                "127.0.0.1", server.port,
                retry_policy=_fast_policy(),
            ) as client:
                with pytest.raises(QuotaExceededError) as info:
                    client.search([0, 1, 2, 3], deadline_s=1.0)
            assert info.value.retry_after_s == 0.125
            assert info.value.tenant == "t9"
            assert info.value.reason == "quota"
            # One request frame only: a typed "no" is final.
            assert len(server.requests) == 1

    def test_invalid_k_rejected_before_any_network(self):
        client = RemoteFrontend("127.0.0.1", 1)
        with pytest.raises(InvalidRequestError):
            client.top_k([0, 1], k=0, deadline_s=1.0)
        with pytest.raises(InvalidRequestError):
            client.search([0, 1], deadline_s=0.0)


@pytest.mark.timeout(30)
class TestTransportRetries:
    def test_goaway_reconnects_and_succeeds(self):
        def handler(sock, message, conn_no):
            if conn_no == 1:
                sock.sendall(encode_frame(goaway_message("draining")))
                return False
            sock.sendall(encode_frame(response_message(
                message["id"], "search", _fake_search_response()
            )))
            return True

        with ScriptedServer(handler) as server:
            with RemoteFrontend(
                "127.0.0.1", server.port,
                retry_policy=_fast_policy(),
            ) as client:
                response = client.search([0, 1, 2, 3], deadline_s=2.0)
            assert response.best_row == 2
            assert server.connections == 2

    def test_refused_connection_exhausts_attempts_typed(self):
        # A bound-then-closed socket: the port refuses connections.
        placeholder = socket.create_server(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        with RemoteFrontend(
            "127.0.0.1", port, retry_policy=_fast_policy(2),
            connect_timeout_s=0.5,
        ) as client:
            with pytest.raises(ConnectionLostError):
                client.search([0], deadline_s=2.0)

    def test_empty_retry_budget_stops_the_storm(self):
        placeholder = socket.create_server(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        with RemoteFrontend(
            "127.0.0.1", port,
            retry_policy=_fast_policy(5),
            retry_budget=RetryBudget(
                deposit_per_request=0.0, max_balance=0.5
            ),
            connect_timeout_s=0.5,
        ) as client:
            with pytest.raises(RetryBudgetExhaustedError):
                client.search([0], deadline_s=2.0)

    def test_wrong_response_id_is_typed_connection_loss(self):
        def handler(sock, message, conn_no):
            sock.sendall(encode_frame(response_message(
                999, "search", _fake_search_response()
            )))
            return True

        with ScriptedServer(handler) as server:
            with RemoteFrontend(
                "127.0.0.1", server.port,
                retry_policy=_fast_policy(1),
            ) as client:
                with pytest.raises(ConnectionLostError):
                    client.search([0, 1], deadline_s=1.0)

    def test_corrupt_reply_is_typed_wire_error(self):
        def handler(sock, message, conn_no):
            sock.sendall(b"NOT-A-FRAME-AT-ALL" * 3)
            return False

        with ScriptedServer(handler) as server:
            with RemoteFrontend(
                "127.0.0.1", server.port,
                retry_policy=_fast_policy(1),
            ) as client:
                with pytest.raises(WireProtocolError):
                    client.search([0, 1], deadline_s=1.0)

    def test_budget_burns_across_attempts(self):
        """A clock injected to jump past the deadline after the first
        transport failure: the client gives up with
        DeadlineExceededError instead of retrying forever."""
        placeholder = socket.create_server(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        now = [0.0]

        def clock():
            return now[0]

        def sleep(duration):
            now[0] += duration

        client = RemoteFrontend(
            "127.0.0.1", port,
            retry_policy=_fast_policy(10),
            connect_timeout_s=0.2,
            clock=clock, sleep=sleep,
        )
        original_connect = client._connect

        def failing_connect():
            now[0] += 0.6  # each attempt costs more than the budget
            return original_connect()

        client._connect = failing_connect
        with pytest.raises(DeadlineExceededError):
            client.search([0], deadline_s=1.0)
        client.close()


@pytest.mark.timeout(30)
class TestPooling:
    def test_sequential_calls_reuse_one_connection(self):
        def handler(sock, message, conn_no):
            sock.sendall(encode_frame(response_message(
                message["id"], "search", _fake_search_response()
            )))
            return True

        with ScriptedServer(handler) as server:
            with RemoteFrontend("127.0.0.1", server.port) as client:
                for _ in range(5):
                    client.search([0, 1, 2, 3], deadline_s=1.0)
            assert server.connections == 1
            assert len(server.requests) == 5

    def test_default_deadline_adopts_server_advertisement(self):
        def handler(sock, message, conn_no):
            return True

        with ScriptedServer(handler) as server:
            with RemoteFrontend("127.0.0.1", server.port) as client:
                client.connect()
                assert client.default_deadline_s == 0.5

    def test_closed_client_is_typed(self):
        client = RemoteFrontend("127.0.0.1", 1)
        client.close()
        with pytest.raises(ConnectionLostError):
            client.search([0], deadline_s=1.0)
