"""Transient waveform inspection of a delay chain (Fig. 4 style).

Builds a 4-stage chain netlist with two mismatched even stages, runs the
nonlinear transient solver, and prints ASCII waveforms of the input, the
match nodes, and the output edge -- the reproduction's equivalent of
probing the Spectre testbench.

Run:
    python examples/waveform_inspection.py
"""

import numpy as np

from repro.core.config import TDAMConfig
from repro.core.netlist_builder import build_chain_circuit
from repro.spice.transient import simulate
from repro.spice.waveform import Waveform

def ascii_plot(waveform: Waveform, width: int = 72, height: int = 8) -> str:
    """Render a waveform as a small ASCII strip chart."""
    t = np.linspace(waveform.time[0], waveform.time[-1], width)
    v = np.array([waveform.value_at(x) for x in t])
    lo, hi = waveform.v_min, waveform.v_max
    span = max(hi - lo, 1e-9)
    rows = []
    for level in range(height, -1, -1):
        threshold = lo + span * level / height
        line = "".join("#" if val >= threshold else " " for val in v)
        rows.append(f"{threshold:6.2f} |{line}")
    rows.append(" " * 7 + "+" + "-" * width)
    return "\n".join(rows)

def main() -> None:
    config = TDAMConfig(n_stages=4)
    stored = [0, 0, 0, 0]
    query = [1, 0, 1, 0]  # stages 0 and 2 (even) mismatch in step I
    net = build_chain_circuit(config, stored, query, step="I",
                              rng=np.random.default_rng(3))
    print(f"simulating {net.circuit!r} ...")
    result = simulate(net.circuit, t_stop=net.t_stop_hint, dt=2e-12,
                      v_init=net.v_init)

    for node in [net.input_node, net.mn_nodes[0], net.mn_nodes[1],
                 net.output_node]:
        print(f"\n--- {node} ---")
        print(ascii_plot(result.waveform(node)))

    w_in = result.waveform(net.input_node)
    w_out = result.waveform(net.output_node)
    delay = w_in.delay_to(
        w_out, config.vdd / 2, rising_self=True,
        rising_other=net.output_edge_rising, after=net.t_pulse - 50e-12,
    )
    print(f"\nmeasured edge delay through the chain: {delay * 1e12:.2f} ps "
          f"({net.active_mismatches} active mismatches)")

if __name__ == "__main__":
    main()
