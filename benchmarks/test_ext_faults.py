"""Extension bench: hard-fault tolerance of the associative search.

Sweeps defect density and measures the induced Hamming-distance error
and best-match corruption -- the yield/repair data a test engineer needs.
The headline: single-cell defects perturb distances by at most one LSB
each (the TD-AM's linear delay law localizes damage), while dead rows
need sparing.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.core.array import FastTDAMArray
from repro.core.config import TDAMConfig
from repro.core.faults import FaultInjector, FaultyTDAMArray, search_error_statistics


def _sweep():
    config = TDAMConfig(n_stages=64)
    rng = np.random.default_rng(0)
    stored = rng.integers(0, 4, size=(16, 64))
    queries = rng.integers(0, 4, size=(20, 64))
    rows = []
    for n_cell_faults in (0, 2, 8, 32):
        array = FastTDAMArray(config, n_rows=16)
        array.write_all(stored)
        injector = FaultInjector(config, 16, seed=n_cell_faults)
        faults = injector.draw(
            n_stuck_mismatch=n_cell_faults // 2,
            n_stuck_match=n_cell_faults - n_cell_faults // 2,
        )
        stats = search_error_statistics(
            FaultyTDAMArray(array, faults), queries
        )
        rows.append({"cell_faults": n_cell_faults, **stats})
    return rows


def test_ext_fault_tolerance(benchmark):
    rows = run_once(benchmark, _sweep)
    print()
    print(format_table(rows, title="Extension: search error vs defect count"))

    by_faults = {r["cell_faults"]: r for r in rows}
    # A fault-free array is exact.
    assert by_faults[0]["max_abs_error"] == 0.0
    assert by_faults[0]["wrong_best_fraction"] == 0.0
    # Damage is graceful: the error grows with the defect count and each
    # defective cell moves a distance by at most one.
    assert by_faults[2]["max_abs_error"] <= 2.0
    assert (
        by_faults[32]["mean_abs_error"] >= by_faults[8]["mean_abs_error"]
    )
