"""Mapping HDC inference onto the TD-AM architecture (Fig. 8 system).

The quantized class hypervectors are laid across TD-AM tiles: each tile
is an M-row x N-stage array (M = classes, N = ``config.n_stages``; the
paper's system point is 128 stages at 0.6 V).  A query is processed
tile-serially -- ``ceil(D / N)`` tile searches -- while the class rows of
each tile run in parallel; per-tile TDC counts accumulate into the total
match count per class.

Architecture cost model (constants calibrated to the paper's Fig. 8
ranges; see EXPERIMENTS.md):

- latency = tiles * (worst-case chain delay + TDC conversion)
            + classes * readout;
- energy  = encoding (the FeFET IMC encoder of [39], proportional to
            D * F) + tile search energy + TDC/readout energy.

Variation-aware inference draws per-device V_TH offsets once (the array
is programmed once) and replays every query against the same imperfect
devices, chunked to bound memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.bitplane import (
    pack_level_planes,
    pack_query_masks,
    packed_mismatch_counts,
    packed_pair_counts,
)
from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel
from repro.core.mvm import E_READOUT, T_READOUT_PER_CLASS, T_TDC_CONVERSION
from repro.core.topk import grouped_top_k, prune_survivors, top_k_indices
from repro.devices.variation import VariationModel
from repro.hdc.quantize import QuantizedModel

# T_TDC_CONVERSION / T_READOUT_PER_CLASS / E_READOUT are the canonical
# fabric constants of :mod:`repro.core.mvm`, re-exported here because the
# Fig. 8 cost model below predates that module and callers import them
# from this namespace.

#: Energy of the in-memory HDC encoder per dimension-feature pair (J),
#: representative of the FeFET encoding engine of [39].
E_ENCODE_PER_DIMFEAT = 26e-15


@dataclass(frozen=True)
class InferenceCost:
    """Latency/energy of one query on the TD-AM system.

    Attributes:
        latency_s: End-to-end query latency.
        energy_j: End-to-end query energy.
        tiles: Number of serial tile searches.
        search_energy_j: The delay-chain search portion of ``energy_j``.
        encode_energy_j: The encoder portion of ``energy_j``.
    """

    latency_s: float
    energy_j: float
    tiles: int
    search_energy_j: float
    encode_energy_j: float


class TDAMInference:
    """Runs a quantized HDC model on the TD-AM architecture.

    Args:
        model: The quantized HDC model (levels must fit ``config.bits``).
        config: TD-AM design point; the paper's Fig. 8 system uses
            ``TDAMConfig(bits=model.bits, n_stages=128, vdd=0.6)``.
        n_features: Input feature count (encoder energy model).
        variation: Optional V_TH variation model; offsets are drawn once
            at construction (one programmed array) and affect every query.
        seed: Seed of the variation draw.
    """

    def __init__(
        self,
        model: QuantizedModel,
        config: Optional[TDAMConfig] = None,
        n_features: int = 600,
        variation: Optional[VariationModel] = None,
        seed: Optional[int] = None,
    ) -> None:
        config = config or TDAMConfig(bits=model.bits, n_stages=128, vdd=0.6)
        if config.bits != model.bits:
            raise ValueError(
                f"config.bits={config.bits} != model.bits={model.bits}"
            )
        if model.levels.max() >= config.levels:
            raise ValueError(
                f"model levels up to {model.levels.max()} exceed the "
                f"{config.levels}-level cell"
            )
        self.model = model
        self.config = config
        self.n_features = n_features
        self.timing = TimingEnergyModel(config)
        self._vth = np.array(config.vth_levels)
        self._vsl = np.array(config.vsl_levels)
        self._stored = model.levels  # (n_classes, D)
        if variation is not None:
            levels = config.levels
            rng_states_a = self._stored.reshape(-1)
            rng_states_b = (levels - 1 - self._stored).reshape(-1)
            self._off_a = variation.draw(rng_states_a).vth_shifts.reshape(
                self._stored.shape
            )
            self._off_b = variation.draw(rng_states_b).vth_shifts.reshape(
                self._stored.shape
            )
        else:
            self._off_a = None
            self._off_b = None
        self._planes: Optional[np.ndarray] = None
        self._von = self._turn_on_overdrive()

    def _turn_on_overdrive(self) -> float:
        """Conduction margin consistent with the circuit-level arrays."""
        from repro.core.array import calibrate_turn_on_overdrive

        return calibrate_turn_on_overdrive(self.config)

    # ------------------------------------------------------------------
    # Functional inference
    # ------------------------------------------------------------------
    @property
    def tiles(self) -> int:
        """Serial tile searches per query."""
        return math.ceil(self.model.dimension / self.config.n_stages)

    def _validate_queries(self, query_levels: np.ndarray) -> np.ndarray:
        q = np.atleast_2d(np.asarray(query_levels, dtype=np.int64))
        if q.shape[1] != self.model.dimension:
            raise ValueError(
                f"query dimension {q.shape[1]} != model dimension "
                f"{self.model.dimension}"
            )
        if q.min() < 0 or q.max() >= self.config.levels:
            raise ValueError(
                f"query levels must be in [0, {self.config.levels - 1}]"
            )
        return q

    def _packed_planes(self) -> np.ndarray:
        """Bit-planes of the stored class matrix, (L, n_classes, B).

        The ideal (no-variation) mismatch decision depends only on the
        query level, so the class hypervectors pack once into per-level
        bit-planes and every query reduces to AND + popcount -- the
        same write-time index :class:`~repro.core.array.FastTDAMArray`
        builds, here over the full D-dimensional rows.
        """
        if self._planes is None:
            levels = np.arange(self.config.levels)
            mism = levels[:, None, None] != self._stored[None, :, :]
            self._planes = pack_level_planes(mism)
        return self._planes

    def _resolve_chunk(self, chunk: Optional[int]) -> int:
        from repro.core.array import _resolve_chunk_arg

        return _resolve_chunk_arg(
            chunk, self.model.n_classes, self.model.dimension
        )

    def mismatch_counts(
        self, query_levels: np.ndarray, chunk: Optional[int] = None
    ) -> np.ndarray:
        """Per-class mismatch counts for each query, shape (n_q, n_cls).

        Without a variation model this is the exact Hamming distance,
        served from the packed bit-plane index; with one, per-device
        offsets can flip individual comparisons just as in
        :class:`repro.core.array.FastTDAMArray`.

        Args:
            query_levels: Query levels, shape (n_q, D).
            chunk: Queries per materialized block; ``None`` auto-sizes.
        """
        q = self._validate_queries(query_levels)
        chunk = self._resolve_chunk(chunk)
        if self._off_a is None:
            planes = self._packed_planes()
            levels = self.config.levels
            counts = np.empty(
                (q.shape[0], self.model.n_classes), dtype=np.int64
            )
            for start in range(0, q.shape[0], chunk):
                masks = pack_query_masks(q[start:start + chunk], levels)
                counts[start:start + chunk] = packed_mismatch_counts(
                    planes, masks
                )
            return counts
        from repro.core.array import batched_mismatch_counts

        vth_a = self._vth[self._stored] + self._off_a  # (n_cls, D)
        vth_b = (
            self._vth[self.config.levels - 1 - self._stored] + self._off_b
        )
        return batched_mismatch_counts(
            q, vth_a, vth_b, self._vsl, self.config.levels, self._von,
            chunk=chunk,
        )

    def top_k(
        self,
        query_levels: np.ndarray,
        k: int,
        chunk: Optional[int] = None,
    ) -> np.ndarray:
        """Per-query k best classes by mismatch count, shape (n_q, k).

        Ordered by mismatch count with the class index breaking ties --
        identical to ranking :meth:`mismatch_counts` directly (an
        exactness suite asserts it).  Without variation the pruned
        cascade serves it: counts over the first half of the packed
        dimensions lower-bound each class's final count, classes that
        cannot enter the top-k are pruned, and only survivors are
        refined over the remaining dimensions.
        """
        q = self._validate_queries(query_levels)
        n_classes = self.model.n_classes
        if not 1 <= k <= n_classes:
            raise ValueError(f"k must be in [1, {n_classes}], got {k}")
        if self._off_a is not None:
            return top_k_indices(self.mismatch_counts(q, chunk=chunk), k)
        chunk = self._resolve_chunk(chunk)
        planes = self._packed_planes()
        b_pad = planes.shape[2]
        pb = 8 * max(1, (b_pad // 8) // 2)
        rem = max(0, self.model.dimension - pb * 8)
        levels = self.config.levels
        out = np.empty((q.shape[0], k), dtype=np.int64)
        for start in range(0, q.shape[0], chunk):
            block = q[start:start + chunk]
            masks = pack_query_masks(block, levels)
            prefix = packed_mismatch_counts(
                planes[:, :, :pb], masks[:, :, :pb]
            )
            q_idx, r_idx = prune_survivors(prefix, k, rem)
            totals = prefix[q_idx, r_idx]
            if rem:
                totals = totals + packed_pair_counts(
                    planes[:, :, pb:], masks[:, :, pb:], q_idx, r_idx
                )
            out[start:start + chunk] = grouped_top_k(
                q_idx, r_idx, totals, k, block.shape[0]
            )
        return out

    def predict(self, query_levels: np.ndarray) -> np.ndarray:
        """Predicted class per query: the row with the fewest mismatches."""
        return self.mismatch_counts(query_levels).argmin(axis=1)

    def accuracy(self, query_levels: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy of the mapped model."""
        labels = np.asarray(labels)
        return float((self.predict(query_levels) == labels).mean())

    # ------------------------------------------------------------------
    # Architecture cost model
    # ------------------------------------------------------------------
    def query_cost(self, mismatch_fraction: float = 0.5) -> InferenceCost:
        """Latency/energy of one query.

        Args:
            mismatch_fraction: Expected mismatching-stage fraction of the
                search activity (affects energy only; latency budgets the
                worst case, as a synchronous system must).
        """
        if not 0.0 <= mismatch_fraction <= 1.0:
            raise ValueError(
                f"mismatch_fraction must be in [0, 1], got {mismatch_fraction}"
            )
        n = self.config.n_stages
        n_classes = self.model.n_classes
        tiles = self.tiles
        worst_chain = self.timing.chain_delay(n)
        latency = (
            tiles * (worst_chain + T_TDC_CONVERSION)
            + n_classes * T_READOUT_PER_CLASS
        )
        n_mis = int(round(mismatch_fraction * n))
        per_chain = self.timing.search_cost(n_mis).energy_j
        search_energy = tiles * n_classes * (per_chain + E_READOUT)
        encode_energy = (
            self.model.dimension * self.n_features * E_ENCODE_PER_DIMFEAT
        )
        return InferenceCost(
            latency_s=latency,
            energy_j=search_energy + encode_energy,
            tiles=tiles,
            search_energy_j=search_energy,
            encode_energy_j=encode_energy,
        )
