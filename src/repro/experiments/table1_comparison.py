"""Table I: comparison with state-of-the-art IMC/TD-IMC designs.

Thin driver over :mod:`repro.baselines.registry`: the proposed design's
energy-per-bit entry is *measured* from the analytic circuit model at the
best-efficiency operating point; the baselines carry their published
numbers; the ratios regenerate the parenthesized multipliers of the
paper's Table I (3.71x / 2.52x / 13.84x / 0.245x / 1.47x).
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.registry import (
    TableIRow,
    build_table_i,
    format_table_i,
)
from repro.core.config import TDAMConfig
from repro.experiments._instrument import instrumented


@instrumented("table1")
def run_table1(config: Optional[TDAMConfig] = None) -> List[TableIRow]:
    """Generate the Table I rows."""
    return build_table_i(config)


def format_table1(rows: Optional[List[TableIRow]] = None) -> str:
    """Render Table I as text."""
    return format_table_i(rows if rows is not None else run_table1())


if __name__ == "__main__":
    from repro.cli import emit

    emit(format_table1())
