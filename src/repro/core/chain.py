"""The delay chain and the 2-step operation scheme (Fig. 3).

A chain cascades ``N`` delay stages and stores one ``N``-element multi-bit
vector.  A search proceeds in two steps:

- **step I** propagates the *rising* edge of the input pulse; odd stages
  are deactivated (both search lines at V_SL0), even stages compare their
  element and add ``d_C`` on mismatch;
- **step II** propagates the *falling* edge with the roles swapped.

The deactivated stages still propagate (and sharpen) the edge through
their inverters, which is why both steps carry the full ``N * d_INV``
intrinsic delay and the total obeys::

    d_tot = 2 * N_tot * d_INV + N_mis * d_C
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import TDAMConfig
from repro.core.encoding import LevelEncoding
from repro.core.energy import TimingEnergyModel
from repro.core.stage import STEP_I, STEP_II, DelayStage


@dataclass(frozen=True)
class ChainResult:
    """Outcome of one 2-step search on one chain.

    Attributes:
        delay_rising_s: Step I delay (even-stage mismatches).
        delay_falling_s: Step II delay (odd-stage mismatches).
        delay_total_s: The similarity output, rising + falling.
        n_mismatch_even: Mismatched stages among even indices.
        n_mismatch_odd: Mismatched stages among odd indices.
        mismatch_mask: Per-stage boolean mismatch vector (device-level
            outcome, i.e. including any variation-induced flips).
        energy_j: Energy of the search (analytic accounting).
    """

    delay_rising_s: float
    delay_falling_s: float
    delay_total_s: float
    n_mismatch_even: int
    n_mismatch_odd: int
    mismatch_mask: np.ndarray
    energy_j: float

    @property
    def n_mismatch(self) -> int:
        """Total mismatched stages -- the Hamming distance the TDC senses."""
        return self.n_mismatch_even + self.n_mismatch_odd


class DelayChain:
    """A row of the TD-AM: N cascaded delay stages storing one vector.

    Args:
        config: Design point (supplies N, ladders, timing parameters).
        timing: Shared analytic timing model; constructed from ``config``
            when omitted.
        rng: Seeded generator for the per-stage FeFET ensembles.
        vth_offsets: Optional array of shape ``(n_stages, 2)`` with the
            V_TH shifts of each stage's (F_A, F_B) -- the Monte Carlo hook.
        name: Instance name.
    """

    def __init__(
        self,
        config: TDAMConfig,
        timing: Optional[TimingEnergyModel] = None,
        rng: Optional[np.random.Generator] = None,
        vth_offsets: Optional[np.ndarray] = None,
        name: str = "chain",
    ) -> None:
        self.config = config
        self.encoding = LevelEncoding(config)
        self.timing = timing or TimingEnergyModel(config)
        self.name = name
        rng = rng if rng is not None else np.random.default_rng()
        if vth_offsets is None:
            vth_offsets = np.zeros((config.n_stages, 2))
        vth_offsets = np.asarray(vth_offsets, dtype=float)
        if vth_offsets.shape != (config.n_stages, 2):
            raise ValueError(
                f"vth_offsets must have shape ({config.n_stages}, 2), "
                f"got {vth_offsets.shape}"
            )
        self.stages: List[DelayStage] = [
            DelayStage(
                config,
                index=i,
                timing=self.timing,
                rng=rng,
                vth_offsets=(float(vth_offsets[i, 0]), float(vth_offsets[i, 1])),
            )
            for i in range(config.n_stages)
        ]
        self._stored: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def write(self, vector: Sequence[int]) -> None:
        """Program the chain with an N-element multi-bit vector."""
        values = self.encoding.validate_vector(vector)
        if len(values) != self.config.n_stages:
            raise ValueError(
                f"{self.name}: vector length {len(values)} != "
                f"n_stages {self.config.n_stages}"
            )
        for stage, value in zip(self.stages, values):
            stage.write(int(value))
        self._stored = values

    @property
    def stored(self) -> Optional[np.ndarray]:
        """Copy of the stored vector, or None when unwritten."""
        return None if self._stored is None else self._stored.copy()

    # ------------------------------------------------------------------
    # Search path
    # ------------------------------------------------------------------
    def search(self, query: Sequence[int]) -> ChainResult:
        """Run the full 2-step similarity computation against a query."""
        if self._stored is None:
            raise RuntimeError(f"{self.name}: search before write")
        values = self.encoding.validate_vector(query)
        if len(values) != self.config.n_stages:
            raise ValueError(
                f"{self.name}: query length {len(values)} != "
                f"n_stages {self.config.n_stages}"
            )
        mismatch_mask = np.zeros(self.config.n_stages, dtype=bool)
        delay_rising = 0.0
        delay_falling = 0.0
        for step, accumulate_rising in ((STEP_I, True), (STEP_II, False)):
            for stage, q in zip(self.stages, values):
                outcome = stage.evaluate(int(q), step)
                if accumulate_rising:
                    delay_rising += outcome.delay_s
                else:
                    delay_falling += outcome.delay_s
                if outcome.active and outcome.mismatch:
                    mismatch_mask[stage.index] = True
        n_even = int(mismatch_mask[0::2].sum())
        n_odd = int(mismatch_mask[1::2].sum())
        cost = self.timing.search_cost(n_even + n_odd, n_mismatch_even=n_even)
        return ChainResult(
            delay_rising_s=delay_rising,
            delay_falling_s=delay_falling,
            delay_total_s=delay_rising + delay_falling,
            n_mismatch_even=n_even,
            n_mismatch_odd=n_odd,
            mismatch_mask=mismatch_mask,
            energy_j=cost.energy_j,
        )

    def ideal_hamming(self, query: Sequence[int]) -> int:
        """Ideal (variation-free) Hamming distance to the stored vector."""
        if self._stored is None:
            raise RuntimeError(f"{self.name}: search before write")
        return self.encoding.hamming_distance(self._stored, query)

    def __repr__(self) -> str:
        return f"DelayChain({self.name!r}, {self.config.n_stages} stages)"
