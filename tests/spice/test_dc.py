"""Tests of the DC operating-point solver."""

import numpy as np
import pytest

from repro.devices.mosfet import nmos, pmos
from repro.spice.dc import solve_dc, sweep_dc
from repro.spice.elements import (
    Capacitor,
    MOSFETElement,
    Resistor,
    VoltageSource,
)
from repro.spice.netlist import Circuit


def divider(r1=1e3, r2=1e3, v=1.0):
    ckt = Circuit("div")
    ckt.add(VoltageSource("in", v))
    ckt.add(Resistor("in", "mid", r1))
    ckt.add(Resistor("mid", "0", r2))
    return ckt


def inverter(vdd=1.1, vin=0.0):
    ckt = Circuit("inv")
    ckt.add(VoltageSource("vdd", vdd))
    ckt.add(VoltageSource("in", vin))
    ckt.add(MOSFETElement("out", "in", "0", nmos(width=2.0)))
    ckt.add(MOSFETElement("out", "in", "vdd", pmos(width=4.0)))
    ckt.add(Capacitor("out", "0", 1e-15))
    return ckt


class TestSolveDC:
    def test_resistive_divider(self):
        assert solve_dc(divider())["mid"] == pytest.approx(0.5, abs=1e-6)

    def test_unequal_divider(self):
        assert solve_dc(divider(r1=1e3, r2=3e3))["mid"] == pytest.approx(0.75)

    def test_capacitors_carry_no_dc_current(self):
        ckt = divider()
        ckt.add(Capacitor("mid", "0", 1e-12))
        assert solve_dc(ckt)["mid"] == pytest.approx(0.5, abs=1e-6)

    def test_inverter_low_input(self):
        solution = solve_dc(inverter(vin=0.0), v_init={"out": 1.1})
        assert solution["out"] == pytest.approx(1.1, abs=0.01)

    def test_inverter_high_input(self):
        solution = solve_dc(inverter(vin=1.1), v_init={"out": 0.0})
        assert solution["out"] == pytest.approx(0.0, abs=0.01)

    def test_forced_nodes_reported(self):
        solution = solve_dc(divider(v=2.0))
        assert solution["in"] == 2.0


class TestSweepDC:
    def test_inverter_vtc(self):
        vtc = sweep_dc(
            inverter(), "in", np.linspace(0, 1.1, 23), ["out"],
            v_init={"out": 1.1},
        )
        assert vtc["out"][0] == pytest.approx(1.1, abs=0.01)
        assert vtc["out"][-1] == pytest.approx(0.0, abs=0.01)
        # Monotone falling transfer curve.
        assert (np.diff(vtc["out"]) <= 1e-6).all()

    def test_vtc_switching_threshold_near_midpoint(self):
        vtc = sweep_dc(
            inverter(), "in", np.linspace(0, 1.1, 45), ["out"],
            v_init={"out": 1.1},
        )
        cross = np.interp(0.55, vtc["out"][::-1], vtc["sweep"][::-1])
        assert cross == pytest.approx(0.55, abs=0.1)

    def test_swept_node_must_be_forced(self):
        with pytest.raises(ValueError, match="not forced"):
            sweep_dc(divider(), "mid", [0.0, 1.0], ["in"])

    def test_unknown_observed_node(self):
        with pytest.raises(KeyError, match="known"):
            sweep_dc(divider(), "in", [1.0], ["nope"])

    def test_sweep_values_recorded(self):
        vtc = sweep_dc(divider(), "in", [0.0, 0.5, 1.0], ["mid"])
        assert vtc["sweep"].tolist() == [0.0, 0.5, 1.0]
        assert np.allclose(vtc["mid"], [0.0, 0.25, 0.5], atol=1e-6)
