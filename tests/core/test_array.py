"""Tests of the TD-AM arrays (device-accurate and vectorized)."""

import numpy as np
import pytest

from repro.core.array import FastTDAMArray, TDAMArray
from repro.core.config import TDAMConfig
from repro.devices.variation import VariationModel

STORED = np.array(
    [
        [0, 1, 2, 3, 0, 1, 2, 3],
        [0, 1, 2, 3, 0, 1, 2, 0],
        [3, 2, 1, 0, 3, 2, 1, 0],
        [0, 0, 0, 0, 0, 0, 0, 0],
    ]
)
QUERY = np.array([0, 1, 2, 3, 0, 1, 2, 3])


@pytest.fixture
def device_array(small_config, rng):
    array = TDAMArray(small_config, n_rows=4, rng=rng)
    array.write_all(STORED)
    return array


@pytest.fixture
def fast_array(small_config):
    array = FastTDAMArray(small_config, n_rows=4)
    array.write_all(STORED)
    return array


class TestTDAMArray:
    def test_distances_decoded_correctly(self, device_array):
        result = device_array.search(QUERY)
        expected = (STORED != QUERY[None, :]).sum(axis=1)
        assert np.array_equal(result.hamming_distances, expected)

    def test_best_row_is_most_similar(self, device_array):
        assert device_array.search(QUERY).best_row == 0

    def test_similarities_complement_distances(self, device_array):
        result = device_array.search(QUERY)
        assert np.array_equal(
            result.similarities, 8 - result.hamming_distances
        )

    def test_latency_is_max_delay(self, device_array):
        result = device_array.search(QUERY)
        assert result.latency_s == result.delays_s.max()

    def test_row_result_diagnostics(self, device_array):
        chain_result = device_array.row_result(1, QUERY)
        assert chain_result.n_mismatch == 1

    def test_row_bounds_checked(self, device_array):
        with pytest.raises(IndexError, match="row"):
            device_array.write(7, QUERY)

    def test_write_all_shape_check(self, small_config, rng):
        array = TDAMArray(small_config, n_rows=2, rng=rng)
        with pytest.raises(ValueError, match="rows"):
            array.write_all(STORED)

    def test_rejects_zero_rows(self, small_config):
        with pytest.raises(ValueError, match="n_rows"):
            TDAMArray(small_config, n_rows=0)


class TestFastTDAMArray:
    def test_distances_match_ideal(self, fast_array):
        result = fast_array.search(QUERY)
        assert np.array_equal(
            result.hamming_distances, fast_array.ideal_hamming(QUERY)
        )

    def test_turn_on_overdrive_below_margin(self, fast_array):
        """The calibrated switch point leaves real comparison margin."""
        assert 0 < fast_array.turn_on_overdrive < fast_array.config.conduction_margin

    def test_search_before_write_raises(self, small_config):
        array = FastTDAMArray(small_config, n_rows=2)
        with pytest.raises(RuntimeError, match="before"):
            array.search(QUERY)

    def test_query_validation(self, fast_array):
        with pytest.raises(ValueError, match="length"):
            fast_array.write(0, [0, 1])

    def test_mismatch_matrix_shape(self, fast_array):
        mism = fast_array.mismatch_matrix(QUERY)
        assert mism.shape == (4, 8)
        assert mism.dtype == bool


class TestAgreement:
    """The two implementations must agree exactly (the fast array exists
    only for scale, not different semantics)."""

    def test_distances_agree(self, device_array, fast_array):
        r_dev = device_array.search(QUERY)
        r_fast = fast_array.search(QUERY)
        assert np.array_equal(r_dev.hamming_distances, r_fast.hamming_distances)

    def test_delays_agree(self, device_array, fast_array):
        r_dev = device_array.search(QUERY)
        r_fast = fast_array.search(QUERY)
        assert np.allclose(r_dev.delays_s, r_fast.delays_s, rtol=1e-9)

    def test_energies_agree(self, device_array, fast_array):
        r_dev = device_array.search(QUERY)
        r_fast = fast_array.search(QUERY)
        assert r_dev.energy_j == pytest.approx(r_fast.energy_j)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_agreement_under_variation(self, small_config, seed):
        """With the *same* drawn offsets, both arrays flip the same
        comparisons."""
        var = VariationModel(sigma_mv=80.0, seed=seed)
        fast = FastTDAMArray(small_config, n_rows=1, variation=var)
        fast.write(0, STORED[0])
        dev = TDAMArray(
            small_config,
            n_rows=1,
            rng=np.random.default_rng(seed),
            variation=None,
        )
        dev.write(0, STORED[0])
        # Copy the fast array's drawn offsets onto the device array.
        for i, stage in enumerate(dev.chains[0].stages):
            stage.set_vth_offsets(fast._off_a[0, i], fast._off_b[0, i])
        r_fast = fast.search(QUERY)
        r_dev = dev.search(QUERY)
        assert np.array_equal(r_fast.hamming_distances, r_dev.hamming_distances)


class TestVariationEffects:
    def test_variation_draws_differ_per_write(self, small_config):
        var = VariationModel(sigma_mv=40.0, seed=3)
        array = FastTDAMArray(small_config, n_rows=1, variation=var)
        array.write(0, STORED[0])
        first = array._off_a[0].copy()
        array.write(0, STORED[0])
        assert not np.array_equal(first, array._off_a[0])

    def test_huge_variation_corrupts_distances(self, small_config):
        var = VariationModel(sigma_mv=300.0, seed=3)
        array = FastTDAMArray(small_config, n_rows=4, variation=var)
        array.write_all(STORED)
        result = array.search(QUERY)
        ideal = array.ideal_hamming(QUERY)
        assert not np.array_equal(result.hamming_distances, ideal)


class TestTopK:
    def test_top_k_ordering(self, fast_array):
        result = fast_array.search(QUERY)
        top = result.top_k(3)
        distances = result.hamming_distances[top]
        assert list(distances) == sorted(distances)
        assert top[0] == result.best_row

    def test_top_k_full_length_is_permutation(self, fast_array):
        result = fast_array.search(QUERY)
        top = result.top_k(4)
        assert sorted(top.tolist()) == [0, 1, 2, 3]

    def test_top_k_bounds(self, fast_array):
        result = fast_array.search(QUERY)
        with pytest.raises(ValueError, match="k must be"):
            result.top_k(0)
        with pytest.raises(ValueError, match="k must be"):
            result.top_k(99)
