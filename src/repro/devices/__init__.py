"""Behavioral device models: multi-domain FeFET, MOSFET, variation.

This subpackage replaces the proprietary substrate of the paper (Cadence
Spectre, the UMC 40 nm PDK, and the experimentally calibrated Preisach
FeFET compact model of Ni et al., VLSI'18) with behavioral equivalents:

- :class:`~repro.devices.preisach.PreisachModel` -- an ensemble of
  elementary hysterons with a distributed coercive-voltage spectrum, giving
  the FeFET its partial-polarization (multi-level) behaviour.
- :class:`~repro.devices.fefet.FeFET` -- a polarization-dependent threshold
  voltage on top of a square-law transistor, with write/erase pulses.
- :class:`~repro.devices.mosfet.MOSFET` -- 40 nm-class behavioral NMOS and
  PMOS models (square-law saturation/triode + subthreshold exponential).
- :mod:`~repro.devices.variation` -- device-to-device V_TH variation with
  the per-state sigmas the paper extracted from measured data
  (7.1 / 35 / 45 / 40 mV for V_TH0..V_TH3).
- :mod:`~repro.devices.write` -- write-pulse schemes programming the four
  V_TH states (erase-then-partial-program, after Reis et al. [36]).
"""

from repro.devices.fefet import FeFET, FeFETParams
from repro.devices.mosfet import MOSFET, MOSFETParams, nmos, pmos
from repro.devices.params import TechnologyParams, UMC40_LIKE
from repro.devices.nonideal import (
    DisturbModel,
    EnduranceModel,
    RetentionModel,
    aged_match_margin,
    compensated_vsl_levels,
    retention_limited_lifetime_s,
)
from repro.devices.preisach import Hysteron, PreisachModel
from repro.devices.temperature import delay_temperature_sensitivity, technology_at
from repro.devices.variation import (
    MEASURED_VTH_SIGMA_MV,
    DeviceEnsemble,
    VariationModel,
)
from repro.devices.write import WritePulse, WriteScheme

__all__ = [
    "FeFET",
    "FeFETParams",
    "MOSFET",
    "MOSFETParams",
    "nmos",
    "pmos",
    "TechnologyParams",
    "UMC40_LIKE",
    "Hysteron",
    "PreisachModel",
    "MEASURED_VTH_SIGMA_MV",
    "DeviceEnsemble",
    "VariationModel",
    "WritePulse",
    "WriteScheme",
    "RetentionModel",
    "EnduranceModel",
    "DisturbModel",
    "aged_match_margin",
    "compensated_vsl_levels",
    "retention_limited_lifetime_s",
    "technology_at",
    "delay_temperature_sensitivity",
]
