"""Tests of the 2-FeFET multi-bit IMC cell (device-level)."""

import numpy as np
import pytest

from repro.core.cell import MultiBitIMCCell
from repro.core.config import TDAMConfig


@pytest.fixture
def cell(rng):
    cell = MultiBitIMCCell(TDAMConfig(bits=2), rng=rng)
    cell.write(1)
    return cell


class TestPaperExample:
    """Fig. 2(d-f): stored '1' against inputs 0, 1, 2."""

    def test_input_below_stored_fb_discharges(self, cell):
        state = cell.compare(0)
        assert state.fb_conducting and not state.fa_conducting
        assert not state.mn_high

    def test_input_equal_mn_stays_high(self, cell):
        state = cell.compare(1)
        assert state.mn_high
        assert state.match
        assert state.discharge_current_a == 0.0

    def test_input_above_stored_fa_discharges(self, cell):
        state = cell.compare(2)
        assert state.fa_conducting and not state.fb_conducting
        assert not state.mn_high
        assert state.discharge_current_a > 0


class TestFullTruthTable:
    @pytest.mark.parametrize("bits", [1, 2])
    def test_device_level_truth_table(self, bits, rng):
        """Every (stored, query) pair resolves correctly at device level."""
        config = TDAMConfig(bits=bits)
        levels = config.levels
        for stored in range(levels):
            cell = MultiBitIMCCell(config, rng=rng)
            cell.write(stored)
            for query in range(levels):
                state = cell.compare(query)
                assert state.match == (stored == query), (
                    f"bits={bits} stored={stored} query={query}"
                )


class TestLifecycle:
    def test_compute_before_write_raises(self, rng):
        cell = MultiBitIMCCell(TDAMConfig(), rng=rng)
        with pytest.raises(RuntimeError, match="before write"):
            cell.compare(0)

    def test_stored_property(self, cell):
        assert cell.stored == 1

    def test_rewrite_changes_behaviour(self, cell):
        assert cell.compare(1).match
        cell.write(3)
        assert not cell.compare(1).match
        assert cell.compare(3).match

    def test_precharge_restores_mn(self, cell):
        cell.compare(0)  # mismatch discharges MN
        assert cell.mn_voltage == 0.0
        cell.precharge()
        assert cell.mn_voltage == cell.config.vdd

    def test_deactivated_state_always_high(self, rng):
        config = TDAMConfig(bits=2)
        for stored in range(4):
            cell = MultiBitIMCCell(config, rng=rng)
            cell.write(stored)
            assert cell.deactivated_state().mn_high


class TestVariationEffects:
    def test_large_negative_shift_flips_match_to_mismatch(self, rng):
        """F_A with V_TH pulled far down conducts on an equal query."""
        config = TDAMConfig(bits=2)
        cell = MultiBitIMCCell(config, rng=rng, vth_offsets=(-0.3, 0.0))
        cell.write(1)
        state = cell.compare(1)
        assert state.fa_conducting
        assert not state.match

    def test_large_positive_shift_masks_mismatch(self, rng):
        """F_A with V_TH pushed far up misses a query-above-stored."""
        config = TDAMConfig(bits=2)
        cell = MultiBitIMCCell(config, rng=rng, vth_offsets=(0.3, 0.0))
        cell.write(1)
        state = cell.compare(2)
        assert not state.fa_conducting
        assert state.match  # the mismatch goes undetected

    def test_small_shift_within_margin_harmless(self, rng):
        config = TDAMConfig(bits=2)
        cell = MultiBitIMCCell(config, rng=rng, vth_offsets=(0.05, -0.05))
        cell.write(1)
        assert cell.compare(1).match
        assert not cell.compare(2).match
        assert not cell.compare(0).match

    def test_set_vth_offsets_updates_devices(self, cell):
        cell.set_vth_offsets(0.02, -0.02)
        assert cell.fa.vth_offset == 0.02
        assert cell.fb.vth_offset == -0.02
