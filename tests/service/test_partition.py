"""Partitioned scatter/gather: global ranking, honest partial coverage."""

import numpy as np
import pytest

from repro.resilience.resilient import ResilientTDAMArray
from repro.service import (
    AllShardsUnavailableError,
    InvalidRequestError,
    PartitionedTDAMService,
    ShardTimeoutError,
    TDAMSearchService,
)

from tests.service.conftest import make_service


def _partition(config, clock, n_rows, n_shards=2):
    shards = [
        ResilientTDAMArray(config, n_rows=n_rows, n_spares=2)
        for _ in range(n_shards)
    ]
    return TDAMSearchService(
        shards, clock=clock.now, sleep=clock.sleep, default_deadline_s=1.0
    )


@pytest.fixture
def corpus(config):
    return np.random.default_rng(21).integers(
        0, config.levels, size=(16, config.n_stages)
    )


@pytest.fixture
def partitioned(config, clock, corpus):
    service = PartitionedTDAMService(
        [
            _partition(config, clock, 6),
            _partition(config, clock, 5),
            _partition(config, clock, 5),
        ],
        clock=clock.now,
    )
    service.write_all(corpus)
    return service


@pytest.fixture
def monolithic(config, clock, corpus):
    return make_service(config, corpus, clock, n_shards=1)


@pytest.fixture
def queries(config):
    return np.random.default_rng(22).integers(
        0, config.levels, size=(6, config.n_stages)
    )


class TestHealthyGather:
    def test_search_matches_monolithic(
        self, partitioned, monolithic, queries
    ):
        part = partitioned.search_batch(queries)
        mono = monolithic.search_batch(queries)
        for p, m in zip(part, mono):
            assert p.best_row == m.best_row
            assert p.outcome == "ok"
            assert not p.degraded
            assert p.coverage == 1.0
            assert p.partitions_skipped == ()

    def test_top_k_matches_monolithic(
        self, partitioned, monolithic, queries
    ):
        for k in (1, 4, 9):
            part = partitioned.top_k(queries, k)
            mono = monolithic.top_k(queries, k)
            assert np.array_equal(part.rows, mono.rows)
            assert not part.degraded

    def test_single_query_search(self, partitioned, monolithic, queries):
        p = partitioned.search(queries[0])
        m = monolithic.search(queries[0])
        assert p.best_row == m.best_row
        assert p.best_distance == float(
            m.result.hamming_distances[m.best_row]
        )

    def test_row_ranges(self, partitioned):
        assert partitioned.n_rows == 16
        assert partitioned.partition_of(0) == "part0"
        assert partitioned.partition_of(5) == "part0"
        assert partitioned.partition_of(6) == "part1"
        assert partitioned.partition_of(15) == "part2"
        with pytest.raises(InvalidRequestError):
            partitioned.partition_of(16)


class TestDegradedGather:
    def _kill(self, partitioned, index):
        def boom(shard_id, qs):
            raise ShardTimeoutError(f"{shard_id} down")

        partitioned.partitions[index].service.add_interceptor(boom)

    def test_skipped_partition_reported_not_invented(
        self, partitioned, queries
    ):
        self._kill(partitioned, 1)
        response = partitioned.top_k(queries, 8)
        assert response.degraded
        assert response.outcome == "degraded"
        assert response.coverage == pytest.approx(11 / 16)
        assert response.partitions_skipped == ("part1",)
        # part1's global rows (6..10) must never appear in the answer.
        assert not np.isin(response.rows, np.arange(6, 11)).any()

    def test_unreachable_tail_is_padded(self, partitioned, queries):
        self._kill(partitioned, 0)
        self._kill(partitioned, 1)
        response = partitioned.top_k(queries, 12)
        # Only part2's 5 rows are reachable: 7 pad slots per query.
        assert (response.rows == -1).sum(axis=1).tolist() == [7] * 6
        assert response.coverage == pytest.approx(5 / 16)

    def test_search_degrades_with_skips(self, partitioned, queries):
        self._kill(partitioned, 2)
        responses = partitioned.search_batch(queries)
        assert all(r.degraded for r in responses)
        assert all(r.best_row < 11 for r in responses)

    def test_all_partitions_down_raises(self, partitioned, queries):
        for i in range(3):
            self._kill(partitioned, i)
        with pytest.raises(AllShardsUnavailableError):
            partitioned.search_batch(queries)

    def test_deadline_spent_skips_remaining_partitions(
        self, partitioned, clock, queries
    ):
        # part0 answers but eats nearly the whole budget, part1's
        # attempt blows the rest: part2 must then be skipped without
        # ever being touched, and the response must say so.
        def slow(advance_s):
            def interceptor(shard_id, qs):
                clock.advance(advance_s)

            return interceptor

        attempted = []
        partitioned.partitions[0].service.add_interceptor(slow(0.39))
        partitioned.partitions[1].service.add_interceptor(slow(0.05))
        partitioned.partitions[2].service.add_interceptor(
            lambda shard_id, qs: attempted.append(shard_id)
        )
        response = partitioned.top_k(queries, 4, deadline_s=0.4)
        assert response.partitions_searched == ("part0",)
        assert set(response.partitions_skipped) == {"part1", "part2"}
        assert response.degraded
        assert attempted == []


class TestContentAndValidation:
    def test_write_all_slices_rows(self, partitioned, corpus, config):
        # Row 7 lives in part1 at local offset 1.
        inner = partitioned.partitions[1].service
        got = inner.shards[0].array._shadow
        assert np.array_equal(got, corpus[6:11])

    def test_write_all_wrong_rows_rejected(self, partitioned, config):
        with pytest.raises(InvalidRequestError, match="rows"):
            partitioned.write_all(
                np.zeros((5, config.n_stages), dtype=int)
            )

    def test_geometry_mismatch_rejected(self, config, clock):
        from repro.core.config import TDAMConfig

        other = TDAMConfig(n_stages=8)
        with pytest.raises(ValueError, match="geometry"):
            PartitionedTDAMService(
                [
                    _partition(config, clock, 4),
                    _partition(other, clock, 4),
                ]
            )

    def test_k_validation(self, partitioned, queries):
        with pytest.raises(InvalidRequestError, match="k must be"):
            partitioned.top_k(queries, 17)

    def test_validate_query_delegates(self, partitioned):
        with pytest.raises(InvalidRequestError):
            partitioned.validate_query(np.zeros((2, 2)))
