"""The blocking remote client: pooled sockets, budgeted safe retries.

:class:`RemoteFrontend` is the wire-side mirror of the in-process
:class:`~repro.service.frontend.CoalescingFrontend` surface --
``search(query)`` / ``top_k(query, k)`` with the same typed failure
taxonomy -- over any number of pooled TCP connections.  The client
carries the robustness obligations a hostile network adds:

- **typed transport failures** -- refused/reset/truncated/corrupted
  connections surface as :class:`~repro.net.wire.WireProtocolError`
  subclasses, which are also ``ServiceError``\\ s, so one ``except``
  clause covers the whole stack;
- **safe retries only** -- a retry is attempted only for transport
  failures on requests that never produced a response: search/top-k
  are idempotent reads, so re-sending can change *when* an answer
  arrives, never *what* it is.  Typed server errors are NEVER retried
  here: an :class:`~repro.service.errors.OverloadError` means the
  server explicitly shed load, and a client that retries sheds into a
  retry storm (the caller owns that decision, guided by
  ``retry_after_s``);
- **budgeted, decorrelated backoff** -- reconnect/retry waits reuse
  :mod:`repro.service.retry`'s decorrelated-jitter schedule under a
  Finagle-style :class:`~repro.service.retry.RetryBudget`, so a dead
  server is probed politely instead of hammered in lockstep;
- **deadline awareness** -- every attempt sends the *remaining*
  budget, time spent on failed attempts and backoffs included; when
  the budget is gone the client raises
  :class:`~repro.service.errors.DeadlineExceededError` itself rather
  than sending a request that could only waste server time.

A failed connection is torn down, never returned to the pool: after a
wire error the framing state is unknowable, and reusing the socket
could pair a stale response with the wrong request.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.net.faults import WireFaultPlan, FaultyStream
from repro.net.wire import (
    ConnectionLostError,
    FrameDecoder,
    FrameTimeoutError,
    HandshakeError,
    PROTOCOL_VERSION,
    WireProtocolError,
    bye_message,
    decode_error,
    decode_response,
    encode_frame,
    hello_message,
    note_frame,
    note_wire_error,
    request_message,
)
from repro.service.errors import (
    DeadlineExceededError,
    InvalidRequestError,
    RetryBudgetExhaustedError,
    ServiceError,
)
from repro.service.retry import RetryBudget, RetryPolicy
from repro.telemetry import metrics as _metrics
from repro.telemetry.log import get_logger
from repro.telemetry.request import current_request
from repro.telemetry.state import STATE as _TM

__all__ = ["RemoteFrontend", "ServerInfo"]

_log = get_logger(__name__)

_REG = _metrics.get_registry()
_CLIENT_REQUESTS = _REG.counter(
    "net_client_requests_total",
    "Remote client requests, by outcome (ok/error/retried)",
    labels=("outcome",),
)
_RECONNECTS = _REG.counter(
    "net_client_reconnects_total",
    "Connections (re)established by the remote client",
)

_READ_CHUNK = 1 << 16


class ServerInfo:
    """What the server said about itself at handshake."""

    def __init__(self, payload: Dict[str, object]) -> None:
        self.server = str(payload.get("server", ""))
        self.n_rows = int(payload.get("n_rows", 0))
        self.n_stages = int(payload.get("n_stages", 0))
        self.levels = int(payload.get("levels", 0))
        self.default_deadline_s = float(
            payload.get("default_deadline_s", 0.05)
        )
        self.features = tuple(
            str(f) for f in payload.get("features", [])
        )


class _PooledConnection:
    """One handshaken socket plus its decoder."""

    def __init__(self, stream, info: ServerInfo) -> None:
        self.stream = stream
        self.decoder = FrameDecoder()
        self.info = info
        self.next_req_id = 1

    def close(self) -> None:
        try:
            self.stream.sendall(
                encode_frame(bye_message())
            )
        except Exception:
            pass
        try:
            self.stream.close()
        except Exception:
            pass


class RemoteFrontend:
    """Pooled, retrying, deadline-aware client for one socket server.

    Args:
        host / port: The server endpoint.
        pool_size: Max idle connections kept for reuse.
        connect_timeout_s: Per-``connect()`` timeout.
        retry_policy: Backoff shape for transport-level retries
            (``max_attempts`` caps attempts per request).
        retry_budget: Shared token bucket damping retry volume; when it
            runs dry a transport failure surfaces as
            :class:`~repro.service.errors.RetryBudgetExhaustedError`
            instead of another attempt.
        default_deadline_s: Budget when the caller gives none (the
            server's advertised default once a handshake succeeded).
        fault_plan_factory: Optional ``() -> WireFaultPlan``; each new
            connection's socket is wrapped in a
            :class:`~repro.net.faults.FaultyStream` with a fresh plan
            (the chaos suite's hook -- production passes nothing).
        clock / sleep: Injected time sources (tests pin them).
    """

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 4,
        connect_timeout_s: float = 5.0,
        retry_policy: Optional[RetryPolicy] = None,
        retry_budget: Optional[RetryBudget] = None,
        default_deadline_s: Optional[float] = None,
        fault_plan_factory: Optional[
            Callable[[], WireFaultPlan]
        ] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.connect_timeout_s = connect_timeout_s
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_attempts=3,
                backoff_base_s=0.005,
                backoff_cap_s=0.200,
            )
        )
        self.retry_budget = (
            retry_budget if retry_budget is not None else RetryBudget()
        )
        self._default_deadline_s = default_deadline_s
        self._fault_plan_factory = fault_plan_factory
        self._clock = clock
        self._sleep = sleep
        self._jitter_rng = np.random.default_rng(
            self.retry_policy.jitter_seed
        )
        self._pool: List[_PooledConnection] = []
        self._pool_lock = threading.Lock()
        self._server_info: Optional[ServerInfo] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def server_info(self) -> Optional[ServerInfo]:
        """Handshake facts from the most recent connection (if any)."""
        return self._server_info

    @property
    def default_deadline_s(self) -> float:
        if self._default_deadline_s is not None:
            return self._default_deadline_s
        if self._server_info is not None:
            return self._server_info.default_deadline_s
        return 0.05

    def connect(self) -> ServerInfo:
        """Eagerly establish (and pool) one connection; returns the
        server's handshake info.  Optional -- the first request
        connects lazily."""
        conn = self._checkout()
        self._checkin(conn)
        return conn.info

    def search(
        self,
        query: Sequence[int],
        tenant: str = "default",
        deadline_s: Optional[float] = None,
    ):
        """One remote search; blocks for the answer or a typed error."""
        return self._call("search", query, tenant, deadline_s, k=0)

    def top_k(
        self,
        query: Sequence[int],
        k: int,
        tenant: str = "default",
        deadline_s: Optional[float] = None,
    ):
        """One remote top-k; blocks for the answer or a typed error."""
        if k < 1:
            raise InvalidRequestError(f"k must be >= 1, got {k}")
        return self._call("topk", query, tenant, deadline_s, k=k)

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        self._closed = True
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()

    def __enter__(self) -> "RemoteFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _call(
        self,
        kind: str,
        query,
        tenant: str,
        deadline_s: Optional[float],
        k: int,
    ):
        if self._closed:
            raise ConnectionLostError("client is closed")
        budget_s = (
            deadline_s if deadline_s is not None else self.default_deadline_s
        )
        if budget_s <= 0:
            raise InvalidRequestError(
                f"deadline_s must be > 0, got {budget_s}"
            )
        deadline_at = self._clock() + budget_s
        self.retry_budget.deposit()
        schedule = self.retry_policy.schedule(self._jitter_rng)
        attempts = 0
        last_exc: Optional[BaseException] = None
        while True:
            remaining = deadline_at - self._clock()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"client budget exhausted after {attempts} "
                    f"attempt(s)"
                ) from last_exc
            attempts += 1
            try:
                result = self._attempt(
                    kind, query, tenant, remaining, k
                )
                if _TM.enabled:
                    _CLIENT_REQUESTS.inc(outcome="ok")
                return result
            except (WireProtocolError, OSError) as exc:
                # Only failures *before a response* reach here -- safe
                # to retry an idempotent read.  Typed server errors
                # propagate from _attempt without touching this path.
                last_exc = exc
                note_wire_error(exc)
                if attempts >= self.retry_policy.max_attempts:
                    if _TM.enabled:
                        _CLIENT_REQUESTS.inc(outcome="error")
                    raise self._as_wire_error(exc, attempts)
                if not self.retry_budget.try_withdraw():
                    if _TM.enabled:
                        _CLIENT_REQUESTS.inc(outcome="error")
                    raise RetryBudgetExhaustedError(
                        "client retry budget empty"
                    ) from exc
                if _TM.enabled:
                    _CLIENT_REQUESTS.inc(outcome="retried")
                backoff = min(
                    schedule.next_backoff_s(),
                    max(0.0, deadline_at - self._clock()),
                )
                if backoff > 0:
                    self._sleep(backoff)

    @staticmethod
    def _as_wire_error(
        exc: BaseException, attempts: int
    ) -> WireProtocolError:
        if isinstance(exc, WireProtocolError):
            return exc
        return ConnectionLostError(
            f"transport failed after {attempts} attempt(s): {exc!r}"
        )

    def _attempt(
        self, kind: str, query, tenant: str, budget_s: float, k: int
    ):
        """One request over one connection; raises on any failure."""
        conn = self._checkout()
        try:
            req_id = conn.next_req_id
            conn.next_req_id += 1
            ctx = current_request()
            frame = encode_frame(request_message(
                req_id,
                kind,
                query,
                budget_s=budget_s,
                tenant=tenant,
                k=k,
                request_id=(
                    ctx.request_id if ctx is not None else None
                ),
            ))
            conn.stream.sendall(frame)
            note_frame("out", "request", len(frame))
            message = self._read_message(conn, budget_s + 5.0)
            result = self._interpret(conn, message, req_id, kind)
        except BaseException:
            # Whatever went wrong, the connection's framing state is
            # suspect; never pool it again.
            conn.close()
            raise
        self._checkin(conn)
        return result

    def _interpret(self, conn, message, req_id: int, kind: str):
        mtype = message.get("type")
        if mtype == "goaway":
            # The server is draining; treat like a connection loss so
            # the retry path reconnects (a restarted or sibling server
            # will answer).
            raise ConnectionLostError(
                f"server sent goaway ({message.get('reason')!r})"
            )
        if mtype == "error":
            exc = decode_error(message)
            if message.get("id") is None or not isinstance(
                exc, ServiceError
            ) or isinstance(exc, WireProtocolError):
                # Connection-level or transport-typed: retryable path.
                raise self._as_wire_error(exc, 1)
            # A typed server answer for *this* request: never retried.
            raise exc
        if mtype != "response" or message.get("id") != req_id:
            raise ConnectionLostError(
                f"unexpected frame (type={mtype!r}, "
                f"id={message.get('id')!r}) for request {req_id}"
            )
        if message.get("kind") != kind:
            raise ConnectionLostError(
                f"response kind {message.get('kind')!r} does not match "
                f"request kind {kind!r}"
            )
        return decode_response(kind, message.get("payload", {}))

    def _read_message(self, conn, timeout_s: float):
        """Block for the next complete frame on one connection."""
        deadline = self._clock() + timeout_s
        while True:
            remaining = deadline - self._clock()
            if remaining <= 0:
                raise FrameTimeoutError(
                    f"no complete frame within {timeout_s}s"
                )
            conn.stream.settimeout(remaining)
            try:
                chunk = conn.stream.recv(_READ_CHUNK)
            except socket.timeout:
                raise FrameTimeoutError(
                    f"no complete frame within {timeout_s}s"
                ) from None
            except OSError as exc:
                raise ConnectionLostError(
                    f"recv failed: {exc!r}"
                ) from exc
            if not chunk:
                conn.decoder.eof()
                raise ConnectionLostError(
                    "server closed the connection"
                )
            messages = conn.decoder.feed(chunk)
            if messages:
                for extra in messages[1:]:
                    # A response pipeline deeper than one is a protocol
                    # violation for this client (one request in flight
                    # per connection); drop the connection.
                    if extra.get("type") != "goaway":
                        raise ConnectionLostError(
                            "unexpected pipelined frame"
                        )
                note_frame(
                    "in", str(messages[0].get("type")), len(chunk)
                )
                return messages[0]

    # ------------------------------------------------------------------
    # Connection pool
    # ------------------------------------------------------------------
    def _checkout(self) -> _PooledConnection:
        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        return self._connect()

    def _checkin(self, conn: _PooledConnection) -> None:
        if conn.decoder.pending_bytes:
            # Leftover bytes would desynchronize the next request.
            conn.close()
            return
        with self._pool_lock:
            if not self._closed and len(self._pool) < self.pool_size:
                self._pool.append(conn)
                return
        conn.close()

    def _connect(self) -> _PooledConnection:
        try:
            raw = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s
            )
        except OSError as exc:
            raise ConnectionLostError(
                f"connect to {self.host}:{self.port} failed: {exc!r}"
            ) from exc
        raw.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        stream = raw
        if self._fault_plan_factory is not None:
            stream = FaultyStream(raw, self._fault_plan_factory())
        conn = _PooledConnection(stream, ServerInfo({}))
        if _TM.enabled:
            _RECONNECTS.inc()
        try:
            hello = encode_frame(hello_message())
            stream.sendall(hello)
            note_frame("out", "hello", len(hello))
            reply = self._read_message(
                conn, self.connect_timeout_s
            )
            if reply.get("type") == "error":
                raise decode_error(reply)
            if reply.get("type") != "hello_ok":
                raise HandshakeError(
                    f"expected hello_ok, got {reply.get('type')!r}"
                )
            if reply.get("version") != PROTOCOL_VERSION:
                raise HandshakeError(
                    f"server speaks version "
                    f"{reply.get('version')!r}, client speaks "
                    f"{PROTOCOL_VERSION}"
                )
        except BaseException:
            try:
                stream.close()
            except Exception:
                pass
            raise
        conn.info = ServerInfo(reply)
        self._server_info = conn.info
        return conn
