"""Cluster-routed approximate top-k over a memmapped bit-plane store.

The scale-out shape of Kazemi et al. (arXiv 2011.07095): a coarse
quantizer routes each query to its ``nprobe`` nearest clusters, and the
exact prefix-count -> prune -> refine cascade of
:meth:`FastTDAMArray.top_k_batch` then runs *inside only those shards*,
directly on the store's memmapped plane slices.  Survivors get exact
Hamming re-ranking under the shared (distance, delay, row) ordering and
a :func:`grouped_top_k` gather merges the shards.

Exactness ladder:

- **Within probed shards the cascade is exact** -- the same prefix
  lower-bound, the same refinement popcounts, the same delay-law
  floats, the same TDC decode as the in-RAM array.
- **With ``nprobe = n_clusters`` the result is bit-identical to
  exhaustive ``top_k_batch``**: every global top-k row survives its own
  shard's local pruning (it is within that shard's top-k a fortiori),
  and identical per-pair keys make the global merge order identical.
- **With ``nprobe < n_clusters`` recall is tunable**: only rows in
  unprobed clusters can be missed, so recall@k vs. queries/s is set by
  the corpus's cluster structure and ``nprobe`` (measured by the
  ``ann`` bench in ``tools/bench_report.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.array import resolve_query_chunk
from repro.core.bitplane import (
    pack_level_planes,
    pack_query_masks,
    packed_mismatch_counts,
    packed_pair_counts,
)
from repro.core.config import TDAMConfig
from repro.core.encoding import validate_levels
from repro.core.energy import TimingEnergyModel
from repro.core.sensing import CounterTDC
from repro.core.topk import grouped_top_k, prune_survivors, top_k_indices
from repro.hdc.cluster import HDCluster
from repro.index.store import (
    BitPlaneStore,
    BitPlaneStoreError,
    PathLike,
    build_store,
)
from repro.telemetry import metrics as _metrics
from repro.telemetry.profile import emit_probe as _emit_probe
from repro.telemetry.state import STATE as _TM

__all__ = [
    "ClusteredTDAMIndex",
    "IndexTopKResult",
    "DEFAULT_NPROBE",
]

#: Default clusters probed per query (a ~C/nprobe scan reduction).
DEFAULT_NPROBE = 8

_REG = _metrics.get_registry()
_SEARCHES = _REG.counter(
    "index_searches_total", "Clustered-index top-k calls served"
)
_QUERIES = _REG.counter(
    "index_queries_total", "Queries served by the clustered index"
)
_ROWS_PROBED = _REG.counter(
    "index_rows_probed_total",
    "Rows scanned by the prefix counter across all probes",
)
_PROBE_FRACTION = _REG.histogram(
    "index_probe_fraction",
    "Fraction of the corpus scanned per top-k call (rows probed / "
    "rows total / queries)",
)


@dataclass(frozen=True)
class IndexTopKResult:
    """Outcome of one routed top-k batch.

    Attributes:
        rows: Global row ids, shape (Q, k), best first; ``-1`` pads
            queries whose probed shards held fewer than ``k`` rows.
        distances: Decoded Hamming distances of ``rows`` (``-1`` on
            pads).
        delays_s: Modeled chain delays of ``rows`` (``inf`` on pads).
        clusters: Probed cluster ids per query, shape (Q, nprobe).
        nprobe: Clusters probed per query.
        rows_probed: Rows prefix-scanned across the whole batch
            (query-weighted: a shard probed by two queries counts its
            rows twice).
        rows_total: Corpus size, for probe-fraction accounting.
    """

    rows: np.ndarray
    distances: np.ndarray
    delays_s: np.ndarray
    clusters: np.ndarray
    nprobe: int
    rows_probed: int
    rows_total: int

    @property
    def probe_fraction(self) -> float:
        """Scanned fraction of (rows x queries) -- the work saved."""
        denom = self.rows_total * max(1, self.rows.shape[0])
        return self.rows_probed / denom if denom else 0.0


class ClusteredTDAMIndex:
    """Coarse-quantized ANN search over a :class:`BitPlaneStore`.

    Args:
        store: A published store built *with* centroids (see
            :meth:`build`); opening is cheap -- shards map lazily as
            probes touch them.
        nprobe: Default clusters probed per query (overridable per
            call), clamped to ``[1, n_clusters]``.
    """

    def __init__(self, store: BitPlaneStore, nprobe: int = DEFAULT_NPROBE):
        cents = store.centroid_levels
        if cents is None:
            raise BitPlaneStoreError(
                "store has no centroid component; build it through "
                "ClusteredTDAMIndex.build (or pass centroid_levels to "
                "build_store) to enable routing"
            )
        self.store = store
        self.config: TDAMConfig = store.config
        timing = TimingEnergyModel(self.config)
        self.tdc = CounterTDC(self.config, timing)
        self._base_delay = 2 * self.config.n_stages * timing.d_inv
        self._d_c = timing.d_c
        ladder = np.arange(self.config.levels, dtype=np.int64)[:, None, None]
        self._centroid_planes = pack_level_planes(
            ladder != cents[None, :, :]
        )
        self.n_clusters = cents.shape[0]
        # Cluster id -> shard position (-1: empty cluster, no shard).
        self._shard_of = np.full(self.n_clusters, -1, dtype=np.int64)
        clusters = store.shard_clusters
        if clusters.size and clusters.max() >= self.n_clusters:
            raise BitPlaneStoreError(
                f"store names cluster {int(clusters.max())} but only "
                f"{self.n_clusters} centroids are published"
            )
        self._shard_of[clusters] = np.arange(
            clusters.shape[0], dtype=np.int64
        )
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        self.nprobe = min(nprobe, self.n_clusters)

    @property
    def n_rows(self) -> int:
        """Corpus rows served by this index."""
        return self.store.n_rows

    @classmethod
    def build(
        cls,
        path: PathLike,
        levels_mat: Sequence[Sequence[int]],
        config: TDAMConfig,
        n_clusters: int,
        nprobe: int = DEFAULT_NPROBE,
        seed: int = 0,
        sample_size: int = 16384,
        n_init: int = 2,
        max_iterations: int = 20,
    ) -> "ClusteredTDAMIndex":
        """Cluster a corpus, pack it, publish the store, open the index.

        The coarse quantizer is :class:`HDCluster` fit on a random
        sample; its float centroids are quantized to level vectors
        (member means, rounded and clipped), and the *full* corpus is
        then assigned to its Hamming-nearest quantized centroid with
        :func:`packed_mismatch_counts` -- the same metric the router
        uses at query time, so shard membership and routing share one
        Voronoi geometry.

        Args:
            path: Store directory.
            levels_mat: Stored levels, shape (M, N).
            config: Design point.
            n_clusters: Coarse clusters (>= 2, <= M).
            nprobe: Default clusters probed per query.
            seed: Sampling + clustering seed.
            sample_size: Rows sampled for the quantizer fit.
            n_init: Clustering restarts (small: the quantizer only
                needs to be roughly right, routing recall is tunable).
            max_iterations: Lloyd iteration cap per restart.
        """
        levels_arr = validate_levels(
            levels_mat, config.levels, ndim=2, name="levels matrix"
        )
        n_rows = levels_arr.shape[0]
        if not 2 <= n_clusters <= n_rows:
            raise ValueError(
                f"n_clusters must be in [2, {n_rows}], got {n_clusters}"
            )
        rng = np.random.default_rng(seed)
        take = min(sample_size, n_rows)
        sample_idx = np.sort(rng.choice(n_rows, size=take, replace=False))
        sample = levels_arr[sample_idx].astype(np.float64)
        result = HDCluster(
            k=n_clusters,
            max_iterations=max_iterations,
            seed=seed,
            n_init=n_init,
        ).fit(sample)
        cents = np.empty(
            (n_clusters, config.n_stages), dtype=np.float64
        )
        for c in range(n_clusters):
            members = sample[result.assignments == c]
            cents[c] = (
                members.mean(axis=0) if len(members) else result.centroids[c]
            )
        cent_levels = np.clip(
            np.rint(cents), 0, config.levels - 1
        ).astype(np.uint8)
        cent_planes = pack_level_planes(
            np.arange(config.levels, dtype=np.int64)[:, None, None]
            != cent_levels[None, :, :]
        )
        assignments = np.empty(n_rows, dtype=np.int64)
        chunk = 65536
        for start in range(0, n_rows, chunk):
            block = levels_arr[start:start + chunk]
            masks = pack_query_masks(block, config.levels)
            counts = packed_mismatch_counts(cent_planes, masks)
            assignments[start:start + chunk] = counts.argmin(axis=1)
        store = build_store(
            path,
            levels_arr,
            config,
            assignments=assignments,
            centroid_levels=cent_levels,
        )
        return cls(store, nprobe=nprobe)

    def _validate_queries(self, queries: np.ndarray) -> np.ndarray:
        q = validate_levels(
            queries, self.config.levels, ndim=2, name="query matrix"
        )
        if q.shape[1] != self.config.n_stages:
            raise ValueError(
                f"queries have {q.shape[1]} stages, the index serves "
                f"{self.config.n_stages}"
            )
        return q

    def route(
        self, queries: np.ndarray, nprobe: Optional[int] = None
    ) -> np.ndarray:
        """Per-query nearest cluster ids, shape (Q, nprobe).

        Hamming distance of each query against the quantized centroid
        planes, ranked by the shared (distance, id) rule -- ties go to
        the lower cluster id, deterministically.
        """
        q = self._validate_queries(np.asarray(queries))
        masks = pack_query_masks(q, self.config.levels)
        return self._route_masks(masks, self._resolve_nprobe(nprobe))

    def _resolve_nprobe(self, nprobe: Optional[int]) -> int:
        if nprobe is None:
            return self.nprobe
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        return min(int(nprobe), self.n_clusters)

    def _route_masks(self, masks: np.ndarray, nprobe: int) -> np.ndarray:
        counts = packed_mismatch_counts(self._centroid_planes, masks)
        clusters = top_k_indices(counts, nprobe)
        if _TM.enabled:
            _emit_probe(
                "index.route",
                queries=int(masks.shape[0]),
                nprobe=int(nprobe),
                clusters=int(np.unique(clusters).shape[0]),
            )
        return clusters

    def top_k(
        self,
        queries: Union[np.ndarray, Sequence[Sequence[int]]],
        k: int,
        nprobe: Optional[int] = None,
    ) -> IndexTopKResult:
        """Routed approximate top-k (exact inside the probed shards).

        Args:
            queries: Query levels, shape (Q, n_stages).
            k: Rows per query, ``1 <= k <= n_rows``.
            nprobe: Clusters probed per query (default: the index's).

        Returns:
            :class:`IndexTopKResult`; ``rows[i, j] = -1`` pads queries
            whose probed shards held fewer than ``k`` rows.
        """
        q = self._validate_queries(np.asarray(queries))
        if not 1 <= k <= self.n_rows:
            raise ValueError(f"k must be in [1, {self.n_rows}], got {k}")
        nprobe = self._resolve_nprobe(nprobe)
        n_q = q.shape[0]
        masks = pack_query_masks(q, self.config.levels)
        clusters = self._route_masks(masks, nprobe)
        # Invert routing into shard -> queries (a query probes a shard
        # at most once: routed clusters are distinct).
        flat_q = np.repeat(np.arange(n_q, dtype=np.int64), nprobe)
        flat_s = self._shard_of[clusters.ravel()]
        keep = flat_s >= 0
        flat_q, flat_s = flat_q[keep], flat_s[keep]
        order = np.argsort(flat_s, kind="stable")
        flat_q, flat_s = flat_q[order], flat_s[order]
        bounds = np.searchsorted(
            flat_s, np.arange(self.store.n_shards + 1)
        )
        cand_q: list = []
        cand_r: list = []
        cand_t: list = []
        rows_probed = 0
        n = self.config.n_stages
        b_pad = self.store.byte_width
        # Same prefix rule as FastTDAMArray._top_k_pruned: the first
        # half of the padded words; one-word planes are covered whole.
        pb = 8 * max(1, (b_pad // 8) // 2)
        rem = max(0, n - pb * 8)
        for s in range(self.store.n_shards):
            qs = flat_q[bounds[s]:bounds[s + 1]]
            if qs.shape[0] == 0:
                continue
            shard = self.store.shard(s)
            planes = shard.planes
            ms = shard.n_rows
            rows_probed += ms * qs.shape[0]
            kk = min(k, ms)
            chunk = resolve_query_chunk(
                ms, n, working_set_bytes=int(planes.nbytes)
            )
            for start in range(0, qs.shape[0], chunk):
                block = qs[start:start + chunk]
                bmasks = masks[block]
                prefix = packed_mismatch_counts(
                    planes[:, :, :pb], bmasks[:, :, :pb]
                )
                q_idx, r_idx = prune_survivors(prefix, kk, rem)
                totals = prefix[q_idx, r_idx]
                if rem:
                    totals = totals + packed_pair_counts(
                        planes[:, :, pb:], bmasks[:, :, pb:], q_idx, r_idx
                    )
                cand_q.append(block[q_idx])
                cand_r.append(np.asarray(shard.row_ids)[r_idx])
                cand_t.append(totals)
        q_all = np.concatenate(cand_q) if cand_q else np.empty(0, np.int64)
        r_all = np.concatenate(cand_r) if cand_r else np.empty(0, np.int64)
        t_all = np.concatenate(cand_t) if cand_t else np.empty(0, np.int64)
        # Exact re-ranking keys: the same delay-law floats and TDC
        # decode as the exhaustive path, so the merged order is the
        # array's order.
        delays = self._base_delay + t_all * self._d_c
        distances = self.tdc.decode_array(delays)
        rows = grouped_top_k(
            q_all, r_all, distances, k, n_q, secondary=delays, pad=-1
        )
        dist_out, delay_out = self._gather_keys(
            q_all, r_all, distances, delays, rows
        )
        result = IndexTopKResult(
            rows=rows,
            distances=dist_out,
            delays_s=delay_out,
            clusters=clusters,
            nprobe=nprobe,
            rows_probed=rows_probed,
            rows_total=self.n_rows,
        )
        _SEARCHES.inc()
        _QUERIES.inc(n_q)
        _ROWS_PROBED.inc(rows_probed)
        _PROBE_FRACTION.observe(result.probe_fraction)
        if _TM.enabled:
            _emit_probe(
                "index.probe",
                queries=int(n_q),
                k=int(k),
                nprobe=int(nprobe),
                rows_probed=int(rows_probed),
                rows_total=int(self.n_rows),
                candidates=int(q_all.shape[0]),
            )
        return result

    def _gather_keys(
        self,
        q_all: np.ndarray,
        r_all: np.ndarray,
        distances: np.ndarray,
        delays: np.ndarray,
        rows: np.ndarray,
    ) -> tuple:
        """Distances/delays of the selected rows, via a sorted lookup.

        ``(query, row)`` candidate pairs are unique -- a row lives in
        exactly one shard and a query probes each shard at most once --
        so a lexicographic searchsorted recovers each selection's keys.
        """
        n_q, k = rows.shape
        dist_out = np.full((n_q, k), -1, dtype=np.int64)
        delay_out = np.full((n_q, k), np.inf, dtype=np.float64)
        if q_all.shape[0] == 0:
            return dist_out, delay_out
        stride = self.n_rows + 1
        key_all = q_all * stride + r_all
        sorter = np.argsort(key_all)
        sorted_keys = key_all[sorter]
        valid = rows >= 0
        q_grid = np.broadcast_to(
            np.arange(n_q, dtype=np.int64)[:, None], rows.shape
        )
        wanted = q_grid[valid] * stride + rows[valid]
        pos = sorter[np.searchsorted(sorted_keys, wanted)]
        dist_out[valid] = distances[pos]
        delay_out[valid] = delays[pos]
        return dist_out, delay_out

    def __repr__(self) -> str:
        return (
            f"ClusteredTDAMIndex({self.n_rows} rows, "
            f"{self.n_clusters} clusters, nprobe={self.nprobe})"
        )
