"""Hammer tests: the service's shared state under real thread races.

These tests exist to catch *lost updates*, not logic bugs: every
assertion is an exact count that only holds if the lock actually
serializes the critical section.  A barrier lines the threads up so
they hit the shared state together rather than trickling through.
"""

import threading

import numpy as np
import pytest

from repro.service import (
    BreakerState,
    CircuitBreaker,
    RetryBudget,
)

from tests.service.conftest import make_service

N_THREADS = 8


def _hammer(n_threads, worker):
    barrier = threading.Barrier(n_threads)

    def run(i):
        barrier.wait()
        worker(i)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestBreakerUnderRace:
    def test_single_half_open_probe_slot(self, clock):
        # After the cool-down, N racing allow() calls must admit
        # exactly `half_open_probes` trials -- a double-admitted probe
        # would let two requests hit a possibly-broken shard.
        breaker = CircuitBreaker(
            "s0", reset_timeout_s=0.5, half_open_probes=1, clock=clock.now
        )
        breaker.force_open("test")
        clock.advance(1.0)
        admitted = []

        _hammer(N_THREADS, lambda i: admitted.append(breaker.allow()))

        assert sum(admitted) == 1
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_slots_scale_with_config(self, clock):
        breaker = CircuitBreaker(
            "s0", reset_timeout_s=0.5, half_open_probes=3, clock=clock.now
        )
        breaker.force_open("test")
        clock.advance(1.0)
        admitted = []

        def worker(i):
            for _ in range(4):
                admitted.append(breaker.allow())

        _hammer(N_THREADS, worker)
        assert sum(admitted) == 3

    def test_concurrent_failures_trip_exactly(self, clock):
        # failure_threshold equals the total failure count: any lost
        # increment leaves the breaker CLOSED.
        per_thread = 5
        breaker = CircuitBreaker(
            "s0",
            failure_threshold=N_THREADS * per_thread,
            clock=clock.now,
        )

        def worker(i):
            for _ in range(per_thread):
                breaker.record_failure()

        _hammer(N_THREADS, worker)
        assert breaker.state is BreakerState.OPEN

    def test_success_failure_interleave_stays_consistent(self, clock):
        # Mixed feedback must never corrupt the state machine: the
        # breaker ends CLOSED or OPEN, never wedged half-open with no
        # probe outstanding.
        breaker = CircuitBreaker(
            "s0", failure_threshold=3, clock=clock.now
        )

        def worker(i):
            for j in range(50):
                if (i + j) % 2:
                    breaker.record_failure()
                else:
                    breaker.record_success()

        _hammer(N_THREADS, worker)
        assert breaker.state in (BreakerState.CLOSED, BreakerState.OPEN)


class TestRetryBudgetUnderRace:
    def test_exact_withdrawals(self):
        # Initial balance == max_balance == 10.0: exactly 10 of the 80
        # racing withdrawals may win.
        budget = RetryBudget()
        wins = []

        def worker(i):
            wins.append(sum(budget.try_withdraw() for _ in range(10)))

        _hammer(N_THREADS, worker)
        assert sum(wins) == 10
        assert budget.balance == pytest.approx(0.0)

    def test_deposits_never_exceed_cap(self):
        budget = RetryBudget(deposit_per_request=0.1, max_balance=2.0)

        def worker(i):
            for _ in range(100):
                budget.deposit()

        _hammer(N_THREADS, worker)
        assert budget.balance == pytest.approx(2.0)

    def test_mixed_traffic_conserves_tokens(self):
        # Drain the initial balance first so the cap never binds; from
        # there every deposit and withdrawal must be conserved exactly:
        # final = deposits - wins, with no token lost or minted.
        budget = RetryBudget(deposit_per_request=0.25, max_balance=100.0)
        while budget.try_withdraw():
            pass
        assert budget.balance == pytest.approx(0.0)
        wins = []

        def worker(i):
            won = 0
            for _ in range(20):
                budget.deposit()
                won += budget.try_withdraw()
            wins.append(won)

        _hammer(N_THREADS, worker)
        deposited = N_THREADS * 20 * 0.25  # 40.0, well under the cap
        assert budget.balance == pytest.approx(deposited - sum(wins))


class TestServiceUnderRace:
    def test_no_lost_request_counts(self, config, stored, clock):
        # _requests_served feeds the health-check cadence; a lost
        # update silently stretches the BIST interval.
        service = make_service(config, stored, clock, n_shards=2)
        queries = np.asarray(stored)
        per_thread = 25
        errors = []

        def worker(i):
            try:
                for j in range(per_thread):
                    response = service.search(
                        queries[j % len(queries)], deadline_s=30.0
                    )
                    assert response.best_row == j % len(queries)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        _hammer(N_THREADS, worker)
        assert errors == []
        assert service._requests_served == N_THREADS * per_thread

    def test_round_robin_cursor_stays_in_range(self, config, stored, clock):
        service = make_service(config, stored, clock, n_shards=3)
        queries = np.asarray(stored)

        def worker(i):
            for j in range(30):
                service.search(queries[j % len(queries)], deadline_s=30.0)

        _hammer(N_THREADS, worker)
        assert 0 <= service._rr_next < len(service.shards)
