"""Tests of the array programming cost model."""

import pytest

from repro.core.config import TDAMConfig
from repro.core.programming import ProgrammingModel
from repro.devices.nonideal import EnduranceModel


@pytest.fixture
def model():
    return ProgrammingModel(TDAMConfig(n_stages=32), seed=5)


class TestPrimitives:
    def test_pulse_energy_positive(self, model):
        assert model.pulse_energy_j > 0

    def test_attempt_time_covers_pulses_and_verify(self, model):
        assert model.attempt_time_s > 2 * 100e-9

    def test_pulse_counts_bounded(self, model):
        counts = model.draw_pulse_counts(10_000)
        assert counts.min() >= 1
        assert counts.max() <= model.max_retries

    def test_retry_rate_matches_parameter(self, model):
        counts = model.draw_pulse_counts(50_000)
        # Geometric mean attempts = 1 / (1 - p).
        expected = 1.0 / (1.0 - model.retry_p)
        assert counts.mean() == pytest.approx(expected, rel=0.05)

    def test_zero_retry_probability_single_pulse(self):
        model = ProgrammingModel(TDAMConfig(), retry_p=0.0, seed=1)
        assert model.draw_pulse_counts(100).max() == 1


class TestImageProgramming:
    def test_report_counts(self, model):
        report = model.program_image(16)
        assert report.n_rows == 16
        assert report.n_cells == 16 * 32

    def test_time_scales_with_rows(self, model):
        small = ProgrammingModel(TDAMConfig(n_stages=32), seed=5).program_image(8)
        large = ProgrammingModel(TDAMConfig(n_stages=32), seed=5).program_image(32)
        assert large.total_time_s > 3 * small.total_time_s

    def test_row_time_set_by_slowest_cell(self, model):
        report = model.program_image(1)
        assert report.total_time_s == pytest.approx(
            report.worst_pulses_per_cell * model.attempt_time_s
        )

    def test_energy_positive_and_scaling(self, model):
        report = model.program_image(16)
        # At least one pulse pair on both FeFETs of every cell.
        floor = report.n_cells * 2 * model.pulse_energy_j
        assert report.total_energy_j >= floor

    def test_validation(self, model):
        with pytest.raises(ValueError, match="n_rows"):
            model.program_image(0)
        with pytest.raises(ValueError, match="retry_p"):
            ProgrammingModel(TDAMConfig(), retry_p=1.0)


class TestEnduranceBudget:
    def test_many_deployments_supported(self, model):
        deployments = model.deployments_until_fatigue(64)
        # A 1e5-cycle fatigue onset at ~1.3 pulses/deployment leaves
        # tens of thousands of model reloads.
        assert deployments > 1e4

    def test_budget_shrinks_with_retry_rate(self):
        easy = ProgrammingModel(TDAMConfig(), retry_p=0.0, seed=1)
        hard = ProgrammingModel(TDAMConfig(), retry_p=0.6, seed=1)
        assert hard.deployments_until_fatigue(16) < (
            easy.deployments_until_fatigue(16)
        )
