"""Serve a replicated TD-AM behind deadlines, retries, and breakers.

Builds a two-replica search service, then walks the failure ladder the
serving layer is built for:

1. healthy serving -- exact answers, round-robin across replicas;
2. a flaky replica -- transient timeouts retried with jittered backoff
   and failed over, until the circuit breaker quarantines the shard;
3. a wrecked replica -- BIST health reports trip the breaker and
   traffic converges on the replica that still answers exactly;
4. crash-safe checkpoints -- a snapshot survives a simulated crash
   between the temp write and the publish, and restores bit-exactly;
5. the chaos suite -- every scenario's SLO scorecard.

Everything runs on a fake clock with seeded randomness, so the output
is deterministic.

Run:  python examples/fault_tolerant_serving.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro.io
from repro.core.config import TDAMConfig
from repro.core.faults import FaultInjector
from repro.resilience.resilient import ResilientTDAMArray
from repro.service import (
    BreakerState,
    FakeClock,
    ServiceCheckpointer,
    ShardTimeoutError,
    TDAMSearchService,
)
from repro.service.chaos import run_chaos_suite


def main() -> None:
    config = TDAMConfig(n_stages=32)
    rng = np.random.default_rng(0)
    stored = rng.integers(0, config.levels, size=(12, config.n_stages))

    # -- 1. healthy serving -------------------------------------------
    clock = FakeClock()
    replicas = [
        ResilientTDAMArray(config, n_rows=12, n_spares=2)
        for _ in range(2)
    ]
    service = TDAMSearchService(
        replicas, clock=clock.now, sleep=clock.sleep
    )
    service.write_all(stored)
    print("== healthy serving ==")
    for row in (0, 5, 11):
        response = service.search(stored[row])
        print(
            f"  query=row{row}: best_row={response.best_row} "
            f"via {response.shard_id}, degraded={response.degraded}"
        )

    # -- 2. a flaky replica -------------------------------------------
    print("== flaky shard0: retries, then quarantine ==")
    fault_rng = np.random.default_rng(7)

    def flaky_shard0(shard_id: str, queries: np.ndarray) -> None:
        clock.advance(0.0005)
        if shard_id == "shard0" and fault_rng.uniform() < 0.8:
            raise ShardTimeoutError("shard0 flaking")

    service.add_interceptor(flaky_shard0)
    retries = 0
    for i in range(12):
        response = service.search(stored[i % 12])
        retries += response.retries
    state = service.shards[0].breaker.state
    print(f"  12 requests served, {retries} retries")
    print(f"  shard0 breaker: {state.value}")
    service.clear_interceptors()

    # -- 3. a wrecked replica -----------------------------------------
    print("== wrecked replica: health check routes around it ==")
    injector = FaultInjector(config, 14, seed=3)
    wrecked = ResilientTDAMArray(
        config,
        n_rows=12,
        n_spares=2,
        faults=injector.draw(n_dead_rows=5),
        max_masked_stages=0,
    )
    healthy = ResilientTDAMArray(config, n_rows=12, n_spares=2)
    pair = TDAMSearchService(
        [wrecked, healthy], clock=clock.now, sleep=clock.sleep
    )
    pair.write_all(stored)
    wrecked.self_test_and_repair()
    states = pair.run_health_checks()
    print(f"  breaker states: { {k: v.value for k, v in states.items()} }")
    served_by = {pair.search(stored[i]).shard_id for i in range(6)}
    assert states["shard0"] is BreakerState.OPEN
    assert served_by == {"shard1"}
    print(f"  all traffic served by: {sorted(served_by)}")

    # -- 4. crash-safe checkpoints ------------------------------------
    print("== checkpoint survives a crash mid-save ==")
    with tempfile.TemporaryDirectory() as tmpdir:
        ckpt = ServiceCheckpointer(Path(tmpdir) / "shard.npz")
        ckpt.save(healthy, trigger="example")
        healthy.write_all(stored[::-1].copy())  # new content...

        class Crash(BaseException):
            pass

        def crash(tmp: str, dst: str) -> None:
            raise Crash()

        original = repro.io._REPLACE
        repro.io._REPLACE = crash  # ...but the process dies mid-save
        try:
            ckpt.save(healthy, trigger="doomed")
        except Crash:
            print("  crash injected between temp write and publish")
        finally:
            repro.io._REPLACE = original
        info, _ = ckpt.restore_latest(healthy)
        match = bool((healthy._shadow == stored).all())
        print(f"  restored trigger={info.manifest['trigger']!r}, "
              f"pre-crash content intact: {match}")

    # -- 5. the chaos suite -------------------------------------------
    print("== chaos suite (quick) ==")
    report = run_chaos_suite(quick=True, seed=7)
    for scenario in report.scenarios:
        print(
            f"  {scenario.name:22s} "
            f"{'pass' if scenario.passed else 'FAIL'}  "
            f"hit_rate={scenario.deadline_hit_rate:.2f} "
            f"wrong_unflagged={scenario.wrong_unflagged}"
        )
    print(f"all SLOs held: {report.passed}")


if __name__ == "__main__":
    main()
