"""Bench: Fig. 1(c)(d) -- FeFET I_D-V_G curves and device-to-device spread.

Regenerates the per-state V_TH statistics behind the measured-device plot
and checks that the four programmed states stay separated.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.devices.variation import MEASURED_VTH_SIGMA_MV
from repro.experiments.fig1_device import format_fig1, run_fig1


def test_fig1_device_iv(benchmark):
    result = run_once(benchmark, run_fig1, n_devices=30, n_points=31)
    print()
    print(format_fig1(result))

    # Shape checks: four distinct states, correct ordering at mid bias,
    # ensemble statistics near the measured sigmas.
    mid = np.argmin(np.abs(result.vg - 0.8))
    at_bias = result.model_curves[:, mid]
    assert (np.diff(at_bias) < 0).all()
    for stat in result.vth_stats:
        state = int(stat["state"])
        measured = MEASURED_VTH_SIGMA_MV[state] * 1e-3
        assert abs(stat["std_v"] - measured) < 0.6 * measured + 0.003
