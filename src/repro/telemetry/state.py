"""The process-wide telemetry switch shared by every pillar.

Hot paths guard their instrumentation with a single attribute read::

    from repro.telemetry.state import STATE as _TM
    ...
    if _TM.enabled:
        <record spans / metrics / probes>

so the *disabled* cost (the default) is one boolean check -- the
microbench in ``benchmarks/test_perf_microbench.py`` asserts the wrapped
``search_batch`` stays within 3% of the bare kernel.

The switch lives on a mutable holder object (not a module-level bool) so
``from ... import STATE`` always observes the current value.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_TRUTHY = ("1", "true", "yes", "on")


class TelemetryState:
    """Mutable on/off holder; one instance (:data:`STATE`) per process."""

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled


#: The process-wide switch.  ``REPRO_TELEMETRY=1`` enables it at import
#: time (useful for instrumenting code paths with no CLI in front).
STATE = TelemetryState(
    os.environ.get("REPRO_TELEMETRY", "").strip().lower() in _TRUTHY
)


def enable() -> None:
    """Turn telemetry on: spans, metrics, and probes start recording."""
    STATE.enabled = True


def disable() -> None:
    """Turn telemetry off (the default): hot paths skip instrumentation."""
    STATE.enabled = False


def is_enabled() -> bool:
    """Whether telemetry is currently recording."""
    return STATE.enabled


@contextmanager
def enabled_scope(on: bool = True) -> Iterator[None]:
    """Temporarily force telemetry on (or off); restores on exit."""
    previous = STATE.enabled
    STATE.enabled = on
    try:
        yield
    finally:
        STATE.enabled = previous
