"""Circuit elements with element-local residual/Jacobian contributions.

Sign convention: an element reports the current flowing *out of* each of
its nodes; Kirchhoff's current law at a free node then reads
``sum(currents out) = 0``.  Capacitors are discretized with backward Euler
inside the element, so the solver itself stays integration-scheme agnostic.

Each element exposes:

- ``nodes`` -- tuple of node names,
- ``local_currents(v, v_prev, t, dt)`` -- currents out of each node given
  the local node voltages (same order as ``nodes``).

The solver differentiates ``local_currents`` numerically per element, which
keeps the Jacobian exact enough for damped Newton while letting device
models stay simple Python.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple


from repro.devices.mosfet import MOSFET


class Element:
    """Base class: a named element over a tuple of node names."""

    def __init__(self, nodes: Sequence[str], name: str = "") -> None:
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self.name = name or type(self).__name__

    def local_currents(
        self,
        v: Sequence[float],
        v_prev: Sequence[float],
        t: float,
        dt: float,
    ) -> List[float]:
        """Currents out of each node (A), in ``self.nodes`` order."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes})"


class Resistor(Element):
    """A linear resistor between two nodes."""

    def __init__(self, a: str, b: str, resistance: float, name: str = "") -> None:
        if resistance <= 0:
            raise ValueError(f"resistance must be positive, got {resistance}")
        super().__init__((a, b), name or f"R({a},{b})")
        self.resistance = resistance

    def local_currents(self, v, v_prev, t, dt):
        i = (v[0] - v[1]) / self.resistance
        return [i, -i]


class Capacitor(Element):
    """A linear capacitor, discretized with backward Euler."""

    def __init__(self, a: str, b: str, capacitance: float, name: str = "") -> None:
        if capacitance <= 0:
            raise ValueError(f"capacitance must be positive, got {capacitance}")
        super().__init__((a, b), name or f"C({a},{b})")
        self.capacitance = capacitance

    def local_currents(self, v, v_prev, t, dt):
        dv = (v[0] - v[1]) - (v_prev[0] - v_prev[1])
        i = self.capacitance * dv / dt
        return [i, -i]


# ----------------------------------------------------------------------
# Source waveforms
# ----------------------------------------------------------------------
class SourceWaveform:
    """Base class for time-varying source values."""

    def value_at(self, t: float) -> float:
        raise NotImplementedError

    def __call__(self, t: float) -> float:
        return self.value_at(t)


@dataclass(frozen=True)
class StepWaveform(SourceWaveform):
    """A single linear-ramp step from ``v0`` to ``v1`` at ``t_step``.

    Attributes:
        v0: Value before the step.
        v1: Value after the step.
        t_step: Start time of the ramp (s).
        t_rise: Ramp duration (s); 10 ps default keeps edges realistic.
    """

    v0: float
    v1: float
    t_step: float = 0.0
    t_rise: float = 10e-12

    def value_at(self, t: float) -> float:
        if t <= self.t_step:
            return self.v0
        if t >= self.t_step + self.t_rise:
            return self.v1
        frac = (t - self.t_step) / self.t_rise
        return self.v0 + frac * (self.v1 - self.v0)


@dataclass(frozen=True)
class PulseWaveform(SourceWaveform):
    """A single pulse: ``v0`` -> ``v1`` -> ``v0`` (the TD-AM input pulse).

    Attributes:
        v0: Baseline value.
        v1: Pulse value.
        t_delay: Time of the leading edge (s).
        t_width: Time at ``v1`` between the edges (s).
        t_rise: Leading-edge ramp (s).
        t_fall: Trailing-edge ramp (s).
    """

    v0: float
    v1: float
    t_delay: float = 0.0
    t_width: float = 1e-9
    t_rise: float = 10e-12
    t_fall: float = 10e-12

    def value_at(self, t: float) -> float:
        t_lead = self.t_delay
        t_high = t_lead + self.t_rise
        t_trail = t_high + self.t_width
        t_low = t_trail + self.t_fall
        if t <= t_lead or t >= t_low:
            return self.v0
        if t < t_high:
            return self.v0 + (t - t_lead) / self.t_rise * (self.v1 - self.v0)
        if t <= t_trail:
            return self.v1
        return self.v1 + (t - t_trail) / self.t_fall * (self.v0 - self.v1)


class PWLWaveform(SourceWaveform):
    """Piece-wise-linear waveform through ``(time, value)`` points."""

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 1:
            raise ValueError("PWL waveform needs at least one point")
        times = [p[0] for p in points]
        if sorted(times) != times:
            raise ValueError("PWL times must be non-decreasing")
        self._times = [float(t) for t in times]
        self._values = [float(p[1]) for p in points]

    def value_at(self, t: float) -> float:
        times, values = self._times, self._values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        hi = bisect.bisect_right(times, t)
        lo = hi - 1
        span = times[hi] - times[lo]
        if span <= 0:
            return values[hi]
        frac = (t - times[lo]) / span
        return values[lo] + frac * (values[hi] - values[lo])


@dataclass(frozen=True)
class ConstantWaveform(SourceWaveform):
    """A DC value (supplies, search-line biases)."""

    value: float

    def value_at(self, t: float) -> float:
        return self.value


class VoltageSource(Element):
    """A grounded ideal voltage source forcing one node.

    The solver treats the forced node as a known boundary; the source
    itself contributes no residual (the current it supplies is implicit).
    Its supplied charge is recovered in post-processing for energy
    accounting (:func:`repro.spice.transient.source_energy`).
    """

    def __init__(self, node: str, waveform, name: str = "") -> None:
        super().__init__((node,), name or f"V({node})")
        if isinstance(waveform, (int, float)):
            waveform = ConstantWaveform(float(waveform))
        self.waveform = waveform

    @property
    def forces_node(self) -> Tuple[str, SourceWaveform]:
        return self.nodes[0], self.waveform

    def local_currents(self, v, v_prev, t, dt):
        return [0.0]


class CurrentSource(Element):
    """An independent current source from ``a`` to ``b``.

    Positive ``current`` (or waveform value) flows out of ``a`` into
    ``b`` through the source, i.e. it *injects* current into node ``b``.
    Useful for stimulus of current-domain circuits (match-line models)
    and for Norton-style test fixtures.
    """

    def __init__(self, a: str, b: str, current, name: str = "") -> None:
        super().__init__((a, b), name or f"I({a},{b})")
        if isinstance(current, (int, float)):
            current = ConstantWaveform(float(current))
        self.waveform = current

    def local_currents(self, v, v_prev, t, dt):
        i = self.waveform.value_at(t)
        return [i, -i]


# ----------------------------------------------------------------------
# Transistors
# ----------------------------------------------------------------------
class MOSFETElement(Element):
    """A three-terminal MOSFET element (drain, gate, source).

    Gate current is zero (ideal MOS gate); gate loading is modelled by
    explicit capacitors in the netlist builders.
    """

    def __init__(
        self, drain: str, gate: str, source: str, model: MOSFET, name: str = ""
    ) -> None:
        super().__init__((drain, gate, source), name or model.name)
        self.model = model

    def local_currents(self, v, v_prev, t, dt):
        vd, vg, vs = v
        ids = self.model.ids(vg - vs, vd - vs)
        return [ids, 0.0, -ids]


class FeFETElement(Element):
    """A FeFET channel element evaluated at its programmed state.

    The polarization (hence V_TH) is frozen during a transient -- write
    operations happen between transients, as in the paper's operating
    scheme -- so the element snapshots the channel model at construction.
    """

    def __init__(self, drain: str, gate: str, source: str, fefet, name: str = "") -> None:
        super().__init__((drain, gate, source), name or fefet.name)
        self.fefet = fefet
        self._channel = fefet.channel_model()

    def local_currents(self, v, v_prev, t, dt):
        vd, vg, vs = v
        ids = self._channel.ids(vg - vs, vd - vs)
        return [ids, 0.0, -ids]
