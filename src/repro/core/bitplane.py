"""Bit-packed level-plane index for the batched TD-AM search.

For a *written* array the conduction decision of cell ``(m, n)`` depends
only on the query level driven onto its search line: the per-level
mismatch tables built at write time (``FastTDAMArray._level_tables``)
already tabulate it.  This module packs those boolean tables into
``(L, M, ceil(N / 8))`` uint8 **bit-planes** so a batched query reduces
to a bitwise AND plus a population count -- roughly one bit of memory
traffic per cell instead of the eight bytes of the float kernels, the
software analog of the array answering in one time-domain shot.

Layout.  Plane ``[l, m]`` is ``np.packbits`` of row ``m``'s mismatch
decisions against query level ``l`` (stage 0 in the MSB of byte 0,
numpy's packbits convention).  The byte width is padded with zero bytes
to a multiple of 8 so the popcount kernel can reinterpret the planes as
uint64 words; padding bits are zero on both operands of the AND, so
they never contribute to a count.

Popcount.  ``numpy >= 2.0`` exposes a native :func:`numpy.bitwise_count`
ufunc; on older numpy the :func:`popcount` helper falls back to a
256-entry uint8 lookup table (the classic LUT method).  Both paths are
exact on every input, so kernel results are independent of the numpy
version -- the property tests drive the LUT path explicitly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HAVE_BITWISE_COUNT",
    "POPCOUNT_LUT",
    "pack_bit_planes",
    "pack_level_planes",
    "pack_query_masks",
    "packed_mismatch_counts",
    "packed_pair_counts",
    "packed_stage_bytes",
    "packed_xor_counts",
    "popcount",
]

#: Whether this numpy ships the native popcount ufunc (numpy >= 2.0).
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Set-bit count of every byte value -- the numpy < 2 fallback table.
POPCOUNT_LUT = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)

# Test seam: the property suite flips this to force the LUT path on a
# numpy that has the native ufunc, proving both give identical counts.
_use_native = HAVE_BITWISE_COUNT

# uint64 words per padding quantum; planes are padded so their byte
# width divides evenly into words.
_WORD_BYTES = 8


def popcount(values: np.ndarray) -> np.ndarray:
    """Per-element set-bit count of an unsigned-integer array.

    Uses :func:`numpy.bitwise_count` when available (any unsigned
    dtype), else the :data:`POPCOUNT_LUT` byte table (uint8 input only
    -- exactly what the packed kernels feed it).
    """
    if _use_native:
        return np.bitwise_count(values)
    if values.dtype != np.uint8:
        raise TypeError(
            f"LUT popcount fallback needs uint8 input, got {values.dtype}"
        )
    return POPCOUNT_LUT[values]


def packed_stage_bytes(n_stages: int) -> int:
    """Padded byte width of a packed ``n_stages``-bit plane."""
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1, got {n_stages}")
    logical = -(-n_stages // 8)
    return -(-logical // _WORD_BYTES) * _WORD_BYTES


def _pack_padded(bits: np.ndarray) -> np.ndarray:
    """packbits along the last axis, zero-padded to a word multiple."""
    packed = np.packbits(np.asarray(bits, dtype=bool), axis=-1)
    pad = (-packed.shape[-1]) % _WORD_BYTES
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(packed.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    return np.ascontiguousarray(packed)


def pack_level_planes(mismatch_tables: np.ndarray) -> np.ndarray:
    """Pack per-level mismatch tables into uint8 bit-planes.

    Args:
        mismatch_tables: Boolean per-level mismatch decisions, shape
            ``(L, M, N)`` -- entry ``[l, m, n]`` is cell ``(m, n)``'s
            conduction decision against query level ``l``.

    Returns:
        uint8 planes of shape ``(L, M, B)`` with ``B =``
        :func:`packed_stage_bytes`\\ ``(N)``; stage ``n`` lives in bit
        ``7 - n % 8`` of byte ``n // 8``.
    """
    tables = np.asarray(mismatch_tables)
    if tables.ndim != 3:
        raise ValueError(
            f"mismatch tables must be (L, M, N), got shape {tables.shape}"
        )
    return _pack_padded(tables)


def _tail_mask_bytes(n_stages: int, width: int) -> np.ndarray:
    """uint8 mask of ``width`` bytes with only the first ``n_stages``
    bits set (packbits bit order)."""
    mask = np.zeros(width, dtype=np.uint8)
    full, rem = divmod(n_stages, 8)
    mask[:full] = 0xFF
    if rem:
        mask[full] = (0xFF00 >> rem) & 0xFF
    return mask


def pack_bit_planes(levels_mat: np.ndarray, bits: int) -> np.ndarray:
    """Pack each bit of an integer level matrix into stage bit-planes.

    Args:
        levels_mat: Integer levels, shape ``(M, N)``, values in
            ``[0, 2**bits)``.
        bits: Bit width of a level, ``1 <= bits <= 8``.

    Returns:
        uint8 planes of shape ``(bits, M, B)``: plane ``b`` holds bit
        ``b`` of every level, packed and padded exactly like
        :func:`pack_level_planes`.
    """
    lv = np.asarray(levels_mat)
    if lv.ndim != 2:
        raise ValueError(f"levels must be (M, N), got shape {lv.shape}")
    if not 1 <= bits <= 8:
        raise ValueError(f"bits must be in [1, 8], got {bits}")
    u8 = lv.astype(np.uint8)
    extracted = np.empty((bits,) + u8.shape, dtype=np.uint8)
    for b in range(bits):
        np.bitwise_and(u8, 1 << b, out=extracted[b])
    packed = np.packbits(extracted, axis=-1)
    pad = (-packed.shape[-1]) % _WORD_BYTES
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(packed.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    return np.ascontiguousarray(packed)


def _pack_query_masks_pow2(q: np.ndarray, levels: int) -> np.ndarray:
    """Power-of-two fast path of :func:`pack_query_masks`.

    Packs the query's level *bits* once and combines the (possibly
    complemented) bit-planes with word-wide ANDs -- ``L`` comparisons
    over ``(Q, N)`` collapse to ``log2(L)`` packbits plus a handful of
    ops on the packed words.  Complementing flips the zero padding, so
    the tail is explicitly re-zeroed to honor the layout contract.
    """
    bits = levels.bit_length() - 1
    n_q, n = q.shape
    width = packed_stage_bytes(n)
    planes = pack_bit_planes(q, bits)  # (bits, Q, B)
    words = planes.view(np.uint64).reshape(bits, n_q, -1)
    masks = np.empty((n_q, levels, width), dtype=np.uint8)
    out = masks.view(np.uint64).reshape(n_q, levels, -1)
    for level in range(levels):
        acc = None
        for b in range(bits):
            term = words[b] if (level >> b) & 1 else ~words[b]
            acc = term if acc is None else acc & term
        out[:, level, :] = acc
    tail = _tail_mask_bytes(n, width).view(np.uint64)
    out &= tail[None, None, :]
    return masks


def pack_query_masks(queries: np.ndarray, levels: int) -> np.ndarray:
    """Pack a query block into per-level one-hot bit masks.

    Args:
        queries: Validated query levels, shape ``(Q, N)``.
        levels: Number of storable levels ``L``.

    Returns:
        uint8 masks of shape ``(Q, L, B)``: mask ``[q, l]`` has stage
        ``n``'s bit set iff ``queries[q, n] == l``.  Same bit layout and
        padding as :func:`pack_level_planes`, so
        ``mask & plane`` selects exactly the stages whose query level is
        ``l`` *and* whose cell mismatches level ``l``.
    """
    q = np.asarray(queries)
    if q.ndim != 2:
        raise ValueError(f"queries must be (Q, N), got shape {q.shape}")
    if (
        q.shape[0] and q.shape[1]
        and 2 <= levels <= 256 and levels & (levels - 1) == 0
    ):
        return _pack_query_masks_pow2(q, levels)
    onehot = q[:, None, :] == np.arange(levels)[None, :, None]
    return _pack_padded(onehot)


def _as_words(packed: np.ndarray) -> np.ndarray:
    """View a padded uint8 array as uint64 words along the last axis."""
    if packed.shape[-1] % _WORD_BYTES:
        raise ValueError(
            f"byte width {packed.shape[-1]} is not a multiple of 8"
        )
    contiguous = np.ascontiguousarray(packed)
    return contiguous.view(np.uint64)


def packed_mismatch_counts(
    planes: np.ndarray, masks: np.ndarray
) -> np.ndarray:
    """Mismatch counts of packed query masks against packed bit-planes.

    Computes ``counts[q, m] = sum_l popcount(masks[q, l] & planes[l, m])``
    -- the packed-popcount form of the batched search reduction.  Exact
    for every input (each stage of query ``q`` is one-hot over levels,
    so each set stage bit is counted exactly once).

    Args:
        planes: uint8 bit-planes, shape ``(L, M, B)``
            (:func:`pack_level_planes`); byte slices ``[:, :, a:b]``
            with word-aligned bounds are accepted, which is what the
            pruned top-k cascade feeds it.
        masks: uint8 query masks, shape ``(Q, L, B)`` with the same
            byte width.

    Returns:
        int64 counts, shape ``(Q, M)``.
    """
    if planes.ndim != 3 or masks.ndim != 3:
        raise ValueError(
            f"expected (L, M, B) planes and (Q, L, B) masks, got "
            f"{planes.shape} and {masks.shape}"
        )
    if planes.shape[0] != masks.shape[1] or planes.shape[2] != masks.shape[2]:
        raise ValueError(
            f"planes {planes.shape} and masks {masks.shape} disagree on "
            f"levels or byte width"
        )
    if masks.shape[2] == 0:
        return np.zeros(
            (masks.shape[0], planes.shape[1]), dtype=np.int64
        )
    if _use_native:
        p = _as_words(planes)
        m = _as_words(masks)
    else:
        p = np.ascontiguousarray(planes)
        m = np.ascontiguousarray(masks)
    n_rows = p.shape[1]
    n_q = m.shape[0]
    # (L*K, M) x (L*K, Q) operands put the longest axis (queries)
    # innermost and contiguous, so the broadcast AND runs long inner
    # loops; the reduction then sums L*K contiguous leading slabs.
    # Callers bound Q with their query chunking.
    p_t = np.ascontiguousarray(p.transpose(0, 2, 1)).reshape(-1, n_rows)
    m_t = np.ascontiguousarray(m.transpose(1, 2, 0)).reshape(-1, n_q)
    matched = popcount(p_t[:, :, None] & m_t[:, None, :])
    return matched.sum(axis=0, dtype=np.int64).T


def packed_xor_counts(
    stored_bits: np.ndarray, query_bits: np.ndarray
) -> np.ndarray:
    """Mismatch counts via XOR over packed level *bit*-planes.

    The nominal fast path: when a cell's conduction decision is exactly
    ``stored != query`` (written array, no variation, nominal biases),
    the one-hot reduction over ``L`` level planes collapses to
    ``log2(L)`` XORs -- a stage mismatches iff any bit of its level
    differs::

        counts[q, m] = popcount(OR_b(stored_bits[b, m] ^ query_bits[b, q]))

    Padding bits are zero in both operands, so they never contribute.
    Counts are exact integers, bit-identical to
    :func:`packed_mismatch_counts` over inequality planes.

    Args:
        stored_bits: uint8 bit-planes of the written levels, shape
            ``(bits, M, B)`` (:func:`pack_bit_planes`).
        query_bits: uint8 bit-planes of the query levels, shape
            ``(bits, Q, B)``, same byte width.

    Returns:
        int64 counts, shape ``(Q, M)``.
    """
    if stored_bits.ndim != 3 or query_bits.ndim != 3:
        raise ValueError(
            f"expected (bits, M, B) stored and (bits, Q, B) query planes, "
            f"got {stored_bits.shape} and {query_bits.shape}"
        )
    if (
        stored_bits.shape[0] != query_bits.shape[0]
        or stored_bits.shape[2] != query_bits.shape[2]
    ):
        raise ValueError(
            f"stored {stored_bits.shape} and query {query_bits.shape} "
            f"planes disagree on bits or byte width"
        )
    n_rows = stored_bits.shape[1]
    n_q = query_bits.shape[1]
    if stored_bits.shape[2] == 0:
        return np.zeros((n_q, n_rows), dtype=np.int64)
    if _use_native:
        s = _as_words(stored_bits)
        qb = _as_words(query_bits)
    else:
        s = np.ascontiguousarray(stored_bits)
        qb = np.ascontiguousarray(query_bits)
    bits, _, k = s.shape
    # Same long-inner-loop layout as packed_mismatch_counts, with one
    # fused XOR over all bit-planes and an in-place OR-fold.
    s_t = np.ascontiguousarray(s.transpose(0, 2, 1)).reshape(-1, n_rows)
    q_t = np.ascontiguousarray(qb.transpose(0, 2, 1)).reshape(-1, n_q)
    diff = s_t[:, :, None] ^ q_t[:, None, :]
    diff = diff.reshape(bits, k, n_rows, n_q)
    mism = diff[0]
    for b in range(1, bits):
        np.bitwise_or(mism, diff[b], out=mism)
    pops = popcount(mism)
    if k > 1 and 8 * stored_bits.shape[2] <= 255:
        # A pair's slab popcounts sum to at most the real bit width
        # (8B <= 255), so uint8 accumulation cannot overflow.
        total = np.add(pops[0], pops[1])
        for i in range(2, k):
            np.add(total, pops[i], out=total)
        return total.astype(np.int64).T
    return pops.sum(axis=0, dtype=np.int64).T


def packed_pair_counts(
    planes: np.ndarray,
    masks: np.ndarray,
    query_idx: np.ndarray,
    row_idx: np.ndarray,
) -> np.ndarray:
    """Mismatch counts of explicit ``(query, row)`` pairs.

    The refinement kernel of the pruned top-k cascade: instead of the
    full ``(Q, M)`` cross product, only the surviving pairs are counted
    -- ``counts[p] = sum_l popcount(masks[query_idx[p], l] &
    planes[l, row_idx[p]])``.  Callers typically pass word-aligned byte
    slices (the stage *suffix* not covered by the pruning prefix).

    Args:
        planes: uint8 bit-planes, shape ``(L, M, B)``.
        masks: uint8 query masks, shape ``(Q, L, B)``.
        query_idx: Query of each pair, shape ``(P,)``.
        row_idx: Row of each pair, shape ``(P,)``.

    Returns:
        int64 counts, shape ``(P,)``.
    """
    if planes.ndim != 3 or masks.ndim != 3:
        raise ValueError(
            f"expected (L, M, B) planes and (Q, L, B) masks, got "
            f"{planes.shape} and {masks.shape}"
        )
    if planes.shape[0] != masks.shape[1] or planes.shape[2] != masks.shape[2]:
        raise ValueError(
            f"planes {planes.shape} and masks {masks.shape} disagree on "
            f"levels or byte width"
        )
    n_pairs = np.asarray(query_idx).shape[0]
    if masks.shape[2] == 0 or n_pairs == 0:
        return np.zeros(n_pairs, dtype=np.int64)
    # (P, L, B/W) operand pair; gather keeps the transient at the
    # survivor count, not the full cross product.
    p = planes.transpose(1, 0, 2)[row_idx]
    m = masks[query_idx]
    if _use_native:
        p = _as_words(p)
        m = _as_words(m)
    else:
        p = np.ascontiguousarray(p)
        m = np.ascontiguousarray(m)
    return popcount(m & p).sum(axis=(1, 2), dtype=np.int64)
