"""Tests of HDC clustering."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_face_like
from repro.hdc.cluster import HDCluster, clustering_accuracy
from repro.hdc.encoder import RandomProjectionEncoder


def encoded_blobs(n_clusters=3, n_per=40, dimension=1024, seed=6):
    """Well-separated encoded clusters with ground-truth labels.

    Uses the *linear* projection: unsupervised Lloyd clustering needs the
    encoder to preserve metric structure (see the module docstring of
    repro.hdc.cluster).
    """
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_clusters, 32)) * 4.0
    samples, labels = [], []
    for c in range(n_clusters):
        samples.append(centers[c] + rng.normal(size=(n_per, 32)))
        labels.extend([c] * n_per)
    x = np.concatenate(samples)
    encoder = RandomProjectionEncoder(32, dimension, nonlinear=False, seed=seed)
    encoded = encoder.encode(x)
    encoded -= encoded.mean(axis=0)
    return encoded, np.array(labels)


class TestHDCluster:
    def test_recovers_separated_clusters(self):
        encoded, labels = encoded_blobs()
        result = HDCluster(k=3, seed=1).fit(encoded)
        assert clustering_accuracy(result.assignments, labels) > 0.95

    def test_converges(self):
        encoded, _ = encoded_blobs()
        result = HDCluster(k=3, max_iterations=50, seed=1).fit(encoded)
        assert result.converged
        assert result.iterations < 50

    def test_centroid_shapes(self):
        encoded, _ = encoded_blobs(dimension=512)
        result = HDCluster(k=3, seed=1).fit(encoded)
        assert result.centroids.shape == (3, 512)

    def test_deterministic_given_seed(self):
        encoded, _ = encoded_blobs()
        a = HDCluster(k=3, seed=2).fit(encoded)
        b = HDCluster(k=3, seed=2).fit(encoded)
        assert np.array_equal(a.assignments, b.assignments)

    def test_all_clusters_used(self):
        encoded, _ = encoded_blobs(n_clusters=4)
        result = HDCluster(k=4, seed=1).fit(encoded)
        assert len(np.unique(result.assignments)) == 4

    def test_works_on_real_encoder_pipeline(self):
        ds = make_face_like(200, 50)
        encoder = RandomProjectionEncoder(ds.n_features, 1024,
                                          nonlinear=False, seed=3)
        encoded = encoder.encode(ds.x_train)
        encoded -= encoded.mean(axis=0)
        result = HDCluster(k=2, seed=1).fit(encoded)
        assert clustering_accuracy(result.assignments, ds.y_train) > 0.8

    def test_nonlinear_encoding_hurts_clustering(self):
        """The documented caveat: the trigonometric nonlinearity saturates
        inter-cluster distances and defeats Lloyd-style clustering."""
        rng = np.random.default_rng(6)
        centers = rng.normal(size=(3, 32)) * 4.0
        x = np.concatenate(
            [centers[c] + rng.normal(size=(40, 32)) for c in range(3)]
        )
        labels = np.repeat(np.arange(3), 40)
        nonlinear = RandomProjectionEncoder(32, 1024, nonlinear=True, seed=6)
        encoded = nonlinear.encode(x)
        encoded -= encoded.mean(axis=0)
        result = HDCluster(k=3, seed=1).fit(encoded)
        linear_result = HDCluster(k=3, seed=1).fit(encoded_blobs()[0])
        assert clustering_accuracy(result.assignments, labels) < (
            clustering_accuracy(linear_result.assignments, encoded_blobs()[1])
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            HDCluster(k=1)
        with pytest.raises(ValueError, match="at least k"):
            HDCluster(k=5).fit(np.ones((3, 8)))
        with pytest.raises(ValueError, match="2-D"):
            HDCluster(k=2).fit(np.ones(8))


class TestClusteringAccuracy:
    def test_perfect_assignment(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert clustering_accuracy(labels, labels) == 1.0

    def test_relabeled_assignment_still_perfect(self):
        labels = np.array([0, 0, 1, 1])
        assignments = np.array([1, 1, 0, 0])
        assert clustering_accuracy(assignments, labels) == 1.0

    def test_random_assignment_poor(self):
        rng = np.random.default_rng(7)
        labels = rng.integers(0, 4, size=400)
        assignments = rng.integers(0, 4, size=400)
        assert clustering_accuracy(assignments, labels) < 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            clustering_accuracy(np.zeros(3), np.zeros(4))
