"""End-to-end acceptance demo of the closed resilience loop.

One seeded scenario drives the whole subsystem the way a deployment
would: a fault-ridden array with retention drift is put through
BIST -> repair -> refresh, and the contract is checked at each step --
with spares available the wrong-best fraction drops to exactly zero;
once spares are exhausted every result carries ``degraded=True`` and a
retired row never silently wins.
"""

import numpy as np
import pytest

from repro.core.config import TDAMConfig
from repro.core.faults import Fault, FaultInjector, FaultType
from repro.resilience.resilient import ResilientTDAMArray

N_ROWS = 10
N_STAGES = 24


@pytest.fixture
def config():
    return TDAMConfig(n_stages=N_STAGES)


@pytest.fixture
def data(config):
    rng = np.random.default_rng(17)
    stored = rng.integers(0, config.levels, size=(N_ROWS, N_STAGES))
    # Self-queries plus random ones: a dead data row is guaranteed to
    # corrupt at least its own exact-match lookup.
    queries = np.vstack(
        [stored, rng.integers(0, config.levels, size=(8, N_STAGES))]
    )
    return stored, queries


def seeded_faults(config, total_rows):
    """Seeded cell faults plus two dead rows pinned onto data rows."""
    injector = FaultInjector(config, total_rows, seed=99)
    faults = injector.draw(n_stuck_mismatch=2, n_stuck_match=1)
    faults += [
        Fault(FaultType.DEAD_ROW, row=1),
        Fault(FaultType.DEAD_ROW, row=6),
    ]
    return faults


def wrong_best_fraction(array, stored, queries):
    """Wrong-best fraction over live rows, against the ideal Hamming
    winner resolved with the array's own distance -> row rule.

    The reference counts only *surviving* stages: a masked column is
    excluded from the distance array-wide (that is the rescaled
    similarity contract the repair documents).
    """
    live = [r for r in range(array.n_rows) if r not in array._retired]
    masked = set(array._masked)
    cols = [s for s in range(array.config.n_stages) if s not in masked]
    wrong = 0
    for query in queries:
        ideal = (stored[live][:, cols] != query[cols][None, :]).sum(axis=1)
        expect = live[int(np.lexsort((live, ideal))[0])]
        if array.search(query).best_row != expect:
            wrong += 1
    return wrong / len(queries)


class TestClosedLoopWithSpares:
    def test_bist_repair_refresh_restores_exactness(self, config, data):
        stored, queries = data
        n_spares = 4
        array = ResilientTDAMArray(
            config,
            n_rows=N_ROWS,
            n_spares=n_spares,
            faults=seeded_faults(config, N_ROWS + n_spares),
            max_masked_stages=2,
        )
        array.write_all(stored)

        # The unrepaired array answers wrongly for some queries.
        damaged = wrong_best_fraction(array, stored, queries)
        assert damaged > 0.0

        # Close the loop: BIST diagnoses, repairs apply.
        plan = array.self_test_and_repair()
        assert not plan.is_noop
        assert not array.degraded

        # With spares available the wrong-best fraction drops to zero.
        assert wrong_best_fraction(array, stored, queries) == 0.0
        for result in (array.search(q) for q in queries):
            assert not result.degraded

        # Age the array to the refresh deadline and let the scheduler
        # act: exactness survives the drift.
        interval = array.scheduler.plan().interval_s
        array.advance_time(interval)
        assert array.refresh_due
        assert array.maybe_refresh()
        assert array.age_s == 0.0
        assert wrong_best_fraction(array, stored, queries) == 0.0

        # The loop spent real resources and says so.
        health = array.health_report()
        assert health.spares_free < n_spares
        assert health.cycles_used > 0
        assert health.last_bist is not None


class TestSparesExhausted:
    def test_degraded_mode_is_explicit_never_silent(self, config, data):
        stored, queries = data
        # Same damage, but no spares to absorb the dead rows.
        array = ResilientTDAMArray(
            config,
            n_rows=N_ROWS,
            n_spares=0,
            faults=seeded_faults(config, N_ROWS),
            max_masked_stages=2,
        )
        array.write_all(stored)
        array.self_test_and_repair()

        assert array.degraded
        retired = set(array.health_report().retired_rows)
        assert retired

        for query in queries:
            result = array.search(query)
            # Every answer is flagged -- never a silent wrong best.
            assert result.degraded
            assert result.confidence < 1.0
            assert result.retired_rows == tuple(sorted(retired))
            # A retired row can never win, and its reported distance is
            # pinned to the maximum so downstream consumers cannot
            # mistake it for a match.
            assert result.best_row not in retired
            for row in retired:
                assert (
                    result.hamming_distances[row]
                    == result.n_effective_stages
                )

        # Over the surviving rows the repaired answer is still exact.
        assert wrong_best_fraction(array, stored, queries) == 0.0
