"""Hypervector primitives: generation and the bind/bundle/permute algebra.

Hyperdimensional computing represents symbols as very high-dimensional
random vectors and composes them with three operations (Kanerva [7]):

- **bind** (elementwise multiply for bipolar HVs): associates two HVs
  into one dissimilar to both;
- **bundle** (elementwise sum): superposes HVs into one similar to all;
- **permute** (cyclic shift): encodes order/position.

All generators are seeded for reproducibility.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def random_bipolar(
    n: int,
    dimension: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """``n`` random bipolar (+-1) hypervectors, shape (n, dimension)."""
    _check_dims(n, dimension)
    rng = rng if rng is not None else np.random.default_rng()
    return rng.choice(np.array([-1.0, 1.0], dtype=np.float32), size=(n, dimension))


def random_gaussian(
    n: int,
    dimension: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """``n`` random Gaussian hypervectors, shape (n, dimension)."""
    _check_dims(n, dimension)
    rng = rng if rng is not None else np.random.default_rng()
    return rng.standard_normal((n, dimension)).astype(np.float32)


def level_hypervectors(
    n_levels: int,
    dimension: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Correlated level HVs: adjacent levels share most components.

    Standard level-encoding construction: start from a random bipolar HV
    and flip a fresh ``dimension / (2 * (n_levels - 1))`` slice per level,
    so similarity decreases linearly with level distance.
    """
    if n_levels < 2:
        raise ValueError(f"n_levels must be >= 2, got {n_levels}")
    _check_dims(n_levels, dimension)
    rng = rng if rng is not None else np.random.default_rng()
    base = random_bipolar(1, dimension, rng)[0]
    levels = np.empty((n_levels, dimension), dtype=np.float32)
    levels[0] = base
    flips_per_level = dimension // (2 * (n_levels - 1))
    order = rng.permutation(dimension)
    for k in range(1, n_levels):
        levels[k] = levels[k - 1]
        start = (k - 1) * flips_per_level
        idx = order[start : start + flips_per_level]
        levels[k, idx] = -levels[k, idx]
    return levels


def bind(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bind two hypervectors (elementwise product)."""
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"bind shape mismatch: {a.shape} vs {b.shape}")
    return a * b


def bundle(hvs: Sequence[np.ndarray]) -> np.ndarray:
    """Bundle (superpose) hypervectors by elementwise summation."""
    if len(hvs) == 0:
        raise ValueError("bundle requires at least one hypervector")
    stacked = np.stack([np.asarray(h) for h in hvs])
    return stacked.sum(axis=0)


def permute(hv: np.ndarray, shift: int = 1) -> np.ndarray:
    """Permute (cyclically shift) a hypervector; encodes sequence position."""
    hv = np.asarray(hv)
    if hv.ndim != 1:
        raise ValueError(f"permute expects a 1-D hypervector, got {hv.shape}")
    return np.roll(hv, shift)


def _check_dims(n: int, dimension: int) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
