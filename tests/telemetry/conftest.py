"""Telemetry tests run against pristine global state, every time."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def pristine_telemetry():
    """Reset the process-global telemetry state around every test."""
    telemetry.reset()
    yield
    telemetry.reset()
