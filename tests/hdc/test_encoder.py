"""Tests of the feature encoders."""

import numpy as np
import pytest

from repro.hdc.encoder import RandomProjectionEncoder, RecordEncoder


class TestRandomProjectionEncoder:
    def test_output_shape(self):
        enc = RandomProjectionEncoder(10, 64, seed=0)
        out = enc.encode(np.random.default_rng(0).normal(size=(5, 10)))
        assert out.shape == (5, 64)

    def test_single_sample_promoted(self):
        enc = RandomProjectionEncoder(10, 64, seed=0)
        assert enc.encode(np.zeros(10)).shape == (1, 64)

    def test_deterministic_given_seed(self):
        x = np.random.default_rng(1).normal(size=(3, 10))
        a = RandomProjectionEncoder(10, 64, seed=5).encode(x)
        b = RandomProjectionEncoder(10, 64, seed=5).encode(x)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        x = np.random.default_rng(1).normal(size=(3, 10))
        a = RandomProjectionEncoder(10, 64, seed=5).encode(x)
        b = RandomProjectionEncoder(10, 64, seed=6).encode(x)
        assert not np.allclose(a, b)

    def test_nonlinear_output_bounded(self):
        enc = RandomProjectionEncoder(10, 256, nonlinear=True, seed=0)
        out = enc.encode(np.random.default_rng(2).normal(size=(20, 10)))
        assert np.abs(out).max() <= 1.0

    def test_linear_mode_is_projection(self):
        enc = RandomProjectionEncoder(10, 64, nonlinear=False, seed=0)
        x = np.random.default_rng(3).normal(size=(2, 10)).astype(np.float32)
        expected = x @ enc._projection.T
        assert np.allclose(enc.encode(x), expected, atol=1e-5)

    def test_similar_inputs_similar_encodings(self):
        enc = RandomProjectionEncoder(20, 2048, seed=0)
        rng = np.random.default_rng(4)
        x = rng.normal(size=20)
        close = x + 0.01 * rng.normal(size=20)
        far = rng.normal(size=20)
        h = enc.encode(np.stack([x, close, far]))
        d_close = np.linalg.norm(h[0] - h[1])
        d_far = np.linalg.norm(h[0] - h[2])
        assert d_close < 0.3 * d_far

    def test_feature_count_validated(self):
        enc = RandomProjectionEncoder(10, 64, seed=0)
        with pytest.raises(ValueError, match="features"):
            enc.encode(np.zeros((1, 11)))


class TestRecordEncoder:
    def test_output_shape(self):
        enc = RecordEncoder(8, 512, seed=0)
        out = enc.encode(np.zeros((3, 8)))
        assert out.shape == (3, 512)

    def test_identical_inputs_identical_encodings(self):
        enc = RecordEncoder(8, 512, seed=0)
        x = np.random.default_rng(0).uniform(-1, 1, size=(1, 8))
        assert np.array_equal(enc.encode(x), enc.encode(x))

    def test_level_quantization_clips_range(self):
        enc = RecordEncoder(4, 256, feature_range=(-1, 1), seed=0)
        inside = enc.encode(np.full((1, 4), 0.8))
        outside = enc.encode(np.full((1, 4), 50.0))
        # Values beyond the range clip to the top level.
        top = enc.encode(np.full((1, 4), 1.0))
        assert np.array_equal(outside, top)
        assert not np.array_equal(inside, top)

    def test_similar_values_more_similar_encodings(self):
        enc = RecordEncoder(16, 4096, n_levels=32, seed=0)
        base = np.zeros((1, 16))
        near = np.full((1, 16), 0.05)
        far = np.full((1, 16), 0.9)
        h0 = enc.encode(base)[0]
        d_near = np.dot(h0, enc.encode(near)[0])
        d_far = np.dot(h0, enc.encode(far)[0])
        assert d_near > d_far

    def test_validation(self):
        with pytest.raises(ValueError, match="n_levels"):
            RecordEncoder(4, 64, n_levels=1)
        with pytest.raises(ValueError, match="feature_range"):
            RecordEncoder(4, 64, feature_range=(1.0, -1.0))
