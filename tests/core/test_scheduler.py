"""Tests of the operation scheduler and tiling."""

import pytest

from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel
from repro.core.scheduler import (
    T_PRECHARGE_S,
    T_SL_SETUP_S,
    T_TDC_READOUT_S,
    OperationScheduler,
    TileSchedule,
)


@pytest.fixture
def scheduler():
    return OperationScheduler(TDAMConfig(n_stages=128, vdd=0.6))


class TestPhaseSchedule:
    def test_worst_case_budgets_all_stages(self, scheduler):
        schedule = scheduler.schedule(worst_case=True)
        timing = scheduler.timing
        assert schedule.t_step1_s == pytest.approx(timing.step_delay(64))
        assert schedule.t_step2_s == pytest.approx(timing.step_delay(64))

    def test_latency_sums_phases(self, scheduler):
        schedule = scheduler.schedule()
        assert schedule.latency_s == pytest.approx(
            T_PRECHARGE_S + T_SL_SETUP_S + schedule.t_step1_s
            + schedule.t_step2_s + T_TDC_READOUT_S
        )

    def test_pipelined_interval_shorter_than_latency(self, scheduler):
        schedule = scheduler.schedule()
        assert schedule.pipelined_interval_s < schedule.latency_s

    def test_average_case_schedule(self, scheduler):
        avg = scheduler.schedule(worst_case=False, n_mismatch=10)
        worst = scheduler.schedule(worst_case=True)
        assert avg.latency_s < worst.latency_s

    def test_average_case_requires_count(self, scheduler):
        with pytest.raises(ValueError, match="n_mismatch required"):
            scheduler.schedule(worst_case=False)

    def test_mismatch_range_checked(self, scheduler):
        with pytest.raises(ValueError, match="n_mismatch"):
            scheduler.schedule(worst_case=False, n_mismatch=999)

    def test_throughput_pipelining_gain(self, scheduler):
        assert scheduler.searches_per_second(pipelined=True) > (
            scheduler.searches_per_second(pipelined=False)
        )


class TestTileSchedule:
    def test_tile_count_and_padding(self, scheduler):
        tiles = scheduler.tile_schedule(300)
        assert tiles.n_tiles == 3
        assert tiles.padding == 3 * 128 - 300

    def test_exact_fit_has_no_padding(self, scheduler):
        tiles = scheduler.tile_schedule(256)
        assert tiles.n_tiles == 2
        assert tiles.padding == 0

    def test_single_tile_latency_is_full_schedule(self, scheduler):
        tiles = scheduler.tile_schedule(100)
        assert tiles.query_latency_s() == pytest.approx(
            scheduler.schedule().latency_s
        )

    def test_pipelined_beats_serial(self, scheduler):
        tiles = scheduler.tile_schedule(2048)
        assert tiles.query_latency_s(pipelined=True) < (
            tiles.query_latency_s(pipelined=False)
        )

    def test_throughput_scales_inverse_with_tiles(self, scheduler):
        short = scheduler.tile_schedule(128)
        long = scheduler.tile_schedule(1280)
        ratio = short.queries_per_second() / long.queries_per_second()
        assert ratio == pytest.approx(10.0, rel=0.01)

    def test_timeline_lines(self, scheduler):
        tiles = scheduler.tile_schedule(300)
        lines = tiles.phase_timeline()
        assert len(lines) == 3
        assert all("precharge@" in line for line in lines)

    def test_rejects_zero_dimension(self, scheduler):
        with pytest.raises(ValueError, match="dimension"):
            TileSchedule(scheduler, 0)
