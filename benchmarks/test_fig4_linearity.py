"""Bench: Fig. 4 -- delay-chain transients and delay/mismatch linearity.

Regenerates both panels: the transient-measured edge delays of a short
chain (Fig. 4(a)(b) equivalent) and the full 32-stage analytic linearity
sweep (Fig. 4(c)).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig4_linearity import format_fig4, run_fig4


def test_fig4c_linearity_analytic(benchmark):
    result = run_once(
        benchmark, run_fig4, n_stages=32, backend="analytic",
        mismatch_counts=range(0, 33, 4),
    )
    print()
    print(format_fig4(result))
    assert result.r_squared > 0.999999
    slope, intercept = result.linear_fit
    assert slope > 0
    # The intercept is the intrinsic 2-step offset: 2 * N * d_INV.
    assert intercept > 0


def test_fig4ab_transient_edges(benchmark):
    result = run_once(
        benchmark, run_fig4, n_stages=8, backend="transient",
        mismatch_counts=(0, 2, 4, 6, 8), dt=4e-12,
    )
    print()
    print(format_fig4(result))
    assert result.r_squared > 0.98
    # More mismatched even stages -> later rising edge (Fig. 4(a)).
    assert (result.delays_rising_s[1:] >= result.delays_rising_s[:-1]).all()


def test_fig4a_waveform_panel(benchmark):
    """The actual Fig. 4(a) experiment at paper scale: full 32-stage
    transients with the output edge marching out by d_C per mismatch."""
    from repro.experiments.fig4_linearity import run_fig4_waveforms

    result = run_once(
        benchmark, run_fig4_waveforms,
        n_stages=32, mismatch_counts=(0, 8, 16), dt=4e-12,
    )
    print("\nFig. 4(a): output-edge times vs even-stage mismatches")
    for count, t_edge in zip(result.mismatch_counts, result.edge_times_s):
        print(f"  {count:2d} mismatches -> edge at {t_edge * 1e12:7.1f} ps")

    import numpy as np

    increments = np.diff(result.edge_times_s) / np.diff(
        result.mismatch_counts.astype(float)
    )
    # Strictly marching edges with a constant per-mismatch increment.
    assert (np.diff(result.edge_times_s) > 0).all()
    assert increments.std() / increments.mean() < 0.05
