"""HDC classification on the TD-AM: the paper's Sec. IV-B pipeline.

Trains a full-precision HDC model on an ISOLET-like workload, quantizes
the class hypervectors into 2-bit equal-area levels, maps inference onto
a 128-stage/0.6 V TD-AM system, and reports accuracy plus the
architecture-level latency/energy against the GPU cost model.

Run:
    python examples/hdc_classification.py
"""

from repro.baselines.gpu import GPUCostModel, GPUWorkload
from repro.core.config import TDAMConfig
from repro.datasets import make_isolet_like
from repro.hdc import (
    HDCClassifier,
    RandomProjectionEncoder,
    TDAMInference,
    quantize_equal_area,
)

def main() -> None:
    ds = make_isolet_like(n_train=1200, n_test=600)
    print(ds)

    dimension, bits = 2048, 2
    encoder = RandomProjectionEncoder(ds.n_features, dimension, seed=7)
    model = HDCClassifier(encoder, ds.n_classes)
    model.fit(ds.x_train, ds.y_train, epochs=8)
    acc32 = model.accuracy(ds.x_test, ds.y_test)
    print(f"\n32-bit reference accuracy (cosine): {acc32:.3f}")

    quantized = quantize_equal_area(model.prototypes, bits)
    queries = model.encode(ds.x_test)
    acc_q = quantized.accuracy_cosine(queries, ds.y_test)
    print(f"{bits}-bit quantized-model accuracy:    {acc_q:.3f}")

    # Map onto the paper's Fig. 8 system point: 128 stages at 0.6 V.
    config = TDAMConfig(bits=bits, n_stages=128, vdd=0.6)
    inference = TDAMInference(quantized, config=config, n_features=ds.n_features)
    acc_hw = inference.accuracy(quantized.quantize_queries(queries), ds.y_test)
    cost = inference.query_cost()
    print(f"TD-AM hardware (Hamming) accuracy:  {acc_hw:.3f}")
    print(f"\nTD-AM system: {inference.tiles} tiles of 128 stages")
    print(f"  latency per query: {cost.latency_s * 1e9:.1f} ns")
    print(f"  energy per query:  {cost.energy_j * 1e9:.2f} nJ "
          f"(encode {cost.encode_energy_j * 1e9:.2f} nJ, "
          f"search {cost.search_energy_j * 1e12:.1f} pJ)")

    gpu = GPUCostModel()
    workload = GPUWorkload(dimension=dimension, n_classes=ds.n_classes,
                           n_features=ds.n_features)
    speedup = gpu.per_query_time_s(workload) / cost.latency_s
    efficiency = gpu.per_query_energy_j(workload) / cost.energy_j
    print(f"\nvs. {gpu.name}: {speedup:.0f}x speedup, "
          f"{efficiency:.0f}x energy efficiency")

if __name__ == "__main__":
    main()
