"""Ablation studies of the design choices DESIGN.md calls out.

1. **Variable capacitance vs. variable resistance** -- the paper's core
   robustness argument against [22]: putting the FeFET in the signal path
   makes delay exponentially sensitive to V_TH shifts, while the VC
   design couples variation only through the weak MN-residual path.
2. **2-step scheme vs. buffer-based chain** -- replacing the inverters
   with buffers avoids the two-pass operation but costs two extra
   transistors and an extra inverter load per stage.
3. **Cell precision vs. comparison margin** -- more bits per cell shrink
   the level spacing, so the same V_TH sigma flips more comparisons.
4. **Equal-area vs. uniform quantization** -- the paper's probability-
   aware quantizer against a plain uniform grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.baselines.fefinfet import FeFinFETTimeDomainIMC
from repro.core.array import FastTDAMArray
from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel
from repro.datasets.synthetic import Dataset, make_isolet_like
from repro.devices.variation import VariationModel
from repro.hdc.encoder import RandomProjectionEncoder
from repro.hdc.model import HDCClassifier
from repro.hdc.quantize import quantize_equal_area, quantize_uniform
from repro.spice.montecarlo import run_monte_carlo
from repro.experiments._instrument import instrumented


# ----------------------------------------------------------------------
# 1. Variable capacitance vs. variable resistance
# ----------------------------------------------------------------------
@dataclass
class VCvsVRRecord:
    """Delay variability of both chain styles at one sigma."""

    sigma_mv: float
    vc_delay_cv: float
    vr_delay_cv: float
    vr_worst_over_nominal: float


@instrumented("ablation_vc_vs_vr")
def run_ablation_vc_vs_vr(
    sigmas_mv: Sequence[float] = (10.0, 20.0, 40.0, 60.0),
    n_stages: int = 64,
    n_runs: int = 300,
    seed: int = 17,
) -> List[VCvsVRRecord]:
    """Coefficient of variation of chain delay, VC vs. VR, same sigma."""
    config = TDAMConfig(n_stages=n_stages)
    stored = [0] * n_stages
    query = [config.levels - 1] * n_stages
    records: List[VCvsVRRecord] = []
    for sigma in sigmas_mv:

        def vc_trial(rng: np.random.Generator) -> float:
            variation = VariationModel(
                sigma_mv=float(sigma), seed=int(rng.integers(2**31))
            )
            array = FastTDAMArray(config, n_rows=1, variation=variation)
            array.write(0, stored)
            return float(array.search(query).delays_s[0])

        def vr_trial(rng: np.random.Generator) -> float:
            chain = FeFinFETTimeDomainIMC(n_stages=n_stages)
            shifts = rng.normal(0.0, float(sigma) * 1e-3, size=n_stages)
            return chain.chain_delay(shifts)

        vc = run_monte_carlo(vc_trial, n_runs=n_runs, seed=seed)
        vr = run_monte_carlo(vr_trial, n_runs=n_runs, seed=seed)
        nominal_vr = FeFinFETTimeDomainIMC(n_stages=n_stages).nominal_delay()
        records.append(
            VCvsVRRecord(
                sigma_mv=float(sigma),
                vc_delay_cv=vc.coefficient_of_variation,
                vr_delay_cv=vr.coefficient_of_variation,
                vr_worst_over_nominal=float(vr.samples.max() / nominal_vr),
            )
        )
    return records


def format_ablation_vc_vs_vr(records: List[VCvsVRRecord]) -> str:
    rows = [
        {
            "sigma_mV": r.sigma_mv,
            "VC_delay_cv": r.vc_delay_cv,
            "VR_delay_cv": r.vr_delay_cv,
            "VR_worst/nominal": r.vr_worst_over_nominal,
        }
        for r in records
    ]
    return format_table(
        rows,
        title="Ablation 1: delay variability, variable-C vs. variable-R chain",
    )


# ----------------------------------------------------------------------
# 2. 2-step scheme vs. buffer-based chain
# ----------------------------------------------------------------------
@dataclass
class TwoStepComparison:
    """Cost comparison of the two chain organizations."""

    two_step_energy_j: float
    buffer_energy_j: float
    two_step_latency_s: float
    buffer_latency_s: float
    two_step_transistors: int
    buffer_transistors: int

    @property
    def energy_saving(self) -> float:
        return self.buffer_energy_j / self.two_step_energy_j

    @property
    def area_saving(self) -> float:
        return self.buffer_transistors / self.two_step_transistors


@instrumented("ablation_two_step")
def run_ablation_two_step(
    n_stages: int = 32,
    n_mismatch: int = 16,
    config: Optional[TDAMConfig] = None,
) -> TwoStepComparison:
    """Compare the 2-step inverter chain against a buffer-based chain.

    The buffer-based chain needs no edge-parity bookkeeping (a single
    pass evaluates every stage) but each stage carries two inverters:
    twice the intrinsic stage capacitance and delay, and two extra
    transistors per stage.
    """
    config = (config or TDAMConfig()).with_(n_stages=n_stages)
    model = TimingEnergyModel(config)
    ours = model.search_cost(n_mismatch)
    # Buffer-based: one pass, but double intrinsic delay and double the
    # inverter switching capacitance; load-cap and MN costs identical.
    buffer_latency = 2 * n_stages * model.d_inv + n_mismatch * model.d_c
    extra_inverter_energy = n_stages * model.c_stage * config.vdd**2
    buffer_energy = ours.energy_j + extra_inverter_energy
    # Per stage: ours = inverter(2T) + precharge(1T) + switch(1T) + 2 FeFET;
    # buffer-based adds one more inverter (2T).
    two_step_transistors = n_stages * (2 + 1 + 1 + 2)
    buffer_transistors = n_stages * (4 + 1 + 1 + 2)
    return TwoStepComparison(
        two_step_energy_j=ours.energy_j,
        buffer_energy_j=buffer_energy,
        two_step_latency_s=ours.delay_s,
        buffer_latency_s=buffer_latency,
        two_step_transistors=two_step_transistors,
        buffer_transistors=buffer_transistors,
    )


def format_ablation_two_step(result: TwoStepComparison) -> str:
    rows = [
        {
            "organization": "2-step inverter chain (this work)",
            "energy_fJ": result.two_step_energy_j * 1e15,
            "latency_ps": result.two_step_latency_s * 1e12,
            "transistors": result.two_step_transistors,
        },
        {
            "organization": "buffer-based chain",
            "energy_fJ": result.buffer_energy_j * 1e15,
            "latency_ps": result.buffer_latency_s * 1e12,
            "transistors": result.buffer_transistors,
        },
    ]
    return (
        format_table(rows, title="Ablation 2: 2-step vs. buffer-based chain")
        + f"\nenergy saving {result.energy_saving:.2f}x, "
        f"area saving {result.area_saving:.2f}x"
    )


# ----------------------------------------------------------------------
# 3. Cell precision vs. comparison margin
# ----------------------------------------------------------------------
@dataclass
class PrecisionMarginRecord:
    """Comparison-flip statistics at one precision/sigma point."""

    bits: int
    sigma_mv: float
    margin_v: float
    flip_rate: float


@instrumented("ablation_precision_margin")
def run_ablation_precision_margin(
    bits_list: Sequence[int] = (1, 2, 3, 4),
    sigmas_mv: Sequence[float] = (20.0, 40.0, 60.0),
    n_cells: int = 4000,
    seed: int = 23,
) -> List[PrecisionMarginRecord]:
    """Flip rate of adjacent-level comparisons vs. precision and sigma.

    Exercises the failure mode excluded from Fig. 6: a V_TH shift large
    enough to cross the conduction margin makes a cell mis-evaluate.  The
    margin is half a level step, so it halves per extra bit.
    """
    records: List[PrecisionMarginRecord] = []
    for bits in bits_list:
        config = TDAMConfig(bits=int(bits), n_stages=64)
        rng = np.random.default_rng(seed)
        for sigma in sigmas_mv:
            variation = VariationModel(
                sigma_mv=float(sigma), seed=int(rng.integers(2**31))
            )
            array = FastTDAMArray(
                config.with_(n_stages=min(n_cells, 1024)),
                n_rows=1,
                variation=variation,
            )
            n = array.config.n_stages
            flips = 0
            total = 0
            trials = max(1, n_cells // n)
            for _ in range(trials):
                stored_vals = rng.integers(0, config.levels, size=n)
                array.write(0, stored_vals)
                # Adjacent-level mismatches: the tightest margin case.
                query = np.where(
                    stored_vals < config.levels - 1,
                    stored_vals + 1,
                    stored_vals - 1,
                )
                detected = array.mismatch_matrix(query)[0]
                flips += int((~detected).sum())
                # Matches must stay matches.
                detected_eq = array.mismatch_matrix(stored_vals)[0]
                flips += int(detected_eq.sum())
                total += 2 * n
            records.append(
                PrecisionMarginRecord(
                    bits=int(bits),
                    sigma_mv=float(sigma),
                    margin_v=config.conduction_margin,
                    flip_rate=flips / total,
                )
            )
    return records


def format_ablation_precision_margin(
    records: List[PrecisionMarginRecord],
) -> str:
    rows = [
        {
            "bits": r.bits,
            "sigma_mV": r.sigma_mv,
            "margin_mV": r.margin_v * 1e3,
            "flip_rate": r.flip_rate,
        }
        for r in records
    ]
    return format_table(
        rows,
        title="Ablation 3: comparison flip rate vs. cell precision",
        floatfmt=".5f",
    )


# ----------------------------------------------------------------------
# 4. Equal-area vs. uniform quantization
# ----------------------------------------------------------------------
@dataclass
class QuantizerRecord:
    """Accuracy of both quantizers at one (bits, D) point."""

    bits: int
    dimension: int
    equal_area_accuracy: float
    uniform_accuracy: float
    reference_accuracy: float


@instrumented("ablation_quantizer")
def run_ablation_quantizer(
    bits_list: Sequence[int] = (1, 2, 3, 4),
    dimension: int = 2048,
    dataset: Optional[Dataset] = None,
    epochs: int = 6,
    seed: int = 7,
) -> List[QuantizerRecord]:
    """Equal-area vs. uniform quantization on an ISOLET-like task."""
    ds = dataset or make_isolet_like(800, 400)
    encoder = RandomProjectionEncoder(ds.n_features, dimension, seed=seed)
    clf = HDCClassifier(encoder, ds.n_classes).fit(
        ds.x_train, ds.y_train, epochs=epochs
    )
    reference = clf.accuracy(ds.x_test, ds.y_test)
    queries = clf.encode(ds.x_test)
    records: List[QuantizerRecord] = []
    for bits in bits_list:
        ea = quantize_equal_area(clf.prototypes, int(bits))
        un = quantize_uniform(clf.prototypes, int(bits))
        records.append(
            QuantizerRecord(
                bits=int(bits),
                dimension=dimension,
                equal_area_accuracy=ea.accuracy_cosine(queries, ds.y_test),
                uniform_accuracy=un.accuracy_cosine(queries, ds.y_test),
                reference_accuracy=reference,
            )
        )
    return records


def format_ablation_quantizer(records: List[QuantizerRecord]) -> str:
    rows = [
        {
            "bits": r.bits,
            "equal_area": r.equal_area_accuracy,
            "uniform": r.uniform_accuracy,
            "32b_reference": r.reference_accuracy,
        }
        for r in records
    ]
    return format_table(
        rows,
        title="Ablation 4: equal-area vs. uniform class-HV quantization",
        floatfmt=".3f",
    )


if __name__ == "__main__":
    from repro.cli import emit

    emit(format_ablation_vc_vs_vr(run_ablation_vc_vs_vr()))
    emit()
    emit(format_ablation_two_step(run_ablation_two_step()))
    emit()
    emit(format_ablation_precision_margin(run_ablation_precision_margin()))
    emit()
    emit(format_ablation_quantizer(run_ablation_quantizer()))
