"""Tests of the RRAM time-domain CAM baseline."""

import numpy as np
import pytest

from repro.baselines.rram_tdcam import RRAMTimeDomainCAM
from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel


@pytest.fixture
def cam():
    cam = RRAMTimeDomainCAM(n_rows=3, n_bits=8)
    cam.write(0, [0, 1, 0, 1, 0, 1, 0, 1])
    cam.write(1, [1, 1, 1, 1, 0, 0, 0, 0])
    cam.write(2, [0, 0, 0, 0, 0, 0, 0, 0])
    return cam


class TestFunctional:
    def test_mismatch_counts(self, cam):
        counts = cam.mismatch_counts([0, 1, 0, 1, 0, 1, 0, 1])
        assert counts.tolist() == [0, 4, 4]

    def test_full_match_never_trips(self, cam):
        times = cam.discharge_times_s([0, 1, 0, 1, 0, 1, 0, 1])
        assert np.isinf(times[0])

    def test_more_mismatches_discharge_faster(self, cam):
        """The inverse (hyperbolic) time law."""
        times = cam.discharge_times_s([1, 0, 1, 0, 1, 0, 1, 0])  # d=8/2/4
        counts = cam.mismatch_counts([1, 0, 1, 0, 1, 0, 1, 0])
        order = np.argsort(times)
        assert np.array_equal(counts[order], sorted(counts, reverse=True))

    def test_time_is_tau_over_k(self, cam):
        times = cam.discharge_times_s([1, 1, 1, 1, 0, 0, 0, 0])
        counts = cam.mismatch_counts([1, 1, 1, 1, 0, 0, 0, 0])
        finite = counts > 0
        products = times[finite] * counts[finite]
        assert np.allclose(products, products[0])

    def test_write_validation(self, cam):
        with pytest.raises(ValueError, match="bits"):
            cam.write(0, [0, 1, 2, 1, 0, 1, 0, 1])
        with pytest.raises(IndexError, match="row"):
            cam.write(9, [0] * 8)

    def test_search_before_write(self):
        cam = RRAMTimeDomainCAM(n_rows=2, n_bits=4)
        cam.write(0, [0, 1, 0, 1])
        with pytest.raises(RuntimeError, match="before"):
            cam.mismatch_counts([0, 1, 0, 1])


class TestSensingContrast:
    def test_separation_shrinks_hyperbolically(self, cam):
        """Separation between adjacent distances falls ~1/k^2 -- the
        contrast to the proposed design's constant d_C per mismatch."""
        s1 = cam.delay_separation_s(1)
        s4 = cam.delay_separation_s(4)
        assert s1 / s4 == pytest.approx((4 * 5) / (1 * 2), rel=1e-9)

    def test_proposed_design_separation_constant(self, cam):
        timing = TimingEnergyModel(TDAMConfig())
        d1 = timing.chain_delay(2) - timing.chain_delay(1)
        d10 = timing.chain_delay(11) - timing.chain_delay(10)
        assert d1 == pytest.approx(d10)

    def test_large_distance_separation_below_proposed(self, cam):
        """At large distances the RRAM CAM's sensing window collapses
        below the TD-AM's constant LSB."""
        timing = TimingEnergyModel(TDAMConfig())
        assert cam.delay_separation_s(7) < timing.d_c

    def test_design_metadata(self, cam):
        assert cam.design.quantitative
        assert not cam.design.multibit
        assert cam.search_energy_j() == pytest.approx(0.35e-15 * 24)
