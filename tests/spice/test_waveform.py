"""Tests of waveform measurements."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice.waveform import Waveform


def ramp(t0=0.0, t1=1.0, v0=0.0, v1=1.0, n=101):
    t = np.linspace(t0, t1, n)
    return Waveform(t, v0 + (v1 - v0) * (t - t0) / (t1 - t0))


class TestConstruction:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            Waveform([0, 1, 2], [0, 1])

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError, match="two samples"):
            Waveform([0], [1])

    def test_rejects_nonmonotonic_time(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Waveform([0, 1, 1], [0, 1, 2])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            Waveform(np.zeros((2, 2)), np.zeros((2, 2)))


class TestQueries:
    def test_value_at_interpolates(self):
        wf = ramp()
        assert wf.value_at(0.25) == pytest.approx(0.25)

    def test_value_at_clamps(self):
        wf = ramp()
        assert wf.value_at(-1.0) == 0.0
        assert wf.value_at(2.0) == 1.0

    def test_min_max(self):
        wf = Waveform([0, 1, 2], [0.5, -1.0, 2.0])
        assert wf.v_min == -1.0
        assert wf.v_max == 2.0


class TestCrossings:
    def test_rising_crossing_interpolated(self):
        wf = ramp()
        assert wf.first_crossing(0.5, rising=True) == pytest.approx(0.5)

    def test_falling_crossing(self):
        wf = ramp(v0=1.0, v1=0.0)
        assert wf.first_crossing(0.5, rising=False) == pytest.approx(0.5)

    def test_direction_filter(self):
        t = np.linspace(0, 2, 201)
        v = np.where(t < 1, t, 2 - t)  # triangle up then down
        wf = Waveform(t, v)
        ups = wf.crossing_times(0.5, rising=True)
        downs = wf.crossing_times(0.5, rising=False)
        assert len(ups) == 1 and ups[0] == pytest.approx(0.5, abs=0.02)
        assert len(downs) == 1 and downs[0] == pytest.approx(1.5, abs=0.02)

    def test_no_crossing_raises_with_context(self):
        wf = ramp()
        with pytest.raises(ValueError, match="no falling crossing"):
            wf.first_crossing(0.5, rising=False)

    def test_after_parameter(self):
        t = np.linspace(0, 2, 201)
        v = np.where(t < 1, t, 2 - t)
        wf = Waveform(t, v)
        with pytest.raises(ValueError):
            wf.first_crossing(0.5, rising=True, after=1.0)

    def test_delay_to(self):
        early = ramp(t0=0.0, t1=1.0)
        late = ramp(t0=0.5, t1=1.5)
        assert early.delay_to(late, 0.5, rising_self=True,
                              rising_other=True) == pytest.approx(0.5)


class TestSlewAndSettle:
    def test_rising_slew(self):
        wf = ramp()
        # 10%..90% of a unit ramp over 1 s is 0.8 s.
        assert wf.slew() == pytest.approx(0.8, rel=0.02)

    def test_falling_slew(self):
        wf = ramp(v0=1.0, v1=0.0)
        assert wf.slew(rising=False) == pytest.approx(0.8, rel=0.02)

    def test_settled_value_uses_tail(self):
        t = np.linspace(0, 1, 101)
        v = np.where(t < 0.5, 5.0, 1.0)
        wf = Waveform(t, v)
        assert wf.settled_value() == pytest.approx(1.0)


class TestProperties:
    @given(
        level=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=30, deadline=None)
    def test_monotone_ramp_crossing_matches_inverse(self, level):
        wf = ramp()
        assert wf.first_crossing(level, rising=True) == pytest.approx(
            level, abs=0.02
        )

    @given(shift=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_delay_equals_shift(self, shift):
        a = ramp()
        b = ramp(t0=shift, t1=shift + 1.0)
        assert a.delay_to(b, 0.5, rising_self=True,
                          rising_other=True) == pytest.approx(shift, abs=0.02)
