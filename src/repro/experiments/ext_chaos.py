"""Extension experiment: chaos suite over the fault-tolerant service.

Not a paper figure -- the paper characterizes the array; this asks the
deployment question: **when shards time out, snapshots corrupt, and the
process dies mid-checkpoint, does the serving layer still keep its
promises?**  The promises are the SLOs of
:mod:`repro.service.chaos`: no wrong answer ever leaves the service
without the ``degraded`` flag, the deadline hit-rate survives injected
timeouts, and restore always lands on the newest valid snapshot.

The study is a thin, instrumented wrapper around
:func:`repro.service.chaos.run_chaos_suite` so the scenarios run
identically from the CLI (``repro chaos``), CI smoke jobs
(``python -m repro.experiments.ext_chaos --quick``), and tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.core.config import TDAMConfig
from repro.experiments._instrument import instrumented
from repro.service.chaos import ChaosReport, run_chaos_suite


@instrumented("chaos")
def run_chaos_study(
    quick: bool = False,
    seed: int = 7,
    scenarios: Optional[Sequence[str]] = None,
    config: Optional[TDAMConfig] = None,
) -> ChaosReport:
    """Run the chaos scenarios and return the scored report.

    Args:
        quick: CI-sized scenarios (same coverage, fewer requests).
        seed: Master seed for data, fault maps, and retry jitter.
        scenarios: Optional subset of scenario names.
        config: Design-point override.
    """
    return run_chaos_suite(
        quick=quick, seed=seed, scenarios=scenarios, config=config
    )


def format_chaos(report: ChaosReport) -> str:
    """Text rendering of the chaos report."""
    rows = [
        {
            "scenario": s.name,
            "requests": s.n_requests,
            "ok": s.ok,
            "degraded": s.degraded,
            "miss": s.deadline_misses,
            "unavail": s.unavailable,
            "wrong_unflagged": s.wrong_unflagged,
            "retries": s.retries,
            "opens": s.breaker_opens,
            "hit_rate": s.deadline_hit_rate,
            "verdict": "pass" if s.passed else "FAIL",
        }
        for s in report.scenarios
    ]
    mode = "quick" if report.quick else "full"
    body = format_table(
        rows,
        title=(
            f"Extension: chaos suite over the serving layer "
            f"({mode} mode, seed {report.seed})"
        ),
    )
    lines = [body]
    for s in report.scenarios:
        lines.append(f"  {s.name}: {s.notes}")
    verdict = "ALL SLOs HELD" if report.passed else "SLO VIOLATION"
    lines.append(f"{verdict} across {len(report.scenarios)} scenarios")
    return "\n".join(lines)


if __name__ == "__main__":
    import argparse
    import sys

    from repro.cli import emit

    parser = argparse.ArgumentParser(
        description="Chaos suite over the fault-tolerant serving layer"
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized scenarios"
    )
    parser.add_argument("--seed", type=int, default=7)
    cli_args = parser.parse_args()
    report = run_chaos_study(quick=cli_args.quick, seed=cli_args.seed)
    emit(format_chaos(report))
    sys.exit(0 if report.passed else 1)
