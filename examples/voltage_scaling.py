"""Supply-voltage scaling study (Fig. 5(c)(d) style).

Sweeps V_DD for several chain lengths and prints the energy/latency
trade-off, then picks the most energy-efficient operating point subject
to a latency budget -- how a designer would actually use the model.

Run:
    python examples/voltage_scaling.py
"""

from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel
from repro.core.sensing import CounterTDC

def main() -> None:
    latency_budget_ns = 10.0
    print(f"picking the best V_DD under a {latency_budget_ns:.0f} ns "
          f"worst-case latency budget\n")
    header = (
        f"{'vdd':>5} {'n_stages':>8} {'d_C(ps)':>9} {'worst(ns)':>10} "
        f"{'E/bit(fJ)':>10} {'TDC ok':>7}"
    )
    print(header)
    print("-" * len(header))
    best = None
    for n_stages in (32, 64, 128):
        for vdd in (1.1, 0.9, 0.8, 0.7, 0.6, 0.5):
            config = TDAMConfig(vdd=vdd, n_stages=n_stages)
            model = TimingEnergyModel(config)
            tdc = CounterTDC(config, model)
            worst = model.chain_delay(n_stages)
            epb = model.energy_per_bit()
            feasible = worst <= latency_budget_ns * 1e-9 and tdc.resolution_ok
            print(
                f"{vdd:>5.2f} {n_stages:>8d} {model.d_c * 1e12:>9.1f} "
                f"{worst * 1e9:>10.2f} {epb * 1e15:>10.3f} "
                f"{'yes' if tdc.resolution_ok else 'NO':>7}"
                + ("   <- infeasible" if not feasible else "")
            )
            if feasible and (best is None or epb < best[0]):
                best = (epb, vdd, n_stages)
    assert best is not None
    epb, vdd, n_stages = best
    print(
        f"\nbest feasible point: V_DD = {vdd:.2f} V, {n_stages} stages, "
        f"{epb * 1e15:.3f} fJ/bit (paper's best: 0.159 fJ/bit)"
    )

if __name__ == "__main__":
    main()
