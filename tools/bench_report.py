#!/usr/bin/env python
"""Benchmark report: batched-search and Monte Carlo throughput numbers.

Runs the performance microbench suite (``benchmarks/test_perf_microbench.py``)
plus two direct wall-clock studies, and writes ``BENCH_search.json``:

1. **Batched search vs per-query loop** on the Fig. 8-shaped reference
   workload (26 rows x 128 stages, 256 queries): queries/s of
   ``FastTDAMArray.search_batch`` against a Python loop of ``search()``,
   and their ratio (the committed baseline asserts >= 10x).
2. **Shard-parallel Monte Carlo**: wall clock of a Fig. 6 Monte Carlo
   cell with 1 worker vs N workers (same seed; the driver is
   bit-reproducible for any worker count, so only the wall clock moves).

Usage::

    PYTHONPATH=src python tools/bench_report.py [--output BENCH_search.json]
        [--skip-microbench] [--workers N] [--mc-runs N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.array import FastTDAMArray  # noqa: E402
from repro.core.config import TDAMConfig  # noqa: E402
from repro.experiments.fig6_montecarlo import Fig6Trial  # noqa: E402
from repro.spice.montecarlo import run_monte_carlo  # noqa: E402

N_ROWS = 26
N_STAGES = 128
N_QUERIES = 256


def _best_of(fn, repeats: int) -> float:
    """Minimum wall-clock seconds of ``repeats`` timed calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_search_batch(repeats: int = 5) -> dict:
    """Batched vs looped search on the Fig. 8 reference workload."""
    config = TDAMConfig.fig8_system()
    array = FastTDAMArray(config, n_rows=N_ROWS)
    rng = np.random.default_rng(1)
    array.write_all(rng.integers(0, 4, size=(N_ROWS, N_STAGES)))
    queries = rng.integers(0, 4, size=(N_QUERIES, N_STAGES))
    array.search_batch(queries)  # warm up and build the level tables

    t_batch = _best_of(lambda: array.search_batch(queries), repeats)
    t_loop = _best_of(
        lambda: [array.search(q) for q in queries], max(2, repeats // 2)
    )
    batch = array.search_batch(queries)
    exact = all(
        np.array_equal(batch.delays_s[i], array.search(q).delays_s)
        and int(batch.best_rows[i]) == array.search(q).best_row
        for i, q in enumerate(queries)
    )
    return {
        "workload": f"{N_ROWS} rows x {N_STAGES} stages x {N_QUERIES} queries",
        "loop_s": t_loop,
        "batch_s": t_batch,
        "loop_queries_per_s": N_QUERIES / t_loop,
        "batch_queries_per_s": N_QUERIES / t_batch,
        "speedup": t_loop / t_batch,
        "bit_exact": exact,
    }


def bench_monte_carlo(n_runs: int, n_workers: int, repeats: int = 3) -> dict:
    """Serial vs shard-parallel Monte Carlo wall clock (same results)."""
    trial = Fig6Trial(config=TDAMConfig(), sigma_mv=30.0)
    serial = run_monte_carlo(trial, n_runs=n_runs, seed=7)
    parallel = run_monte_carlo(trial, n_runs=n_runs, seed=7,
                               n_workers=n_workers)
    t_serial = _best_of(
        lambda: run_monte_carlo(trial, n_runs=n_runs, seed=7), repeats
    )
    t_parallel = _best_of(
        lambda: run_monte_carlo(trial, n_runs=n_runs, seed=7,
                                n_workers=n_workers),
        repeats,
    )
    return {
        "workload": f"Fig. 6 trial, {n_runs} runs, sigma 30 mV",
        "n_workers": n_workers,
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": t_serial / t_parallel,
        "bit_identical": bool(
            np.array_equal(serial.samples, parallel.samples)
        ),
    }


def run_microbench() -> dict:
    """Run the pytest-benchmark suite; return its stats (name -> mean s)."""
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bench.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest",
                str(REPO_ROOT / "benchmarks" / "test_perf_microbench.py"),
                "-q", f"--benchmark-json={out}",
            ],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0 or not out.exists():
            return {"error": proc.stdout[-2000:] + proc.stderr[-2000:]}
        data = json.loads(out.read_text())
    return {
        bench["name"]: {
            "mean_s": bench["stats"]["mean"],
            "min_s": bench["stats"]["min"],
            "rounds": bench["stats"]["rounds"],
        }
        for bench in data.get("benchmarks", [])
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_search.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--skip-microbench", action="store_true",
        help="skip the pytest-benchmark suite (direct timings only)",
    )
    parser.add_argument(
        "--workers", type=int, default=max(2, os.cpu_count() or 2),
        help="Monte Carlo worker count for the parallel timing",
    )
    parser.add_argument(
        "--mc-runs", type=int, default=200,
        help="Monte Carlo trials per timing",
    )
    args = parser.parse_args(argv)

    report = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "search_batch": bench_search_batch(),
        "monte_carlo": bench_monte_carlo(args.mc_runs, args.workers),
    }
    if not args.skip_microbench:
        report["microbench"] = run_microbench()

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    search = report["search_batch"]
    mc = report["monte_carlo"]
    print(f"search_batch: {search['batch_queries_per_s']:,.0f} queries/s "
          f"({search['speedup']:.1f}x vs loop, "
          f"bit_exact={search['bit_exact']})")
    print(f"monte_carlo:  {mc['speedup']:.2f}x with {mc['n_workers']} "
          f"workers (bit_identical={mc['bit_identical']})")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
