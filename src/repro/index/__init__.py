"""Million-row ANN: memmapped bit-plane store + cluster-routed search.

The scale-out layer above the single in-RAM array:
:class:`BitPlaneStore` persists packed level bit-planes on disk
(crash-safe atomic publish, lazy memmapped shards, checksummed
components), and :class:`ClusteredTDAMIndex` routes each query batch
through a coarse quantizer to its ``nprobe`` nearest clusters, running
the exact prefix-count -> prune -> refine cascade inside only those
shards.  :class:`IndexSearchService` adapts the index to the serving
layer's backend contract (deadlines, typed admission, coalescing
frontend compatibility).
"""

from repro.index.cluster_index import (
    DEFAULT_NPROBE,
    ClusteredTDAMIndex,
    IndexTopKResult,
)
from repro.index.service import (
    IndexSearchResponse,
    IndexSearchService,
    IndexTopKResponse,
)
from repro.index.store import (
    BitPlaneStore,
    BitPlaneStoreError,
    StoreCorruptionError,
    StoreManifestError,
    StoreShard,
    build_store,
    level_inequality_planes,
)

__all__ = [
    "BitPlaneStore",
    "BitPlaneStoreError",
    "ClusteredTDAMIndex",
    "DEFAULT_NPROBE",
    "IndexSearchResponse",
    "IndexSearchService",
    "IndexTopKResponse",
    "IndexTopKResult",
    "StoreCorruptionError",
    "StoreManifestError",
    "StoreShard",
    "build_store",
    "level_inequality_planes",
]
