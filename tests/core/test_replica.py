"""Tests of the replica-chain calibrated TDC."""

import pytest

from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel
from repro.core.replica import (
    ReplicaCalibratedTDC,
    ReplicaMeasurement,
    measure_replica,
)
from repro.core.sensing import CounterTDC
from repro.devices.temperature import technology_at


@pytest.fixture
def config():
    return TDAMConfig(n_stages=64)


class TestReplicaMeasurement:
    def test_measure_replica_matches_timing(self, config):
        timing = TimingEnergyModel(config)
        m = measure_replica(timing, k=16)
        assert m.d_zero_s == pytest.approx(timing.chain_delay(0))
        assert m.d_k_s == pytest.approx(timing.chain_delay(16))

    def test_derived_parameters(self, config):
        timing = TimingEnergyModel(config)
        tdc = ReplicaCalibratedTDC(config, measure_replica(timing))
        assert tdc.d_inv_s == pytest.approx(timing.d_inv)
        assert tdc.d_c_s == pytest.approx(timing.d_c)

    def test_measurement_validation(self):
        with pytest.raises(ValueError, match="mismatch count"):
            ReplicaMeasurement(d_zero_s=1e-9, d_k_s=2e-9, k=0)
        with pytest.raises(ValueError, match="exceed"):
            ReplicaMeasurement(d_zero_s=2e-9, d_k_s=1e-9, k=4)

    def test_measure_replica_k_checked(self, config):
        timing = TimingEnergyModel(config)
        with pytest.raises(ValueError, match="k must be"):
            measure_replica(timing, k=999)


class TestDecode:
    def test_nominal_conditions_roundtrip(self, config):
        timing = TimingEnergyModel(config)
        tdc = ReplicaCalibratedTDC(config, measure_replica(timing))
        for n_mis in (0, 1, 13, 64):
            delay = timing.chain_delay(n_mis)
            assert tdc.decode_mismatches(delay) == n_mis

    def test_drifted_conditions_still_decode(self, config):
        """The headline: replica calibration survives temperature drift
        that breaks the fixed decode."""
        hot_config = config.with_(tech=technology_at(config.tech, 398.0))
        hot_timing = TimingEnergyModel(hot_config)
        fixed = CounterTDC(config)  # stale 300 K calibration
        replica = ReplicaCalibratedTDC(config, measure_replica(hot_timing))
        wrong = exact = 0
        for n_mis in range(0, 65, 8):
            delay = hot_timing.chain_delay(n_mis)
            if fixed.decode_mismatches(delay) != n_mis:
                wrong += 1
            if replica.decode_mismatches(delay) == n_mis:
                exact += 1
        assert wrong > 0          # the fixed decode breaks
        assert exact == 9         # the replica decode does not

    def test_recalibrate_adopts_new_conditions(self, config):
        timing_cold = TimingEnergyModel(
            config.with_(tech=technology_at(config.tech, 273.0))
        )
        timing_hot = TimingEnergyModel(
            config.with_(tech=technology_at(config.tech, 398.0))
        )
        tdc = ReplicaCalibratedTDC(config, measure_replica(timing_cold))
        tdc.recalibrate(measure_replica(timing_hot))
        delay = timing_hot.chain_delay(20)
        assert tdc.decode_mismatches(delay) == 20

    def test_decode_clamps(self, config):
        timing = TimingEnergyModel(config)
        tdc = ReplicaCalibratedTDC(config, measure_replica(timing))
        assert tdc.decode_mismatches(0.0) == 0
        huge = timing.chain_delay(config.n_stages) * 5
        assert tdc.decode_mismatches(huge) == config.n_stages
