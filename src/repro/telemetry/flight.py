"""Flight recorder: tail-based sampling of full request traces.

Head-based sampling (keep every Nth trace) is cheap but blind -- the
requests worth debugging are precisely the slow and broken ones it
usually drops.  A :class:`FlightRecorder` inverts that: every request's
span tree is offered at completion, and only the interesting ones are
*retained* in a bounded ring buffer::

    recorder = FlightRecorder(capacity=256, slow_threshold_s=0.050)
    frontend.flight_recorder = recorder      # wired by the front end
    ...
    recorder.request_ids()                   # every retained request
    recorder.dump_json("tail_traces.json")   # spans attached

Retention rules (any one suffices):

- the outcome is in ``keep_outcomes`` (default: every non-goodput
  outcome -- ``deadline``, ``unavailable``, ``error``, ``shed``);
- latency reached ``slow_threshold_s`` (``None`` disables the rule).

The buffer is a ``deque(maxlen=capacity)``: old retained flights fall
off as new ones land, so memory stays bounded no matter how bad an
incident gets -- exactly like a cockpit flight recorder's loop tape.
Offers are O(1) and lock-guarded; the recorder never blocks dispatch.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.trace import Span

__all__ = ["FlightRecord", "FlightRecorder"]

#: Outcomes retained by default: everything that is not goodput.
DEFAULT_KEEP_OUTCOMES: Tuple[str, ...] = (
    "deadline", "unavailable", "error", "shed",
)


def _span_to_dict(span: Span) -> Dict[str, Any]:
    """One span (and its subtree) as a JSON-ready nested dict."""
    return {
        "name": span.name,
        "attrs": {str(k): repr(v) if not isinstance(
            v, (str, int, float, bool, type(None))
        ) else v for k, v in span.attrs.items()},
        "start_wall_s": span.start_wall_s,
        "duration_s": span.duration_s,
        "thread": span.thread_name,
        "error": span.error,
        "children": [_span_to_dict(c) for c in span.children],
    }


@dataclass
class FlightRecord:
    """One retained flight: a finished request plus its span trees.

    ``spans`` usually holds two roots -- the submit-side span from the
    caller's thread and the batch dispatch span (with the partition /
    index / kernel subtree) from the dispatcher thread.
    """

    request_id: str
    tenant: str
    outcome: str
    latency_s: Optional[float]
    reason: str                     # "outcome" | "slow"
    completed_at: float
    spans: Tuple[Span, ...] = ()
    annotations: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form with span trees serialized inline."""
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "outcome": self.outcome,
            "latency_s": self.latency_s,
            "reason": self.reason,
            "completed_at": self.completed_at,
            "annotations": dict(self.annotations),
            "spans": [_span_to_dict(s) for s in self.spans],
        }


class FlightRecorder:
    """Bounded ring buffer of tail-sampled request traces.

    Args:
        capacity: Retained-flight cap (oldest evicted first).
        slow_threshold_s: Retain goodput requests at or above this
            latency (``None``: never retain on latency alone).
        keep_outcomes: Outcomes always retained.
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_threshold_s: Optional[float] = None,
        keep_outcomes: Sequence[str] = DEFAULT_KEEP_OUTCOMES,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.slow_threshold_s = slow_threshold_s
        self.keep_outcomes = frozenset(keep_outcomes)
        self._lock = threading.Lock()
        self._records: "deque[FlightRecord]" = deque(maxlen=self.capacity)
        self.offered = 0
        self.kept = 0

    def should_keep(
        self, outcome: str, latency_s: Optional[float]
    ) -> Optional[str]:
        """The retention reason for this flight, or ``None`` to drop."""
        if outcome in self.keep_outcomes:
            return "outcome"
        if (
            self.slow_threshold_s is not None
            and latency_s is not None
            and latency_s >= self.slow_threshold_s
        ):
            return "slow"
        return None

    def offer(
        self,
        request_id: str,
        tenant: str,
        outcome: str,
        latency_s: Optional[float],
        completed_at: float,
        spans: Sequence[Optional[Span]] = (),
        **annotations: Any,
    ) -> bool:
        """Offer one finished request; returns whether it was retained."""
        with self._lock:
            self.offered += 1
            reason = self.should_keep(outcome, latency_s)
            if reason is None:
                return False
            self._records.append(
                FlightRecord(
                    request_id=request_id,
                    tenant=tenant,
                    outcome=outcome,
                    latency_s=latency_s,
                    reason=reason,
                    completed_at=completed_at,
                    spans=tuple(s for s in spans if s is not None),
                    annotations=dict(annotations),
                )
            )
            self.kept += 1
            return True

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[FlightRecord]:
        """Snapshot of the retained flights, oldest first."""
        with self._lock:
            return list(self._records)

    def request_ids(self) -> List[str]:
        """Retained request ids, oldest first."""
        with self._lock:
            return [r.request_id for r in self._records]

    def clear(self) -> None:
        """Drop every retained flight (counters keep running)."""
        with self._lock:
            self._records.clear()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary plus every retained flight."""
        with self._lock:
            records = list(self._records)
            offered, kept = self.offered, self.kept
        return {
            "capacity": self.capacity,
            "slow_threshold_s": self.slow_threshold_s,
            "keep_outcomes": sorted(self.keep_outcomes),
            "offered": offered,
            "kept": kept,
            "retained": len(records),
            "flights": [r.to_dict() for r in records],
        }

    def dump_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` (the CI tail-trace
        artifact)."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1, default=repr)
            handle.write("\n")

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({len(self._records)}/{self.capacity} "
            f"retained, {self.offered} offered)"
        )
