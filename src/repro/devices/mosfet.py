"""Behavioral MOSFET models (square-law + subthreshold).

The transient simulator and the analytic delay model both need a smooth,
monotonic I-V characteristic rather than BSIM-grade accuracy.  We use the
classic long-channel square-law model with channel-length modulation in
saturation and an exponential subthreshold region, blended continuously at
the threshold so Newton iterations in :mod:`repro.spice.transient` converge.

Conventions:

- NMOS: ``ids(vgs, vds) >= 0`` for ``vds >= 0``; current flows drain->source.
- PMOS: constructed with negative ``vth``; call with the *device* polarities
  (``vgs`` and ``vds`` negative in normal operation) and the returned
  current is the source->drain current (negative ``ids``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.devices.params import TechnologyParams, UMC40_LIKE


@dataclass(frozen=True)
class MOSFETParams:
    """Electrical parameters of one behavioral MOSFET.

    Attributes:
        vth: Threshold voltage (V); negative for PMOS.
        kp: Transconductance ``mu * C_ox * W / L`` (A/V^2), positive.
        lam: Channel-length modulation coefficient (1/V).
        subthreshold_swing_mv: Subthreshold swing (mV/decade).
        is_pmos: Polarity flag.
        width: Relative device width (multiplies ``kp``); 1.0 is a
            minimum-size device.
    """

    vth: float
    kp: float
    lam: float = 0.08
    subthreshold_swing_mv: float = 85.0
    is_pmos: bool = False
    width: float = 1.0

    def __post_init__(self) -> None:
        if self.kp <= 0:
            raise ValueError(f"kp must be positive, got {self.kp}")
        if self.width <= 0:
            raise ValueError(f"width must be positive, got {self.width}")


class MOSFET:
    """A behavioral MOSFET evaluating drain current and small-signal terms.

    Args:
        params: Electrical parameters.
        name: Optional instance name (used in netlist diagnostics).
    """

    #: Current floor used to keep the device matrix non-singular when off.
    GMIN = 1e-12

    def __init__(self, params: MOSFETParams, name: str = "M") -> None:
        self.params = params
        self.name = name
        # Subthreshold slope factor n = S / (ln(10) * kT/q) at 300 K.
        thermal = 0.02585
        swing_v = params.subthreshold_swing_mv * 1e-3
        self._n_slope = swing_v / (math.log(10.0) * thermal)
        self._thermal = thermal

    # ------------------------------------------------------------------
    # Current evaluation
    # ------------------------------------------------------------------
    def ids(self, vgs: float, vds: float) -> float:
        """Drain-source current (A) at the given bias.

        For PMOS the arguments are device-polarity (normally negative) and
        the returned value is negative in normal conduction, matching the
        SPICE sign convention for current into the drain terminal.
        """
        if self.params.is_pmos:
            # Evaluate the mirror-image NMOS and flip the sign.
            return -self._ids_nmos(-vgs, -vds, -self.params.vth)
        return self._ids_nmos(vgs, vds, self.params.vth)

    def _ids_nmos(self, vgs: float, vds: float, vth: float) -> float:
        """NMOS-polarity current with source/drain swap for vds < 0."""
        if vds < 0:
            # Source and drain exchange roles; vgd becomes the controlling
            # voltage.  I(vgs, vds) = -I(vgs - vds, -vds).
            return -self._ids_nmos(vgs - vds, -vds, vth)
        kp = self.params.kp * self.params.width
        vov = vgs - vth
        n = self._n_slope
        vt = self._thermal
        if vov <= 0.0:
            # Subthreshold: exponential in vov, saturating in vds.
            i0 = kp * (n - 1.0 if n > 1.0 else 0.5) * vt * vt
            isub = (
                i0
                * math.exp(vov / (n * vt))
                * (1.0 - math.exp(-max(vds, 0.0) / vt))
            )
            return isub + self.GMIN * vds
        if vds < vov:
            # Triode.
            i = kp * (vov - 0.5 * vds) * vds
        else:
            # Saturation with channel-length modulation.
            i = 0.5 * kp * vov * vov * (1.0 + self.params.lam * (vds - vov))
        # Keep continuity with the subthreshold branch at vov -> 0+ by
        # adding its (tiny) boundary value; dominated by the square law
        # everywhere except right at threshold.
        i0 = kp * (n - 1.0 if n > 1.0 else 0.5) * vt * vt
        i += i0 * (1.0 - math.exp(-max(vds, 0.0) / vt))
        return i + self.GMIN * vds

    # ------------------------------------------------------------------
    # Derivatives for Newton iteration (finite differences are accurate
    # enough for this behavioral model and keep the code obvious).
    # ------------------------------------------------------------------
    def gm(self, vgs: float, vds: float, delta: float = 1e-6) -> float:
        """Transconductance d(ids)/d(vgs) (S)."""
        return (self.ids(vgs + delta, vds) - self.ids(vgs - delta, vds)) / (2 * delta)

    def gds(self, vgs: float, vds: float, delta: float = 1e-6) -> float:
        """Output conductance d(ids)/d(vds) (S)."""
        return (self.ids(vgs, vds + delta) - self.ids(vgs, vds - delta)) / (2 * delta)

    def on_resistance(self, vdd: float) -> float:
        """Effective switching resistance with full gate drive (ohm).

        Uses the standard effective-resistance approximation
        ``R_eff ~ (3/4) * V_DD / I_Dsat(V_DD)``, which is what the analytic
        delay model in :mod:`repro.core.energy` builds on.
        """
        if self.params.is_pmos:
            idsat = abs(self.ids(-vdd, -vdd))
        else:
            idsat = abs(self.ids(vdd, vdd))
        if idsat <= 0:
            raise ValueError(
                f"{self.name}: zero saturation current at vdd={vdd}; "
                "device cannot switch"
            )
        return 0.75 * vdd / idsat

    def __repr__(self) -> str:
        kind = "PMOS" if self.params.is_pmos else "NMOS"
        return f"MOSFET({self.name}, {kind}, vth={self.params.vth:+.3f} V, w={self.params.width})"


def nmos(
    tech: TechnologyParams = UMC40_LIKE, width: float = 1.0, name: str = "MN"
) -> MOSFET:
    """Construct an NMOS from a technology parameter set."""
    return MOSFET(
        MOSFETParams(
            vth=tech.vth_n,
            kp=tech.kp_n,
            lam=tech.lambda_n,
            subthreshold_swing_mv=tech.subthreshold_swing_mv,
            is_pmos=False,
            width=width,
        ),
        name=name,
    )


def pmos(
    tech: TechnologyParams = UMC40_LIKE, width: float = 2.0, name: str = "MP"
) -> MOSFET:
    """Construct a PMOS from a technology parameter set.

    The default width of 2.0 compensates the hole-mobility deficit so that
    a default inverter has roughly symmetric rise/fall drive.
    """
    return MOSFET(
        MOSFETParams(
            vth=tech.vth_p,
            kp=tech.kp_p,
            lam=tech.lambda_p,
            subthreshold_swing_mv=tech.subthreshold_swing_mv,
            is_pmos=True,
            width=width,
        ),
        name=name,
    )
