"""Sequence (n-gram) hyperdimensional encoding and matching.

The paper motivates the TD-AM with data-intensive similarity workloads
beyond classification -- bioinformatics pattern search among them (its
references include HDGIM, hyperdimensional genome matching on FeFET
arrays [41]).  This module provides the standard sequence-HDC machinery:

- an **item memory** of random bipolar hypervectors per symbol,
- **n-gram binding**: the HV of an n-gram is the bind of its symbols'
  HVs, each permuted by its position,
- **sequence bundling**: a sequence's HV is the bundle of its n-grams,

plus a reference-vs-query matcher that quantizes sequence HVs and runs
them through the TD-AM similarity path (Hamming over multi-bit levels).

The default n-gram length is 5: over a 4-symbol alphabet, trigrams have
only 64 distinct types, so two unrelated sequences share most trigram
*types* and their encodings carry a large common component; 5-grams
(1024 types) keep unrelated sequences nearly orthogonal while point
mutations still disturb only ``n`` grams each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hdc.hypervector import random_bipolar
from repro.hdc.metrics import cosine_similarity

#: Default alphabet: DNA.
DNA_ALPHABET = ("A", "C", "G", "T")


class SequenceEncoder:
    """N-gram hypervector encoder over a finite alphabet.

    Args:
        alphabet: Symbols (e.g. DNA bases).
        dimension: Hypervector dimension.
        n: N-gram length (see the module note on why 5 for DNA).
        seed: Item-memory seed.
    """

    def __init__(
        self,
        alphabet: Sequence[str] = DNA_ALPHABET,
        dimension: int = 4096,
        n: int = 5,
        seed: Optional[int] = 0,
    ) -> None:
        if len(alphabet) < 2:
            raise ValueError("alphabet needs at least two symbols")
        if len(set(alphabet)) != len(alphabet):
            raise ValueError("alphabet symbols must be unique")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        self.alphabet = tuple(alphabet)
        self.dimension = dimension
        self.n = n
        rng = np.random.default_rng(seed)
        items = random_bipolar(len(alphabet), dimension, rng)
        self._items: Dict[str, np.ndarray] = {
            symbol: items[i] for i, symbol in enumerate(alphabet)
        }

    def item(self, symbol: str) -> np.ndarray:
        """The item hypervector of one symbol."""
        try:
            return self._items[symbol]
        except KeyError:
            raise KeyError(
                f"symbol {symbol!r} not in alphabet {self.alphabet}"
            ) from None

    def encode_ngram(self, ngram: str) -> np.ndarray:
        """Bind the position-permuted item HVs of one n-gram."""
        if len(ngram) != self.n:
            raise ValueError(
                f"expected a {self.n}-gram, got {len(ngram)} symbols"
            )
        out = np.ones(self.dimension, dtype=np.float32)
        for position, symbol in enumerate(ngram):
            out = out * np.roll(self.item(symbol), position)
        return out

    def encode(self, sequence: str) -> np.ndarray:
        """Bundle all n-grams of a sequence into one hypervector."""
        if len(sequence) < self.n:
            raise ValueError(
                f"sequence of length {len(sequence)} shorter than n={self.n}"
            )
        acc = np.zeros(self.dimension, dtype=np.float32)
        for start in range(len(sequence) - self.n + 1):
            acc += self.encode_ngram(sequence[start : start + self.n])
        return acc

    def encode_many(self, sequences: Sequence[str]) -> np.ndarray:
        """Encode several sequences; shape (len(sequences), dimension)."""
        return np.stack([self.encode(s) for s in sequences])


@dataclass(frozen=True)
class ScanHit:
    """One window position of a sequence scan.

    Attributes:
        position: Window start offset in the scanned sequence.
        best_index: Best-matching reference at this position.
        similarity: Its cosine similarity.
    """

    position: int
    best_index: int
    similarity: float


@dataclass(frozen=True)
class MatchResult:
    """Outcome of one query against the reference bank.

    Attributes:
        best_index: Index of the most similar reference.
        similarities: Cosine similarity per reference.
    """

    best_index: int
    similarities: np.ndarray


class SequenceMatcher:
    """Reference bank + nearest-sequence queries.

    Args:
        encoder: The shared n-gram encoder.
        references: Reference sequences (e.g. known genomic patterns).
    """

    def __init__(self, encoder: SequenceEncoder, references: Sequence[str]):
        if not references:
            raise ValueError("at least one reference sequence is required")
        self.encoder = encoder
        self.references = list(references)
        self._bank = encoder.encode_many(references)

    def match(self, query: str) -> MatchResult:
        """Most similar reference to a query sequence."""
        q = self.encoder.encode(query)
        sims = cosine_similarity(q, self._bank)[0]
        return MatchResult(best_index=int(sims.argmax()), similarities=sims)

    def scan(
        self,
        long_sequence: str,
        window: Optional[int] = None,
        stride: int = 1,
    ) -> List["ScanHit"]:
        """Slide a window over a long sequence, matching every position.

        The genomics read-mapping primitive: each window is encoded and
        compared against the whole reference bank in one associative
        search.

        Args:
            long_sequence: The sequence to scan.
            window: Window length; defaults to the length of the first
                reference.
            stride: Window step.

        Returns:
            One :class:`ScanHit` per window position.
        """
        window = window if window is not None else len(self.references[0])
        if window < self.encoder.n:
            raise ValueError(
                f"window {window} shorter than the {self.encoder.n}-gram"
            )
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if len(long_sequence) < window:
            raise ValueError("sequence shorter than the window")
        hits: List[ScanHit] = []
        for start in range(0, len(long_sequence) - window + 1, stride):
            result = self.match(long_sequence[start : start + window])
            hits.append(
                ScanHit(
                    position=start,
                    best_index=result.best_index,
                    similarity=float(result.similarities[result.best_index]),
                )
            )
        return hits

    def locate(
        self,
        long_sequence: str,
        reference_index: int,
        stride: int = 1,
    ) -> "ScanHit":
        """Best-matching window position of one reference in a sequence.

        Args:
            long_sequence: The sequence to search.
            reference_index: Which reference to locate.
            stride: Scan stride.
        """
        if not 0 <= reference_index < len(self.references):
            raise IndexError(
                f"reference_index {reference_index} out of range"
            )
        window = len(self.references[reference_index])
        best: Optional[ScanHit] = None
        ref_hv = self._bank[reference_index]
        for start in range(0, len(long_sequence) - window + 1, stride):
            segment = long_sequence[start : start + window]
            sim = float(
                cosine_similarity(self.encoder.encode(segment), ref_hv[None, :])[
                    0, 0
                ]
            )
            if best is None or sim > best.similarity:
                best = ScanHit(
                    position=start, best_index=reference_index, similarity=sim
                )
        if best is None:
            raise ValueError("sequence shorter than the reference")
        return best

    def bank_levels(self, bits: int) -> Tuple[np.ndarray, np.ndarray]:
        """Quantize the bank for TD-AM deployment.

        Returns:
            ``(levels, edges)``: the reference bank as multi-bit level
            vectors plus the shared bin edges (queries are digitized with
            the same edges after per-row normalization).
        """
        from repro.hdc.quantize import quantize_equal_area

        model = quantize_equal_area(self._bank, bits)
        return model.levels, model.edges


def mutate_sequence(
    sequence: str,
    n_mutations: int,
    alphabet: Sequence[str] = DNA_ALPHABET,
    rng: Optional[np.random.Generator] = None,
) -> str:
    """Apply point substitutions (synthetic read-error model).

    Args:
        sequence: The source sequence.
        n_mutations: Substitutions to apply at distinct positions.
        alphabet: Replacement symbols.
        rng: Seeded generator.
    """
    if n_mutations < 0 or n_mutations > len(sequence):
        raise ValueError(
            f"n_mutations must be in [0, {len(sequence)}], got {n_mutations}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    chars = list(sequence)
    positions = rng.choice(len(chars), size=n_mutations, replace=False)
    for pos in positions:
        options = [s for s in alphabet if s != chars[pos]]
        chars[pos] = options[int(rng.integers(len(options)))]
    return "".join(chars)


def random_sequence(
    length: int,
    alphabet: Sequence[str] = DNA_ALPHABET,
    rng: Optional[np.random.Generator] = None,
) -> str:
    """A uniform random sequence over the alphabet."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    rng = rng if rng is not None else np.random.default_rng()
    return "".join(
        alphabet[int(k)] for k in rng.integers(len(alphabet), size=length)
    )
