"""Extension bench: chaos suite over the fault-tolerant serving layer.

Runs the quick chaos suite and prints the scenario scorecard.  The
headline: under injected device faults, shard timeouts, checkpoint
corruption, and mid-save crashes, the service never returns a wrong
answer without the degraded flag, keeps the deadline hit-rate at the
SLO, and always restores the newest valid snapshot.
"""

from benchmarks.conftest import run_once
from repro.experiments.ext_chaos import format_chaos, run_chaos_study
from repro.service.chaos import DEADLINE_SLO


def _study():
    return run_chaos_study(quick=True, seed=7)


def test_ext_chaos_slos(benchmark):
    report = run_once(benchmark, _study)
    print()
    print(format_chaos(report))

    assert report.passed
    by_name = {s.name: s for s in report.scenarios}
    # Honesty SLO: never a wrong answer without the degraded flag.
    for scenario in report.scenarios:
        assert scenario.wrong_unflagged == 0
    # Deadline SLO under injected timeouts, with real retries behind it.
    assert by_name["timeouts"].deadline_hit_rate >= DEADLINE_SLO
    assert by_name["timeouts"].retries > 0
    # The wrecked replica is quarantined, not silently served.
    assert by_name["device_faults"].breaker_opens >= 1
    # Durability: corruption and crash scenarios recovered and served.
    assert by_name["checkpoint_corruption"].ok > 0
    assert by_name["crash_mid_save"].ok > 0
