"""End-to-end encode pipeline: features -> TD-AM query levels.

The TD-AM consumes integer *levels*, but an application holds raw
feature vectors.  Between them sit three fixed transformations that the
classifier and quantizer own jointly:

1. encode -- the random projection (float, or the in-fabric quantized
   MVM of :class:`repro.hdc.encoder.QuantizedProjectionEncoder`);
2. center + L2-normalize with the *classifier's* training statistics
   (the quantizer's bin edges were fitted on exactly this view);
3. digitize with the *quantized model's* shared bin edges.

:class:`EncodePipeline` packages the three so serving code
(:class:`repro.service.encode.EncodeSearchService`) and experiments
cannot recombine them inconsistently, and :func:`build_pipeline`
assembles the whole thing -- including the fabric encoder variant --
from a trained classifier in one call.

When the pipeline's encoder is the in-fabric quantized one, the encode
step itself runs on the fabric's bit-serial MVM kernels and
:meth:`EncodePipeline.encode_cost` reports the modeled fabric
latency/energy of the encode stage (the search stage's cost model lives
with the arrays that serve it).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.config import TDAMConfig
from repro.core.mvm import MVMCost
from repro.hdc.encoder import QuantizedProjectionEncoder, RandomProjectionEncoder
from repro.hdc.model import HDCClassifier
from repro.hdc.quantize import QuantizedModel, quantize_equal_area

__all__ = ["EncodePipeline", "build_pipeline"]

Encoder = Union[RandomProjectionEncoder, QuantizedProjectionEncoder]


class EncodePipeline:
    """Feature -> level pipeline over one trained classifier.

    Args:
        classifier: The trained classifier; supplies the centering /
            normalization statistics (and the default encoder).
        model: The quantized class-hypervector model; supplies the bin
            edges queries must share.
        encoder: Optional encoder override -- pass the classifier
            encoder's :meth:`~repro.hdc.encoder.RandomProjectionEncoder
            .quantize` result to run the encode stage in-fabric.  Must
            match the classifier's encoder geometry.
    """

    def __init__(
        self,
        classifier: HDCClassifier,
        model: QuantizedModel,
        encoder: Optional[Encoder] = None,
    ) -> None:
        classifier._check_trained()
        encoder = encoder if encoder is not None else classifier.encoder
        base = classifier.encoder
        if (
            encoder.n_features != base.n_features
            or encoder.dimension != base.dimension
        ):
            raise ValueError(
                f"encoder geometry ({encoder.n_features}, "
                f"{encoder.dimension}) != classifier encoder geometry "
                f"({base.n_features}, {base.dimension})"
            )
        if model.dimension != base.dimension:
            raise ValueError(
                f"model dimension {model.dimension} != encoder "
                f"dimension {base.dimension}"
            )
        self.classifier = classifier
        self.model = model
        self.encoder = encoder

    @property
    def n_features(self) -> int:
        """Input feature count the pipeline accepts."""
        return self.encoder.n_features

    @property
    def dimension(self) -> int:
        """Hypervector dimension of the encode stage."""
        return self.encoder.dimension

    @property
    def in_fabric(self) -> bool:
        """Whether the encode stage runs on the bit-serial MVM fabric."""
        return isinstance(self.encoder, QuantizedProjectionEncoder)

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Encoded hypervectors as the quantizer expects them:
        projected, centered, and L2-normalized, shape (n, D)."""
        return self.classifier.encode_with(self.encoder, features)

    def query_levels(self, features: np.ndarray) -> np.ndarray:
        """TD-AM query levels for raw feature rows, shape (n, D)."""
        return self.model.quantize_queries(self.encode(features))

    def encode_cost(self, n_samples: int = 1) -> Optional[MVMCost]:
        """Modeled fabric cost of the encode stage, or ``None`` when
        the pipeline encodes in floating point off-fabric."""
        if not self.in_fabric:
            return None
        assert isinstance(self.encoder, QuantizedProjectionEncoder)
        return self.encoder.encode_cost(n_samples)

    def __repr__(self) -> str:
        stage = "fabric" if self.in_fabric else "float"
        return (
            f"EncodePipeline(features={self.n_features}, "
            f"D={self.dimension}, bits={self.model.bits}, "
            f"encode={stage})"
        )


def build_pipeline(
    classifier: HDCClassifier,
    bits: int,
    fabric: bool = False,
    weight_bits: int = 8,
    act_bits: int = 8,
    config: Optional[TDAMConfig] = None,
) -> EncodePipeline:
    """Assemble the full pipeline from a trained classifier.

    Quantizes the class prototypes to ``bits`` with the paper's
    equal-area scheme and, when ``fabric`` is set, swaps the encode
    stage for the quantized in-fabric projection.

    Args:
        classifier: Trained :class:`~repro.hdc.model.HDCClassifier`.
        bits: TD-AM element precision of the stored model.
        fabric: Serve the encode stage on the bit-serial MVM fabric.
        weight_bits: Stored projection width of the fabric encoder.
        act_bits: Streamed activation width of the fabric encoder.
        config: Fabric design point for the encode cost model.
    """
    model = quantize_equal_area(classifier.prototypes, bits)
    encoder: Optional[Encoder] = None
    if fabric:
        encoder = classifier.encoder.quantize(
            weight_bits=weight_bits, act_bits=act_bits, config=config
        )
    return EncodePipeline(classifier, model, encoder=encoder)
