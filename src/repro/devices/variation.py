"""Device variation models.

The paper models "the effect of all FeFET variations as a shift in V_TH"
and extracts per-state standard deviations from the measured 60-device
data of [25]:

    sigma(V_TH0) = 7.1 mV, sigma(V_TH1) = 35 mV,
    sigma(V_TH2) = 45 mV,  sigma(V_TH3) = 40 mV.

Fig. 6 then sweeps a *uniform* sigma (10..60 mV) applied to every FeFET of
the delay chain and inspects the worst-case delay distribution.  Both uses
are covered here:

- :class:`VariationModel` -- draws V_TH shifts either with one global sigma
  (the Fig. 6 sweep) or with the measured per-state sigmas.
- :class:`DeviceEnsemble` -- a population of programmed FeFETs for
  device-to-device I_D-V_G plots (Fig. 1(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.devices.fefet import FeFET, FeFETParams

#: Per-state V_TH standard deviations fitted from measured data [25], in mV.
MEASURED_VTH_SIGMA_MV: Dict[int, float] = {0: 7.1, 1: 35.0, 2: 45.0, 3: 40.0}


@dataclass(frozen=True)
class VariationSample:
    """One drawn variation instance.

    Attributes:
        vth_shifts: Array of per-device V_TH shifts (V).
        sigma_applied: The sigma(s) used for the draw (V), per device.
    """

    vth_shifts: np.ndarray
    sigma_applied: np.ndarray


class VariationModel:
    """Draws device-to-device V_TH shifts.

    Args:
        sigma_mv: Global sigma in millivolts applied to every device, or
            ``None`` to use the measured per-state sigmas
            (:data:`MEASURED_VTH_SIGMA_MV`).
        seed: RNG seed for reproducible Monte Carlo runs.
    """

    def __init__(self, sigma_mv: Optional[float] = None, seed: Optional[int] = None):
        if sigma_mv is not None and sigma_mv < 0:
            raise ValueError(f"sigma_mv must be >= 0, got {sigma_mv}")
        self.sigma_mv = sigma_mv
        self._rng = np.random.default_rng(seed)

    def sigma_for_state(self, state: int) -> float:
        """Sigma (V) used for a device programmed to level ``state``."""
        if self.sigma_mv is not None:
            return self.sigma_mv * 1e-3
        try:
            return MEASURED_VTH_SIGMA_MV[state] * 1e-3
        except KeyError:
            raise ValueError(
                f"no measured sigma for state {state}; "
                f"known states: {sorted(MEASURED_VTH_SIGMA_MV)}"
            ) from None

    def sigmas_for_states(self, states: Sequence[int]) -> np.ndarray:
        """Per-device sigmas (V) for a whole state vector at once.

        Vectorized :meth:`sigma_for_state`: a table lookup instead of a
        per-element Python call, producing the identical floats (the same
        ``mV * 1e-3`` arithmetic).  Bulk writes hand millions of states
        to :meth:`draw`, so this lookup is on the write hot path.
        """
        states = np.asarray(states, dtype=np.int64)
        if self.sigma_mv is not None:
            return np.full(states.shape, self.sigma_mv * 1e-3)
        table = np.full(max(MEASURED_VTH_SIGMA_MV) + 1, np.nan)
        for state, sigma_mv in MEASURED_VTH_SIGMA_MV.items():
            table[state] = sigma_mv * 1e-3
        valid = (states >= 0) & (states < len(table))
        if not bool(valid.all()):
            bad = int(states[~valid].ravel()[0])
            raise ValueError(
                f"no measured sigma for state {bad}; "
                f"known states: {sorted(MEASURED_VTH_SIGMA_MV)}"
            )
        sigmas = table[states]
        if np.isnan(sigmas).any():
            bad = int(states[np.isnan(sigmas)].ravel()[0])
            raise ValueError(
                f"no measured sigma for state {bad}; "
                f"known states: {sorted(MEASURED_VTH_SIGMA_MV)}"
            )
        return sigmas

    def draw(self, states: Sequence[int]) -> VariationSample:
        """Draw one V_TH shift per device.

        Args:
            states: Programmed level of each device (indexes the per-state
                sigma when no global sigma was configured).
        """
        sigmas = self.sigmas_for_states(states)
        shifts = self._rng.normal(0.0, 1.0, size=len(sigmas)) * sigmas
        return VariationSample(vth_shifts=shifts, sigma_applied=sigmas)

    def draw_many(self, states: Sequence[int], n_runs: int) -> np.ndarray:
        """Draw ``n_runs`` independent shift vectors; shape (n_runs, n)."""
        if n_runs < 1:
            raise ValueError(f"n_runs must be >= 1, got {n_runs}")
        sigmas = self.sigmas_for_states(states)
        return self._rng.normal(0.0, 1.0, size=(n_runs, len(sigmas))) * sigmas


class DeviceEnsemble:
    """A device-to-device population of programmed FeFETs (Fig. 1(c)).

    Recreates the flavor of the measured 60-device dataset: every device is
    programmed to each of the four states in turn and its transfer curve is
    recorded, with per-state V_TH spread from the measured sigmas.

    Args:
        n_devices: Population size (the paper measured 60 devices).
        params: Shared FeFET parameters.
        variation: V_TH variation model; defaults to the measured sigmas.
        seed: Ensemble seed.
    """

    def __init__(
        self,
        n_devices: int = 60,
        params: FeFETParams = FeFETParams(),
        variation: Optional[VariationModel] = None,
        seed: Optional[int] = None,
    ) -> None:
        if n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {n_devices}")
        self.n_devices = n_devices
        self.params = params
        self.variation = variation or VariationModel(seed=seed)
        self._rng = np.random.default_rng(seed)

    def programmed_vths(self, state_vths: Sequence[float]) -> np.ndarray:
        """Programmed V_TH of every device at every state.

        Args:
            state_vths: Nominal threshold ladder (e.g. 0.2/0.6/1.0/1.4 V).

        Returns:
            Array of shape ``(n_states, n_devices)``.
        """
        result = np.empty((len(state_vths), self.n_devices))
        for state, nominal in enumerate(state_vths):
            shifts = self.variation.draw([state] * self.n_devices).vth_shifts
            result[state] = nominal + shifts
        return result

    def id_vg_curves(
        self,
        state_vths: Sequence[float],
        vg: Sequence[float],
        vds: float = 0.1,
    ) -> np.ndarray:
        """Transfer curves of the whole population at every state.

        Returns:
            Array of shape ``(n_states, n_devices, len(vg))`` -- the data
            behind the Fig. 1(c) device-to-device measurement plot.
        """
        vths = self.programmed_vths(state_vths)
        vg = np.asarray(vg, dtype=float)
        curves = np.empty((len(state_vths), self.n_devices, len(vg)))
        for state in range(len(state_vths)):
            for dev in range(self.n_devices):
                device = FeFET(
                    self.params,
                    rng=np.random.default_rng(self._rng.integers(2**32)),
                    vth_offset=float(vths[state, dev] - state_vths[state]),
                )
                device.program_vth(state_vths[state])
                curves[state, dev] = device.id_vg(vg, vds)
        return curves

    def vth_statistics(self, state_vths: Sequence[float]) -> List[Dict[str, float]]:
        """Mean/std of the programmed V_TH per state (fit-check vs. paper)."""
        vths = self.programmed_vths(state_vths)
        return [
            {
                "state": float(state),
                "nominal_v": float(state_vths[state]),
                "mean_v": float(vths[state].mean()),
                "std_v": float(vths[state].std(ddof=1)),
            }
            for state in range(len(state_vths))
        ]
