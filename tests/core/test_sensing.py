"""Tests of the counter TDC and sensing-margin analysis."""

import numpy as np
import pytest

from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel
from repro.core.sensing import CounterTDC, SensingAnalysis


@pytest.fixture
def tdc(config):
    return CounterTDC(config)


class TestCounterTDC:
    def test_clock_period(self, config, tdc):
        assert tdc.clock_period_s == pytest.approx(1e-9 / config.tdc_clock_ghz)

    def test_resolution_ok_at_default(self, tdc):
        assert tdc.resolution_ok

    def test_resolution_fails_with_slow_clock(self, config):
        slow = CounterTDC(config.with_(tdc_clock_ghz=1.0))
        assert not slow.resolution_ok

    def test_count_floors(self, tdc):
        period = tdc.clock_period_s
        assert tdc.count(2.5 * period) == 2
        assert tdc.count(0.0) == 0

    def test_count_rejects_negative(self, tdc):
        with pytest.raises(ValueError, match="delay"):
            tdc.count(-1e-12)

    @pytest.mark.parametrize("n_mis", [0, 1, 5, 16, 32])
    def test_decode_roundtrip(self, config, tdc, n_mis):
        delay = tdc.timing.chain_delay(n_mis)
        assert tdc.decode_mismatches(delay) == n_mis

    def test_decode_clamps_to_range(self, config, tdc):
        assert tdc.decode_mismatches(0.0) == 0
        huge = tdc.timing.chain_delay(config.n_stages) * 10
        assert tdc.decode_mismatches(huge) == config.n_stages

    def test_sensing_margin_is_half_lsb(self, tdc):
        assert tdc.sensing_margin_s() == pytest.approx(tdc.timing.d_c / 2)


class TestSensingAnalysis:
    def setup_helper(self, config):
        analysis = SensingAnalysis(config)
        nominal = analysis.timing.chain_delay(10)
        return analysis, nominal

    def test_perfect_samples_full_yield(self, config):
        analysis, nominal = self.setup_helper(config)
        report = analysis.margin_report([nominal] * 20, 10)
        assert report.yield_fraction == 1.0
        assert report.worst_error_s == 0.0

    def test_outliers_reduce_yield(self, config):
        analysis, nominal = self.setup_helper(config)
        margin = analysis.tdc.sensing_margin_s()
        samples = [nominal] * 8 + [nominal + 2 * margin] * 2
        report = analysis.margin_report(samples, 10)
        assert report.yield_fraction == pytest.approx(0.8)

    def test_margin_utilization(self, config):
        analysis, nominal = self.setup_helper(config)
        rng = np.random.default_rng(5)
        margin = analysis.tdc.sensing_margin_s()
        samples = nominal + rng.normal(0, margin / 6, size=2000)
        report = analysis.margin_report(samples, 10)
        assert report.margin_utilization == pytest.approx(0.5, rel=0.1)

    def test_decode_error_rate(self, config):
        analysis, nominal = self.setup_helper(config)
        d_c = analysis.timing.d_c
        samples = [nominal, nominal + 2 * d_c, nominal - 2 * d_c, nominal]
        assert analysis.decode_error_rate(samples, 10) == pytest.approx(0.5)

    def test_empty_samples_rejected(self, config):
        analysis, _ = self.setup_helper(config)
        with pytest.raises(ValueError, match="empty"):
            analysis.margin_report([], 10)


class TestMinimumClock:
    def test_minimum_clock_resolves_one_lsb(self, config):
        tdc = CounterTDC(config)
        min_ghz = tdc.minimum_clock_ghz()
        just_fast_enough = CounterTDC(
            config.with_(tdc_clock_ghz=min_ghz * 1.01)
        )
        too_slow = CounterTDC(config.with_(tdc_clock_ghz=min_ghz * 0.5))
        assert just_fast_enough.resolution_ok
        assert not too_slow.resolution_ok

    def test_bigger_load_cap_relaxes_the_counter(self, config):
        small = CounterTDC(config.with_(c_load_f=6e-15)).minimum_clock_ghz()
        large = CounterTDC(config.with_(c_load_f=96e-15)).minimum_clock_ghz()
        assert large < small


class TestVectorizedTDC:
    """count_array / decode_array must match the scalar paths bit-for-bit,
    including at clock-period boundaries where floor/round are touchy."""

    def boundary_delays(self, tdc):
        """Delays at and around integer clock-tick multiples."""
        period = tdc.clock_period_s
        ticks = np.arange(0, 12, dtype=float)
        exact = ticks * period
        eps = np.spacing(exact[1:])
        return np.concatenate(
            [exact, exact[1:] - eps, exact[1:] + eps]
        )

    def test_count_array_matches_scalar_at_boundaries(self, tdc):
        delays = self.boundary_delays(tdc)
        counts = tdc.count_array(delays)
        assert counts.dtype == np.int64
        for delay, count in zip(delays, counts):
            assert int(count) == tdc.count(float(delay))

    def test_decode_array_matches_scalar_at_boundaries(self, config, tdc):
        timing = TimingEnergyModel(config)
        mismatch_delays = np.array(
            [timing.chain_delay(m) for m in range(config.n_stages + 1)]
        )
        delays = np.concatenate(
            [self.boundary_delays(tdc), mismatch_delays]
        )
        decoded = tdc.decode_array(delays)
        assert decoded.dtype == np.int64
        for delay, value in zip(delays, decoded):
            assert int(value) == tdc.decode_mismatches(float(delay))

    def test_decode_array_clamps_like_scalar(self, config, tdc):
        timing = TimingEnergyModel(config)
        huge = timing.chain_delay(config.n_stages) * 10.0
        assert tdc.decode_array(np.array([huge]))[0] == config.n_stages
        assert tdc.decode_array(np.array([0.0]))[0] == 0

    def test_count_array_preserves_shape(self, tdc):
        delays = np.full((3, 4), 5 * tdc.clock_period_s)
        assert tdc.count_array(delays).shape == (3, 4)
        assert tdc.decode_array(delays).shape == (3, 4)

    def test_count_array_rejects_negative(self, tdc):
        with pytest.raises(ValueError, match=">= 0"):
            tdc.count_array(np.array([1e-9, -1e-12]))

    def test_empty_input(self, tdc):
        assert tdc.count_array(np.array([])).shape == (0,)
        assert tdc.decode_array(np.array([])).shape == (0,)
