"""Tests of the TD-AM netlist builders (structure-level)."""

import numpy as np
import pytest

from repro.core.config import TDAMConfig
from repro.core.netlist_builder import build_cell_circuit, build_chain_circuit
from repro.core.stage import STEP_I, STEP_II


class TestCellBuilder:
    def test_cell_circuit_validates(self, rng):
        net = build_cell_circuit(TDAMConfig(), stored=1, query=2, rng=rng)
        net.circuit.validate()

    def test_cell_has_match_node(self, rng):
        net = build_cell_circuit(TDAMConfig(), stored=1, query=2, rng=rng)
        assert net.mn_node in net.circuit.nodes


class TestChainBuilder:
    def build(self, n_stages=4, step=STEP_I, stored=None, query=None, **kw):
        config = TDAMConfig(n_stages=n_stages)
        stored = stored if stored is not None else [0] * n_stages
        query = query if query is not None else [0] * n_stages
        return build_chain_circuit(
            config, stored, query, step=step,
            rng=np.random.default_rng(1), **kw
        )

    def test_chain_circuit_validates(self):
        self.build().circuit.validate()

    def test_node_lists_sized(self):
        net = self.build(n_stages=6)
        assert len(net.stage_out_nodes) == 6
        assert len(net.mn_nodes) == 6
        assert net.output_node == net.stage_out_nodes[-1]

    def test_active_mismatch_counting_step_i(self):
        # stages 0 and 2 (even) mismatch; stage 1 (odd) parked in step I.
        net = self.build(query=[1, 1, 1, 0])
        assert net.active_mismatches == 2

    def test_active_mismatch_counting_step_ii(self):
        net = self.build(query=[1, 1, 1, 0], step=STEP_II,
                         rising_input=False)
        assert net.active_mismatches == 1

    def test_output_parity_even_chain(self):
        net = self.build(n_stages=4)
        assert net.output_edge_rising  # even inversions preserve polarity

    def test_output_parity_odd_chain(self):
        net = self.build(n_stages=3)
        assert not net.output_edge_rising

    def test_v_init_alternates_dc_levels(self):
        net = self.build(n_stages=4)
        config_vdd = TDAMConfig().vdd
        assert net.v_init["s0_out"] == pytest.approx(config_vdd)
        assert net.v_init["s1_out"] == pytest.approx(0.0)
        assert net.v_init["s2_out"] == pytest.approx(config_vdd)

    def test_mn_precharged_in_v_init(self):
        net = self.build()
        for mn in net.mn_nodes:
            assert net.v_init[mn] == pytest.approx(TDAMConfig().vdd)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError, match="step"):
            self.build(step="X")

    def test_rejects_wrong_vector_length(self):
        config = TDAMConfig(n_stages=4)
        with pytest.raises(ValueError, match="length"):
            build_chain_circuit(config, [0, 1], [0, 1],
                                rng=np.random.default_rng(1))

    def test_stop_hint_covers_worst_case(self):
        net = self.build(query=[1, 1, 1, 1])
        assert net.t_stop_hint > net.t_pulse
