"""End-to-end request tracing through the serving stack.

The acceptance bar for the tracing layer: one submitted request must be
followable by its id from the frontend submit span, across the
coalesced batch dispatch, through the service and resilience layers,
down to the array sense spans -- and the Chrome-trace export must link
the submit-to-dispatch hop with flow arrows.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.service import CoalescePolicy, CoalescingFrontend
from repro.telemetry import FlightRecorder

from tests.service.conftest import make_service


@pytest.fixture
def queries(config):
    return np.random.default_rng(11).integers(
        0, config.levels, size=(8, config.n_stages)
    )


def make_frontend(service, clock, **kwargs):
    return CoalescingFrontend(
        service,
        policy=CoalescePolicy(window_s=0.01, max_batch=8),
        clock=clock.now,
        auto_dispatch=False,
        **kwargs,
    )


def roots_named(name):
    return [
        r for r in telemetry.get_tracer().roots() if r.name == name
    ]


class TestRequestIdPropagation:
    def test_submit_spans_carry_sequential_ids(
        self, service, clock, queries
    ):
        telemetry.enable()
        frontend = make_frontend(service, clock)
        for i in range(3):
            frontend.submit(queries[i], deadline_s=1.0, tenant="acme")
        submits = roots_named("frontend.submit")
        assert [s.attrs["request_id"] for s in submits] == [
            "req-000001", "req-000002", "req-000003",
        ]
        assert all(s.attrs["tenant"] == "acme" for s in submits)
        # Each submit opened a flow edge for its own id.
        assert [s.flows_out for s in submits] == [
            ["req-000001"], ["req-000002"], ["req-000003"],
        ]

    def test_batch_dispatch_names_every_member(
        self, service, clock, queries
    ):
        telemetry.enable()
        frontend = make_frontend(service, clock)
        futures = [
            frontend.submit(queries[i], deadline_s=1.0) for i in range(3)
        ]
        clock.advance(0.02)
        frontend.pump()
        assert all(f.done() for f in futures)
        (dispatch,) = roots_named("frontend.dispatch")
        member_ids = ["req-000001", "req-000002", "req-000003"]
        # The batch minted its own identity, carrying the members.
        assert dispatch.attrs["request_id"].startswith("batch-")
        assert dispatch.attrs["request_ids"] == member_ids
        assert dispatch.attrs["bg.request_ids"] == member_ids
        assert dispatch.flows_in == member_ids

    def test_lone_request_keeps_its_identity_through_dispatch(
        self, service, clock, queries
    ):
        telemetry.enable()
        frontend = make_frontend(service, clock)
        frontend.submit(queries[0], deadline_s=1.0)
        clock.advance(0.02)
        frontend.pump()
        (dispatch,) = roots_named("frontend.dispatch")
        # Single-member batch: no batch id minted, the request's own
        # id tags the entire downstream subtree.
        assert dispatch.attrs["request_id"] == "req-000001"

    def test_id_reaches_the_array_sense_spans(
        self, service, clock, queries
    ):
        telemetry.enable()
        frontend = make_frontend(service, clock)
        frontend.submit(queries[0], deadline_s=1.0)
        clock.advance(0.02)
        frontend.pump()
        (dispatch,) = roots_named("frontend.dispatch")
        names = [node.name for node in dispatch.walk()]
        # The whole serving path nests under the dispatch span...
        assert "service.serve" in names
        assert "resilience.search_batch" in names
        assert "array.sense" in names
        # ...and every span of the subtree carries the request id.
        for node in dispatch.walk():
            assert node.attrs["request_id"] == "req-000001", node.name

    def test_future_exposes_its_request_id(self, service, clock, queries):
        telemetry.enable()
        frontend = make_frontend(service, clock)
        future = frontend.submit(queries[0], deadline_s=1.0)
        assert future.request_id == "req-000001"

    def test_ids_not_minted_when_telemetry_off(
        self, service, clock, queries
    ):
        frontend = make_frontend(service, clock)
        future = frontend.submit(queries[0], deadline_s=1.0)
        assert future.request_id is None
        assert telemetry.get_tracer().roots() == ()


class TestChromeTraceFlows:
    def test_flow_events_link_submit_to_dispatch(
        self, service, clock, queries
    ):
        telemetry.enable()
        frontend = make_frontend(service, clock)
        for i in range(3):
            frontend.submit(queries[i], deadline_s=1.0)
        clock.advance(0.02)
        frontend.pump()
        trace = telemetry.get_tracer().to_chrome_trace()
        events = trace["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert {e["name"] for e in starts} == {
            "req-000001", "req-000002", "req-000003",
        }
        # Every flow start has a matching finish under the same id.
        assert sorted(e["id"] for e in starts) == sorted(
            e["id"] for e in finishes
        )
        # Complete events cover the whole serving path.
        span_names = {e["name"] for e in events if e["ph"] == "X"}
        assert {"frontend.submit", "frontend.dispatch",
                "service.serve", "array.sense"} <= span_names
        # Thread metadata names every tid that emitted spans.
        named_tids = {
            e["tid"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {
            e["tid"] for e in events if e["ph"] == "X"
        } <= named_tids


class TestFlightRecorderWiring:
    def test_queue_deadline_shed_is_retained_with_its_spans(
        self, service, clock, queries
    ):
        telemetry.enable()
        recorder = FlightRecorder(capacity=16)
        frontend = make_frontend(service, clock, flight_recorder=recorder)
        future = frontend.submit(queries[0], deadline_s=0.005)
        # The deadline expires while the request sits in the window.
        clock.advance(0.02)
        frontend.pump()
        assert future.done()
        assert recorder.request_ids() == ["req-000001"]
        (record,) = recorder.records()
        assert record.outcome == "shed"
        assert record.annotations["reason"] == "queue_deadline"
        assert [s.name for s in record.spans] == ["frontend.submit"]

    def test_goodput_is_not_retained(self, service, clock, queries):
        telemetry.enable()
        recorder = FlightRecorder(capacity=16)
        frontend = make_frontend(service, clock, flight_recorder=recorder)
        frontend.submit(queries[0], deadline_s=1.0)
        clock.advance(0.02)
        frontend.pump()
        assert recorder.offered == 1
        assert len(recorder) == 0
