"""Bench: Fig. 8 -- TD-AM system vs GPU speedup and energy efficiency."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig8_gpu_comparison import format_fig8, run_fig8


def test_fig8_gpu_comparison(benchmark):
    result = run_once(
        benchmark, run_fig8, dimensions=(512, 1024, 2048, 5120, 10240)
    )
    print()
    print(format_fig8(result))

    # Small-D speedups land in the paper's 194x..287x band (loose).
    lo, hi = result.speedup_range_at(512)
    assert 150 < lo and hi < 350
    # Attenuation to the paper's 11.65x average at the highest D.
    assert result.average_speedup_at(10240) == pytest.approx(11.65, rel=0.5)
    # Energy efficiency: thousands at small D, ~303x average at high D.
    assert 4000 < result.average_efficiency_at(512) < 8000
    assert result.average_efficiency_at(10240) == pytest.approx(303, rel=0.3)


def test_fig8_precision_parity_point(benchmark):
    """The paper's 3-4 bit / 1024-D point: 124.8x speedup, 2837x energy."""
    result = run_once(benchmark, run_fig8, dimensions=(1024,), bits=4)
    speedup = result.average_speedup_at(1024)
    efficiency = result.average_efficiency_at(1024)
    print(f"\n3-4 bit @ 1024-D: speedup {speedup:.1f}x (paper 124.8x), "
          f"energy efficiency {efficiency:.0f}x (paper 2837x)")
    assert speedup == pytest.approx(124.8, rel=0.25)
    assert efficiency == pytest.approx(2837, rel=0.25)
