"""Open-loop load generation over the socket transport.

The wall-clock sibling of :func:`repro.service.loadgen.run_load`: the
same seeded traffic (arrival times, tenants, query choices), the same
honesty scoring, the same :class:`~repro.service.loadgen.LoadReport`
artifact -- but offered through :class:`~repro.net.client
.RemoteFrontend` against a real server across a real socket.

Determinism across two processes comes from one invariant: **both
sides derive the corpus from the seed, in the same rng order**.
``repro serve --seed N`` builds its stored matrix with
:func:`derive_corpus`; ``repro loadtest --remote --seed N`` derives
the identical matrix, replays the reference answers through a private
seeded in-process service, and scores every remote ``degraded=False``
answer bit-exactly against them.  A transport that flips a bit, drops
a frame, or reorders a response can therefore never be graded
"healthy" by accident -- any silent corruption lands in
``wrong_unflagged`` and fails the honesty SLO.

The run stays open-loop on the wall clock: nominal arrival times are
fixed up front; a scheduler offers each request at its nominal time
regardless of how the server is doing, and latency is charged from the
nominal arrival.  Requests that cannot even start before their
deadline (every worker busy past the budget) are counted as
``queue_deadline`` sheds -- client-side dead-on-arrivals, exactly like
the in-process generator's.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import TDAMConfig
from repro.net.client import RemoteFrontend
from repro.net.wire import WireProtocolError
from repro.service.admission import AdmissionController, TenantQuotas
from repro.service.chaos import FakeClock, _build_shards
from repro.service.coalesce import CoalescePolicy
from repro.service.errors import (
    AdmissionRejectedError,
    AllShardsUnavailableError,
    DeadlineExceededError,
    QuotaExceededError,
    ServiceError,
)
from repro.service.frontend import CoalescingFrontend
from repro.service.loadgen import LoadConfig, LoadReport, TenantReport
from repro.service.server import TDAMSearchService
from repro.telemetry.sketch import QuantileSketch

__all__ = [
    "derive_corpus",
    "build_server_stack",
    "compute_reference",
    "run_remote_load",
]


def derive_corpus(config: LoadConfig) -> Tuple[np.ndarray, np.ndarray]:
    """The seeded (stored matrix, query pool) both sides agree on.

    Consumes the seed's rng in exactly the order
    :func:`~repro.service.loadgen.run_load` does (stored first, pool
    second), so a server and a load generator in different processes
    derive identical corpora from the seed alone.
    """
    tdam = TDAMConfig(n_stages=config.n_stages)
    rng = np.random.default_rng(config.seed)
    stored = rng.integers(
        0, tdam.levels, (config.n_rows, tdam.n_stages)
    )
    pool = rng.integers(
        0, tdam.levels, (config.pool_size, tdam.n_stages)
    )
    return stored, pool


def build_server_stack(
    config: LoadConfig,
) -> Tuple[TDAMSearchService, CoalescingFrontend]:
    """The wall-clock service + front end ``repro serve`` runs.

    Same topology as the fake-clock loadtest stack (replicated shards,
    quotas, bounded queue, coalescing) but on real time, with the
    simulated per-attempt cost realized as an actual sleep -- the knob
    that gives the socket smoke test a controllable capacity ceiling.
    """
    shards = _build_shards(
        TDAMConfig(n_stages=config.n_stages),
        config.n_rows,
        n_shards=config.n_shards,
        n_spares=2,
        seed=config.seed,
    )
    service = TDAMSearchService(
        shards, default_deadline_s=config.deadline_s
    )
    if config.attempt_base_s > 0 or config.attempt_per_query_s > 0:
        def cost(shard_id: str, queries: np.ndarray) -> None:
            time.sleep(
                config.attempt_base_s
                + config.attempt_per_query_s * queries.shape[0]
            )

        service.add_interceptor(cost)
    stored, _ = derive_corpus(config)
    service.write_all(stored)
    quotas = TenantQuotas(
        default_rate_per_s=config.quota_rate_per_s,
        default_burst=config.quota_burst,
    )
    for tenant, (rate, burst) in (config.quota_overrides or {}).items():
        quotas.set_quota(tenant, rate, burst=burst)
    frontend = CoalescingFrontend(
        service,
        policy=CoalescePolicy(
            window_s=config.window_s, max_batch=config.max_batch
        ),
        admission=AdmissionController(
            max_queue_depth=config.max_queue_depth,
            quotas=quotas,
            overload_retry_after_s=config.window_s,
        ),
        auto_dispatch=True,
        name="remote-frontend",
    )
    return service, frontend


def compute_reference(config: LoadConfig) -> Tuple[np.ndarray, list]:
    """The query pool and its direct seeded in-process answers.

    The honesty oracle: a private fake-clock service (identical seed,
    identical stored matrix) answers every pool query directly, and
    remote ``degraded=False`` answers must match these bit-for-bit.
    """
    from repro.service.loadgen import _build_service

    clock = FakeClock()
    service = _build_service(config, clock)
    stored, pool = derive_corpus(config)
    service.write_all(stored)
    if config.kind == "search":
        reference = [
            service.search(pool[i], deadline_s=10.0)
            for i in range(config.pool_size)
        ]
    else:
        reference = [
            service.top_k(pool[i][None, :], config.k, deadline_s=10.0)
            for i in range(config.pool_size)
        ]
    return pool, reference


def _matches_remote(config: LoadConfig, response, reference) -> bool:
    if config.kind == "search":
        if response.best_row != reference.best_row:
            return False
        if response.best_row < 0:
            return True
        return response.best_distance == float(
            reference.result.hamming_distances[response.best_row]
        )
    return np.array_equal(response.rows, reference.rows[0])


def run_remote_load(
    config: Optional[LoadConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    n_workers: int = 16,
    client_factory: Optional[Callable[[], RemoteFrontend]] = None,
) -> LoadReport:
    """Offer one seeded open-loop run over the wire; score it.

    Args:
        config: The same knobs as the in-process generator; the server
            must have been started from the same ``seed`` / ``n_rows``
            / ``n_stages`` (``repro serve`` enforces this by building
            from one shared :func:`derive_corpus`).
        host / port: The running server.
        n_workers: Client worker threads (the in-flight ceiling; an
            arrival with no free worker waits, its budget burning,
            exactly like a queue).
        client_factory: Override client construction (tests inject
            fault plans here); default builds a plain
            :class:`~repro.net.client.RemoteFrontend`.
    """
    config = config if config is not None else LoadConfig()
    pool, reference = compute_reference(config)

    # Arrival schedule: continue the SAME rng stream the corpus came
    # from, mirroring run_load's draw order exactly.
    rng = np.random.default_rng(config.seed)
    tdam = TDAMConfig(n_stages=config.n_stages)
    rng.integers(0, tdam.levels, (config.n_rows, tdam.n_stages))
    rng.integers(0, tdam.levels, (config.pool_size, tdam.n_stages))
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / config.rate_per_s)
        if t >= config.duration_s:
            break
        arrivals.append(t)
    weights = (
        np.asarray(config.tenant_weights, dtype=float)
        if config.tenant_weights is not None
        else np.ones(config.n_tenants)
    )
    weights = weights / weights.sum()
    tenant_ids = rng.choice(
        config.n_tenants, size=len(arrivals), p=weights
    )
    query_ids = rng.integers(0, config.pool_size, size=len(arrivals))

    if client_factory is None:
        def client_factory() -> RemoteFrontend:
            return RemoteFrontend(
                host, port, default_deadline_s=config.deadline_s
            )

    tenants: Dict[str, TenantReport] = {
        f"t{i}": TenantReport() for i in range(config.n_tenants)
    }
    lock = threading.Lock()
    counts = {
        "ok": 0, "degraded": 0, "deadline": 0, "unavailable": 0,
        "errors": 0, "wrong_unflagged": 0, "shed_quota": 0,
        "shed_queue_full": 0, "shed_queue_deadline": 0, "admitted": 0,
    }
    latencies: List[float] = []
    sketch = QuantileSketch(relative_accuracy=0.01)

    import queue as _queue

    work: "_queue.Queue[Optional[int]]" = _queue.Queue()
    start = time.monotonic()

    def offer(client: RemoteFrontend, idx: int) -> None:
        t_nominal = arrivals[idx]
        tenant = f"t{int(tenant_ids[idx])}"
        qi = int(query_ids[idx])
        nominal_at = start + t_nominal
        budget_s = (nominal_at + config.deadline_s) - time.monotonic()
        if budget_s <= 0:
            # Every worker was busy past this request's whole budget: a
            # client-side dead-on-arrival -- shed, not miss (no byte of
            # it ever reached the server).
            with lock:
                counts["shed_queue_deadline"] += 1
                tenants[tenant].shed_overload += 1
            return
        try:
            if config.kind == "search":
                response = client.search(
                    pool[qi], tenant=tenant, deadline_s=budget_s
                )
            else:
                response = client.top_k(
                    pool[qi], config.k, tenant=tenant,
                    deadline_s=budget_s,
                )
        except QuotaExceededError:
            with lock:
                counts["shed_quota"] += 1
                tenants[tenant].shed_quota += 1
            return
        except AdmissionRejectedError as exc:
            with lock:
                if exc.reason == "queue_deadline":
                    counts["shed_queue_deadline"] += 1
                else:
                    counts["shed_queue_full"] += 1
                tenants[tenant].shed_overload += 1
            return
        except DeadlineExceededError:
            with lock:
                counts["admitted"] += 1
                counts["deadline"] += 1
            return
        except AllShardsUnavailableError:
            with lock:
                counts["admitted"] += 1
                counts["unavailable"] += 1
            return
        except (WireProtocolError, ServiceError, OSError):
            with lock:
                counts["admitted"] += 1
                counts["errors"] += 1
            return
        latency = time.monotonic() - nominal_at
        with lock:
            counts["admitted"] += 1
            tenants[tenant].admitted += 1
            tenants[tenant].answered += 1
            latencies.append(latency)
            sketch.add(max(latency, 0.0))
            if response.degraded:
                counts["degraded"] += 1
            elif _matches_remote(config, response, reference[qi]):
                counts["ok"] += 1
            else:
                # Goodput claimed exact but disagreed with the oracle:
                # the one number the honesty SLO exists to keep at 0.
                counts["ok"] += 1
                counts["wrong_unflagged"] += 1

    def worker() -> None:
        client = client_factory()
        try:
            while True:
                idx = work.get()
                if idx is None:
                    return
                try:
                    offer(client, idx)
                except Exception:
                    # Whatever slipped past the typed handlers, the
                    # worker must survive to drain the queue.
                    with lock:
                        counts["errors"] += 1
                finally:
                    work.task_done()
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(n_workers)
    ]
    for th in threads:
        th.start()
    for idx, t_nominal in enumerate(arrivals):
        tenant = f"t{int(tenant_ids[idx])}"
        with lock:
            tenants[tenant].offered += 1
        # Open loop: enqueue at the nominal time no matter how the
        # service (or the worker pool) is doing.
        delay = (start + t_nominal) - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        work.put(idx)
    work.join()
    for _ in threads:
        work.put(None)
    for th in threads:
        th.join(timeout=10.0)
    elapsed = time.monotonic() - start

    lat = np.asarray(latencies) if latencies else np.asarray([0.0])
    import math

    return LoadReport(
        config=config,
        offered=len(arrivals),
        admitted=counts["admitted"],
        shed_quota=counts["shed_quota"],
        shed_queue_full=counts["shed_queue_full"],
        shed_queue_deadline=counts["shed_queue_deadline"],
        ok=counts["ok"],
        degraded=counts["degraded"],
        deadline_misses=counts["deadline"],
        unavailable=counts["unavailable"],
        errors=counts["errors"],
        wrong_unflagged=counts["wrong_unflagged"],
        p50_s=float(np.percentile(lat, 50)),
        p99_s=float(np.percentile(lat, 99)),
        mean_batch_size=0.0,
        batches=0,
        simulated_s=elapsed,
        tenants=tenants,
        p95_s=float(np.percentile(lat, 95)),
        p99_rank_s=float(
            np.sort(lat)[int(math.floor(0.99 * (lat.size - 1)))]
        ),
        sketch_p50_s=sketch.quantile(0.50),
        sketch_p95_s=sketch.quantile(0.95),
        sketch_p99_s=sketch.quantile(0.99),
        sketch_relative_accuracy=sketch.relative_accuracy,
    )
