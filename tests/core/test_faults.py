"""Tests of hard-fault injection."""

import numpy as np
import pytest

from repro.core.array import FastTDAMArray
from repro.core.config import TDAMConfig
from repro.core.faults import (
    Fault,
    FaultInjector,
    FaultType,
    FaultyTDAMArray,
    search_error_statistics,
)


@pytest.fixture
def clean_array():
    config = TDAMConfig(n_stages=16)
    array = FastTDAMArray(config, n_rows=4)
    stored = np.random.default_rng(0).integers(0, 4, size=(4, 16))
    array.write_all(stored)
    return array, stored


class TestFaultEffects:
    def test_no_faults_is_transparent(self, clean_array):
        array, stored = clean_array
        faulty = FaultyTDAMArray(array, [])
        clean = array.search(stored[1])
        wrapped = faulty.search(stored[1])
        assert np.array_equal(
            clean.hamming_distances, wrapped.hamming_distances
        )

    def test_stuck_mismatch_inflates_distance(self, clean_array):
        array, stored = clean_array
        faulty = FaultyTDAMArray(
            array, [Fault(FaultType.STUCK_MISMATCH, row=1, stage=3)]
        )
        result = faulty.search(stored[1])
        # The self-query of row 1 now reports distance 1, not 0.
        assert result.hamming_distances[1] == 1

    def test_stuck_match_hides_mismatch(self, clean_array):
        array, stored = clean_array
        query = stored[1].copy()
        query[3] = (query[3] + 1) % 4  # mismatch exactly at stage 3
        faulty = FaultyTDAMArray(
            array, [Fault(FaultType.STUCK_MATCH, row=1, stage=3)]
        )
        result = faulty.search(query)
        assert result.hamming_distances[1] == 0  # the mismatch vanished

    def test_dead_row_reports_max_distance(self, clean_array):
        array, stored = clean_array
        faulty = FaultyTDAMArray(array, [Fault(FaultType.DEAD_ROW, row=2)])
        result = faulty.search(stored[2])
        assert result.hamming_distances[2] == array.config.n_stages
        assert result.best_row != 2

    def test_fault_on_other_row_is_isolated(self, clean_array):
        array, stored = clean_array
        faulty = FaultyTDAMArray(
            array, [Fault(FaultType.STUCK_MISMATCH, row=0, stage=0)]
        )
        result = faulty.search(stored[3])
        assert result.hamming_distances[3] == 0

    def test_fault_validation(self, clean_array):
        array, _ = clean_array
        with pytest.raises(ValueError, match="row"):
            FaultyTDAMArray(array, [Fault(FaultType.DEAD_ROW, row=9)])
        with pytest.raises(ValueError, match="stage"):
            FaultyTDAMArray(
                array, [Fault(FaultType.STUCK_MATCH, row=0, stage=99)]
            )


class TestFaultInjector:
    def test_draw_counts(self):
        injector = FaultInjector(TDAMConfig(n_stages=16), n_rows=4, seed=1)
        faults = injector.draw(n_stuck_mismatch=3, n_stuck_match=2,
                               n_dead_rows=1)
        kinds = [f.kind for f in faults]
        assert kinds.count(FaultType.STUCK_MISMATCH) == 3
        assert kinds.count(FaultType.STUCK_MATCH) == 2
        assert kinds.count(FaultType.DEAD_ROW) == 1

    def test_cell_faults_do_not_overlap(self):
        injector = FaultInjector(TDAMConfig(n_stages=8), n_rows=2, seed=1)
        faults = injector.draw(n_stuck_mismatch=8, n_stuck_match=8)
        positions = {(f.row, f.stage) for f in faults}
        assert len(positions) == 16

    def test_draw_validation(self):
        injector = FaultInjector(TDAMConfig(n_stages=4), n_rows=2, seed=1)
        with pytest.raises(ValueError, match="cell faults"):
            injector.draw(n_stuck_mismatch=99)
        with pytest.raises(ValueError, match="dead rows"):
            injector.draw(n_dead_rows=3)

    def test_seeded_reproducibility(self):
        a = FaultInjector(TDAMConfig(), n_rows=8, seed=7).draw(2, 2, 1)
        b = FaultInjector(TDAMConfig(), n_rows=8, seed=7).draw(2, 2, 1)
        assert a == b


class TestErrorStatistics:
    def test_single_cell_fault_bounds_error(self, clean_array):
        """One stuck cell moves any distance by at most one."""
        array, _ = clean_array
        faulty = FaultyTDAMArray(
            array, [Fault(FaultType.STUCK_MISMATCH, row=2, stage=5)]
        )
        queries = np.random.default_rng(1).integers(0, 4, size=(12, 16))
        stats = search_error_statistics(faulty, queries)
        assert stats["max_abs_error"] <= 1.0

    def test_dead_row_errors_dominate(self, clean_array):
        array, _ = clean_array
        faulty = FaultyTDAMArray(array, [Fault(FaultType.DEAD_ROW, row=0)])
        queries = np.random.default_rng(1).integers(0, 4, size=(12, 16))
        stats = search_error_statistics(faulty, queries)
        assert stats["max_abs_error"] >= 4.0
