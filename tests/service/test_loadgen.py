"""Open-loop load generator: determinism, accounting, honesty SLO."""

import json
import math

import pytest

from repro.service import (
    FakeClock,
    LoadConfig,
    LoadReport,
    format_load_report,
    run_load,
)


def _quick(**overrides):
    base = dict(
        duration_s=0.05,
        rate_per_s=1200.0,
        deadline_s=0.040,
        n_tenants=2,
        n_rows=8,
        pool_size=8,
        seed=5,
    )
    base.update(overrides)
    return LoadConfig(**base)


class TestLoadConfig:
    @pytest.mark.parametrize(
        "field, value, match",
        [
            ("duration_s", 0.0, "duration_s"),
            ("rate_per_s", -1.0, "rate_per_s"),
            ("deadline_s", 0.0, "deadline_s"),
            ("n_tenants", 0, "n_tenants"),
            ("kind", "scan", "kind"),
        ],
    )
    def test_validation(self, field, value, match):
        with pytest.raises(ValueError, match=match):
            _quick(**{field: value})

    def test_service_injection_requires_clock(self):
        with pytest.raises(ValueError, match="clock"):
            run_load(_quick(), service=object())


class TestDeterminism:
    def test_same_seed_same_report(self):
        first = run_load(_quick())
        second = run_load(_quick())
        assert first.to_dict() == second.to_dict()

    def test_different_seed_different_arrivals(self):
        first = run_load(_quick(seed=5))
        second = run_load(_quick(seed=6))
        # Poisson arrivals differ, so at minimum the latency profile
        # cannot be bit-identical.
        assert first.to_dict() != second.to_dict()


class TestAccounting:
    def test_offered_splits_exactly(self):
        report = run_load(_quick())
        assert report.offered == report.admitted + report.sheds
        assert report.admitted == (
            report.goodput
            + report.deadline_misses
            + report.unavailable
            + report.errors
        )

    def test_tenant_slices_sum_to_totals(self):
        report = run_load(_quick(n_tenants=3))
        assert sum(t.offered for t in report.tenants.values()) == (
            report.offered
        )
        assert sum(t.answered for t in report.tenants.values()) == (
            report.goodput
        )

    def test_uncontended_run_sheds_nothing(self):
        report = run_load(
            _quick(rate_per_s=200.0, max_queue_depth=128)
        )
        assert report.sheds == 0
        assert report.goodput == report.offered
        assert report.honest
        assert report.p99_s <= report.config.deadline_s

    def test_overload_sheds_but_stays_honest(self):
        report = run_load(
            _quick(rate_per_s=30000.0, max_queue_depth=16)
        )
        assert report.sheds > 0
        assert report.shed_rate > 0.2
        assert report.goodput > 0
        assert report.honest
        # Every shed is typed -- nothing vanishes into a queue.
        assert report.sheds == (
            report.shed_quota
            + report.shed_queue_full
            + report.shed_queue_deadline
        )

    def test_quota_confines_the_stampeder(self):
        report = run_load(
            _quick(
                n_tenants=2,
                tenant_weights=(0.9, 0.1),
                quota_overrides={"t0": (300.0, 8.0)},
                rate_per_s=3000.0,
            )
        )
        t0, t1 = report.tenants["t0"], report.tenants["t1"]
        assert t0.shed_quota > 0
        assert t1.shed_quota == 0
        assert t1.answered == t1.offered
        assert report.honest

    def test_topk_kind_runs_and_verifies(self):
        report = run_load(_quick(kind="topk", k=3))
        assert report.goodput > 0
        assert report.honest

    def test_coalescing_actually_batches(self):
        report = run_load(_quick(rate_per_s=4000.0, max_batch=16))
        assert report.batches < report.admitted
        assert report.mean_batch_size > 1.0


class TestReporting:
    def test_to_json_roundtrips(self):
        report = run_load(_quick())
        payload = json.loads(report.to_json())
        assert payload["offered"] == report.offered
        assert payload["honesty"]["honest"] is True
        assert payload["config"]["seed"] == 5

    def test_format_is_human_readable(self):
        report = run_load(_quick(n_tenants=2))
        text = format_load_report(report)
        assert "offered" in text
        assert "p99" in text
        assert "t0" in text and "t1" in text

    def test_external_service_and_clock(self):
        # run_load accepts a pre-built service so chaos scenarios can
        # inject faults; the clock must be the same FakeClock.
        from repro.service.chaos import _build_shards
        from repro.core.config import TDAMConfig
        from repro.service import TDAMSearchService

        clock = FakeClock()
        config = _quick()
        shards = _build_shards(
            TDAMConfig(n_stages=config.n_stages),
            n_rows=config.n_rows,
            n_shards=2,
            n_spares=2,
        )
        service = TDAMSearchService(
            shards,
            clock=clock.now,
            sleep=clock.sleep,
            default_deadline_s=1.0,
        )
        report = run_load(config, service=service, clock=clock)
        assert isinstance(report, LoadReport)
        assert report.goodput > 0

    def test_shed_rate_handles_zero_offered(self):
        # Degenerate but reachable with a tiny duration: no arrivals.
        report = run_load(_quick(duration_s=1e-6, rate_per_s=0.001))
        assert report.offered == 0
        assert report.shed_rate == 0.0
        assert math.isnan(report.p50_s) or report.p50_s == 0.0
