"""Fault-tolerant serving layer for replicated TD-AM shards.

Wraps :class:`~repro.resilience.resilient.ResilientTDAMArray` replicas
behind a single request surface with the standard reliability toolkit:

- **admission** -- strict input validation and per-request deadlines
  (:class:`TDAMSearchService`);
- **retries** -- exponential backoff with decorrelated jitter, gated by
  a Finagle-style retry budget (:mod:`repro.service.retry`);
- **circuit breakers** -- per-shard quarantine driven by both request
  outcomes and the resilience loop's BIST health reports
  (:mod:`repro.service.breaker`);
- **degraded mode** -- when no healthy replica remains, an explicit
  best-effort answer carrying the ``degraded`` flag rather than a
  silent wrong one;
- **crash-safe checkpoints** -- atomic, checksummed snapshots of a
  shard's full physical + repair state, optionally triggered by
  repair/refresh probe events (:mod:`repro.service.checkpoint`);
- **chaos harness** -- scripted failure scenarios with SLO assertions
  (:mod:`repro.service.chaos`, ``repro chaos``).

The error taxonomy in :mod:`repro.service.errors` is the contract:
transient errors retry, invalid requests reject immediately, and every
exhaustion path has a distinct type.
"""

from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.chaos import (
    ChaosReport,
    ChaosScenarioResult,
    DEADLINE_SLO,
    FakeClock,
    run_chaos_suite,
)
from repro.service.checkpoint import CheckpointInfo, ServiceCheckpointer
from repro.service.errors import (
    AllShardsUnavailableError,
    CalibrationDriftError,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointNotFoundError,
    CircuitOpenError,
    DeadlineExceededError,
    InvalidRequestError,
    RetryBudgetExhaustedError,
    ServiceError,
    ShardBusyError,
    ShardTimeoutError,
    TransientServiceError,
    is_retryable,
)
from repro.service.retry import BackoffSchedule, RetryBudget, RetryPolicy
from repro.service.server import (
    Interceptor,
    ServiceResponse,
    Shard,
    TDAMSearchService,
    TopKServiceResponse,
)

__all__ = [
    "AllShardsUnavailableError",
    "BackoffSchedule",
    "BreakerState",
    "CalibrationDriftError",
    "ChaosReport",
    "ChaosScenarioResult",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointNotFoundError",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEADLINE_SLO",
    "DeadlineExceededError",
    "FakeClock",
    "Interceptor",
    "InvalidRequestError",
    "RetryBudget",
    "RetryBudgetExhaustedError",
    "RetryPolicy",
    "ServiceCheckpointer",
    "ServiceError",
    "ServiceResponse",
    "Shard",
    "ShardBusyError",
    "ShardTimeoutError",
    "TDAMSearchService",
    "TopKServiceResponse",
    "TransientServiceError",
    "is_retryable",
    "run_chaos_suite",
]
