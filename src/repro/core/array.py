"""The TD-AM array: parallel similarity computation (Fig. 3(a)).

``M`` delay chains (rows) share vertical search lines, so one query is
compared against every stored vector concurrently.  Two implementations
are provided with the same search semantics:

- :class:`TDAMArray` -- device-accurate: every cell holds two programmed
  :class:`~repro.devices.fefet.FeFET` models, and write-time variation is
  drawn per device.  Use for circuit-fidelity experiments.
- :class:`FastTDAMArray` -- vectorized: stored levels and V_TH offsets are
  numpy arrays and the conduction decision uses the calibrated switch-on
  overdrive of the same FeFET channel model.  Use for Monte Carlo and the
  HDC-scale workloads (Fig. 6-8).

An integration test asserts the two agree on match decisions and delays.

The fast array additionally serves **query batches**:
:meth:`FastTDAMArray.search_batch` broadcasts the mismatch decision over
a (queries, rows, stages) tensor in bounded-memory chunks and assembles a
:class:`BatchSearchResult` through array-valued TDC decode
(:meth:`~repro.core.sensing.CounterTDC.count_array`) and a precomputed
energy table (:meth:`~repro.core.energy.TimingEnergyModel.search_energy_table`).
Each per-query slice is bit-exact against :meth:`FastTDAMArray.search`
-- the batch engine exists for throughput, not different semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels as _kernels
from repro.core.bitplane import (
    pack_bit_planes,
    pack_level_planes,
    pack_query_masks,
    packed_mismatch_counts,
    packed_pair_counts,
    packed_xor_counts,
)
from repro.core.chain import ChainResult, DelayChain
from repro.core.config import TDAMConfig
from repro.core.encoding import LevelEncoding, validate_levels
from repro.core.energy import TimingEnergyModel
from repro.core.sensing import CounterTDC
from repro.core.topk import grouped_top_k, prune_survivors, top_k_indices
from repro.devices.fefet import FeFET, FeFETParams
from repro.devices.variation import VariationModel
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace
from repro.telemetry.profile import emit_probe as _emit_probe
from repro.telemetry.state import STATE as _TM

# Telemetry instruments (dormant unless repro.telemetry is enabled; the
# disabled fast path in the search kernels is a single boolean check).
_REG = _metrics.get_registry()
_SEARCHES = _REG.counter(
    "tdam_searches_total",
    "Completed array search operations",
    labels=("mode",),
)
_QUERIES = _REG.counter(
    "tdam_queries_total",
    "Queries served across all searches",
    labels=("mode",),
)
_WRITES = _REG.counter(
    "tdam_write_all_total", "Full-array write_all programming operations"
)
_SEARCH_LATENCY = _REG.histogram(
    "tdam_search_latency_seconds",
    "Modeled array search latency (slowest chain) per search",
)
_CACHE_EVENTS = _REG.counter(
    "tdam_threshold_cache_events_total",
    "Threshold/level-table cache lifecycle events",
    labels=("op",),
)

#: Transient-tensor memory budget of the batched kernels (bytes): the
#: auto-sized query chunk bounds the materialized (chunk, rows, stages)
#: float tensor to roughly this footprint.
QUERY_CHUNK_BUDGET_BYTES = 32 * 1024 * 1024
#: Floor of the auto-sized chunk -- tiny chunks drown in loop overhead.
MIN_QUERY_CHUNK = 8
#: Ceiling of the auto-sized chunk -- beyond this the numpy calls are
#: already large and bigger transients only pressure the caches.
MAX_QUERY_CHUNK = 1024


def resolve_query_chunk(
    n_rows: int,
    n_stages: int,
    budget_bytes: int = QUERY_CHUNK_BUDGET_BYTES,
    working_set_bytes: int = 0,
) -> int:
    """Auto-size the query chunk of the batched kernels.

    Chooses the number of queries per materialized ``(chunk, M, N)``
    float tensor so the transient stays near ``budget_bytes``: huge
    arrays get small chunks instead of blowing up memory, tiny arrays
    get large chunks instead of under-filling the vector units.  The
    result is clamped to [:data:`MIN_QUERY_CHUNK`,
    :data:`MAX_QUERY_CHUNK`].  Chunking never changes results -- every
    kernel is bit-exact for any chunk -- so this is purely a
    memory/throughput trade.

    Args:
        n_rows: Rows the kernel will scan.
        n_stages: Stages per row.
        budget_bytes: Transient-tensor memory budget.
        working_set_bytes: Resident bytes the caller touches *besides*
            the per-chunk transient -- e.g. the memmapped bit-plane
            shard a store-backed probe pages in.  Subtracted from the
            budget before sizing so a million-row probe on a small-RAM
            machine does not thrash the page cache; when the working
            set alone exceeds the budget the chunk floors at
            :data:`MIN_QUERY_CHUNK`.
    """
    if n_rows < 1 or n_stages < 1:
        raise ValueError(
            f"n_rows and n_stages must be >= 1, got {n_rows}, {n_stages}"
        )
    if working_set_bytes < 0:
        raise ValueError(
            f"working_set_bytes must be >= 0, got {working_set_bytes}"
        )
    effective = budget_bytes - working_set_bytes
    if effective <= 0:
        return MIN_QUERY_CHUNK
    per_query = n_rows * n_stages * 8
    chunk = effective // per_query
    return int(min(MAX_QUERY_CHUNK, max(MIN_QUERY_CHUNK, chunk)))


def _resolve_chunk_arg(chunk: Optional[int], n_rows: int, n_stages: int) -> int:
    """Validate an explicit chunk or auto-size a ``None`` one."""
    if chunk is None:
        return resolve_query_chunk(n_rows, n_stages)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    return chunk

#: Memoized turn-on overdrives, keyed by the config fields the bisection
#: actually depends on.  Monte Carlo builds thousands of arrays from the
#: same design point; without the memo each construction re-runs a
#: 60-iteration bisection of the channel model.
_TURN_ON_MEMO: Dict[Tuple[FeFETParams, float], float] = {}

# Sentinel marking the XOR fast-path cache as not-yet-computed (None is
# a valid cached value: "tables are not pure level inequality").
_XOR_UNSET = object()


def calibrate_turn_on_overdrive(config: TDAMConfig) -> float:
    """Gate overdrive (V) at which the FeFET reaches the ON current.

    Bisects the channel model at V_DS = V_DD; this ties the fast array's
    switching decision to the same device physics as the device-accurate
    array.  The result depends only on the FeFET parameters and the
    supply, so it is memoized on ``(config.fefet, config.vdd)`` --
    repeated array constructions (Monte Carlo trials, HDC tiles) reuse
    the first calibration bit-for-bit.
    """
    key = (config.fefet, config.vdd)
    cached = _TURN_ON_MEMO.get(key)
    if cached is not None:
        return cached
    from repro.core.cell import ON_CURRENT_A

    probe = FeFET(config.fefet, rng=np.random.default_rng(0))
    probe.program_vth(config.fefet.vth_center)
    vth = probe.vth
    lo, hi = -0.5, 1.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if abs(probe.ids(vth + mid, config.vdd)) >= ON_CURRENT_A:
            hi = mid
        else:
            lo = mid
    result = 0.5 * (lo + hi)
    _TURN_ON_MEMO[key] = result
    return result


def batched_mismatch_counts(
    queries: np.ndarray,
    vth_a: np.ndarray,
    vth_b: np.ndarray,
    vsl: np.ndarray,
    levels: int,
    von: float,
    chunk: Optional[int] = None,
) -> np.ndarray:
    """Per-row mismatch counts of a query batch, shape (Q, M).

    The shared broadcast kernel behind :meth:`FastTDAMArray.search_batch`
    and :meth:`repro.hdc.mapping.TDAMInference.mismatch_counts`: for each
    query chunk the (chunk, M, N) conduction tensor ``F_A on | F_B on``
    is materialized and reduced over stages.

    Args:
        queries: Validated query levels, shape (Q, N).
        vth_a: Per-cell F_A thresholds including offsets, shape (M, N).
        vth_b: Per-cell F_B thresholds including offsets, shape (M, N).
        vsl: Search-line ladder indexed by level, shape (levels,).
        levels: Number of storable levels.
        von: Calibrated switch-on overdrive (V).
        chunk: Queries per materialized tensor chunk (memory bound);
            ``None`` auto-sizes via :func:`resolve_query_chunk`.
    """
    queries = np.asarray(queries)
    chunk = _resolve_chunk_arg(chunk, vth_a.shape[0], vth_a.shape[1])
    n_q = queries.shape[0]
    out = np.empty((n_q, vth_a.shape[0]), dtype=np.int64)
    for start in range(0, n_q, chunk):
        block = queries[start:start + chunk]
        vsl_a = vsl[block][:, None, :]
        vsl_b = vsl[levels - 1 - block][:, None, :]
        fa_on = (vsl_a - vth_a[None, :, :]) >= von
        fb_on = (vsl_b - vth_b[None, :, :]) >= von
        out[start:start + chunk] = (fa_on | fb_on).sum(axis=2)
    return out


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one parallel search over the whole array.

    Attributes:
        delays_s: Per-row total 2-step delay (the raw TD output).
        counts: Per-row TDC counter codes.
        hamming_distances: Per-row decoded mismatch counts.
        best_row: Row index of the most similar stored vector (smallest
            decoded distance; delay breaks ties, then row order).
        latency_s: Array search latency -- the slowest chain, since rows
            run in parallel.
        energy_j: Total search energy over all rows.
        n_stages: Chain length, for similarity normalization.
    """

    delays_s: np.ndarray
    counts: np.ndarray
    hamming_distances: np.ndarray
    best_row: int
    latency_s: float
    energy_j: float
    n_stages: int

    @property
    def similarities(self) -> np.ndarray:
        """Match counts (N - Hamming distance) per row."""
        return self.n_stages - self.hamming_distances

    def top_k(self, k: int) -> np.ndarray:
        """Row indices of the k most similar stored vectors.

        Ordered by decoded distance, with delay and then row index as
        tie-breakers (the same resolution rule as ``best_row``) -- the
        k-NN primitive for HDC and retrieval workloads.
        """
        return top_k_indices(
            self.hamming_distances, k, delays_s=self.delays_s
        )


@dataclass(frozen=True)
class BatchSearchResult:
    """Outcome of one batched search: Q queries against all M rows.

    Every per-query slice is bit-exact against the corresponding
    single-query :class:`SearchResult` (:meth:`result` reconstructs it);
    the batch object simply keeps the (Q, M) tensors together so
    downstream consumers stay vectorized.

    Attributes:
        delays_s: Per-query per-row 2-step delays, shape (Q, M).
        counts: TDC counter codes, shape (Q, M).
        hamming_distances: Decoded mismatch counts, shape (Q, M).
        best_rows: Winning row per query (distance -> delay -> row
            resolution), shape (Q,).
        latencies_s: Slowest chain per query, shape (Q,).
        energies_j: Total search energy per query, shape (Q,).
        n_stages: Chain length, for similarity normalization.
    """

    delays_s: np.ndarray
    counts: np.ndarray
    hamming_distances: np.ndarray
    best_rows: np.ndarray
    latencies_s: np.ndarray
    energies_j: np.ndarray
    n_stages: int

    def __len__(self) -> int:
        return self.delays_s.shape[0]

    @property
    def n_queries(self) -> int:
        """Number of queries in the batch."""
        return self.delays_s.shape[0]

    @property
    def similarities(self) -> np.ndarray:
        """Match counts (N - Hamming distance), shape (Q, M)."""
        return self.n_stages - self.hamming_distances

    def top_k(self, k: int) -> np.ndarray:
        """Per-query top-k row indices, shape (Q, k).

        Same ordering rule as :meth:`SearchResult.top_k` (distance, then
        delay, then row index).
        """
        return top_k_indices(
            self.hamming_distances, k, delays_s=self.delays_s
        )

    def result(self, i: int) -> SearchResult:
        """The single-query :class:`SearchResult` view of query ``i``."""
        if not -len(self) <= i < len(self):
            raise IndexError(f"query {i} out of range for batch of {len(self)}")
        return SearchResult(
            delays_s=self.delays_s[i],
            counts=self.counts[i],
            hamming_distances=self.hamming_distances[i],
            best_row=int(self.best_rows[i]),
            latency_s=float(self.latencies_s[i]),
            energy_j=float(self.energies_j[i]),
            n_stages=self.n_stages,
        )


def _record_search_telemetry(
    array: "FastTDAMArray", result, mode: str, n_queries: int
) -> None:
    """Metrics + probe emission for one (batched) search; enabled-only.

    ``result`` is a :class:`SearchResult` or :class:`BatchSearchResult`;
    the payload carries the aggregate mismatch spread so a probe hook
    sees the per-stage similarity statistics without re-deriving them.
    """
    _SEARCHES.inc(mode=mode)
    _QUERIES.inc(n_queries, mode=mode)
    distances = result.hamming_distances
    if mode == "single":
        latency = float(result.latency_s)
        energy = float(result.energy_j)
        _SEARCH_LATENCY.observe(latency)
        _emit_probe(
            "array.search",
            rows=array.n_rows,
            stages=array.config.n_stages,
            best_row=int(result.best_row),
            min_mismatches=int(distances.min()),
            max_mismatches=int(distances.max()),
            latency_s=latency,
            energy_j=energy,
        )
    else:
        latency = float(result.latencies_s.max())
        energy = float(result.energies_j.sum())
        _SEARCH_LATENCY.observe(latency)
        _emit_probe(
            "array.search_batch",
            rows=array.n_rows,
            stages=array.config.n_stages,
            queries=n_queries,
            min_mismatches=int(distances.min()),
            max_mismatches=int(distances.max()),
            latency_s=latency,
            energy_j=energy,
        )


def _resolve_best(distances: np.ndarray, delays: np.ndarray) -> int:
    """Smallest distance wins; delay, then row index break ties."""
    order = np.lexsort((np.arange(len(distances)), delays, distances))
    return int(order[0])


def resolve_best_batch(distances: np.ndarray, delays: np.ndarray) -> np.ndarray:
    """Per-query winning row of (Q, M) distance/delay matrices.

    Vectorized lexicographic argmin with the same resolution rule as
    :func:`_resolve_best`: smallest distance wins, delay breaks ties,
    then the lowest row index.
    """
    d_min = distances.min(axis=1, keepdims=True)
    candidates = distances == d_min
    masked = np.where(candidates, delays, np.inf)
    t_min = masked.min(axis=1, keepdims=True)
    return (candidates & (masked == t_min)).argmax(axis=1).astype(np.int64)


class TDAMArray:
    """Device-accurate M-row TD-AM array.

    Args:
        config: Design point (per-chain geometry and electricals).
        n_rows: Number of stored vectors (delay chains).
        rng: Seeded generator for device ensembles and variation draws.
        variation: Optional write-time V_TH variation model; when present,
            each FeFET's offset is re-drawn at write time according to the
            state it is programmed to.
    """

    def __init__(
        self,
        config: TDAMConfig,
        n_rows: int,
        rng: Optional[np.random.Generator] = None,
        variation: Optional[VariationModel] = None,
    ) -> None:
        if n_rows < 1:
            raise ValueError(f"n_rows must be >= 1, got {n_rows}")
        self.config = config
        self.n_rows = n_rows
        self.encoding = LevelEncoding(config)
        self.timing = TimingEnergyModel(config)
        self.tdc = CounterTDC(config, self.timing)
        self.variation = variation
        rng = rng if rng is not None else np.random.default_rng()
        self._rng = rng
        self.chains: List[DelayChain] = [
            DelayChain(config, timing=self.timing, rng=rng, name=f"row{r}")
            for r in range(n_rows)
        ]

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def write(self, row: int, vector: Sequence[int]) -> None:
        """Program one row; draws write-time variation when configured."""
        self._check_row(row)
        chain = self.chains[row]
        if self.variation is not None:
            values = self.encoding.validate_vector(vector)
            levels = self.config.levels
            for stage, value in zip(chain.stages, values):
                fa_state = int(value)
                fb_state = levels - 1 - int(value)
                sample = self.variation.draw([fa_state, fb_state])
                stage.set_vth_offsets(*sample.vth_shifts)
        chain.write(vector)

    def write_all(self, matrix: Sequence[Sequence[int]]) -> None:
        """Program every row from an (n_rows, n_stages) matrix."""
        matrix = np.asarray(matrix)
        if matrix.shape[0] != self.n_rows:
            raise ValueError(
                f"matrix has {matrix.shape[0]} rows, array has {self.n_rows}"
            )
        for row in range(self.n_rows):
            self.write(row, matrix[row])

    # ------------------------------------------------------------------
    # Search path
    # ------------------------------------------------------------------
    def search(self, query: Sequence[int]) -> SearchResult:
        """Parallel 2-step search of the query against every row."""
        results: List[ChainResult] = [
            chain.search(query) for chain in self.chains
        ]
        delays = np.array([r.delay_total_s for r in results])
        counts = np.array([self.tdc.count(d) for d in delays])
        distances = np.array([self.tdc.decode_mismatches(d) for d in delays])
        energy = float(sum(r.energy_j for r in results))
        return SearchResult(
            delays_s=delays,
            counts=counts,
            hamming_distances=distances,
            best_row=_resolve_best(distances, delays),
            latency_s=float(delays.max()),
            energy_j=energy,
            n_stages=self.config.n_stages,
        )

    def row_result(self, row: int, query: Sequence[int]) -> ChainResult:
        """Full per-chain result for one row (diagnostics)."""
        self._check_row(row)
        return self.chains[row].search(query)

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range [0, {self.n_rows - 1}]")

    def __repr__(self) -> str:
        return (
            f"TDAMArray({self.n_rows} rows x {self.config.n_stages} stages, "
            f"{self.config.bits}-bit)"
        )


class FastTDAMArray:
    """Vectorized TD-AM array with calibrated conduction thresholds.

    Functionally equivalent to :class:`TDAMArray` but stores levels and
    V_TH offsets as numpy arrays.  The FeFET switch decision uses the
    turn-on overdrive calibrated from the same channel model (gate
    overdrive at which the drain current reaches the 1 uA ON threshold),
    so variation-induced comparison flips agree with the device-accurate
    array.

    Per-cell threshold tensors (``V_TH + offset`` for F_A/F_B, plus the
    nominal overdrive references of the delay-modulation path) are
    materialized at write time and cached between searches.  Code that
    mutates ``_off_a``/``_off_b`` **in place** (retention drift, BIST
    restore) must call :meth:`invalidate_threshold_cache` afterwards;
    wholesale re-assignment of those attributes (and of ``_vsl``, the
    re-biasable search-line ladder) invalidates automatically.

    Args:
        config: Design point.
        n_rows: Number of stored vectors.
        variation: Optional write-time variation model.
        rng: Unused directly (variation model owns its stream); kept for
            interface symmetry.
    """

    def __init__(
        self,
        config: TDAMConfig,
        n_rows: int,
        variation: Optional[VariationModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_rows < 1:
            raise ValueError(f"n_rows must be >= 1, got {n_rows}")
        self.config = config
        self.n_rows = n_rows
        self.encoding = LevelEncoding(config)
        self.timing = TimingEnergyModel(config)
        self.tdc = CounterTDC(config, self.timing)
        self.variation = variation
        self._vth = np.array(config.vth_levels)
        # The live (re-biasable) ladder and its nominal design value;
        # hoisted here so search() never rebuilds them per call.
        self._vsl = np.array(config.vsl_levels)
        self._vsl_nom = np.array(config.vsl_levels)
        self._stored = np.full((n_rows, config.n_stages), -1, dtype=np.int64)
        self._off_a = np.zeros((n_rows, config.n_stages))
        self._off_b = np.zeros((n_rows, config.n_stages))
        self._von = calibrate_turn_on_overdrive(config)
        # Per-call constants of the delay law and energy accounting.
        self._base_delay = 2 * config.n_stages * self.timing.d_inv
        self._d_c = self.timing.d_c
        self._delay_sens = config.delay_variation_sensitivity / config.vdd
        self._written = np.zeros(n_rows, dtype=bool)
        self._all_written = False
        self._xor_planes_cache = _XOR_UNSET

    def _calibrate_turn_on_overdrive(self) -> float:
        """Memoized module-level calibration (kept for compatibility)."""
        return calibrate_turn_on_overdrive(self.config)

    @property
    def turn_on_overdrive(self) -> float:
        """Calibrated switch-on overdrive (V)."""
        return self._von

    # ------------------------------------------------------------------
    # Threshold cache
    # ------------------------------------------------------------------
    @property
    def _off_a(self) -> np.ndarray:
        return self._off_a_data

    @_off_a.setter
    def _off_a(self, value) -> None:
        self._off_a_data = np.asarray(value, dtype=float)
        self._thresholds_valid = False
        self._tables_valid = False
        self._nominal_cache = None

    @property
    def _off_b(self) -> np.ndarray:
        return self._off_b_data

    @_off_b.setter
    def _off_b(self, value) -> None:
        self._off_b_data = np.asarray(value, dtype=float)
        self._thresholds_valid = False
        self._tables_valid = False
        self._nominal_cache = None

    @property
    def _vsl(self) -> np.ndarray:
        return self._vsl_data

    @_vsl.setter
    def _vsl(self, value) -> None:
        # The search-line ladder is applied per query, so the threshold
        # tensors stay valid -- but the per-level mismatch tables bake
        # it in and must rebuild after a re-bias.
        self._vsl_data = np.asarray(value, dtype=float)
        self._tables_valid = False
        self._nominal_cache = None

    def invalidate_threshold_cache(self) -> None:
        """Mark the per-cell threshold tensors (and level tables) stale.

        Call after mutating ``_off_a``/``_off_b``/``_vsl`` (or
        ``_stored``) in place; the tensors are rebuilt lazily on the
        next search.  Re-assigning those attributes wholesale
        invalidates on its own.
        """
        self._thresholds_valid = False
        self._tables_valid = False
        self._nominal_cache = None
        if _TM.enabled:
            _CACHE_EVENTS.inc(op="invalidate")
            _emit_probe("cache.threshold", op="invalidate")

    def _timing_is_nominal(self) -> bool:
        """Whether every delay modulation input sits at its design value.

        True iff all V_TH offsets are exactly zero and the live
        search-line ladder equals the nominal one.  In that regime the
        per-cell effective mismatch delay is *exactly* the nominal
        ``d_C`` (the overdrive deviation computes to 0.0), so every
        search path -- scalar, GEMM, packed -- can take the
        counts-times-``d_C`` delay form and stay mutually bit-exact.
        The flag is cached and invalidated with the threshold cache.
        """
        if self._nominal_cache is None:
            self._nominal_cache = bool(
                not self._off_a_data.any()
                and not self._off_b_data.any()
                and np.array_equal(self._vsl_data, self._vsl_nom)
            )
        return self._nominal_cache

    def _thresholds(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(vth_a, vth_b, vth_a_nom, vth_b_nom) per-cell tensors, cached."""
        if not self._thresholds_valid:
            levels = self.config.levels
            self._vth_a_nom = self._vth[self._stored]
            self._vth_b_nom = self._vth[levels - 1 - self._stored]
            self._vth_a = self._vth_a_nom + self._off_a_data
            self._vth_b = self._vth_b_nom + self._off_b_data
            self._thresholds_valid = True
        return self._vth_a, self._vth_b, self._vth_a_nom, self._vth_b_nom

    def _update_row_thresholds(self, row: int, values: np.ndarray) -> None:
        """Refresh one row of the cache after a write (if it is live)."""
        if self._thresholds_valid:
            levels = self.config.levels
            self._vth_a_nom[row] = self._vth[values]
            self._vth_b_nom[row] = self._vth[levels - 1 - values]
            self._vth_a[row] = self._vth_a_nom[row] + self._off_a_data[row]
            self._vth_b[row] = self._vth_b_nom[row] + self._off_b_data[row]
            if self._tables_valid:
                mism, contrib = self._build_level_tables(
                    self._vth_a[row], self._vth_b[row],
                    self._vth_a_nom[row], self._vth_b_nom[row],
                )
                self._mism_table[row] = mism.reshape(-1)
                self._contrib_table[row] = contrib.reshape(-1)
                self._mism_gemm[:, :, row] = mism.astype(float)
                self._mism_packed[:, row, :] = pack_level_planes(
                    mism[:, None, :]
                )[:, 0, :]
                self._xor_planes_cache = _XOR_UNSET
        else:
            self._tables_valid = False

    def _build_level_tables(
        self,
        vth_a: np.ndarray,
        vth_b: np.ndarray,
        vth_a_nom: np.ndarray,
        vth_b_nom: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-query-level mismatch and delay-contribution tables.

        For thresholds of shape ``S`` returns ``(mism, contrib)`` of
        shape ``(L,) + S``: entry ``[l]`` replays the scalar
        :meth:`search` arithmetic for a stage whose query level is
        ``l`` -- the boolean mismatch decision and the elementwise
        ``mism * d_c_eff`` delay contribution.  Elementwise values are
        bit-identical to the scalar path (same IEEE operations on the
        same operands), which is what lets the batched kernel gather
        from these tables instead of recomputing per query.
        """
        levels = self.config.levels
        extra = (np.newaxis,) * vth_a.ndim
        vsl_a = self._vsl[:levels][(slice(None),) + extra]
        vsl_b = self._vsl[levels - 1::-1][(slice(None),) + extra]
        fa_on = (vsl_a - vth_a) >= self._von
        fb_on = (vsl_b - vth_b) >= self._von
        mism = fa_on | fb_on
        vsl_a_nom = self._vsl_nom[:levels][(slice(None),) + extra]
        vsl_b_nom = self._vsl_nom[levels - 1::-1][(slice(None),) + extra]
        dev_a = (vsl_a_nom - vth_a_nom) - (vsl_a - vth_a)
        dev_b = (vsl_b_nom - vth_b_nom) - (vsl_b - vth_b)
        deviation = np.where(fa_on, dev_a, dev_b)
        d_c_eff = self._d_c * np.maximum(
            1.0 + self._delay_sens * deviation, 0.0
        )
        return mism, mism * d_c_eff

    def _level_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """(mism, contrib) gather tables, shape (n_rows, L * n_stages).

        Lazily rebuilt write-time caches indexed by ``level * n_stages +
        stage``: ``mism[m, l * N + n]`` is the mismatch decision of cell
        ``(m, n)`` against query level ``l``, and ``contrib`` the
        matching delay contribution (s).  The batched search kernel
        turns per-query work into one fancy gather plus a contiguous
        last-axis reduction, which keeps its sums bit-identical to the
        scalar path's per-row reductions.
        """
        if not self._tables_valid:
            if _TM.enabled:
                _CACHE_EVENTS.inc(op="rebuild")
                _emit_probe("cache.threshold", op="rebuild")
                with _trace.span(
                    "array.rebuild_tables",
                    rows=self.n_rows,
                    stages=self.config.n_stages,
                ):
                    self._rebuild_level_tables()
            else:
                self._rebuild_level_tables()
        elif _TM.enabled:
            _CACHE_EVENTS.inc(op="hit")
        return self._mism_table, self._contrib_table

    def _rebuild_level_tables(self) -> None:
        """Materialize the gather/GEMM tables from the threshold cache."""
        vth_a, vth_b, vth_a_nom, vth_b_nom = self._thresholds()
        mism, contrib = self._build_level_tables(
            vth_a, vth_b, vth_a_nom, vth_b_nom
        )
        # (L, M, N) -> (M, L * N) so a per-chunk gather runs over
        # the contiguous trailing axis.
        shape = (self.n_rows, -1)
        self._mism_table = np.ascontiguousarray(
            mism.transpose(1, 0, 2)
        ).reshape(shape)
        self._contrib_table = np.ascontiguousarray(
            contrib.transpose(1, 0, 2)
        ).reshape(shape)
        # (L, N, M) float copy for the one-hot matmul count path:
        # every product and partial sum is a small integer, exactly
        # representable in float64, so any BLAS accumulation order
        # reproduces the boolean-gather counts bit-for-bit.
        self._mism_gemm = np.ascontiguousarray(
            mism.transpose(0, 2, 1).astype(float)
        )
        # (L, M, B) uint8 bit-planes for the packed-popcount kernel and
        # the pruned top-k cascade (see repro.core.bitplane).
        self._mism_packed = pack_level_planes(mism)
        self._xor_planes_cache = _XOR_UNSET
        self._tables_valid = True

    def _xor_bit_planes(self) -> Optional[np.ndarray]:
        """(bits, M, B) stored-level bit-planes, or ``None``.

        The packed kernel's XOR fast path is sound only when the
        mismatch tables are *pure level inequality* -- which the cache
        proves, not assumes: the inequality planes are packed and
        compared byte-for-byte against ``_mism_packed``.  Any variation
        offset or bias deviation that flips even one table entry fails
        the comparison and the kernel falls back to the general one-hot
        plane reduction.  Invalidated whenever the tables rebuild.
        """
        self._level_tables()
        if self._xor_planes_cache is _XOR_UNSET:
            stored = self._stored
            levels = self.config.levels
            eligible = (
                levels >= 2
                and levels & (levels - 1) == 0
                and stored.min() >= 0
            )
            if eligible:
                ineq = np.arange(levels)[:, None, None] != stored[None, :, :]
                eligible = np.array_equal(
                    self._mism_packed, pack_level_planes(ineq)
                )
            self._xor_planes_cache = (
                pack_bit_planes(stored, levels.bit_length() - 1)
                if eligible else None
            )
        return self._xor_planes_cache

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def write(self, row: int, vector: Sequence[int]) -> None:
        """Program one row (vectorized)."""
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range [0, {self.n_rows - 1}]")
        values = self.encoding.validate_vector(vector)
        if len(values) != self.config.n_stages:
            raise ValueError(
                f"vector length {len(values)} != n_stages {self.config.n_stages}"
            )
        self._stored[row] = values
        if self.variation is not None:
            levels = self.config.levels
            fa_states = values
            fb_states = levels - 1 - values
            self._off_a_data[row] = self.variation.draw(fa_states).vth_shifts
            self._off_b_data[row] = self.variation.draw(fb_states).vth_shifts
            self._nominal_cache = None
        self._update_row_thresholds(row, values)
        if not self._all_written:
            self._written[row] = True
            self._all_written = bool(self._written.all())

    def write_all(self, matrix: Sequence[Sequence[int]]) -> None:
        """Program every row from an (n_rows, n_stages) matrix.

        One vectorized write: validation, variation draws, and the
        threshold-tensor rebuild happen on whole matrices.  The variation
        stream is consumed in the same order as per-row :meth:`write`
        calls (row 0 F_A, row 0 F_B, row 1 F_A, ...) in one flat draw,
        so seeded runs are bit-identical to the historical row loop.
        """
        if not _TM.enabled:
            return self._write_all_impl(matrix)
        with _trace.span(
            "array.write_all",
            rows=self.n_rows,
            stages=self.config.n_stages,
        ):
            self._write_all_impl(matrix)
        _WRITES.inc()
        _emit_probe(
            "array.write_all", rows=self.n_rows, stages=self.config.n_stages
        )

    def _write_all_impl(self, matrix: Sequence[Sequence[int]]) -> None:
        matrix = np.asarray(matrix)
        if matrix.shape[0] != self.n_rows:
            raise ValueError(
                f"matrix has {matrix.shape[0]} rows, array has {self.n_rows}"
            )
        values = self._validate_matrix(matrix)
        if values.shape[1] != self.config.n_stages:
            raise ValueError(
                f"vector length {values.shape[1]} != "
                f"n_stages {self.config.n_stages}"
            )
        self._stored[:] = values
        if self.variation is not None:
            levels = self.config.levels
            # Interleave F_A and F_B states row-major so the flat draw
            # consumes the RNG stream exactly like per-row write calls.
            states = np.empty(
                (self.n_rows, 2, self.config.n_stages), dtype=np.int64
            )
            states[:, 0, :] = values
            states[:, 1, :] = levels - 1 - values
            shifts = self.variation.draw(states.reshape(-1)).vth_shifts
            shifts = shifts.reshape(self.n_rows, 2, self.config.n_stages)
            self._off_a_data[:] = shifts[:, 0, :]
            self._off_b_data[:] = shifts[:, 1, :]
            self._nominal_cache = None
        self._thresholds_valid = False
        self._tables_valid = False
        self._written[:] = True
        self._all_written = True

    def _validate_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Matrix analog of ``LevelEncoding.validate_vector``."""
        return validate_levels(
            matrix, self.config.levels, ndim=2, name="vector"
        )

    # ------------------------------------------------------------------
    # Search path
    # ------------------------------------------------------------------
    def _check_written(self) -> None:
        if not self._all_written:
            if bool(self._written.all()):
                self._all_written = True
            else:
                raise RuntimeError("search before all rows were written")

    def mismatch_matrix(self, query: Sequence[int]) -> np.ndarray:
        """Device-level mismatch decisions, shape (n_rows, n_stages)."""
        self._check_written()
        q = self.encoding.validate_vector(query)
        if len(q) != self.config.n_stages:
            raise ValueError(
                f"query length {len(q)} != n_stages {self.config.n_stages}"
            )
        levels = self.config.levels
        vth_a, vth_b, _, _ = self._thresholds()
        vsl_a = self._vsl[q][None, :]
        vsl_b = self._vsl[levels - 1 - q][None, :]
        fa_on = (vsl_a - vth_a) >= self._von
        fb_on = (vsl_b - vth_b) >= self._von
        return fa_on | fb_on

    def mismatch_tensor(
        self, queries: np.ndarray, chunk: Optional[int] = None
    ) -> np.ndarray:
        """Mismatch decisions for a query batch, shape (Q, n_rows, n_stages).

        Materializes the full boolean tensor -- use the count/search
        batch entry points when only reductions are needed.  Each
        ``[i]`` slice equals ``mismatch_matrix(queries[i])``.
        """
        q = self._validate_queries(queries)
        chunk = _resolve_chunk_arg(chunk, self.n_rows, self.config.n_stages)
        mism_table, _ = self._level_tables()
        n = self.config.n_stages
        stage_idx = np.arange(n)
        out = np.empty((q.shape[0], self.n_rows, n), dtype=bool)
        for start in range(0, q.shape[0], chunk):
            block = q[start:start + chunk]
            idx = block * n + stage_idx
            out[start:start + chunk] = mism_table.take(idx, axis=1).transpose(1, 0, 2)
        return out

    def _validate_queries(self, queries: np.ndarray) -> np.ndarray:
        """Validate a (Q, n_stages) query batch."""
        self._check_written()
        q = np.atleast_2d(np.asarray(queries))
        q = self._validate_matrix(q)
        if q.shape[1] != self.config.n_stages:
            raise ValueError(
                f"query length {q.shape[1]} != "
                f"n_stages {self.config.n_stages}"
            )
        return q

    def mismatch_count_batch(
        self, queries: np.ndarray, chunk: Optional[int] = None
    ) -> np.ndarray:
        """Per-row mismatch counts of a query batch, shape (Q, n_rows).

        The reduction-only entry point (no delay modulation): a gather
        from the write-time per-level mismatch table, bit-identical to
        the :func:`batched_mismatch_counts` recompute kernel.
        """
        q = self._validate_queries(queries)
        chunk = _resolve_chunk_arg(chunk, self.n_rows, self.config.n_stages)
        mism_table, _ = self._level_tables()
        n = self.config.n_stages
        stage_idx = np.arange(n)
        counts = np.empty((q.shape[0], self.n_rows), dtype=np.int64)
        for start in range(0, q.shape[0], chunk):
            block = q[start:start + chunk]
            idx = block * n + stage_idx
            counts[start:start + chunk] = (
                mism_table.take(idx, axis=1).sum(axis=2).T
            )
        return counts

    def result_from_mismatch_matrix(
        self,
        mism: np.ndarray,
        d_c_eff: Optional[np.ndarray] = None,
    ) -> SearchResult:
        """Assemble a :class:`SearchResult` from per-cell mismatch decisions.

        The single place where the delay law ``d_tot = 2 N d_INV +
        N_mis d_C`` is turned into delays, TDC counts, decoded distances,
        the distance -> delay -> row winner resolution, and the energy
        total.  Both the clean search path and the fault-injected one
        (:class:`~repro.core.faults.FaultyTDAMArray`) go through here, so
        their decode and ordering semantics cannot drift apart.

        Args:
            mism: Boolean mismatch decisions, shape (n_rows, n_stages).
                A row whose chain never produces an edge (dead row) is
                represented as all-True: its delay evaluates to the
                controller timeout ``chain_delay(n_stages)`` and it
                decodes to the maximum distance.
            d_c_eff: Optional per-cell effective mismatch delay adder (s),
                shape (n_rows, n_stages); defaults to the nominal ``d_C``
                for every cell.
        """
        mism = np.asarray(mism, dtype=bool)
        if mism.shape != (self.n_rows, self.config.n_stages):
            raise ValueError(
                f"mismatch matrix shape {mism.shape} != "
                f"({self.n_rows}, {self.config.n_stages})"
            )
        mismatch_counts = mism.sum(axis=1)
        if d_c_eff is None:
            delays = self._base_delay + mismatch_counts * self._d_c
        else:
            delays = self._base_delay + (mism * d_c_eff).sum(axis=1)
        with _trace.span("array.sense", rows=self.n_rows):
            counts = self.tdc.count_array(delays)
            distances = self.tdc.decode_array(delays)
        energy = float(
            self.timing.search_energy_table()[mismatch_counts].sum()
        )
        return SearchResult(
            delays_s=delays,
            counts=counts,
            hamming_distances=distances,
            best_row=_resolve_best(distances, delays),
            latency_s=float(delays.max()),
            energy_j=energy,
            n_stages=self.config.n_stages,
        )

    def batch_result_from_mismatch_counts(
        self,
        mismatch_counts: np.ndarray,
        delay_adders_s: Optional[np.ndarray] = None,
    ) -> BatchSearchResult:
        """Assemble a :class:`BatchSearchResult` from (Q, M) mismatch counts.

        The batch analog of :meth:`result_from_mismatch_matrix`: the same
        delay law, array-valued TDC decode, energy table, and winner
        resolution -- evaluated on whole matrices.  Used by the clean
        batched search, the fault-injected wrapper, and the resilient
        array, so the batched semantics cannot drift from the scalar
        ones.

        Args:
            mismatch_counts: True per-row mismatch counts, shape (Q, M)
                (drives the energy accounting and, absent
                ``delay_adders_s``, the delays).
            delay_adders_s: Optional per-query per-row mismatch delay
                totals (s), shape (Q, M), replacing the nominal
                ``counts * d_C`` term (the variation-modulated path).
        """
        # C-layout normalization matters for bit-exactness: advanced
        # indexing preserves the index array's memory order, so a
        # transposed counts view would make the energy gather F-ordered
        # and its axis-1 sum reduce in a different pairwise blocking.
        mismatch_counts = np.ascontiguousarray(mismatch_counts)
        if mismatch_counts.ndim != 2 or mismatch_counts.shape[1] != self.n_rows:
            raise ValueError(
                f"mismatch_counts shape {mismatch_counts.shape} is not "
                f"(Q, {self.n_rows})"
            )
        if delay_adders_s is None:
            delays = self._base_delay + mismatch_counts * self._d_c
        else:
            delays = self._base_delay + delay_adders_s
        with _trace.span(
            "array.sense",
            rows=self.n_rows,
            queries=int(mismatch_counts.shape[0]),
        ):
            counts = self.tdc.count_array(delays)
            distances = self.tdc.decode_array(delays)
        energies = self.timing.search_energy_table()[mismatch_counts].sum(
            axis=1
        )
        return BatchSearchResult(
            delays_s=delays,
            counts=counts,
            hamming_distances=distances,
            best_rows=resolve_best_batch(distances, delays),
            latencies_s=delays.max(axis=1),
            energies_j=energies,
            n_stages=self.config.n_stages,
        )

    def _counts_gemm(self, queries: np.ndarray, chunk: int) -> np.ndarray:
        """Mismatch counts via the one-hot matmul kernel, shape (Q, M).

        Every product and partial sum is a small integer, exactly
        representable in float64, so any BLAS accumulation order
        reproduces the boolean-gather counts bit-for-bit.
        """
        self._level_tables()
        mism_gemm = self._mism_gemm
        levels = self.config.levels
        n_q = queries.shape[0]
        counts = np.empty((n_q, self.n_rows), dtype=np.int64)
        for start in range(0, n_q, chunk):
            block = queries[start:start + chunk]
            acc = np.zeros((block.shape[0], self.n_rows))
            for level in range(levels):
                acc += (block == level).astype(float) @ mism_gemm[level]
            counts[start:start + chunk] = acc.astype(np.int64)
        return counts

    def _counts_packed(self, queries: np.ndarray, chunk: int) -> np.ndarray:
        """Mismatch counts via the bit-plane popcount kernel, (Q, M).

        Queries become per-level one-hot bit masks; ANDing a mask with
        the write-time bit-planes selects exactly the mismatching
        stages, and a popcount reduces them -- about one bit of memory
        traffic per cell instead of eight float bytes.  When the tables
        are provably pure level inequality (:meth:`_xor_bit_planes`),
        the one-hot reduction collapses further to ``log2(L)`` XORs
        over the stored-level bit-planes.  Counts are exact integers,
        identical to every other kernel.
        """
        self._level_tables()
        n_q = queries.shape[0]
        stored_bits = self._xor_bit_planes()
        if stored_bits is not None:
            bits = stored_bits.shape[0]
            if n_q <= chunk:
                return packed_xor_counts(
                    stored_bits, pack_bit_planes(queries, bits)
                )
            counts = np.empty((n_q, self.n_rows), dtype=np.int64)
            for start in range(0, n_q, chunk):
                block = queries[start:start + chunk]
                counts[start:start + chunk] = packed_xor_counts(
                    stored_bits, pack_bit_planes(block, bits)
                )
            return counts
        planes = self._mism_packed
        levels = self.config.levels
        if n_q <= chunk:
            return packed_mismatch_counts(
                planes, pack_query_masks(queries, levels)
            )
        counts = np.empty((n_q, self.n_rows), dtype=np.int64)
        for start in range(0, n_q, chunk):
            block = queries[start:start + chunk]
            masks = pack_query_masks(block, levels)
            counts[start:start + chunk] = packed_mismatch_counts(
                planes, masks
            )
        return counts

    def _counts_loop(self, queries: np.ndarray) -> np.ndarray:
        """Per-query reference kernel: the bit-exactness yardstick.

        One gather-and-reduce per query, no batching tricks.  Only
        reachable through an explicit kernel override; the benchmark
        harness and the property tests pin it to prove the fast kernels
        bit-exact.
        """
        mism_table, _ = self._level_tables()
        n = self.config.n_stages
        stage_idx = np.arange(n)
        counts = np.empty((queries.shape[0], self.n_rows), dtype=np.int64)
        for i, query in enumerate(queries):
            idx = query * n + stage_idx
            counts[i] = mism_table[:, idx].sum(axis=1)
        return counts

    def _delay_adders(self, queries: np.ndarray, chunk: int) -> np.ndarray:
        """Variation-modulated per-query delay totals (s), shape (Q, M).

        A fancy gather from the write-time contribution table plus a
        contiguous last-axis reduction: the gathered elementwise values
        replay the scalar :meth:`search` arithmetic (the tables are
        built with it) and the sums run over the same contiguous
        operand order as the scalar per-row sums, so per-query delays
        are bit-identical to the one-query path.
        """
        _, contrib_table = self._level_tables()
        n = self.config.n_stages
        stage_idx = np.arange(n)
        n_q = queries.shape[0]
        adders = np.empty((n_q, self.n_rows))
        for start in range(0, n_q, chunk):
            block = queries[start:start + chunk]
            idx = block * n + stage_idx
            adders[start:start + chunk] = (
                contrib_table.take(idx, axis=1).sum(axis=2).T
            )
        return adders

    def _resolve_batch_chunk(
        self, chunk: Optional[int], queries: np.ndarray
    ) -> int:
        """Resolve the query chunk of one batched call.

        An explicit ``chunk`` is validated and wins outright.  ``None``
        auto-sizes via :func:`resolve_query_chunk`; when the batch is
        large enough that chunking actually engages (more than two
        heuristic chunks of queries), candidate sizes around the
        heuristic are measured once per geometry through
        :func:`repro.core.kernels.select_query_chunk` and the winner is
        cached and persisted alongside the kernel autotune decisions.
        Chunking never changes results, so the decision is purely a
        memory/throughput trade.
        """
        if chunk is not None:
            return _resolve_chunk_arg(chunk, self.n_rows, self.config.n_stages)
        default = resolve_query_chunk(self.n_rows, self.config.n_stages)
        n_q = queries.shape[0]
        if n_q <= 2 * default:
            return default
        sizes = sorted({
            max(MIN_QUERY_CHUNK, default // 2),
            default,
            min(MAX_QUERY_CHUNK, default * 2),
        })
        sizes = [size for size in sizes if size <= n_q]
        if len(sizes) < 2:
            return default
        key = (
            "chunk",
            self.n_rows,
            self.config.n_stages,
            self.config.levels,
            self._timing_is_nominal(),
        )
        sample = queries[: min(n_q, 2 * sizes[-1])]
        return _kernels.select_query_chunk(
            key,
            {
                size: (lambda size=size: self._batch_kernel(sample, size))
                for size in sizes
            },
        )

    def _batch_kernel(
        self, queries: np.ndarray, chunk: int
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Counts and delay adders of a query batch, kernel-dispatched.

        Returns ``(mismatch_counts, delay_adders_s)`` of shape (Q, M);
        the adders are ``None`` under nominal timing, where the delay
        law reduces exactly to ``counts * d_C`` for every path.  The
        count kernel (packed popcount vs. one-hot GEMM vs. reference
        loop) is chosen by :mod:`repro.core.kernels`: explicit override
        first, else a per-geometry autotune over a small query sample.
        Counts are exact integers in every kernel, so the choice never
        changes results.
        """
        nominal = self._timing_is_nominal()
        key = (
            self.n_rows,
            self.config.n_stages,
            self.config.levels,
            nominal,
        )
        sample = queries[: min(queries.shape[0], 32)]
        name = _kernels.select_kernel(
            key,
            {
                "packed": lambda: self._counts_packed(sample, chunk),
                "gemm": lambda: self._counts_gemm(sample, chunk),
            },
        )
        def _run() -> np.ndarray:
            if name == "packed":
                return self._counts_packed(queries, chunk)
            if name == "gemm":
                return self._counts_gemm(queries, chunk)
            return self._counts_loop(queries)

        if _TM.enabled:
            # The dispatch span inherits the active request/batch
            # context -- the last hop of a request's trace.
            with _trace.span(
                "kernel.dispatch",
                kernel=name,
                rows=self.n_rows,
                queries=int(queries.shape[0]),
            ):
                counts = _run()
        else:
            counts = _run()
        adders = None if nominal else self._delay_adders(queries, chunk)
        return counts, adders

    def search(self, query: Sequence[int]) -> SearchResult:
        """Parallel 2-step search (vectorized)."""
        if not _TM.enabled:
            return self._search_impl(query)
        with _trace.span(
            "array.search", rows=self.n_rows, stages=self.config.n_stages
        ):
            result = self._search_impl(query)
        _record_search_telemetry(self, result, mode="single", n_queries=1)
        return result

    def _search_impl(self, query: Sequence[int]) -> SearchResult:
        self._check_written()
        q = self.encoding.validate_vector(query)
        if len(q) != self.config.n_stages:
            raise ValueError(
                f"query length {len(q)} != n_stages {self.config.n_stages}"
            )
        levels = self.config.levels
        vth_a, vth_b, vth_a_nom, vth_b_nom = self._thresholds()
        vsl_a = self._vsl[q][None, :]
        vsl_b = self._vsl[levels - 1 - q][None, :]
        fa_on = (vsl_a - vth_a) >= self._von
        fb_on = (vsl_b - vth_b) >= self._von
        mism = fa_on | fb_on
        if self._timing_is_nominal():
            # Every overdrive deviation below computes to exactly 0.0
            # here, so d_c_eff == d_C per cell; take the counts * d_C
            # delay form that the count-only batch kernels also use, so
            # scalar and batched paths stay mutually bit-exact.
            return self.result_from_mismatch_matrix(mism)
        # Delay modulation by the conducting device's gate-overdrive
        # *deviation from its own nominal overdrive*: weaker conduction
        # discharges MN slower, lengthening the switch turn-on (the
        # second-order variation path of the VC design).  Expressed
        # through the overdrive deviation (not the raw V_TH shift) so
        # search-line re-biasing (aging compensation) restores the
        # timing too; with nominal search lines it reduces exactly to
        # the per-device V_TH shift, matching the device-accurate array.
        vsl_a_nom = self._vsl_nom[q][None, :]
        vsl_b_nom = self._vsl_nom[levels - 1 - q][None, :]
        dev_a = (vsl_a_nom - vth_a_nom) - (vsl_a - vth_a)
        dev_b = (vsl_b_nom - vth_b_nom) - (vsl_b - vth_b)
        deviation = np.where(fa_on, dev_a, dev_b)
        d_c_eff = self._d_c * np.maximum(
            1.0 + self._delay_sens * deviation, 0.0
        )
        return self.result_from_mismatch_matrix(mism, d_c_eff=d_c_eff)

    def search_batch(
        self, queries: np.ndarray, chunk: Optional[int] = None
    ) -> BatchSearchResult:
        """Batched parallel search: Q queries in one vectorized kernel.

        Equivalent to ``[search(q) for q in queries]`` bit-for-bit (an
        equivalence suite asserts it), but mismatch counting runs
        through a dispatched kernel (packed popcount / one-hot GEMM /
        reference loop -- see :mod:`repro.core.kernels`), the TDC
        decode is array-valued, and the energy total is an affine table
        lookup -- the per-query Python overhead of the scalar path
        disappears.

        Args:
            queries: Query levels, shape (Q, n_stages).
            chunk: Queries per materialized tensor chunk (memory
                bound); ``None`` auto-sizes via
                :func:`resolve_query_chunk`.
        """
        if not _TM.enabled:
            return self._search_batch_impl(queries, chunk)
        with _trace.span(
            "array.search_batch",
            rows=self.n_rows,
            stages=self.config.n_stages,
            queries=int(np.atleast_2d(np.asarray(queries)).shape[0]),
        ):
            result = self._search_batch_impl(queries, chunk)
        _record_search_telemetry(
            self, result, mode="batch", n_queries=len(result)
        )
        return result

    def _search_batch_impl(
        self, queries: np.ndarray, chunk: Optional[int] = None
    ) -> BatchSearchResult:
        q = self._validate_queries(queries)
        chunk = self._resolve_batch_chunk(chunk, q)
        counts, adders = self._batch_kernel(q, chunk)
        return self.batch_result_from_mismatch_counts(
            counts, delay_adders_s=adders
        )

    # ------------------------------------------------------------------
    # Pruned top-k path
    # ------------------------------------------------------------------
    def _delay_strictly_monotone(self) -> bool:
        """Whether delay strictly increases with the mismatch count.

        The pruned cascade drops rows whose count lower bound exceeds
        the k-th upper bound; that is safe under full distance ties
        only if a strictly larger count also implies a strictly larger
        delay (the tie-breaker).  True for any physical design point
        (``d_C > 0`` well above the ulp of the base delay); checked
        explicitly so a degenerate config falls back to the exhaustive
        path instead of silently mispruning.
        """
        ladder = self._base_delay + (
            np.arange(self.config.n_stages + 1) * self._d_c
        )
        return bool(np.all(np.diff(ladder) > 0))

    def top_k_batch(
        self,
        queries: np.ndarray,
        k: int,
        rows: Optional[np.ndarray] = None,
        chunk: Optional[int] = None,
    ) -> np.ndarray:
        """Per-query top-k row indices without a full search, (Q, k).

        Bit-identical to ``search_batch(queries).top_k(k)`` (restricted
        to ``rows`` when given) -- an exactness suite asserts it -- but
        served through the **pruned top-k cascade** when timing is
        nominal: mismatch counts over a stage prefix lower-bound each
        row's final count, rows that cannot enter the top-k are pruned,
        and only the survivors are refined and ranked.  The cascade
        skips the full TDC decode, energy accounting, and winner
        resolution of the exhaustive path.  Under variation (or a
        degenerate delay ladder) it falls back to the exhaustive
        search transparently.

        Args:
            queries: Query levels, shape (Q, n_stages).
            k: Rows to return per query, ``1 <= k <= len(rows)``.
            rows: Optional strictly increasing row subset to rank
                (default: all rows); returned indices are array row
                ids, not subset positions.
            chunk: Queries per materialized block; ``None`` auto-sizes.
        """
        q = self._validate_queries(queries)
        if not _TM.enabled:
            return self._top_k_batch_impl(q, k, rows, chunk)
        with _trace.span(
            "array.top_k_batch",
            rows=self.n_rows,
            stages=self.config.n_stages,
            queries=int(q.shape[0]),
        ):
            return self._top_k_batch_impl(q, k, rows, chunk)

    def _top_k_batch_impl(
        self,
        q: np.ndarray,
        k: int,
        rows: Optional[np.ndarray],
        chunk: Optional[int],
    ) -> np.ndarray:
        chunk = self._resolve_batch_chunk(chunk, q)
        rows_arr: Optional[np.ndarray] = None
        m = self.n_rows
        if rows is not None:
            rows_arr = np.asarray(rows, dtype=np.int64)
            if rows_arr.ndim != 1 or rows_arr.shape[0] < 1:
                raise ValueError(
                    f"rows must be a non-empty 1-D index array, got "
                    f"shape {rows_arr.shape}"
                )
            if rows_arr[0] < 0 or rows_arr[-1] >= self.n_rows:
                raise ValueError(
                    f"rows must lie in [0, {self.n_rows - 1}]"
                )
            if rows_arr.shape[0] > 1 and not np.all(np.diff(rows_arr) > 0):
                raise ValueError("rows must be strictly increasing")
            m = rows_arr.shape[0]
        if not 1 <= k <= m:
            raise ValueError(f"k must be in [1, {m}], got {k}")
        if self._timing_is_nominal() and self._delay_strictly_monotone():
            return self._top_k_pruned(q, k, rows_arr, chunk)
        batch = self._search_batch_impl(q, chunk)
        if rows_arr is None:
            return batch.top_k(k)
        return top_k_indices(
            batch.hamming_distances[:, rows_arr],
            k,
            delays_s=batch.delays_s[:, rows_arr],
            row_ids=rows_arr,
        )

    def _top_k_pruned(
        self,
        q: np.ndarray,
        k: int,
        rows_arr: Optional[np.ndarray],
        chunk: int,
    ) -> np.ndarray:
        """The prefix-count / prune / refine cascade (nominal timing).

        Exactness argument: over the prefix, ``prefix <= final <=
        prefix + rem`` bounds every row's final count, so rows pruned
        by :func:`~repro.core.topk.prune_survivors` final-count
        strictly above at least ``k`` others -- and with a strictly
        monotone delay ladder they also lose every delay tie-break.
        Survivor refinement then uses the *exact* keys of the
        exhaustive path: the same delay floats (``base + count *
        d_C``), the same TDC decode, the same (distance, delay, row)
        ordering.
        """
        self._level_tables()
        planes = self._mism_packed
        if rows_arr is not None:
            planes = np.ascontiguousarray(planes[:, rows_arr, :])
        n = self.config.n_stages
        b_pad = planes.shape[2]
        # Prefix = the first half of the padded words (>= 1 word); a
        # one-word plane is covered entirely and refinement is a no-op.
        pb = 8 * max(1, (b_pad // 8) // 2)
        rem = max(0, n - pb * 8)
        levels = self.config.levels
        n_q = q.shape[0]
        out = np.empty((n_q, k), dtype=np.int64)
        survivors = 0
        for start in range(0, n_q, chunk):
            block = q[start:start + chunk]
            masks = pack_query_masks(block, levels)
            prefix = packed_mismatch_counts(
                planes[:, :, :pb], masks[:, :, :pb]
            )
            q_idx, r_idx = prune_survivors(prefix, k, rem)
            survivors += q_idx.shape[0]
            totals = prefix[q_idx, r_idx]
            if rem:
                totals = totals + packed_pair_counts(
                    planes[:, :, pb:], masks[:, :, pb:], q_idx, r_idx
                )
            delays = self._base_delay + totals * self._d_c
            distances = self.tdc.decode_array(delays)
            out[start:start + chunk] = grouped_top_k(
                q_idx,
                r_idx,
                distances,
                k,
                block.shape[0],
                secondary=delays,
            )
        if rows_arr is not None:
            out = rows_arr[out]
        if _TM.enabled:
            _emit_probe(
                "topk.pruned",
                rows=int(planes.shape[1]),
                queries=int(n_q),
                k=int(k),
                survivors=int(survivors),
                prefix_stages=int(min(n, pb * 8)),
            )
        return out

    def ideal_hamming(self, query: Sequence[int]) -> np.ndarray:
        """Variation-free per-row Hamming distances."""
        q = self.encoding.validate_vector(query)
        return (self._stored != q[None, :]).sum(axis=1)

    def __repr__(self) -> str:
        return (
            f"FastTDAMArray({self.n_rows} rows x {self.config.n_stages} "
            f"stages, {self.config.bits}-bit)"
        )
