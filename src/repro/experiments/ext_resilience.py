"""Extension experiment: closed-loop resilience and spare provisioning.

Not a paper figure -- the paper stops at showing that variation stays
inside the sensing margin -- but the question a production deployment
asks next: **how many spare rows does a target fault rate need, and does
the BIST -> repair -> refresh loop actually keep the search exact?**

Two studies:

1. **yield vs. spares** (Monte Carlo + analytic): arrays are seeded with
   random hard-fault maps at a given per-cell fault rate and dead-row
   rate, then put through the full BIST -> repair loop of
   :class:`~repro.resilience.resilient.ResilientTDAMArray`.  Measured
   full-repair yield and post-repair ``wrong_best_fraction`` are
   compared against the exact binomial model of
   :func:`~repro.resilience.repair.repair_yield`.
2. **refresh schedule**: the drift-limited refresh interval, its
   limiting mechanism, and the endurance-budgeted service lifetime of
   the design point.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.config import TDAMConfig
from repro.core.faults import Fault, FaultInjector
from repro.resilience.refresh import RefreshPlan, RefreshScheduler
from repro.resilience.repair import repair_yield, row_failure_probability
from repro.resilience.resilient import ResilientTDAMArray
from repro.experiments._instrument import instrumented
from repro.spice.montecarlo import resolve_worker_count
from repro.telemetry.profile import emit_probe as _emit_probe
from repro.telemetry.state import STATE as _TM


@dataclass
class ResilienceRecord:
    """One (spares, fault-rate) Monte Carlo cell.

    Attributes:
        n_spares: Provisioned spare rows.
        cell_fault_rate: Per-cell hard-fault probability.
        dead_row_rate: Per-row chain-failure probability.
        measured_yield: Fraction of trials fully repaired (no retired
            rows after the BIST -> repair loop).
        analytic_yield: The binomial model's prediction.
        wrong_best_repaired: Mean post-repair wrong-best fraction over
            the *fully repaired* trials (exactness check; 0 when the
            loop works).
        degraded_flagged: Fraction of not-fully-repaired trials whose
            searches all carried the degraded flag (silent-failure
            check; 1 when the loop is honest).
    """

    n_spares: int
    cell_fault_rate: float
    dead_row_rate: float
    measured_yield: float
    analytic_yield: float
    wrong_best_repaired: float
    degraded_flagged: float


@dataclass
class ResilienceResult:
    """The yield-vs-spares study output."""

    records: List[ResilienceRecord]
    refresh_plan: RefreshPlan
    config: TDAMConfig
    n_rows: int
    n_trials: int


def _wrong_best_fraction(
    array: ResilientTDAMArray, queries: np.ndarray
) -> float:
    """Fraction of queries whose live best row disagrees with the ideal.

    The reference best is the ideal-Hamming winner over *live* rows with
    the same distance -> row resolution the array applies (nominal
    delays are monotone in distance, so delay breaks no extra ties;
    ``argmin``'s first-minimum rule matches the ascending live order).
    """
    live = np.array(
        [r for r in range(array.n_rows) if r not in array._retired]
    )
    ideal = (
        array._shadow[live][None, :, :] != queries[:, None, :]
    ).sum(axis=2)
    expect = live[ideal.argmin(axis=1)]
    best = array.search_batch(queries).best_rows
    return float((best != expect).sum()) / len(queries)


@dataclass(frozen=True)
class _ResilienceTrial:
    """One (spares, fault-map) closed-loop evaluation, picklable for the
    shard-parallel executor.  Evaluation is deterministic -- all
    randomness lives in the pre-drawn inputs -- so any worker count
    produces identical records.

    Attributes:
        config: Design point.
        n_rows: Logical capacity.
        n_spares: Provisioned spare rows.
        faults: The trial's fault map (already truncated to the
            physical extent of this spare count).
        stored: The stored data matrix.
        queries: The exactness-check queries.
    """

    config: TDAMConfig
    n_rows: int
    n_spares: int
    faults: Tuple[Fault, ...]
    stored: np.ndarray
    queries: np.ndarray

    def __call__(self) -> Tuple[bool, float, bool]:
        """(fully repaired, wrong-best fraction, degraded flagged)."""
        array = ResilientTDAMArray(
            self.config,
            n_rows=self.n_rows,
            n_spares=self.n_spares,
            faults=list(self.faults),
            max_masked_stages=0,
        )
        array.write_all(self.stored)
        array.self_test_and_repair()
        if not array.degraded:
            return True, _wrong_best_fraction(array, self.queries), True
        result = array.search_batch(self.queries)
        return False, 0.0, bool(result.degraded)


def _evaluate_trial(trial: _ResilienceTrial) -> Tuple[bool, float, bool]:
    """Module-level shim so ProcessPoolExecutor can pickle the call."""
    return trial()


@instrumented("resilience")
def run_resilience_study(
    spare_counts: Sequence[int] = (0, 1, 2, 4),
    cell_fault_rate: float = 0.002,
    dead_row_rate: float = 0.05,
    config: Optional[TDAMConfig] = None,
    n_rows: int = 16,
    n_trials: int = 12,
    n_queries: int = 8,
    seed: int = 11,
    n_workers: Optional[int] = 1,
) -> ResilienceResult:
    """Monte Carlo the BIST -> repair loop across spare provisioning.

    Each trial seeds one fault map over ``n_rows + max(spare_counts)``
    physical rows (binomial cell faults and dead rows at the given
    rates); every spare count replays the *same* map truncated to its
    own physical extent (common random numbers).  Truncation makes the
    measured yield deterministically monotone in the spare count: the
    data-row damage is identical and extra spares can only add healthy
    replacements.  Each cell then runs the closed loop and scores repair
    yield, post-repair exactness, and degraded-mode honesty.

    Args:
        n_workers: Parallel workers for the (deterministic) closed-loop
            evaluations; the inputs are pre-drawn serially, so any
            worker count produces identical records.  ``None`` picks
            automatically (see
            :func:`repro.spice.montecarlo.resolve_worker_count`).
    """
    # Each trial is a full BIST/repair closed loop -- expensive enough
    # that two trials per worker already amortize the pool spin-up.
    n_workers, fallback_reason = resolve_worker_count(
        n_trials, n_workers, executor="process", min_trials_per_worker=2
    )
    if fallback_reason is not None and _TM.enabled:
        _emit_probe(
            "mc.fallback_serial", requested="auto", reason=fallback_reason
        )
    if not spare_counts:
        raise ValueError("spare_counts must not be empty")
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    config = config or TDAMConfig(n_stages=32)
    rng = np.random.default_rng(seed)
    records: List[ResilienceRecord] = []
    p_row = row_failure_probability(
        cell_fault_rate,
        config.n_stages,
        p_dead=dead_row_rate,
        cell_fault_tolerance=0,
    )
    max_total = n_rows + max(spare_counts)
    trials = []
    for _trial in range(n_trials):
        injector = FaultInjector(
            config, max_total, seed=int(rng.integers(2**31))
        )
        n_cells = int(
            rng.binomial(max_total * config.n_stages, cell_fault_rate)
        )
        n_dead = int(rng.binomial(max_total, dead_row_rate))
        faults = injector.draw(
            n_stuck_mismatch=n_cells // 2,
            n_stuck_match=n_cells - n_cells // 2,
            n_dead_rows=n_dead,
        )
        stored = rng.integers(0, config.levels, (n_rows, config.n_stages))
        queries = rng.integers(
            0, config.levels, (n_queries, config.n_stages)
        )
        trials.append((faults, stored, queries))
    for n_spares in spare_counts:
        total = n_rows + n_spares
        evals = [
            _ResilienceTrial(
                config=config,
                n_rows=n_rows,
                n_spares=n_spares,
                faults=tuple(f for f in faults if f.row < total),
                stored=stored,
                queries=queries,
            )
            for faults, stored, queries in trials
        ]
        if n_workers == 1:
            outcomes = [trial() for trial in evals]
        else:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(n_workers, len(evals))
            ) as pool:
                outcomes = list(pool.map(_evaluate_trial, evals))
        repaired = 0
        wrong_sum, wrong_trials = 0.0, 0
        flagged, not_repaired = 0, 0
        for ok, wrong_fraction, was_flagged in outcomes:
            if ok:
                repaired += 1
                wrong_sum += wrong_fraction
                wrong_trials += 1
            else:
                not_repaired += 1
                if was_flagged:
                    flagged += 1
        records.append(
            ResilienceRecord(
                n_spares=n_spares,
                cell_fault_rate=cell_fault_rate,
                dead_row_rate=dead_row_rate,
                measured_yield=repaired / n_trials,
                analytic_yield=repair_yield(n_rows, n_spares, p_row),
                wrong_best_repaired=(
                    wrong_sum / wrong_trials if wrong_trials else float("nan")
                ),
                degraded_flagged=(
                    flagged / not_repaired if not_repaired else 1.0
                ),
            )
        )
    plan = RefreshScheduler(config).plan()
    return ResilienceResult(
        records=records,
        refresh_plan=plan,
        config=config,
        n_rows=n_rows,
        n_trials=n_trials,
    )


def format_resilience(result: ResilienceResult) -> str:
    """Text rendering of the resilience study."""
    rows = [
        {
            "spares": r.n_spares,
            "yield_mc": r.measured_yield,
            "yield_model": r.analytic_yield,
            "wrong_best_after_repair": r.wrong_best_repaired,
            "degraded_flagged": r.degraded_flagged,
        }
        for r in result.records
    ]
    body = format_table(
        rows,
        title=(
            f"Extension: repair yield vs spares "
            f"({result.n_rows} rows, {result.config.n_stages} stages, "
            f"cell fault rate {result.records[0].cell_fault_rate:.3g}, "
            f"dead row rate {result.records[0].dead_row_rate:.3g}, "
            f"{result.n_trials} trials)"
        ),
    )
    return f"{body}\n{result.refresh_plan.summary()}"


if __name__ == "__main__":
    from repro.cli import emit

    emit(format_resilience(run_resilience_study()))
