"""Seeded synthetic dataset generators (ISOLET / UCIHAR / FACE shaped).

Each generator draws class-conditional Gaussian data:

- class means sit on a random simplex scaled by a **separability**
  parameter (distance between classes in units of within-class noise);
- an optional **confusable-pairs** mechanism pulls selected class means
  toward each other (UCIHAR's walking vs. walking-upstairs flavor);
- a low-rank structure matrix correlates features, as real sensor
  features are (nothing about HDC encodings is i.i.d.-feature-friendly,
  so this matters for realistic accuracy curves).

The parameters were chosen so the HDC accuracy-vs-(D, precision) trends
of Fig. 7 reproduce: FACE saturates early even at 1 bit, ISOLET needs
either more dimensions or more bits, and UCIHAR cannot reach its peak
accuracy at 1 bit within the swept dimension range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A train/test split with metadata.

    Attributes:
        name: Dataset identifier ("isolet", "ucihar", "face").
        x_train: Training features, shape (n_train, n_features).
        y_train: Training labels.
        x_test: Test features.
        y_test: Test labels.
        metadata: Generator parameters for provenance.
    """

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def n_features(self) -> int:
        return self.x_train.shape[1]

    @property
    def n_classes(self) -> int:
        return int(max(self.y_train.max(), self.y_test.max())) + 1

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, {self.x_train.shape[0]} train / "
            f"{self.x_test.shape[0]} test, {self.n_features} features, "
            f"{self.n_classes} classes)"
        )


def _gaussian_mixture(
    name: str,
    n_classes: int,
    n_features: int,
    n_train: int,
    n_test: int,
    separability: float,
    confusable_pairs: Sequence[Tuple[int, int]] = (),
    confusion_pull: float = 0.75,
    feature_rank: int = 40,
    seed: int = 0,
) -> Dataset:
    """Core generator: correlated Gaussian classes on a random simplex."""
    if n_classes < 2:
        raise ValueError(f"n_classes must be >= 2, got {n_classes}")
    if n_train < n_classes or n_test < n_classes:
        raise ValueError("need at least one sample per class in each split")
    rng = np.random.default_rng(seed)
    # ``separability`` is the norm of each class-mean vector in units of
    # the per-feature noise std (==1 by construction below); pairwise
    # class distances are ~separability * sqrt(2).
    means = rng.standard_normal((n_classes, n_features))
    means *= separability / np.sqrt(n_features)
    for a, b in confusable_pairs:
        if not (0 <= a < n_classes and 0 <= b < n_classes):
            raise ValueError(f"confusable pair {(a, b)} out of range")
        mid = 0.5 * (means[a] + means[b])
        means[a] = mid + (means[a] - mid) * (1.0 - confusion_pull)
        means[b] = mid + (means[b] - mid) * (1.0 - confusion_pull)
    # Low-rank correlated noise: features are mixtures of latent factors.
    mixing = rng.standard_normal((feature_rank, n_features)) / np.sqrt(feature_rank)

    def draw(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        latent = rng.standard_normal((n, feature_rank))
        noise = latent @ mixing + 0.35 * rng.standard_normal((n, n_features))
        return (means[labels] + noise).astype(np.float32), labels

    x_train, y_train = draw(n_train)
    x_test, y_test = draw(n_test)
    # Standardize with training statistics (as the UCI pipelines do).
    mu = x_train.mean(axis=0)
    sigma = x_train.std(axis=0) + 1e-8
    return Dataset(
        name=name,
        x_train=(x_train - mu) / sigma,
        y_train=y_train,
        x_test=(x_test - mu) / sigma,
        y_test=y_test,
        metadata={
            "separability": separability,
            "n_classes": float(n_classes),
            "seed": float(seed),
        },
    )


def make_isolet_like(
    n_train: int = 1560,
    n_test: int = 780,
    seed: int = 1,
) -> Dataset:
    """ISOLET-shaped data: 617 features, 26 classes, medium separability."""
    return _gaussian_mixture(
        name="isolet",
        n_classes=26,
        n_features=617,
        n_train=n_train,
        n_test=n_test,
        separability=12.5,
        seed=seed,
    )


def make_ucihar_like(
    n_train: int = 1470,
    n_test: int = 735,
    seed: int = 2,
) -> Dataset:
    """UCIHAR-shaped data: 561 features, 6 activities, confusable pairs.

    Activities 0/1 (walking vs. walking-upstairs) and 3/4 (sitting vs.
    standing) are pulled close together, which is what defeats 1-bit
    quantization in the paper's Fig. 7.
    """
    return _gaussian_mixture(
        name="ucihar",
        n_classes=6,
        n_features=561,
        n_train=n_train,
        n_test=n_test,
        separability=14.0,
        confusable_pairs=((0, 1), (3, 4)),
        confusion_pull=0.85,
        seed=seed,
    )


def make_face_like(
    n_train: int = 1600,
    n_test: int = 800,
    seed: int = 3,
) -> Dataset:
    """FACE-shaped data: 608 features, binary, well separated."""
    return _gaussian_mixture(
        name="face",
        n_classes=2,
        n_features=608,
        n_train=n_train,
        n_test=n_test,
        separability=9.0,
        seed=seed,
    )


def standard_suite(
    scale: float = 1.0, seed_offset: int = 0
) -> List[Dataset]:
    """The paper's three datasets at an adjustable sample-count scale.

    Args:
        scale: Multiplies the default train/test sizes (benches use
            ``scale < 1`` for speed).
        seed_offset: Added to the per-dataset seeds (for replications).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")

    def s(n: int) -> int:
        return max(60, int(n * scale))

    return [
        make_isolet_like(s(1560), s(780), seed=1 + seed_offset),
        make_ucihar_like(s(1470), s(735), seed=2 + seed_offset),
        make_face_like(s(1600), s(800), seed=3 + seed_offset),
    ]
