"""Fault-tolerant serving layer for replicated TD-AM shards.

Wraps :class:`~repro.resilience.resilient.ResilientTDAMArray` replicas
behind a single request surface with the standard reliability toolkit:

- **admission** -- strict input validation and per-request deadlines
  (:class:`TDAMSearchService`), plus overload admission control:
  per-tenant token-bucket quotas and a bounded intake queue with typed
  load shedding (:mod:`repro.service.admission`);
- **encode-then-search** -- raw feature vectors digitized into TD-AM
  query levels through the HDC encode pipeline, optionally on the
  fabric's own bit-serial MVM kernels (:mod:`repro.service.encode`);
- **coalescing** -- a thread-safe concurrent front-end that groups
  compatible single-query requests into one batched shard call,
  bit-exactly (:mod:`repro.service.coalesce`,
  :mod:`repro.service.frontend`);
- **partitioning** -- one logical corpus scattered across disjoint
  row-range partitions, gathered under the global ranking rule with
  honest partial-coverage reporting (:mod:`repro.service.partition`);
- **retries** -- exponential backoff with decorrelated jitter, gated by
  a Finagle-style retry budget (:mod:`repro.service.retry`);
- **circuit breakers** -- per-shard quarantine driven by both request
  outcomes and the resilience loop's BIST health reports
  (:mod:`repro.service.breaker`);
- **degraded mode** -- when no healthy replica remains, an explicit
  best-effort answer carrying the ``degraded`` flag rather than a
  silent wrong one;
- **crash-safe checkpoints** -- atomic, checksummed snapshots of a
  shard's full physical + repair state, optionally triggered by
  repair/refresh probe events (:mod:`repro.service.checkpoint`);
- **chaos harness** -- scripted failure scenarios with SLO assertions
  (:mod:`repro.service.chaos`, ``repro chaos``);
- **load generation** -- a deterministic open-loop generator scoring
  goodput, shed-rate, latency percentiles, and honesty on a fake clock
  (:mod:`repro.service.loadgen`, ``repro loadtest``).

The error taxonomy in :mod:`repro.service.errors` is the contract:
transient errors retry, invalid requests reject immediately, overload
sheds carry ``retry_after_s``, and every exhaustion path has a distinct
type.
"""

from repro.service.admission import (
    AdmissionController,
    TenantQuotas,
    TokenBucket,
)
from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.chaos import (
    ChaosReport,
    ChaosScenarioResult,
    DEADLINE_SLO,
    FakeClock,
    run_chaos_suite,
)
from repro.service.checkpoint import CheckpointInfo, ServiceCheckpointer
from repro.service.coalesce import (
    CoalescePolicy,
    Coalescer,
    FrontendFuture,
    PendingRequest,
    ReadyBatch,
)
from repro.service.errors import (
    AdmissionRejectedError,
    AllShardsUnavailableError,
    CalibrationDriftError,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointNotFoundError,
    CircuitOpenError,
    DeadlineExceededError,
    InvalidRequestError,
    OverloadError,
    QuotaExceededError,
    ReplicaDivergenceError,
    RetryBudgetExhaustedError,
    ServiceError,
    ShardBusyError,
    ShardTimeoutError,
    TransientServiceError,
    is_retryable,
)
from repro.service.encode import EncodeSearchService
from repro.service.frontend import CoalescingFrontend, FrontendStats
from repro.service.loadgen import (
    LoadConfig,
    LoadReport,
    TenantReport,
    format_load_report,
    run_load,
)
from repro.service.partition import (
    PartitionedSearchResponse,
    PartitionedTDAMService,
    PartitionedTopKResponse,
)
from repro.service.retry import BackoffSchedule, RetryBudget, RetryPolicy
from repro.service.server import (
    Interceptor,
    ServiceResponse,
    Shard,
    TDAMSearchService,
    TopKServiceResponse,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejectedError",
    "AllShardsUnavailableError",
    "BackoffSchedule",
    "BreakerState",
    "CalibrationDriftError",
    "ChaosReport",
    "ChaosScenarioResult",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointNotFoundError",
    "CircuitBreaker",
    "CircuitOpenError",
    "CoalescePolicy",
    "Coalescer",
    "CoalescingFrontend",
    "DEADLINE_SLO",
    "DeadlineExceededError",
    "EncodeSearchService",
    "FakeClock",
    "FrontendFuture",
    "FrontendStats",
    "Interceptor",
    "InvalidRequestError",
    "LoadConfig",
    "LoadReport",
    "OverloadError",
    "PartitionedSearchResponse",
    "PartitionedTDAMService",
    "PartitionedTopKResponse",
    "PendingRequest",
    "QuotaExceededError",
    "ReadyBatch",
    "ReplicaDivergenceError",
    "RetryBudget",
    "RetryBudgetExhaustedError",
    "RetryPolicy",
    "ServiceCheckpointer",
    "ServiceError",
    "ServiceResponse",
    "Shard",
    "ShardBusyError",
    "ShardTimeoutError",
    "TDAMSearchService",
    "TenantReport",
    "TenantQuotas",
    "TokenBucket",
    "TopKServiceResponse",
    "TransientServiceError",
    "format_load_report",
    "is_retryable",
    "run_chaos_suite",
    "run_load",
]
