"""Tests of the transient solver against closed-form circuit behaviour."""

import math

import numpy as np
import pytest

from repro.devices.mosfet import nmos, pmos
from repro.spice.elements import (
    Capacitor,
    MOSFETElement,
    PulseWaveform,
    Resistor,
    StepWaveform,
    VoltageSource,
)
from repro.spice.netlist import Circuit
from repro.spice.transient import ConvergenceError, simulate


def rc_circuit(r=1e3, c=1e-12, v=1.0, t_step=0.1e-9):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("in", StepWaveform(0.0, v, t_step=t_step, t_rise=1e-12)))
    ckt.add(Resistor("in", "out", r))
    ckt.add(Capacitor("out", "0", c))
    return ckt


class TestRCStepResponse:
    def test_time_constant(self):
        ckt = rc_circuit()
        result = simulate(ckt, t_stop=6e-9, dt=5e-12)
        t63 = result.waveform("out").first_crossing(1 - math.exp(-1), rising=True)
        assert t63 - 0.1e-9 == pytest.approx(1e-9, rel=0.02)

    def test_final_value(self):
        result = simulate(rc_circuit(), t_stop=10e-9, dt=10e-12)
        assert result.waveform("out").settled_value() == pytest.approx(1.0, abs=1e-3)

    def test_exponential_shape(self):
        result = simulate(rc_circuit(), t_stop=5e-9, dt=5e-12)
        wf = result.waveform("out")
        for n_tau in (1.0, 2.0, 3.0):
            expected = 1 - math.exp(-n_tau)
            assert wf.value_at(0.1e-9 + n_tau * 1e-9) == pytest.approx(
                expected, abs=0.01
            )

    def test_divider_dc(self):
        ckt = Circuit("divider")
        ckt.add(VoltageSource("in", 1.0))
        ckt.add(Resistor("in", "mid", 1e3))
        ckt.add(Resistor("mid", "0", 1e3))
        result = simulate(ckt, t_stop=1e-9, dt=10e-12)
        assert result.waveform("mid").settled_value() == pytest.approx(0.5, abs=1e-6)

    def test_source_energy_matches_cv2_with_resistor_loss(self):
        """Source delivers C*V^2: half stored, half burned in R."""
        ckt = rc_circuit(v=1.0)
        result = simulate(ckt, t_stop=10e-9, dt=5e-12)
        energy = result.source_energy("in")
        assert energy == pytest.approx(1e-12 * 1.0**2, rel=0.03)


class TestInverter:
    def build(self, vdd=1.1, c_load=2e-15, falling_input=False):
        ckt = Circuit("inv")
        ckt.add(VoltageSource("vdd", vdd))
        v0, v1 = (vdd, 0.0) if falling_input else (0.0, vdd)
        ckt.add(VoltageSource("in", StepWaveform(v0, v1, t_step=0.2e-9,
                                                 t_rise=20e-12)))
        ckt.add(MOSFETElement("out", "in", "0", nmos(width=2.0)))
        ckt.add(MOSFETElement("out", "in", "vdd", pmos(width=4.0)))
        ckt.add(Capacitor("out", "0", c_load))
        return ckt, vdd

    def test_output_inverts(self):
        ckt, vdd = self.build()
        result = simulate(ckt, t_stop=1e-9, dt=2e-12, v_init={"out": vdd})
        assert result.waveform("out").settled_value() < 0.05

    def test_rising_input_output_falls(self):
        ckt, vdd = self.build()
        result = simulate(ckt, t_stop=1e-9, dt=2e-12, v_init={"out": vdd})
        delay = result.waveform("in").delay_to(
            result.waveform("out"), vdd / 2,
            rising_self=True, rising_other=False,
        )
        assert 0 < delay < 100e-12

    def test_delay_scales_with_load(self):
        delays = []
        for c_load in (2e-15, 8e-15):
            ckt, vdd = self.build(c_load=c_load)
            result = simulate(ckt, t_stop=2e-9, dt=2e-12, v_init={"out": vdd})
            delays.append(
                result.waveform("in").delay_to(
                    result.waveform("out"), vdd / 2,
                    rising_self=True, rising_other=False,
                )
            )
        assert delays[1] > 2.0 * delays[0]

    def test_supply_energy_positive_on_rising_output(self):
        ckt, vdd = self.build(falling_input=True, c_load=6e-15)
        result = simulate(ckt, t_stop=2e-9, dt=2e-12, v_init={"out": 0.0})
        energy = result.source_energy("vdd", v_level=vdd)
        assert energy == pytest.approx(6e-15 * vdd**2, rel=0.1)


class TestSolverBehaviour:
    def test_rejects_bad_timestep(self):
        with pytest.raises(ValueError, match="dt"):
            simulate(rc_circuit(), t_stop=1e-9, dt=0.0)

    def test_rejects_bad_stop_time(self):
        with pytest.raises(ValueError, match="t_stop"):
            simulate(rc_circuit(), t_stop=-1.0, dt=1e-12)

    def test_v_init_applied(self):
        ckt = rc_circuit(t_step=50e-9)  # source stays 0 during the run
        result = simulate(ckt, t_stop=3e-9, dt=10e-12, v_init={"out": 1.0})
        wf = result.waveform("out")
        assert wf.values[0] == 1.0
        # Discharges toward the 0 V source through R (tau = 1 ns from t=0).
        assert wf.value_at(1.0e-9) == pytest.approx(math.exp(-1), abs=0.02)

    def test_unknown_node_lookup(self):
        result = simulate(rc_circuit(), t_stop=1e-9, dt=10e-12)
        with pytest.raises(KeyError, match="known nodes"):
            result.waveform("nope")

    def test_newton_iterations_counted(self):
        result = simulate(rc_circuit(), t_stop=1e-9, dt=10e-12)
        assert result.newton_iterations >= 100  # at least one per step

    def test_time_axis(self):
        result = simulate(rc_circuit(), t_stop=1e-9, dt=100e-12)
        assert len(result.time) == 11
        assert result.time[0] == 0.0
        assert result.time[-1] == pytest.approx(1e-9)

    def test_pulse_through_rc_returns_to_zero(self):
        ckt = Circuit("rc_pulse")
        ckt.add(VoltageSource("in", PulseWaveform(0.0, 1.0, t_delay=0.2e-9,
                                                  t_width=2e-9)))
        ckt.add(Resistor("in", "out", 1e3))
        ckt.add(Capacitor("out", "0", 0.2e-12))
        result = simulate(ckt, t_stop=8e-9, dt=10e-12)
        wf = result.waveform("out")
        assert wf.v_max > 0.95
        assert wf.settled_value() < 0.02


class TestConvergenceRecovery:
    def test_substep_retry_on_stiff_step(self):
        """A violently fast edge at a coarse timestep forces the solver
        into its 4x-substep retry path; the result must still be correct."""
        ckt = Circuit("stiff")
        ckt.add(VoltageSource("vdd", 1.1))
        # A near-instant 3-decade input slew into a high-gain stage.
        ckt.add(VoltageSource("in", StepWaveform(0.0, 1.1, t_step=0.5e-9,
                                                 t_rise=1e-15)))
        ckt.add(MOSFETElement("out", "in", "0", nmos(width=50.0)))
        ckt.add(MOSFETElement("out", "in", "vdd", pmos(width=100.0)))
        ckt.add(Capacitor("out", "0", 0.05e-15))
        result = simulate(ckt, t_stop=1.5e-9, dt=50e-12,
                          v_init={"out": 1.1}, max_newton=8)
        assert result.waveform("out").settled_value() < 0.05

    def test_scalar_path_retry_too(self):
        ckt = Circuit("stiff2")
        ckt.add(VoltageSource("vdd", 1.1))
        ckt.add(VoltageSource("in", StepWaveform(0.0, 1.1, t_step=0.5e-9,
                                                 t_rise=1e-15)))
        ckt.add(MOSFETElement("out", "in", "0", nmos(width=50.0)))
        ckt.add(MOSFETElement("out", "in", "vdd", pmos(width=100.0)))
        ckt.add(Capacitor("out", "0", 0.05e-15))
        result = simulate(ckt, t_stop=1.5e-9, dt=50e-12,
                          v_init={"out": 1.1}, max_newton=8, fastpath=False)
        assert result.waveform("out").settled_value() < 0.05
