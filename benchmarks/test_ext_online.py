"""Extension bench: quantitative vs binary similarity feedback.

Quantifies the paper's Sec. II-B capability argument -- exact similarity
values are "crucial for parameter update in some machine learning
algorithms" -- by streaming the same task through the three feedback
modes of the online learner.
"""

from benchmarks.conftest import run_once
from repro.datasets.synthetic import make_isolet_like
from repro.experiments.ext_online import format_online, run_online_study


def test_ext_online_learning(benchmark):
    records = run_once(
        benchmark, run_online_study,
        dataset=make_isolet_like(600, 300), dimension=2048,
    )
    print()
    print(format_online(records))

    by_mode = {r.feedback: r for r in records}
    # The quantitative TD-AM supports learning; the binary CAM collapses.
    assert by_mode["quantitative"].test_accuracy > 0.3
    assert by_mode["binary"].test_accuracy < 0.15
    gap = (
        by_mode["quantitative"].test_accuracy
        - by_mode["binary"].test_accuracy
    )
    assert gap > 0.2
    # The software reference bounds the hardware path from above.
    assert by_mode["exact"].test_accuracy >= (
        by_mode["quantitative"].test_accuracy - 0.05
    )
