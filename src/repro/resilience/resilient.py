"""The self-healing TD-AM: closed-loop BIST, repair, refresh, serve.

:class:`ResilientTDAMArray` wraps a
:class:`~repro.core.array.FastTDAMArray` (optionally carrying a hard
fault map through :class:`~repro.core.faults.FaultyTDAMArray`) and keeps
it serving correct nearest neighbors through its whole service life:

- **spare rows** are provisioned beyond the logical capacity and taken
  into use when BIST finds dead or unmaskable rows;
- **periodic BIST** (:class:`~repro.resilience.bist.MarchBIST`) runs
  every ``bist_interval`` searches (or on demand), with the stored data
  held in a shadow image and restored afterwards;
- **repairs** (:class:`~repro.resilience.repair.RepairEngine`) are
  applied automatically: stage columns masked, rows remapped to spares,
  and -- only when spares are exhausted -- rows retired;
- **retention drift** is tracked per physical row and cleared by
  rewrites; the :class:`~repro.resilience.refresh.RefreshScheduler`
  decides when a refresh is due, and every refresh spends endurance;
- **replica recalibration** re-derives the TDC decode constants whenever
  the measured replica delays drift past the sensing margin.

Search results are :class:`ResilientSearchResult` objects carrying
health metadata: similarity is rescaled to the surviving stage count and
``degraded`` is ``True`` whenever retired rows exist -- the array never
silently drops stored vectors from the search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.array import FastTDAMArray, resolve_best_batch
from repro.core.config import TDAMConfig
from repro.core.faults import Fault, FaultyTDAMArray
from repro.core.topk import top_k_indices
from repro.core.replica import ReplicaCalibratedTDC, measure_replica
from repro.devices.nonideal import EnduranceModel, RetentionModel
from repro.devices.variation import VariationModel
from repro.resilience.bist import DiagnosisReport, MarchBIST
from repro.resilience.refresh import RefreshScheduler
from repro.resilience.repair import RepairEngine, RepairPlan
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace
from repro.telemetry.log import get_logger
from repro.telemetry.profile import emit_probe as _emit_probe
from repro.telemetry.state import STATE as _TM

_log = get_logger(__name__)

# Closed-loop health instruments (dormant unless telemetry is enabled).
_REG = _metrics.get_registry()
_BIST_RUNS = _REG.counter(
    "tdam_bist_runs_total", "Completed march BIST diagnoses"
)
_REPAIR_ACTIONS = _REG.counter(
    "tdam_repair_actions_total",
    "Repair actions applied, by kind",
    labels=("action",),
)
_REFRESHES = _REG.counter(
    "tdam_refreshes_total", "Full-array refresh rewrites"
)
_RECALIBRATIONS = _REG.counter(
    "tdam_recalibrations_total", "Replica TDC recalibrations"
)
_REFRESH_DEBT = _REG.gauge(
    "tdam_refresh_debt_ratio",
    "Oldest-row age over the scheduled refresh interval (>= 1 => overdue)",
)
_RETIRED_ROWS = _REG.gauge(
    "tdam_retired_rows", "Logical rows currently without a physical home"
)
_MASKED_STAGES = _REG.gauge(
    "tdam_masked_stages", "Stage columns currently masked out of the distance"
)


@dataclass(frozen=True)
class ResilientSearchResult:
    """A search outcome over *logical* rows, with health metadata.

    Attributes:
        hamming_distances: Per-logical-row decoded distances over the
            surviving stages; retired rows read the maximum
            (``n_effective_stages``) so they can never silently win.
        delays_s: Per-logical-row delays (retired rows: the controller
            timeout).
        best_row: Most similar *live* logical row (distance -> delay ->
            row resolution); ``-1`` when every row is retired.
        latency_s: Slowest physical chain (rows run in parallel).
        energy_j: Total physical search energy (spares included).
        n_stages: Physical chain length.
        n_effective_stages: Surviving stages after column masking -- the
            denominator for rescaled similarity.
        degraded: ``True`` when retired rows exist: the answer may omit
            stored vectors and must not be trusted silently.
        confidence: Fraction of the design's resolution still in
            service: ``(live rows / rows) * (surviving / total stages)``.
        retired_rows: Logical rows currently without a physical home.
        masked_stages: Stage columns excluded from the distance.
    """

    hamming_distances: np.ndarray
    delays_s: np.ndarray
    best_row: int
    latency_s: float
    energy_j: float
    n_stages: int
    n_effective_stages: int
    degraded: bool
    confidence: float
    retired_rows: Tuple[int, ...]
    masked_stages: Tuple[int, ...]

    @property
    def similarities(self) -> np.ndarray:
        """Match counts rescaled to the surviving stage count."""
        return self.n_effective_stages - self.hamming_distances

    @property
    def similarity_fractions(self) -> np.ndarray:
        """Similarities normalized to [0, 1] over surviving stages."""
        if self.n_effective_stages == 0:
            return np.zeros_like(self.hamming_distances, dtype=float)
        return self.similarities / float(self.n_effective_stages)


@dataclass(frozen=True)
class ResilientBatchSearchResult:
    """Batched search outcome over logical rows: Q queries at once.

    Per-query slices are bit-exact against the corresponding
    :class:`ResilientSearchResult` (:meth:`result` reconstructs it).
    The health metadata (masking, retirement, confidence) is
    query-independent -- it describes the array at the instant the batch
    was served -- so it is stored once, not per query.

    Attributes:
        hamming_distances: Per-logical-row decoded distances, (Q, n_rows).
        delays_s: Per-logical-row delays, (Q, n_rows).
        best_rows: Most similar live logical row per query (``-1`` when
            every row is retired), shape (Q,).
        latencies_s: Slowest physical chain per query, shape (Q,).
        energies_j: Total physical search energy per query, shape (Q,).
        n_stages: Physical chain length.
        n_effective_stages: Surviving stages after column masking.
        degraded: Whether retired rows existed while serving the batch.
        confidence: Surviving-resolution fraction (see
            :class:`ResilientSearchResult`).
        retired_rows: Logical rows without a physical home.
        masked_stages: Stage columns excluded from the distance.
    """

    hamming_distances: np.ndarray
    delays_s: np.ndarray
    best_rows: np.ndarray
    latencies_s: np.ndarray
    energies_j: np.ndarray
    n_stages: int
    n_effective_stages: int
    degraded: bool
    confidence: float
    retired_rows: Tuple[int, ...]
    masked_stages: Tuple[int, ...]

    def __len__(self) -> int:
        return self.hamming_distances.shape[0]

    @property
    def similarities(self) -> np.ndarray:
        """Match counts rescaled to the surviving stage count, (Q, n_rows)."""
        return self.n_effective_stages - self.hamming_distances

    def top_k(self, k: int) -> np.ndarray:
        """Per-query top-k *logical* row indices, shape (Q, k).

        The shared (distance, delay, row) ordering rule; retired rows
        carry the maximum distance and the timeout delay, so they rank
        strictly after every live row.
        """
        return top_k_indices(
            self.hamming_distances, k, delays_s=self.delays_s
        )

    def result(self, i: int) -> ResilientSearchResult:
        """The single-query :class:`ResilientSearchResult` of query ``i``."""
        if not -len(self) <= i < len(self):
            raise IndexError(
                f"query {i} out of range for batch of {len(self)}"
            )
        return ResilientSearchResult(
            hamming_distances=self.hamming_distances[i],
            delays_s=self.delays_s[i],
            best_row=int(self.best_rows[i]),
            latency_s=float(self.latencies_s[i]),
            energy_j=float(self.energies_j[i]),
            n_stages=self.n_stages,
            n_effective_stages=self.n_effective_stages,
            degraded=self.degraded,
            confidence=self.confidence,
            retired_rows=self.retired_rows,
            masked_stages=self.masked_stages,
        )


@dataclass(frozen=True)
class TopKResult:
    """Per-query top-k logical rows with the health flags that matter.

    Attributes:
        rows: Per-query top-k logical row indices, shape (Q, k).
        degraded: Whether retired rows existed while serving (the
            ranking may omit stored vectors).
        pruned: Whether the pruned cascade served the request (pristine
            arrays only); ``False`` means the exhaustive fallback ran.
        retired_rows: Logical rows without a physical home.
    """

    rows: np.ndarray
    degraded: bool
    pruned: bool
    retired_rows: Tuple[int, ...]


@dataclass(frozen=True)
class HealthReport:
    """Snapshot of the array's serviceability.

    Attributes:
        n_rows: Logical capacity.
        n_spares: Provisioned spare rows.
        spares_free: Healthy spares not yet consumed.
        masked_stages: Currently masked stage columns.
        retired_rows: Logical rows without a physical home.
        degraded: Whether searches currently carry the degraded flag.
        age_s: Oldest row data age since its last rewrite.
        refresh_due: Whether the scheduler demands a refresh now.
        refresh_interval_s: The scheduled refresh period.
        cycles_used: Worst-case program/erase cycles spent on any row.
        cycle_budget: Endurance budget for rewrites.
        searches_since_bist: Searches since the last self-test.
        last_bist: One-line summary of the last diagnosis (or ``None``).
    """

    n_rows: int
    n_spares: int
    spares_free: int
    masked_stages: Tuple[int, ...]
    retired_rows: Tuple[int, ...]
    degraded: bool
    age_s: float
    refresh_due: bool
    refresh_interval_s: float
    cycles_used: float
    cycle_budget: float
    searches_since_bist: int
    last_bist: Optional[str]


class ResilientTDAMArray:
    """A self-healing TD-AM array with spare rows and health tracking.

    Args:
        config: Design point.
        n_rows: Logical capacity (stored vectors served to the user).
        n_spares: Extra physical rows provisioned for repair.
        faults: Hard-fault map injected into the physical array
            (physical row indices -- spares can be faulty too).
        variation: Optional write-time V_TH variation model.
        retention: Drift model; defaults to the standard HfO2 numbers.
        endurance: Cycling model for the refresh budget.
        bist_interval: Run BIST-and-repair automatically every this many
            searches (``None`` disables the automatic loop).
        max_masked_stages: Stage-masking budget of the repair engine.
    """

    def __init__(
        self,
        config: TDAMConfig,
        n_rows: int,
        n_spares: int = 2,
        faults: Sequence[Fault] = (),
        variation: Optional[VariationModel] = None,
        retention: Optional[RetentionModel] = None,
        endurance: Optional[EnduranceModel] = None,
        bist_interval: Optional[int] = None,
        max_masked_stages: int = 2,
    ) -> None:
        if n_rows < 1:
            raise ValueError(f"n_rows must be >= 1, got {n_rows}")
        if n_spares < 0:
            raise ValueError(f"n_spares must be >= 0, got {n_spares}")
        if bist_interval is not None and bist_interval < 1:
            raise ValueError(
                f"bist_interval must be >= 1, got {bist_interval}"
            )
        self.config = config
        self.n_rows = n_rows
        self.n_spares = n_spares
        total = n_rows + n_spares
        self._physical = FastTDAMArray(config, total, variation=variation)
        self._backing = FaultyTDAMArray(self._physical, faults)
        self.retention = retention or RetentionModel(params=config.fefet)
        self.scheduler = RefreshScheduler(
            config,
            retention=self.retention,
            endurance=endurance,
            turn_on_overdrive=self._physical.turn_on_overdrive,
        )
        self.bist = MarchBIST()
        self.engine = RepairEngine(max_masked_stages=max_masked_stages)
        self.bist_interval = bist_interval
        self._shadow = np.zeros((n_rows, config.n_stages), dtype=np.int64)
        self._map: List[int] = list(range(n_rows))
        self._free_spares: List[int] = list(range(n_rows, total))
        self._masked: Tuple[int, ...] = ()
        self._retired: set = set()
        self._row_age_s = np.zeros(total)
        self._cycles = np.zeros(total)
        # Write-time (variation) offsets, the baseline drift adds onto.
        self._base_off_a = np.zeros((total, config.n_stages))
        self._base_off_b = np.zeros((total, config.n_stages))
        self._searches_since_bist = 0
        self._last_diagnosis: Optional[DiagnosisReport] = None
        self._replica = ReplicaCalibratedTDC(
            config, measure_replica(self._physical.timing)
        )
        zeros = np.zeros(config.n_stages, dtype=np.int64)
        for phys in range(total):
            self._write_physical(phys, zeros)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _write_physical(self, phys: int, vector: np.ndarray) -> None:
        """Program one physical row: resets its drift clock and records
        the write-time offsets as the new drift baseline."""
        self._physical.write(phys, vector)
        if self._physical.variation is None:
            self._physical._off_a[phys] = 0.0
            self._physical._off_b[phys] = 0.0
            self._physical.invalidate_threshold_cache()
        self._base_off_a[phys] = self._physical._off_a[phys]
        self._base_off_b[phys] = self._physical._off_b[phys]
        self._row_age_s[phys] = 0.0

    def write(self, row: int, vector: Sequence[int]) -> None:
        """Store one logical vector (kept in the shadow image too).

        A retired row's data lives only in the shadow until a repair
        finds it a physical home again.
        """
        if not 0 <= row < self.n_rows:
            raise IndexError(
                f"row {row} out of range [0, {self.n_rows - 1}]"
            )
        values = self._physical.encoding.validate_vector(vector)
        self._shadow[row] = values
        if row not in self._retired:
            self._write_physical(self._map[row], values)
            self._cycles[self._map[row]] += 1

    def write_all(self, matrix: Sequence[Sequence[int]]) -> None:
        """Store every logical row from an (n_rows, n_stages) matrix."""
        matrix = np.asarray(matrix)
        if matrix.shape[0] != self.n_rows:
            raise ValueError(
                f"matrix has {matrix.shape[0]} rows, array has {self.n_rows}"
            )
        for row in range(self.n_rows):
            self.write(row, matrix[row])

    # ------------------------------------------------------------------
    # Aging
    # ------------------------------------------------------------------
    def advance_time(self, dt_s: float) -> None:
        """Age every physical row by ``dt_s`` and apply retention drift.

        Drift is evaluated per row from its own time-since-rewrite, so a
        freshly refreshed row is pristine while its neighbors keep
        drifting.
        """
        if dt_s < 0:
            raise ValueError(f"dt_s must be >= 0, got {dt_s}")
        self._row_age_s += dt_s
        self._apply_drift()

    def _apply_drift(self) -> None:
        vth = np.array(self.config.vth_levels)
        levels = self.config.levels
        stored = self._physical._stored
        for phys in range(len(self._row_age_s)):
            age = float(self._row_age_s[phys])
            drift_a = self.retention.vth_shifts(vth[stored[phys]], age)
            drift_b = self.retention.vth_shifts(
                vth[levels - 1 - stored[phys]], age
            )
            self._physical._off_a[phys] = self._base_off_a[phys] + drift_a
            self._physical._off_b[phys] = self._base_off_b[phys] + drift_b
        self._physical.invalidate_threshold_cache()

    @property
    def age_s(self) -> float:
        """Oldest row data age since its last rewrite (s)."""
        return float(self._row_age_s.max())

    # ------------------------------------------------------------------
    # Search path
    # ------------------------------------------------------------------
    def search(self, query: Sequence[int]) -> ResilientSearchResult:
        """Search over the logical rows, self-testing when due."""
        if not _TM.enabled:
            return self._search_impl(query)
        with _trace.span(
            "resilience.search",
            rows=self.n_rows,
            retired=len(self._retired),
            masked=len(self._masked),
        ):
            return self._search_impl(query)

    def _search_impl(self, query: Sequence[int]) -> ResilientSearchResult:
        if (
            self.bist_interval is not None
            and self._searches_since_bist >= self.bist_interval
        ):
            self.self_test_and_repair()
        self._searches_since_bist += 1
        mism = self._backing.faulted_mismatch_matrix(query)
        if self._masked:
            mism[:, list(self._masked)] = False
        raw = self._physical.result_from_mismatch_matrix(mism)
        return self._logical_view(raw)

    def search_batch(
        self, queries: np.ndarray, chunk: Optional[int] = None
    ) -> ResilientBatchSearchResult:
        """Batched logical search, bit-exact vs looping :meth:`search`.

        The automatic BIST due-check runs (at most) once, before the
        batch; the whole batch then counts toward
        ``searches_since_bist``.  A scalar :meth:`search` loop would
        instead re-check between queries -- with ``bist_interval`` set,
        prefer batches no longer than the interval.
        """
        if not _TM.enabled:
            return self._search_batch_impl(queries, chunk)
        with _trace.span(
            "resilience.search_batch",
            rows=self.n_rows,
            retired=len(self._retired),
            masked=len(self._masked),
        ):
            return self._search_batch_impl(queries, chunk)

    def _search_batch_impl(
        self, queries: np.ndarray, chunk: Optional[int] = None
    ) -> ResilientBatchSearchResult:
        if (
            self.bist_interval is not None
            and self._searches_since_bist >= self.bist_interval
        ):
            self.self_test_and_repair()
        counts = self._backing.mismatch_count_batch(
            queries, chunk=chunk, masked_stages=self._masked
        )
        self._searches_since_bist += counts.shape[0]
        raw = self._physical.batch_result_from_mismatch_counts(counts)
        return self._logical_view_batch(raw)

    def _pruned_topk_eligible(self) -> bool:
        """Whether the physical pruned cascade answers for logical rows.

        True only for a *pristine* array: no retired rows, no masked
        stages, no injected faults, the identity logical-to-physical
        map, and nominal physical timing.  Then logical distances and
        delays equal the physical ones over rows ``0..n_rows-1``
        verbatim, so :meth:`FastTDAMArray.top_k_batch` on that row
        subset is bit-identical to ranking the logical view.
        """
        return (
            not self._retired
            and not self._masked
            and not self._backing.faults
            and self._map == list(range(self.n_rows))
            and self._physical._timing_is_nominal()
        )

    def top_k_batch(
        self,
        queries: np.ndarray,
        k: int,
        chunk: Optional[int] = None,
    ) -> TopKResult:
        """Per-query top-k logical rows, served as cheaply as health allows.

        A pristine array (no faults, repairs, masking, or drift) is
        served by the physical array's pruned top-k cascade; any
        degradation falls back to the full batched logical search and
        ranks its result.  Both produce the rows that
        ``search_batch(queries).top_k(k)`` would -- an exactness suite
        asserts it -- and the automatic BIST due-check still runs.
        """
        if not 1 <= k <= self.n_rows:
            raise ValueError(
                f"k must be in [1, {self.n_rows}], got {k}"
            )
        if not _TM.enabled:
            return self._top_k_batch_impl(queries, k, chunk)
        with _trace.span(
            "resilience.top_k_batch",
            rows=self.n_rows,
            retired=len(self._retired),
            masked=len(self._masked),
        ):
            return self._top_k_batch_impl(queries, k, chunk)

    def _top_k_batch_impl(
        self, queries: np.ndarray, k: int, chunk: Optional[int]
    ) -> TopKResult:
        if (
            self.bist_interval is not None
            and self._searches_since_bist >= self.bist_interval
        ):
            self.self_test_and_repair()
        if self._pruned_topk_eligible():
            rows = self._physical.top_k_batch(
                queries,
                k,
                rows=np.arange(self.n_rows),
                chunk=chunk,
            )
            self._searches_since_bist += rows.shape[0]
            return TopKResult(
                rows=rows,
                degraded=False,
                pruned=True,
                retired_rows=(),
            )
        batch = self._search_batch_impl(queries, chunk)
        return TopKResult(
            rows=batch.top_k(k),
            degraded=batch.degraded,
            pruned=False,
            retired_rows=batch.retired_rows,
        )

    def _logical_view_batch(self, raw) -> ResilientBatchSearchResult:
        n_eff = self.config.n_stages - len(self._masked)
        timeout = self._physical.timing.chain_delay(self.config.n_stages)
        n_q = raw.hamming_distances.shape[0]
        distances = np.full((n_q, self.n_rows), n_eff, dtype=np.int64)
        delays = np.full((n_q, self.n_rows), timeout)
        live = [r for r in range(self.n_rows) if r not in self._retired]
        if live:
            phys = [self._map[r] for r in live]
            distances[:, live] = np.minimum(
                raw.hamming_distances[:, phys], n_eff
            )
            delays[:, live] = raw.delays_s[:, phys]
            live_arr = np.asarray(live)
            best = live_arr[
                resolve_best_batch(distances[:, live], delays[:, live])
            ]
        else:
            best = np.full(n_q, -1, dtype=np.int64)
        live_fraction = len(live) / self.n_rows
        stage_fraction = n_eff / self.config.n_stages
        return ResilientBatchSearchResult(
            hamming_distances=distances,
            delays_s=delays,
            best_rows=best,
            latencies_s=raw.latencies_s,
            energies_j=raw.energies_j,
            n_stages=self.config.n_stages,
            n_effective_stages=n_eff,
            degraded=bool(self._retired),
            confidence=live_fraction * stage_fraction,
            retired_rows=tuple(sorted(self._retired)),
            masked_stages=self._masked,
        )

    def _logical_view(self, raw) -> ResilientSearchResult:
        n_eff = self.config.n_stages - len(self._masked)
        timeout = self._physical.timing.chain_delay(self.config.n_stages)
        distances = np.full(self.n_rows, n_eff, dtype=np.int64)
        delays = np.full(self.n_rows, timeout)
        live = [r for r in range(self.n_rows) if r not in self._retired]
        for r in live:
            phys = self._map[r]
            distances[r] = min(int(raw.hamming_distances[phys]), n_eff)
            delays[r] = raw.delays_s[phys]
        if live:
            order = np.lexsort(
                (live, delays[live], distances[live])
            )
            best = int(live[int(order[0])])
        else:
            best = -1
        live_fraction = len(live) / self.n_rows
        stage_fraction = n_eff / self.config.n_stages
        return ResilientSearchResult(
            hamming_distances=distances,
            delays_s=delays,
            best_row=best,
            latency_s=raw.latency_s,
            energy_j=raw.energy_j,
            n_stages=self.config.n_stages,
            n_effective_stages=n_eff,
            degraded=bool(self._retired),
            confidence=live_fraction * stage_fraction,
            retired_rows=tuple(sorted(self._retired)),
            masked_stages=self._masked,
        )

    # ------------------------------------------------------------------
    # BIST and repair
    # ------------------------------------------------------------------
    def run_bist(self) -> DiagnosisReport:
        """Run the destructive march test and restore the stored data.

        The march rewrites every physical row (clearing drift, like any
        rewrite), diagnoses, and the shadow image is written back.
        """
        with _trace.span("resilience.bist", rows=self.n_rows):
            if self._physical.variation is None:
                self._physical._off_a[:] = 0.0
                self._physical._off_b[:] = 0.0
                self._physical.invalidate_threshold_cache()
            self._row_age_s[:] = 0.0
            diagnosis = self.bist.run(self._backing)
            # Endurance accounting: march backgrounds plus the restore.
            self._cycles += diagnosis.n_writes // diagnosis.n_rows + 1
            self._restore_data()
        self._searches_since_bist = 0
        self._last_diagnosis = diagnosis
        if _TM.enabled:
            _BIST_RUNS.inc()
            _emit_probe(
                "resilience.bist",
                n_rows=diagnosis.n_rows,
                dead_rows=len(diagnosis.dead_rows),
                faulty_cells=len(diagnosis.faulty_cells),
                n_writes=diagnosis.n_writes,
            )
            _log.info(
                "BIST complete",
                extra={
                    "dead_rows": len(diagnosis.dead_rows),
                    "faulty_cells": len(diagnosis.faulty_cells),
                },
            )
        return diagnosis

    def _restore_data(self) -> None:
        mapped = set()
        for r in range(self.n_rows):
            if r in self._retired:
                continue
            self._write_physical(self._map[r], self._shadow[r])
            mapped.add(self._map[r])
        zeros = np.zeros(self.config.n_stages, dtype=np.int64)
        for phys in range(len(self._row_age_s)):
            if phys not in mapped:
                self._write_physical(phys, zeros)

    def apply_repairs(
        self, diagnosis: Optional[DiagnosisReport] = None
    ) -> RepairPlan:
        """Translate a diagnosis into masking / remapping / retirement.

        Remapped rows are rewritten onto their spare from the shadow
        image immediately; retirement only happens when the healthy
        spare pool is empty.
        """
        if diagnosis is None:
            diagnosis = self._last_diagnosis or self.run_bist()
        with _trace.span("resilience.repair", rows=self.n_rows):
            live = [
                r for r in range(self.n_rows) if r not in self._retired
            ]
            data_rows = [self._map[r] for r in live]
            plan = self.engine.plan(
                diagnosis, data_rows=data_rows, spare_rows=self._free_spares
            )
            self._masked = plan.masked_stages
            phys_to_logical: Dict[int, int] = {
                self._map[r]: r for r in live
            }
            for old_phys, spare in plan.row_remap.items():
                r = phys_to_logical[old_phys]
                self._map[r] = spare
                self._free_spares.remove(spare)
                self._write_physical(spare, self._shadow[r])
                self._cycles[spare] += 1
            for old_phys in plan.retired_rows:
                self._retired.add(phys_to_logical[old_phys])
        if _TM.enabled:
            if plan.masked_stages:
                _REPAIR_ACTIONS.inc(
                    len(plan.masked_stages), action="masked"
                )
            if plan.row_remap:
                _REPAIR_ACTIONS.inc(len(plan.row_remap), action="remapped")
            if plan.retired_rows:
                _REPAIR_ACTIONS.inc(
                    len(plan.retired_rows), action="retired"
                )
            _MASKED_STAGES.set(float(len(self._masked)))
            _RETIRED_ROWS.set(float(len(self._retired)))
            _emit_probe(
                "resilience.repair",
                masked_stages=len(plan.masked_stages),
                remapped_rows=len(plan.row_remap),
                retired_rows=len(plan.retired_rows),
            )
            if plan.masked_stages or plan.row_remap or plan.retired_rows:
                _log.info(
                    "repair plan applied",
                    extra={
                        "masked_stages": len(plan.masked_stages),
                        "remapped_rows": len(plan.row_remap),
                        "retired_rows": len(plan.retired_rows),
                    },
                )
        return plan

    def self_test_and_repair(self) -> RepairPlan:
        """The closed loop: BIST, repair, recalibrate; returns the plan."""
        diagnosis = self.run_bist()
        plan = self.apply_repairs(diagnosis)
        self.check_calibration()
        return plan

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------
    @property
    def refresh_due(self) -> bool:
        """Whether the oldest row's drift demands a rewrite now."""
        return self.scheduler.due(self.age_s)

    def refresh(self) -> int:
        """Rewrite every physical row from the shadow image.

        Clears accumulated drift, spends one endurance cycle per row,
        and re-derives the replica calibration.  Returns the number of
        rows rewritten.
        """
        if not _TM.enabled:
            self._restore_data()
            self._cycles += 1
            self.check_calibration()
            return len(self._row_age_s)
        # Capture the debt before _restore_data() clears the drift clocks.
        interval = self.scheduler.plan().interval_s
        debt = self.age_s / interval if interval > 0 else 0.0
        with _trace.span("resilience.refresh", rows=len(self._row_age_s)):
            self._restore_data()
            self._cycles += 1
            self.check_calibration()
        _REFRESHES.inc()
        _REFRESH_DEBT.set(debt)
        _emit_probe(
            "resilience.refresh",
            rows_rewritten=len(self._row_age_s),
            refresh_debt=debt,
        )
        _log.debug(
            "refresh complete",
            extra={"rows": len(self._row_age_s), "refresh_debt": debt},
        )
        return len(self._row_age_s)

    def maybe_refresh(self) -> bool:
        """Refresh if (and only if) the scheduler says it is due."""
        if self.refresh_due:
            self.refresh()
            return True
        return False

    # ------------------------------------------------------------------
    # Replica recalibration
    # ------------------------------------------------------------------
    def check_calibration(self, timing=None) -> bool:
        """Recalibrate the replica TDC if conditions have drifted.

        Measures the replica chain under ``timing`` (the *current*
        operating conditions; defaults to the array's own model) and
        recalibrates when the worst-case full-chain decode error of the
        stale constants exceeds the half-LSB sensing margin.  Returns
        whether a recalibration happened.
        """
        timing = timing or self._physical.timing
        fresh = measure_replica(timing)
        stale = self._replica.measurement
        n = self.config.n_stages
        d_c_fresh = (fresh.d_k_s - fresh.d_zero_s) / fresh.k
        error = abs(fresh.d_zero_s - stale.d_zero_s) + n * abs(
            d_c_fresh - self._replica.d_c_s
        )
        if error > self._physical.tdc.sensing_margin_s():
            self._replica.recalibrate(fresh)
            if _TM.enabled:
                _RECALIBRATIONS.inc()
                _emit_probe("resilience.recalibrated")
                _log.debug(
                    "replica TDC recalibrated",
                    extra={"decode_error_s": error},
                )
            return True
        return False

    @property
    def replica_tdc(self) -> ReplicaCalibratedTDC:
        """The replica-tracked decoder (for drift-aware decoding)."""
        return self._replica

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether the array currently serves in degraded mode."""
        return bool(self._retired)

    def health_report(self) -> HealthReport:
        """Snapshot of spares, masking, drift age, and budgets."""
        return HealthReport(
            n_rows=self.n_rows,
            n_spares=self.n_spares,
            spares_free=len(self._free_spares),
            masked_stages=self._masked,
            retired_rows=tuple(sorted(self._retired)),
            degraded=self.degraded,
            age_s=self.age_s,
            refresh_due=self.refresh_due,
            refresh_interval_s=self.scheduler.plan().interval_s,
            cycles_used=float(self._cycles.max()),
            cycle_budget=self.scheduler.cycle_budget(),
            searches_since_bist=self._searches_since_bist,
            last_bist=(
                self._last_diagnosis.summary()
                if self._last_diagnosis is not None
                else None
            ),
        )

    def __repr__(self) -> str:
        return (
            f"ResilientTDAMArray({self.n_rows}+{self.n_spares} rows x "
            f"{self.config.n_stages} stages, "
            f"{len(self._retired)} retired, "
            f"{len(self._masked)} masked stages)"
        )
