"""Tests of the per-shard circuit breaker state machine."""

import pytest

from repro.resilience.resilient import HealthReport
from repro.service import BreakerState, CircuitBreaker, FakeClock
from repro.telemetry import metrics as telemetry_metrics
from repro.telemetry.state import enabled_scope


def make_breaker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("reset_timeout_s", 1.0)
    return CircuitBreaker("shard0", clock=clock.now, **kwargs)


def health(degraded, retired=(), spares_free=2):
    return HealthReport(
        n_rows=8,
        n_spares=2,
        spares_free=spares_free,
        masked_stages=(),
        retired_rows=tuple(retired),
        degraded=degraded,
        age_s=0.0,
        refresh_due=False,
        refresh_interval_s=1.0,
        cycles_used=0.0,
        cycle_budget=1e5,
        searches_since_bist=0,
        last_bist=None,
    )


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker(FakeClock())
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self):
        breaker = make_breaker(FakeClock())
        for _ in range(3):
            assert breaker.state is BreakerState.CLOSED
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = make_breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_rejects_until_cooldown(self):
        clock = FakeClock()
        breaker = make_breaker(clock, reset_timeout_s=0.5)
        breaker.force_open()
        assert not breaker.allow()
        clock.advance(0.4)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_limits_probes(self):
        clock = FakeClock()
        breaker = make_breaker(clock, reset_timeout_s=0.5, half_open_probes=1)
        breaker.force_open()
        clock.advance(0.6)
        assert breaker.allow()
        assert not breaker.allow()  # probe slot taken

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = make_breaker(clock, reset_timeout_s=0.5)
        breaker.force_open()
        clock.advance(0.6)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = make_breaker(clock, reset_timeout_s=0.5)
        breaker.force_open()
        clock.advance(0.6)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.4)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"reset_timeout_s": 0.0},
            {"half_open_probes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker("s", **kwargs)


class TestHealthDrivenTripping:
    def test_degraded_report_opens(self):
        breaker = make_breaker(FakeClock())
        breaker.note_health(health(degraded=True, retired=(1, 2),
                                   spares_free=0))
        assert breaker.state is BreakerState.OPEN

    def test_healthy_report_leaves_closed(self):
        breaker = make_breaker(FakeClock())
        breaker.note_health(health(degraded=False))
        assert breaker.state is BreakerState.CLOSED


class TestTelemetry:
    def test_transitions_counted_when_enabled(self):
        with enabled_scope():
            breaker = make_breaker(FakeClock())
            for _ in range(3):
                breaker.record_failure()
            counter = telemetry_metrics.get_registry().counter(
                "service_breaker_transitions_total",
                "Circuit-breaker state transitions, by shard and target state",
                labels=("shard", "to"),
            )
            assert counter.value(shard="shard0", to="open") == 1

    def test_disabled_costs_no_series(self):
        breaker = make_breaker(FakeClock())
        breaker.force_open()
        counter = telemetry_metrics.get_registry().counter(
            "service_breaker_transitions_total",
            "Circuit-breaker state transitions, by shard and target state",
            labels=("shard", "to"),
        )
        assert counter.value(shard="shard0", to="open") == 0
