"""The seeded wire-fault injector: determinism and end-to-end honesty.

Unit half: each fault kind does exactly what it says on a socketpair.
Integration half: a seeded sweep over the single-fault catalog against
a real server -- under every fault kind, the client sees bit-exact
answers or typed errors, never silence, never a wrong answer.
"""

import socket
import struct

import numpy as np
import pytest

from repro.net.chaos import _RemoteOutcomes
from repro.net.client import RemoteFrontend
from repro.net.faults import (
    FAULT_KINDS,
    FaultyStream,
    InjectedDisconnect,
    WireFaultPlan,
    plan_catalog,
)
from repro.net.wire import (
    ConnectionLostError,
    FrameDecoder,
    FrameTooLargeError,
    encode_frame,
    hello_message,
)
from repro.service.retry import RetryBudget, RetryPolicy


class TestWireFaultPlan:
    def test_equal_seeds_replay_equal_fault_sequences(self):
        kwargs = dict(
            p_disconnect=0.1, p_truncate=0.1, p_corrupt_length=0.1,
            p_bit_flip=0.1, p_stall=0.1,
        )
        a = WireFaultPlan(seed=123, **kwargs)
        b = WireFaultPlan(seed=123, **kwargs)
        assert [a.draw() for _ in range(200)] == [
            b.draw() for _ in range(200)
        ]

    def test_draw_partitions_across_kinds(self):
        plan = WireFaultPlan(
            seed=7, p_disconnect=0.2, p_truncate=0.2,
            p_corrupt_length=0.2, p_bit_flip=0.2, p_stall=0.2,
        )
        kinds = {plan.draw() for _ in range(300)}
        assert kinds == set(FAULT_KINDS)

    def test_max_faults_caps_firing(self):
        plan = WireFaultPlan(seed=1, p_disconnect=1.0, max_faults=2)
        fired = [plan.draw() for _ in range(10)]
        assert fired[:2] == ["disconnect", "disconnect"]
        assert fired[2:] == [None] * 8
        assert plan.faults_fired == 2

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            WireFaultPlan(p_bit_flip=1.5)
        with pytest.raises(ValueError):
            WireFaultPlan(p_stall=-0.1)

    def test_catalog_covers_every_kind(self):
        catalog = plan_catalog(seed=5)
        assert set(catalog) == set(FAULT_KINDS)
        # Pure function of the seed: same names, same seeds.
        again = plan_catalog(seed=5)
        assert {k: p.seed for k, p in catalog.items()} == {
            k: p.seed for k, p in again.items()
        }


def _pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


def _recv_all(sock):
    chunks = []
    while True:
        try:
            chunk = sock.recv(65536)
        except socket.timeout:
            break
        if not chunk:
            break
        chunks.append(chunk)
    return b"".join(chunks)


@pytest.mark.timeout(30)
class TestFaultyStream:
    def test_bit_flip_flips_exactly_one_bit(self):
        a, b = _pair()
        stream = FaultyStream(a, WireFaultPlan(seed=2, p_bit_flip=1.0))
        data = b"hello, wire protocol" * 3
        stream.sendall(data)
        stream.close()
        received = _recv_all(b)
        b.close()
        assert len(received) == len(data)
        diff = int.from_bytes(received, "big") ^ int.from_bytes(
            data, "big"
        )
        assert bin(diff).count("1") == 1

    def test_corrupt_length_garbles_header_length_field(self):
        a, b = _pair()
        stream = FaultyStream(
            a, WireFaultPlan(seed=3, p_corrupt_length=1.0)
        )
        stream.sendall(encode_frame(hello_message()))
        stream.close()
        received = _recv_all(b)
        b.close()
        assert received[4:8] == b"\xff\xff\xff\xff"
        _, declared, _ = struct.Struct("!4sII").unpack_from(received)
        with pytest.raises(FrameTooLargeError):
            FrameDecoder().feed(received)
        assert declared > FrameDecoder().max_frame_bytes

    def test_truncate_delivers_prefix_then_eof(self):
        a, b = _pair()
        stream = FaultyStream(a, WireFaultPlan(seed=4, p_truncate=1.0))
        frame = encode_frame(hello_message())
        with pytest.raises(InjectedDisconnect):
            stream.sendall(frame)
        received = _recv_all(b)
        b.close()
        assert 0 <= len(received) < len(frame)
        decoder = FrameDecoder()
        assert decoder.feed(received) == []
        if received:
            with pytest.raises(ConnectionLostError):
                decoder.eof()

    def test_disconnect_delivers_nothing(self):
        a, b = _pair()
        stream = FaultyStream(
            a, WireFaultPlan(seed=5, p_disconnect=1.0)
        )
        with pytest.raises(InjectedDisconnect):
            stream.sendall(b"never arrives")
        assert _recv_all(b) == b""
        b.close()
        # Later sends on the closed stream stay typed.
        with pytest.raises(InjectedDisconnect):
            stream.sendall(b"more")

    def test_stall_delays_then_delivers_intact(self):
        a, b = _pair()
        slept = []
        stream = FaultyStream(
            a,
            WireFaultPlan(seed=6, p_stall=1.0, stall_s=0.04),
            sleep=slept.append,
        )
        stream.sendall(b"delayed payload")
        stream.close()
        assert slept == [0.04]
        assert _recv_all(b) == b"delayed payload"
        b.close()


@pytest.mark.timeout(120)
class TestSeededSweepHonesty:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_every_fault_kind_is_exact_or_typed(
        self, config, stack, harness, kind
    ):
        """The acceptance criterion, per fault kind: under injected
        faults every request yields the correct answer or a typed
        error -- zero wrong-without-degraded, zero untyped."""
        stored, _ = stack
        rng = np.random.default_rng(101)
        seq = [0]

        def plan_factory():
            base = plan_catalog(seed=17)[kind]
            seq[0] += 1
            return WireFaultPlan(
                seed=base.seed + 100 * seq[0],
                p_disconnect=base.p_disconnect,
                p_truncate=base.p_truncate,
                p_corrupt_length=base.p_corrupt_length,
                p_bit_flip=base.p_bit_flip,
                p_stall=base.p_stall,
                stall_s=base.stall_s,
            )

        outcomes = _RemoteOutcomes(stored)
        with RemoteFrontend(
            "127.0.0.1", harness.port,
            retry_policy=RetryPolicy(
                max_attempts=4, backoff_base_s=0.001,
                backoff_cap_s=0.010, jitter_seed=17,
            ),
            retry_budget=RetryBudget(
                deposit_per_request=1.0, max_balance=64.0
            ),
            fault_plan_factory=plan_factory,
        ) as client:
            for _ in range(12):
                outcomes.serve(
                    client,
                    rng.integers(0, config.levels, config.n_stages),
                )
        assert outcomes.n == 12
        assert outcomes.wrong_unflagged == 0
        assert outcomes.untyped == 0
        assert outcomes.ok > 0
