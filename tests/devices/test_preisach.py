"""Tests of the Preisach hysteresis model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.preisach import Hysteron, PreisachModel, make_ensemble


class TestHysteron:
    def test_switches_up_at_alpha(self):
        h = Hysteron(alpha=1.0, beta=-1.0)
        assert h.apply(1.0) == 1

    def test_switches_down_at_beta(self):
        h = Hysteron(alpha=1.0, beta=-1.0, state=1)
        assert h.apply(-1.0) == -1

    def test_holds_state_between_thresholds(self):
        h = Hysteron(alpha=1.0, beta=-1.0, state=1)
        assert h.apply(0.0) == 1
        h.state = -1
        assert h.apply(0.0) == -1

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError, match="beta < alpha"):
            Hysteron(alpha=-1.0, beta=1.0)

    def test_rejects_bad_state(self):
        with pytest.raises(ValueError, match="state"):
            Hysteron(alpha=1.0, beta=-1.0, state=0)


class TestPreisachModel:
    def test_initial_state_all_down(self):
        model = PreisachModel(rng=np.random.default_rng(0))
        assert model.polarization == -1.0

    def test_full_program_saturates_up(self):
        model = PreisachModel(rng=np.random.default_rng(0))
        assert model.apply_voltage(6.0) == 1.0

    def test_full_erase_saturates_down(self):
        model = PreisachModel(rng=np.random.default_rng(0))
        model.apply_voltage(6.0)
        assert model.apply_voltage(-6.0) == -1.0

    def test_partial_polarization_monotone_in_voltage(self):
        model = PreisachModel(rng=np.random.default_rng(1))
        pols = []
        for v in (2.0, 2.5, 3.0, 3.5, 4.0):
            model.reset(-1.0)
            pols.append(model.apply_voltage(v))
        assert pols == sorted(pols)
        assert pols[0] < pols[-1]

    def test_zero_voltage_retains_state(self):
        model = PreisachModel(rng=np.random.default_rng(2))
        model.reset(-1.0)
        p1 = model.apply_voltage(3.0)
        p2 = model.apply_voltage(0.0)
        assert p1 == p2

    def test_history_order_matters(self):
        """A major excursion erases minor-loop history (wiping-out)."""
        model = PreisachModel(rng=np.random.default_rng(3))
        model.apply_history([3.0, -6.0])
        after_erase = model.polarization
        assert after_erase == -1.0

    def test_voltage_for_up_fraction_endpoints(self):
        model = PreisachModel(rng=np.random.default_rng(4))
        model.reset(-1.0)
        v0 = model.voltage_for_up_fraction(0.0)
        model.apply_voltage(v0)
        assert model.polarization == -1.0
        v1 = model.voltage_for_up_fraction(1.0)
        model.apply_voltage(v1)
        assert model.polarization == 1.0

    def test_voltage_for_up_fraction_hits_target(self):
        model = PreisachModel(n_domains=200, rng=np.random.default_rng(5))
        for fraction in (0.25, 0.5, 0.75):
            model.reset(-1.0)
            model.apply_voltage(model.voltage_for_up_fraction(fraction))
            achieved = (model.polarization + 1.0) / 2.0
            assert achieved == pytest.approx(fraction, abs=1.5 / 200)

    def test_voltage_for_up_fraction_rejects_out_of_range(self):
        model = PreisachModel(rng=np.random.default_rng(6))
        with pytest.raises(ValueError, match="fraction"):
            model.voltage_for_up_fraction(1.5)

    def test_major_loop_shows_hysteresis(self):
        model = PreisachModel(rng=np.random.default_rng(7))
        voltages, pols = model.major_loop(-5.0, 5.0, n_points=101)
        # At 0 V, the up-branch and down-branch polarizations differ.
        up_at_zero = pols[:101][np.argmin(np.abs(voltages[:101]))]
        down_at_zero = pols[101:][np.argmin(np.abs(voltages[101:]))]
        assert down_at_zero > up_at_zero

    def test_major_loop_preserves_state(self):
        model = PreisachModel(rng=np.random.default_rng(8))
        model.reset(-1.0)
        model.apply_voltage(3.0)
        before = model.polarization
        model.major_loop()
        assert model.polarization == before

    def test_reset_validates_argument(self):
        model = PreisachModel(rng=np.random.default_rng(9))
        with pytest.raises(ValueError, match="reset polarization"):
            model.reset(0.5)

    def test_rejects_zero_domains(self):
        with pytest.raises(ValueError, match="n_domains"):
            PreisachModel(n_domains=0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError, match="coercive_sigma"):
            PreisachModel(coercive_sigma=-0.1)

    @given(
        v1=st.floats(min_value=-6.0, max_value=6.0),
        v2=st.floats(min_value=-6.0, max_value=6.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_polarization_always_bounded(self, v1, v2):
        model = PreisachModel(n_domains=50, rng=np.random.default_rng(10))
        model.apply_history([v1, v2])
        assert -1.0 <= model.polarization <= 1.0

    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_program_fraction_error_bounded_by_granularity(self, fraction):
        model = PreisachModel(n_domains=100, rng=np.random.default_rng(11))
        model.reset(-1.0)
        model.apply_voltage(model.voltage_for_up_fraction(fraction))
        achieved = (model.polarization + 1.0) / 2.0
        assert abs(achieved - fraction) <= 1.0 / 100 + 1e-9


class TestEnsemble:
    def test_make_ensemble_is_reproducible(self):
        a = make_ensemble(3, seed=42)
        b = make_ensemble(3, seed=42)
        for ma, mb in zip(a, b):
            assert np.array_equal(ma._alpha, mb._alpha)

    def test_make_ensemble_devices_differ(self):
        devices = make_ensemble(2, seed=42)
        assert not np.array_equal(devices[0]._alpha, devices[1]._alpha)
