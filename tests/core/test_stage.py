"""Tests of the variable-capacitance delay stage."""

import pytest

from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel
from repro.core.stage import STEP_I, STEP_II, DelayStage


@pytest.fixture
def timing(config):
    return TimingEnergyModel(config)


def make_stage(config, timing, rng, index=0, offsets=(0.0, 0.0)):
    stage = DelayStage(config, index=index, timing=timing, rng=rng,
                       vth_offsets=offsets)
    stage.write(1)
    return stage


class TestParity:
    def test_even_stage_active_in_step_i(self, config, timing, rng):
        stage = make_stage(config, timing, rng, index=0)
        assert stage.parity_step == STEP_I
        assert stage.evaluate(2, STEP_I).active
        assert not stage.evaluate(2, STEP_II).active

    def test_odd_stage_active_in_step_ii(self, config, timing, rng):
        stage = make_stage(config, timing, rng, index=1)
        assert stage.parity_step == STEP_II
        assert stage.evaluate(2, STEP_II).active
        assert not stage.evaluate(2, STEP_I).active

    def test_negative_index_rejected(self, config, timing, rng):
        with pytest.raises(ValueError, match="index"):
            DelayStage(config, index=-1, timing=timing, rng=rng)

    def test_bad_step_rejected(self, config, timing, rng):
        stage = make_stage(config, timing, rng)
        with pytest.raises(ValueError, match="step"):
            stage.evaluate(0, "III")


class TestDelays:
    def test_match_gives_intrinsic_delay(self, config, timing, rng):
        stage = make_stage(config, timing, rng)
        outcome = stage.evaluate(1, STEP_I)
        assert not outcome.mismatch
        assert outcome.delay_s == pytest.approx(timing.d_inv)

    def test_mismatch_adds_d_c(self, config, timing, rng):
        stage = make_stage(config, timing, rng)
        outcome = stage.evaluate(2, STEP_I)
        assert outcome.mismatch
        assert outcome.delay_s == pytest.approx(timing.d_inv + timing.d_c)

    def test_inactive_stage_gives_intrinsic_delay(self, config, timing, rng):
        stage = make_stage(config, timing, rng)
        outcome = stage.evaluate(2, STEP_II)  # even stage parked in step II
        assert not outcome.mismatch
        assert outcome.delay_s == pytest.approx(timing.d_inv)

    def test_vth_shift_modulates_mismatch_delay(self, config, timing, rng):
        slow = make_stage(config, timing, rng, offsets=(0.05, 0.0))
        fast = make_stage(config, timing, rng, offsets=(-0.05, 0.0))
        d_slow = slow.evaluate(2, STEP_I).delay_s  # F_A conducts
        d_fast = fast.evaluate(2, STEP_I).delay_s
        assert d_slow > d_fast

    def test_shift_modulation_is_weak(self, config, timing, rng):
        """The VC design's selling point: 60 mV shifts move d_C by only
        a few percent."""
        stage = make_stage(config, timing, rng, offsets=(0.06, 0.0))
        delay = stage.evaluate(2, STEP_I).delay_s
        nominal = timing.d_inv + timing.d_c
        assert abs(delay - nominal) / timing.d_c < 0.05

    def test_set_vth_offsets(self, config, timing, rng):
        stage = make_stage(config, timing, rng)
        stage.set_vth_offsets(0.01, -0.01)
        assert stage.vth_offsets == (0.01, -0.01)
        assert stage.cell.fa.vth_offset == 0.01
