"""Tests of the similarity metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc.metrics import (
    cosine_similarity,
    dot_similarity,
    hamming_distance,
    match_count,
)


class TestCosine:
    def test_self_similarity_is_one(self):
        v = np.array([[1.0, 2.0, 3.0]])
        assert cosine_similarity(v, v)[0, 0] == pytest.approx(1.0)

    def test_orthogonal_is_zero(self):
        q = np.array([[1.0, 0.0]])
        p = np.array([[0.0, 1.0]])
        assert cosine_similarity(q, p)[0, 0] == pytest.approx(0.0)

    def test_scale_invariance(self):
        q = np.array([[1.0, 2.0, 3.0]])
        p = np.array([[2.0, 1.0, 0.5]])
        assert cosine_similarity(q, p)[0, 0] == pytest.approx(
            cosine_similarity(10 * q, 0.1 * p)[0, 0]
        )

    def test_matrix_shape(self):
        q = np.random.default_rng(0).normal(size=(5, 16))
        p = np.random.default_rng(1).normal(size=(3, 16))
        assert cosine_similarity(q, p).shape == (5, 3)

    def test_1d_input_promoted(self):
        q = np.ones(4)
        p = np.ones((2, 4))
        assert cosine_similarity(q, p).shape == (1, 2)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            cosine_similarity(np.zeros((1, 4)), np.ones((1, 4)))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension"):
            cosine_similarity(np.ones((1, 4)), np.ones((1, 5)))


class TestHamming:
    def test_counts_mismatching_elements(self):
        q = np.array([[0, 1, 2, 3]])
        p = np.array([[0, 1, 2, 3], [3, 1, 2, 0], [1, 2, 3, 0]])
        assert hamming_distance(q, p)[0].tolist() == [0, 2, 4]

    def test_multibit_element_semantics(self):
        """A 3-level difference counts as ONE mismatch (element-wise, not
        binary-digit-wise) -- the TD-AM's native metric."""
        q = np.array([[0]])
        p = np.array([[3]])
        assert hamming_distance(q, p)[0, 0] == 1

    def test_match_count_complements(self):
        q = np.array([[0, 1, 2, 3]])
        p = np.array([[3, 1, 2, 0]])
        assert match_count(q, p)[0, 0] == 2

    def test_dot_similarity(self):
        q = np.array([[1.0, 2.0]])
        p = np.array([[3.0, 4.0]])
        assert dot_similarity(q, p)[0, 0] == pytest.approx(11.0)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_hamming_is_a_metric(self, data):
        n = data.draw(st.integers(1, 12))
        draw_vec = lambda: np.array(
            data.draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
        )
        a, b, c = draw_vec(), draw_vec(), draw_vec()
        d_ab = hamming_distance(a[None], b[None])[0, 0]
        d_ba = hamming_distance(b[None], a[None])[0, 0]
        d_ac = hamming_distance(a[None], c[None])[0, 0]
        d_cb = hamming_distance(c[None], b[None])[0, 0]
        assert d_ab == d_ba                      # symmetry
        assert d_ab <= d_ac + d_cb               # triangle inequality
        assert (d_ab == 0) == np.array_equal(a, b)  # identity
