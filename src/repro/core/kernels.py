"""Batched-search kernel selection: override, autotune, dispatch.

:meth:`FastTDAMArray.search_batch` has three interchangeable kernels --
``packed`` (bit-plane popcount), ``gemm`` (one-hot matmul), and ``loop``
(the per-query reference) -- all bit-exact against each other, so
choosing between them is purely a performance decision.  This module
makes that choice:

1. an explicit override wins: :func:`force_kernel` (tests, benchmarks)
   beats the :data:`KERNEL_ENV_VAR` environment variable (``auto`` /
   ``packed`` / ``gemm`` / ``loop``), which beats autotuning;
2. otherwise the dispatcher **autotunes**: the candidate kernels are
   timed once on a small query sample and the winner is cached per
   array geometry (rows, stages, levels, timing mode) for the life of
   the process.

The ``loop`` kernel is reachable only by explicit override -- it exists
as the bit-exactness reference and is never worth autotuning.
Autotune decisions are observable through the ``kernel.autotune``
telemetry probe and :func:`autotune_decisions`.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.telemetry.profile import emit_probe as _emit_probe
from repro.telemetry.state import STATE as _TM

__all__ = [
    "KERNEL_ENV_VAR",
    "autotune_decisions",
    "available_kernels",
    "clear_autotune_cache",
    "force_kernel",
    "kernel_override",
    "select_kernel",
]

#: Environment variable naming the batched-search kernel to use.
KERNEL_ENV_VAR = "REPRO_KERNEL"

_KERNELS = ("packed", "gemm", "loop")
# Best-of-N timing per candidate; the thunks are microsecond-scale, so
# a few extra repeats cost nothing and keep scheduler noise (single-CPU
# boxes especially) from flipping the cached decision.
_AUTOTUNE_REPEATS = 7

_forced: Optional[str] = None
_autotune_cache: Dict[Tuple, str] = {}


def available_kernels() -> Tuple[str, ...]:
    """Names of the selectable batched-search kernels."""
    return _KERNELS


def _validate(name: str, allow_auto: bool) -> str:
    value = name.strip().lower()
    valid = _KERNELS + (("auto",) if allow_auto else ())
    if value not in valid:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {sorted(valid)}"
        )
    return value


def kernel_override() -> Optional[str]:
    """The kernel forced by :func:`force_kernel` or the environment.

    Returns ``None`` when no override is active (``auto`` included), so
    the dispatcher falls through to autotuning.  An unknown name in
    :data:`KERNEL_ENV_VAR` raises instead of silently autotuning.
    """
    if _forced is not None:
        return _forced
    value = os.environ.get(KERNEL_ENV_VAR, "")
    if not value.strip():
        return None
    value = _validate(value, allow_auto=True)
    return None if value == "auto" else value


@contextmanager
def force_kernel(name: str) -> Iterator[None]:
    """Force one batched-search kernel inside a ``with`` block.

    Takes precedence over :data:`KERNEL_ENV_VAR`; the previous override
    (usually none) is restored on exit.  The benchmark harness and the
    bit-exactness tests use this to pin each kernel in turn.
    """
    global _forced
    previous = _forced
    _forced = _validate(name, allow_auto=False)
    try:
        yield
    finally:
        _forced = previous


def clear_autotune_cache() -> None:
    """Forget every cached autotune decision (tests, re-benchmarking)."""
    _autotune_cache.clear()


def autotune_decisions() -> Dict[Tuple, str]:
    """A copy of the cached (geometry key -> winning kernel) decisions."""
    return dict(_autotune_cache)


def select_kernel(
    key: Tuple, candidates: Dict[str, Callable[[], None]]
) -> str:
    """Pick the batched-search kernel for one array geometry.

    Args:
        key: Hashable geometry/timing key the decision is cached under
            (rows, stages, levels, nominal-timing flag).
        candidates: Kernel name -> zero-argument thunk running that
            kernel on a small representative sample; only consulted
            when no override is active and the key is not cached.

    Returns:
        The kernel name to run.  An override may name a kernel outside
        ``candidates`` (the ``loop`` reference); autotune only ever
        returns a candidate.
    """
    override = kernel_override()
    if override is not None:
        return override
    cached = _autotune_cache.get(key)
    if cached is not None and cached in candidates:
        return cached
    timings: Dict[str, float] = {}
    for name, thunk in candidates.items():
        thunk()  # warm: first call may build caches
        best = float("inf")
        for _ in range(_AUTOTUNE_REPEATS):
            start = time.perf_counter()
            thunk()
            best = min(best, time.perf_counter() - start)
        timings[name] = best
    winner = min(timings, key=timings.get)
    _autotune_cache[key] = winner
    if _TM.enabled:
        _emit_probe(
            "kernel.autotune",
            key=repr(key),
            winner=winner,
            **{f"{name}_s": t for name, t in timings.items()},
        )
    return winner
