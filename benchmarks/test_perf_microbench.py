"""Performance micro-benchmarks of the hot paths.

Unlike the figure benches (one pedantic round each), these use real
pytest-benchmark statistics so performance regressions in the core data
paths are visible: the vectorized array search, the analytic cost model,
the encoder, and the vectorized transient step.
"""

import time

import numpy as np
import pytest

from repro import telemetry
from repro.core.array import FastTDAMArray
from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel
from repro.core.netlist_builder import build_chain_circuit
from repro.experiments.fig6_montecarlo import Fig6Trial
from repro.hdc.encoder import RandomProjectionEncoder
from repro.spice.montecarlo import run_monte_carlo
from repro.spice.transient import simulate

FIG8 = TDAMConfig.fig8_system()

#: The batched-search reference workload of the bench report: a Fig. 8
#: tile against a 256-query batch.
N_QUERIES = 256


@pytest.fixture(scope="module")
def loaded_array():
    array = FastTDAMArray(FIG8, n_rows=26)
    rng = np.random.default_rng(1)
    array.write_all(rng.integers(0, 4, size=(26, 128)))
    return array, rng.integers(0, 4, size=128)


@pytest.fixture(scope="module")
def query_batch():
    return np.random.default_rng(3).integers(0, 4, size=(N_QUERIES, 128))


def test_perf_fast_array_search(benchmark, loaded_array):
    """One Fig. 8-shaped tile search (26 rows x 128 stages)."""
    array, query = loaded_array
    result = benchmark(array.search, query)
    assert result.hamming_distances.shape == (26,)


def test_perf_search_batch(benchmark, loaded_array, query_batch):
    """256 queries through the batched kernel (26 rows x 128 stages)."""
    array, _ = loaded_array
    array.search_batch(query_batch)  # build the level tables up front
    result = benchmark(array.search_batch, query_batch)
    assert result.hamming_distances.shape == (N_QUERIES, 26)


def test_perf_search_loop_baseline(benchmark, loaded_array, query_batch):
    """The same 256 queries through a per-query Python loop of search().

    The baseline the batched kernel is measured against in
    ``tools/bench_report.py``; kept as a bench so the ratio stays
    visible in pytest-benchmark output too.
    """
    array, _ = loaded_array

    def loop():
        return [array.search(q) for q in query_batch]

    results = benchmark.pedantic(loop, rounds=3, iterations=1,
                                 warmup_rounds=1)
    assert len(results) == N_QUERIES


def test_perf_monte_carlo_serial(benchmark):
    """A 32-trial Fig. 6 Monte Carlo cell, serial driver."""
    trial = Fig6Trial(config=TDAMConfig(), sigma_mv=30.0)

    def run():
        return run_monte_carlo(trial, n_runs=32, seed=7)

    result = benchmark.pedantic(run, rounds=3, iterations=1,
                                warmup_rounds=1)
    assert len(result.samples) == 32


def test_perf_search_batch_telemetry_enabled(benchmark, loaded_array,
                                             query_batch):
    """The batched kernel with telemetry ON (spans + metrics + probes).

    Not gated -- recorded so the enabled-mode cost stays visible next to
    the disabled numbers in the bench report.
    """
    array, _ = loaded_array
    array.search_batch(query_batch)
    telemetry.enable()
    try:
        result = benchmark(array.search_batch, query_batch)
    finally:
        telemetry.reset()
    assert result.hamming_distances.shape == (N_QUERIES, 26)


def test_disabled_telemetry_overhead_under_3_percent(loaded_array,
                                                     query_batch):
    """ISSUE acceptance gate: the dormant instrumentation on the hot
    ``search_batch`` path costs < 3% vs the bare kernel.

    The wrapper (one ``STATE.enabled`` check) is timed against the
    un-instrumented ``_search_batch_impl`` it delegates to, min-of-N on
    interleaved rounds so machine noise hits both sides equally.  A
    small absolute floor keeps the ratio meaningful if the kernel ever
    gets fast enough for per-call timing jitter to dominate.
    """
    array, _ = loaded_array
    telemetry.disable()
    array.search_batch(query_batch)  # build the level tables up front

    rounds, reps = 7, 3

    def best(fn):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(reps):
                fn(query_batch)
            times.append((time.perf_counter() - start) / reps)
        return min(times)

    # Warm both paths, then interleave the measurements.
    array._search_batch_impl(query_batch)
    t_bare = best(array._search_batch_impl)
    t_wrapped = best(array.search_batch)
    t_bare = min(t_bare, best(array._search_batch_impl))
    t_wrapped = min(t_wrapped, best(array.search_batch))

    overhead = t_wrapped / t_bare - 1.0
    slack_s = 20e-6  # absolute guard: one boolean check costs ~ns
    assert t_wrapped <= t_bare * 1.03 + slack_s, (
        f"disabled-telemetry overhead {overhead * 100:.2f}% "
        f"(wrapped {t_wrapped * 1e6:.1f} us vs bare {t_bare * 1e6:.1f} us) "
        "exceeds the 3% budget"
    )


def test_perf_analytic_cost_model(benchmark):
    """Full search-cost evaluation at one design point."""
    model = TimingEnergyModel(FIG8)
    cost = benchmark(model.search_cost, 64)
    assert cost.energy_j > 0


def test_perf_encoder(benchmark):
    """Encoding a 64-sample batch into D=2048."""
    encoder = RandomProjectionEncoder(617, 2048, seed=0)
    batch = np.random.default_rng(2).normal(size=(64, 617)).astype(np.float32)
    encoded = benchmark(encoder.encode, batch)
    assert encoded.shape == (64, 2048)


def test_perf_record_encoder(benchmark):
    """Record-based encode of a 32-sample batch (one-hot MVM path)."""
    from repro.hdc.encoder import RecordEncoder

    encoder = RecordEncoder(64, 1024, n_levels=16, seed=0)
    batch = np.random.default_rng(4).uniform(-1, 1, size=(32, 64))
    encoded = benchmark(encoder.encode, batch)
    assert encoded.shape == (32, 1024)


def test_perf_mvm_dispatch(benchmark):
    """A dispatched 8b x 8b bit-serial MVM (256 x 617 weights, 32 acts)."""
    from repro.core.mvm import MVMPlan

    rng = np.random.default_rng(5)
    plan = MVMPlan(
        rng.integers(-128, 128, size=(256, 617), dtype=np.int64),
        bits=8, signed=True,
    )
    acts = rng.integers(0, 256, size=(32, 617), dtype=np.int64)
    plan.matmul(acts)  # warm: settle the autotuned kernel choice
    out = benchmark(plan.matmul, acts)
    assert out.shape == (32, 256)


def test_perf_transient_chain_step(benchmark):
    """A short vectorized transient (4-stage chain, 100 steps)."""
    config = TDAMConfig(n_stages=4)
    net = build_chain_circuit(
        config, [0] * 4, [1, 0, 1, 0], rng=np.random.default_rng(1)
    )

    def run():
        return simulate(net.circuit, t_stop=0.4e-9, dt=4e-12,
                        v_init=net.v_init)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.newton_iterations > 0
