"""Request contexts: ids, scoping, span/log tagging, thread isolation."""

import logging
import threading

import pytest

from repro import telemetry
from repro.telemetry import (
    RequestContext,
    RequestContextFilter,
    current_request,
    new_request_id,
    request_scope,
    reset_request_ids,
)


class TestRequestIds:
    def test_ids_are_sequential_and_deterministic(self):
        reset_request_ids()
        assert new_request_id() == "req-000001"
        assert new_request_id() == "req-000002"
        reset_request_ids()
        assert new_request_id() == "req-000001"

    def test_prefix_is_configurable(self):
        reset_request_ids()
        assert new_request_id("batch") == "batch-000001"

    def test_new_context_draws_the_next_id(self):
        reset_request_ids()
        first = RequestContext.new(tenant="acme")
        second = RequestContext.new()
        assert first.request_id == "req-000001"
        assert second.request_id == "req-000002"
        assert first.tenant == "acme"

    def test_ids_unique_under_concurrency(self):
        reset_request_ids()
        ids = []
        lock = threading.Lock()

        def mint():
            mine = [new_request_id() for _ in range(200)]
            with lock:
                ids.extend(mine)

        threads = [threading.Thread(target=mint) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(ids) == len(set(ids)) == 1600


class TestRequestScope:
    def test_scope_sets_and_restores(self):
        ctx = RequestContext.new()
        assert current_request() is None
        with request_scope(ctx):
            assert current_request() is ctx
        assert current_request() is None

    def test_nested_scope_supersedes_then_restores(self):
        outer = RequestContext.new()
        inner = RequestContext.new(prefix="batch")
        with request_scope(outer):
            with request_scope(inner):
                assert current_request() is inner
            assert current_request() is outer

    def test_none_clears_inside_the_body(self):
        outer = RequestContext.new()
        with request_scope(outer):
            with request_scope(None):
                assert current_request() is None
            assert current_request() is outer

    def test_scope_restores_after_an_exception(self):
        ctx = RequestContext.new()
        with pytest.raises(RuntimeError):
            with request_scope(ctx):
                raise RuntimeError("boom")
        assert current_request() is None

    def test_context_does_not_leak_across_threads(self):
        seen = []
        ctx = RequestContext.new()
        with request_scope(ctx):
            t = threading.Thread(
                target=lambda: seen.append(current_request())
            )
            t.start()
            t.join()
        assert seen == [None]


class TestChild:
    def test_child_keeps_identity_and_merges_baggage(self):
        ctx = RequestContext.new(tenant="t0", deadline_at=1.5, hop="a")
        child = ctx.child(hop="b", batch="batch-000009")
        assert child.request_id == ctx.request_id
        assert child.tenant == "t0"
        assert child.deadline_at == 1.5
        assert child.baggage == {"hop": "b", "batch": "batch-000009"}
        # The parent is untouched (contexts are frozen values).
        assert ctx.baggage == {"hop": "a"}


class TestSpanTagging:
    def test_spans_inherit_request_id_tenant_and_baggage(self):
        telemetry.enable()
        ctx = RequestContext.new(tenant="acme", scenario="test")
        with request_scope(ctx):
            with telemetry.span("unit.work"):
                pass
        (root,) = telemetry.get_tracer().roots()
        assert root.attrs["request_id"] == ctx.request_id
        assert root.attrs["tenant"] == "acme"
        assert root.attrs["bg.scenario"] == "test"

    def test_explicit_attrs_win_over_the_context(self):
        telemetry.enable()
        with request_scope(RequestContext.new(tenant="acme")):
            with telemetry.span("unit.work", request_id="custom"):
                pass
        (root,) = telemetry.get_tracer().roots()
        assert root.attrs["request_id"] == "custom"

    def test_untagged_outside_any_scope(self):
        telemetry.enable()
        with telemetry.span("unit.work"):
            pass
        (root,) = telemetry.get_tracer().roots()
        assert "request_id" not in root.attrs


class TestLogTagging:
    def test_filter_stamps_request_fields(self):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "msg", (), None
        )
        with request_scope(RequestContext.new(tenant="acme")):
            assert RequestContextFilter().filter(record)
        assert record.request_id == "req-000001"
        assert record.tenant == "acme"

    def test_explicit_extra_wins(self):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "msg", (), None
        )
        record.request_id = "explicit"
        with request_scope(RequestContext.new()):
            RequestContextFilter().filter(record)
        assert record.request_id == "explicit"

    def test_no_scope_leaves_the_record_alone(self):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "msg", (), None
        )
        RequestContextFilter().filter(record)
        assert not hasattr(record, "request_id")


class TestReset:
    def test_telemetry_reset_restarts_the_counter(self):
        new_request_id()
        new_request_id()
        telemetry.reset()
        assert new_request_id() == "req-000001"
