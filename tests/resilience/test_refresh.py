"""Tests of the retention-aware refresh scheduler."""

import pytest

from repro.core.config import TDAMConfig
from repro.resilience.refresh import DRIFT_HORIZON_S, RefreshScheduler


@pytest.fixture
def scheduler():
    return RefreshScheduler(TDAMConfig(n_stages=32))


class TestDriftGeometry:
    def test_drift_grows_with_time(self, scheduler):
        times = [1e-3, 1.0, 1e3, 1e6]
        drifts = [scheduler.drift_at(t) for t in times]
        assert all(b > a for a, b in zip(drifts, drifts[1:]))
        assert all(d >= 0 for d in drifts)

    def test_time_to_drift_inverts_drift_at(self, scheduler):
        # A drift reached two decades past t0: safely inside the horizon.
        drift = (
            2 * scheduler.retention.loss_per_decade
            * scheduler.max_excursion_v
        )
        t = scheduler.time_to_drift(drift)
        assert t < DRIFT_HORIZON_S
        assert scheduler.drift_at(t) == pytest.approx(drift, rel=1e-6)

    def test_unreachable_drift_hits_horizon(self, scheduler):
        assert (
            scheduler.time_to_drift(2 * scheduler.max_excursion_v)
            == DRIFT_HORIZON_S
        )

    def test_nonpositive_drift_rejected(self, scheduler):
        with pytest.raises(ValueError, match="drift_v"):
            scheduler.time_to_drift(0.0)


class TestMarginLimits:
    def test_delay_margin_limit_positive(self, scheduler):
        assert scheduler.delay_margin_drift_limit_v() > 0

    def test_fewer_worst_case_mismatches_relax_the_limit(self):
        config = TDAMConfig(n_stages=32)
        full = RefreshScheduler(config)
        light = RefreshScheduler(config, worst_case_mismatches=4)
        assert (
            light.delay_margin_drift_limit_v()
            > full.delay_margin_drift_limit_v()
        )

    def test_match_margin_limit(self, scheduler):
        limit = scheduler.match_margin_drift_limit_v()
        assert limit == pytest.approx(
            scheduler.config.conduction_margin - scheduler.turn_on_overdrive
        )

    def test_worst_case_mismatches_validation(self):
        config = TDAMConfig(n_stages=8)
        with pytest.raises(ValueError, match="worst_case_mismatches"):
            RefreshScheduler(config, worst_case_mismatches=9)

    def test_safety_factor_validation(self):
        with pytest.raises(ValueError, match="safety_factor"):
            RefreshScheduler(TDAMConfig(), safety_factor=0.5)


class TestPlan:
    def test_plan_is_consistent(self, scheduler):
        plan = scheduler.plan()
        assert plan.interval_s > 0
        assert plan.limiting_mechanism in (
            "delay-margin",
            "match-margin",
            "none",
        )
        t_limit = min(plan.t_delay_margin_s, plan.t_match_margin_s)
        assert plan.interval_s == pytest.approx(
            t_limit / plan.safety_factor
        )
        assert plan.lifetime_s == pytest.approx(
            plan.cycle_budget * plan.interval_s
        )
        assert plan.summary()  # renders without error

    def test_plan_is_cached(self, scheduler):
        assert scheduler.plan() is scheduler.plan()

    def test_safety_factor_shrinks_interval(self):
        config = TDAMConfig(n_stages=32)
        tight = RefreshScheduler(config, safety_factor=4.0).plan()
        loose = RefreshScheduler(config, safety_factor=1.0).plan()
        assert tight.interval_s == pytest.approx(loose.interval_s / 4.0)

    def test_cycle_budget_positive_and_finite(self, scheduler):
        budget = scheduler.cycle_budget()
        assert 0 < budget <= 1e12

    def test_cycle_budget_fits_the_window(self, scheduler):
        low, high = scheduler.config.vth_window
        needed = (high - low) / scheduler.endurance.params.vth_range
        assert scheduler.endurance.window_fraction(
            scheduler.cycle_budget()
        ) >= needed - 1e-9

    def test_due(self, scheduler):
        interval = scheduler.plan().interval_s
        assert not scheduler.due(0.0)
        assert not scheduler.due(0.5 * interval)
        assert scheduler.due(interval)
        with pytest.raises(ValueError, match="age_s"):
            scheduler.due(-1.0)
