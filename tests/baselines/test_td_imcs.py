"""Tests of the time-domain IMC baselines (TIMAQ, Fe-FinFET, TD-CIM)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fefinfet import FeFinFETTimeDomainIMC
from repro.baselines.td_cim import TDCIMFabric
from repro.baselines.timaq import TIMAQ


class TestTIMAQ:
    def test_bit_serial_mac_equals_direct_dot(self):
        timaq = TIMAQ(weight_bits=4, activation_bits=4)
        w = [3, 7, 15, 0, 9]
        a = [1, 2, 4, 8, 15]
        assert timaq.mac(w, a) == int(np.dot(w, a))

    @given(
        data=st.data(),
        wb=st.integers(1, 4),
        ab=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_mac_correct_for_any_precision(self, data, wb, ab):
        timaq = TIMAQ(weight_bits=wb, activation_bits=ab)
        n = data.draw(st.integers(1, 16))
        w = data.draw(st.lists(st.integers(0, 2**wb - 1), min_size=n, max_size=n))
        a = data.draw(st.lists(st.integers(0, 2**ab - 1), min_size=n, max_size=n))
        assert timaq.mac(w, a) == int(np.dot(w, a))

    def test_cosine_similarity(self):
        timaq = TIMAQ()
        sim = timaq.cosine_similarity([1, 2, 3], [1, 2, 3])
        assert sim == pytest.approx(1.0)

    def test_cosine_zero_vector_rejected(self):
        with pytest.raises(ValueError, match="zero vector"):
            TIMAQ().cosine_similarity([0, 0], [1, 1])

    def test_energy_scales_with_precision(self):
        """Bit-serial decomposition: energy ~ wb * ab per element."""
        low = TIMAQ(weight_bits=1, activation_bits=1).mac_energy_j(100)
        high = TIMAQ(weight_bits=4, activation_bits=4).mac_energy_j(100)
        assert high == pytest.approx(16 * low)

    def test_operand_range_checked(self):
        with pytest.raises(ValueError, match="weights"):
            TIMAQ(weight_bits=2).mac([4], [1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            TIMAQ().mac([1, 2], [1])


class TestFeFinFET:
    def test_nominal_delay(self):
        chain = FeFinFETTimeDomainIMC(n_stages=10, c_stage_f=1e-15,
                                      r_on_ohm=20e3)
        assert chain.nominal_delay() == pytest.approx(10 * 20e3 * 1e-15)

    def test_resistance_exponential_below_threshold(self):
        chain = FeFinFETTimeDomainIMC(n_stages=1)
        shallow = chain.stage_resistance(0.20)
        deep = chain.stage_resistance(0.35)
        # Deeper into subthreshold: much larger resistance ratio.
        assert deep / shallow > 20

    def test_small_shift_proportional(self):
        chain = FeFinFETTimeDomainIMC(n_stages=1)
        nominal = chain.stage_resistance(0.0)
        shifted = chain.stage_resistance(0.03)
        assert 1.0 < shifted / nominal < 1.3

    def test_chain_delay_with_shifts(self):
        chain = FeFinFETTimeDomainIMC(n_stages=4)
        assert chain.chain_delay() == pytest.approx(chain.nominal_delay())
        assert chain.chain_delay([0.1, 0, 0, 0]) > chain.nominal_delay()

    def test_shift_shape_validated(self):
        chain = FeFinFETTimeDomainIMC(n_stages=4)
        with pytest.raises(ValueError, match="shape"):
            chain.chain_delay([0.1, 0.2])

    def test_off_state_interrupts_propagation(self):
        """The paper's criticism: an OFF FeFET effectively blocks the
        signal (resistance orders of magnitude above ON)."""
        chain = FeFinFETTimeDomainIMC(n_stages=1)
        assert chain.stage_resistance(0.5) / chain.stage_resistance(0.0) > 1e3


class TestTDCIMFabric:
    def setup_method(self):
        self.fabric = TDCIMFabric(n_rows=2, n_bits=6)
        self.fabric.write(0, [0, 1, 0, 1, 0, 1])
        self.fabric.write(1, [1, 1, 1, 1, 1, 1])

    def test_quantitative_hamming(self):
        distances = self.fabric.hamming_search([0, 1, 0, 1, 0, 1])
        assert distances.tolist() == [0, 3]

    def test_binary_mac(self):
        macs = self.fabric.mac([1, 1, 0, 0, 1, 1])
        assert macs.tolist() == [2, 4]

    def test_bit_slicing_expands_multibit(self):
        sliced = TDCIMFabric.bit_slice([3, 0, 2], bits=2)
        assert sliced.tolist() == [1, 1, 0, 0, 0, 1]

    def test_bit_slice_range_check(self):
        with pytest.raises(ValueError, match="elements"):
            TDCIMFabric.bit_slice([4], bits=2)

    def test_multibit_workload_costs_more_stages(self):
        """The 1.47x Table I gap in mechanism: 2-bit elements need twice
        the chain length on the binary fabric."""
        n_elements, bits = 32, 2
        fabric = TDCIMFabric(n_rows=1, n_bits=n_elements * bits)
        assert fabric.n_bits == 64

    def test_energy_per_search(self):
        assert self.fabric.search_energy_j() == pytest.approx(
            0.234e-15 * 2 * 6
        )
