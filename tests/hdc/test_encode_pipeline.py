"""Tests of the feature -> level encode pipeline."""

import numpy as np
import pytest

from repro.core.config import TDAMConfig
from repro.hdc.encoder import RandomProjectionEncoder
from repro.hdc.model import HDCClassifier
from repro.hdc.pipeline import EncodePipeline, build_pipeline
from repro.hdc.quantize import quantize_equal_area


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(60, 12)).astype(np.float32)
    y = rng.integers(0, 3, size=60)
    enc = RandomProjectionEncoder(12, 64, seed=1)
    clf = HDCClassifier(enc, 3).fit(x, y, epochs=2)
    return clf, x


class TestEncodePipeline:
    def test_float_pipeline_matches_manual_path(self, trained):
        clf, x = trained
        model = quantize_equal_area(clf.prototypes, 2)
        pipe = EncodePipeline(clf, model)
        assert not pipe.in_fabric
        levels = pipe.query_levels(x[:5])
        manual = model.quantize_queries(clf.encode(x[:5]))
        assert np.array_equal(levels, manual)
        assert levels.min() >= 0 and levels.max() < 4

    def test_fabric_pipeline_reports_cost(self, trained):
        clf, x = trained
        pipe = build_pipeline(clf, bits=2, fabric=True)
        assert pipe.in_fabric
        cost = pipe.encode_cost(3)
        assert cost is not None and cost.latency_s > 0
        levels = pipe.query_levels(x[:4])
        assert levels.shape == (4, 64)

    def test_float_pipeline_has_no_fabric_cost(self, trained):
        clf, _ = trained
        pipe = build_pipeline(clf, bits=2)
        assert pipe.encode_cost() is None

    def test_fabric_levels_mostly_agree_with_float(self, trained):
        clf, x = trained
        float_pipe = build_pipeline(clf, bits=2)
        fabric_pipe = build_pipeline(clf, bits=2, fabric=True)
        a = float_pipe.query_levels(x[:20])
        b = fabric_pipe.query_levels(x[:20])
        assert (a == b).mean() > 0.9

    def test_untrained_classifier_rejected(self):
        enc = RandomProjectionEncoder(12, 64, seed=1)
        clf = HDCClassifier(enc, 3)
        model_like = quantize_equal_area(np.random.default_rng(0).normal(size=(3, 64)), 2)
        with pytest.raises(RuntimeError, match="fit"):
            EncodePipeline(clf, model_like)

    def test_dimension_mismatch_rejected(self, trained):
        clf, _ = trained
        wrong = quantize_equal_area(
            np.random.default_rng(0).normal(size=(3, 32)), 2
        )
        with pytest.raises(ValueError, match="dimension"):
            EncodePipeline(clf, wrong)

    def test_encoder_geometry_mismatch_rejected(self, trained):
        clf, _ = trained
        model = quantize_equal_area(clf.prototypes, 2)
        other = RandomProjectionEncoder(12, 128, seed=1)
        with pytest.raises(ValueError, match="geometry"):
            EncodePipeline(clf, model, encoder=other)

    def test_build_pipeline_passes_fabric_config(self, trained):
        clf, _ = trained
        config = TDAMConfig(bits=1, n_stages=64, vdd=0.7)
        pipe = build_pipeline(
            clf, bits=2, fabric=True, weight_bits=4, act_bits=5,
            config=config,
        )
        assert pipe.encoder.weight_bits == 4
        assert pipe.encoder.act_bits == 5
        assert pipe.encoder.plan.config is config

    def test_repr(self, trained):
        clf, _ = trained
        assert "fabric" in repr(build_pipeline(clf, bits=2, fabric=True))
        assert "float" in repr(build_pipeline(clf, bits=2))
