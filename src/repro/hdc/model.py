"""The HDC classifier: single-pass training + OnlineHD-style refinement.

Training follows the paper's reference framework (OnlineHD [35]):

1. **single pass**: every encoded training hypervector is bundled into
   its class prototype;
2. **refinement epochs**: each sample is re-classified; on a miss the
   sample is added to the correct prototype and subtracted from the
   wrongly winning one, scaled by how confidently wrong the model was
   (the adaptive OnlineHD update).

Prediction on the float model uses cosine similarity (the 32-bit
reference / GPU path).  Quantized inference lives in
:mod:`repro.hdc.quantize` and :mod:`repro.hdc.mapping`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hdc.encoder import RandomProjectionEncoder
from repro.hdc.metrics import cosine_similarity


class HDCClassifier:
    """HDC classifier over a fixed encoder.

    Args:
        encoder: The feature-to-hypervector encoder.
        n_classes: Number of classes.
        learning_rate: Scale of the refinement updates.
    """

    def __init__(
        self,
        encoder: RandomProjectionEncoder,
        n_classes: int,
        learning_rate: float = 0.35,
    ) -> None:
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.encoder = encoder
        self.n_classes = n_classes
        self.learning_rate = learning_rate
        self.prototypes = np.zeros(
            (n_classes, encoder.dimension), dtype=np.float32
        )
        #: Per-dimension mean of the training encodings.  The nonlinear
        #: projection has a class-independent mean component (a fixed
        #: phase pattern) that would dominate cosine similarity and
        #: quantization bins; it is removed from every encoding.
        self.encoding_center = np.zeros(encoder.dimension, dtype=np.float32)
        self._trained = False

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 10,
        shuffle_seed: Optional[int] = 0,
    ) -> "HDCClassifier":
        """Train: single-pass bundling plus refinement epochs.

        Args:
            features: Shape (n_samples, n_features).
            labels: Integer class labels in [0, n_classes).
            epochs: Refinement epochs after the single pass.
            shuffle_seed: Seed of the per-epoch sample shuffles.
        """
        labels = self._check_labels(labels)
        raw = self.encoder.encode(features)
        if raw.shape[0] != labels.shape[0]:
            raise ValueError(
                f"{raw.shape[0]} samples but {labels.shape[0]} labels"
            )
        self.encoding_center = raw.mean(axis=0)
        encoded = self._normalize(raw - self.encoding_center)
        self.prototypes[:] = 0.0
        np.add.at(self.prototypes, labels, encoded)
        self._trained = True
        rng = np.random.default_rng(shuffle_seed)
        for _ in range(epochs):
            order = rng.permutation(len(labels))
            self._refine_epoch(encoded[order], labels[order])
        return self

    @staticmethod
    def _normalize(encoded: np.ndarray) -> np.ndarray:
        """L2-normalize each encoding row (OnlineHD convention)."""
        norms = np.linalg.norm(encoded, axis=1, keepdims=True)
        return encoded / np.maximum(norms, 1e-12)

    def _refine_epoch(self, encoded: np.ndarray, labels: np.ndarray) -> None:
        """One OnlineHD-style adaptive refinement epoch."""
        sims = cosine_similarity(encoded, self.prototypes)
        predictions = sims.argmax(axis=1)
        for i in np.nonzero(predictions != labels)[0]:
            truth, wrong = labels[i], predictions[i]
            # Confidence-scaled update: larger when the model was far from
            # the truth and confidently wrong.
            alpha_t = 1.0 - sims[i, truth]
            alpha_w = 1.0 - sims[i, wrong]
            self.prototypes[truth] += self.learning_rate * alpha_t * encoded[i]
            self.prototypes[wrong] -= self.learning_rate * alpha_w * encoded[i]

    # ------------------------------------------------------------------
    # Inference (float / 32-bit reference path)
    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels via cosine similarity."""
        self._check_trained()
        return cosine_similarity(self.encode(features), self.prototypes).argmax(axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        labels = self._check_labels(labels)
        return float((self.predict(features) == labels).mean())

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Encode features as the classifier sees them: the encoder's
        output, centered and L2-normalized (used by all inference paths,
        including the quantized/TD-AM one)."""
        return self.encode_with(self.encoder, features)

    def encode_with(self, encoder, features: np.ndarray) -> np.ndarray:
        """:meth:`encode` through an alternate encoder -- e.g. the
        quantized in-fabric projection
        (:class:`repro.hdc.encoder.QuantizedProjectionEncoder`) -- with
        this classifier's centering and normalization statistics, so
        the result is directly comparable to the training-time view."""
        self._check_trained()
        raw = encoder.encode(features)
        return self._normalize(raw - self.encoding_center)

    def _check_labels(self, labels: np.ndarray) -> np.ndarray:
        labels = np.asarray(labels)
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
        if labels.size and (labels.min() < 0 or labels.max() >= self.n_classes):
            raise ValueError(
                f"labels must be in [0, {self.n_classes - 1}], "
                f"got range [{labels.min()}, {labels.max()}]"
            )
        return labels.astype(np.int64)

    def _check_trained(self) -> None:
        if not self._trained:
            raise RuntimeError("model used before fit()")
