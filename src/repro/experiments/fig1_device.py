"""Fig. 1(c)(d): FeFET I_D-V_G curves -- model and device-to-device spread.

Fig. 1(d) of the paper shows the compact model's transfer curves for the
four programmed states; Fig. 1(c) shows the same measurement over 60
physical devices with device-to-device variation.  This driver produces
both: the nominal model family and a variation ensemble drawn with the
measured per-state sigmas, plus the per-state V_TH statistics that the
Monte Carlo study (Fig. 6) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.config import TDAMConfig
from repro.devices.fefet import id_vg_family
from repro.devices.variation import MEASURED_VTH_SIGMA_MV, DeviceEnsemble
from repro.experiments._instrument import instrumented


@dataclass
class Fig1Result:
    """Data behind Fig. 1(c)(d).

    Attributes:
        vg: Gate-voltage sweep (V).
        model_curves: Nominal model I_D-V_G, shape (n_states, len(vg)).
        ensemble_curves: Device-to-device curves, shape
            (n_states, n_devices, len(vg)).
        vth_stats: Per-state programmed-V_TH statistics of the ensemble.
        state_vths: The nominal ladder.
    """

    vg: np.ndarray
    model_curves: np.ndarray
    ensemble_curves: np.ndarray
    vth_stats: List[Dict[str, float]]
    state_vths: Sequence[float]


@instrumented("fig1")
def run_fig1(
    n_devices: int = 60,
    n_points: int = 61,
    vg_range: "tuple[float, float]" = (-0.4, 2.0),
    vds: float = 0.1,
    seed: int = 5,
) -> Fig1Result:
    """Generate the Fig. 1(c)(d) data.

    Args:
        n_devices: Ensemble size (the paper measured 60 devices).
        n_points: Gate-voltage sweep points.
        vg_range: Sweep range (V).
        vds: Drain bias (V).
        seed: Ensemble seed.
    """
    config = TDAMConfig()
    state_vths = config.vth_levels
    vg = np.linspace(vg_range[0], vg_range[1], n_points)
    _, model_curves = id_vg_family(state_vths, vg, vds=vds,
                                   params=config.fefet, seed=seed)
    ensemble = DeviceEnsemble(
        n_devices=n_devices, params=config.fefet, seed=seed
    )
    ensemble_curves = ensemble.id_vg_curves(state_vths, vg, vds=vds)
    vth_stats = ensemble.vth_statistics(state_vths)
    return Fig1Result(
        vg=vg,
        model_curves=model_curves,
        ensemble_curves=ensemble_curves,
        vth_stats=vth_stats,
        state_vths=state_vths,
    )


def format_fig1(result: Fig1Result) -> str:
    """Text rendering: per-state V_TH statistics vs. the measured sigmas."""
    records = []
    for stat in result.vth_stats:
        state = int(stat["state"])
        records.append(
            {
                "state": state,
                "nominal_vth_V": stat["nominal_v"],
                "ensemble_mean_V": stat["mean_v"],
                "ensemble_std_mV": stat["std_v"] * 1e3,
                "measured_sigma_mV": MEASURED_VTH_SIGMA_MV[state],
            }
        )
    return format_table(
        records,
        title="Fig. 1(c): device-to-device V_TH statistics per programmed state",
    )


if __name__ == "__main__":
    from repro.cli import emit

    emit(format_fig1(run_fig1()))
