"""Synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates HDC on three UCI-style datasets that are not
available offline, so this package generates seeded synthetic equivalents
matching each dataset's *shape* and difficulty profile (see DESIGN.md
section 2 for the substitution rationale):

- **ISOLET** [43]: spoken-letter recognition, 617 features, 26 classes,
  medium separability.
- **UCIHAR** [44]: smartphone activity recognition, 561 features, 6
  classes, with intentionally confusable class pairs (e.g. walking vs.
  walking-upstairs) -- the hardest of the three at low precision.
- **FACE** [42]: face detection, 608 features, binary, well separated.
"""

from repro.datasets.loaders import load_csv_dataset, load_isolet, load_ucihar
from repro.datasets.synthetic import (
    Dataset,
    make_clustered_levels,
    make_face_like,
    make_isolet_like,
    make_ucihar_like,
    perturb_levels,
    standard_suite,
)

__all__ = [
    "Dataset",
    "make_isolet_like",
    "make_ucihar_like",
    "make_face_like",
    "make_clustered_levels",
    "perturb_levels",
    "standard_suite",
    "load_csv_dataset",
    "load_isolet",
    "load_ucihar",
]
