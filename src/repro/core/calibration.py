"""Cross-calibration of the analytic model against the transient backend.

The analytic model (:class:`~repro.core.energy.TimingEnergyModel`) uses
closed-form RC estimates of ``d_INV`` and ``d_C``.  This module measures
the same quantities on the transient backend -- the reproduction's stand-in
for the paper's Spectre runs -- and returns a calibrated model:

1. simulate an all-match chain: total delay / N gives ``d_INV``;
2. simulate the same chain with ``k`` mismatched active stages: the delay
   increment / k gives ``d_C``;
3. (optionally) sweep a V_TH offset on a single mismatched stage to
   measure the weak delay-variation coupling
   (:attr:`TDAMConfig.delay_variation_sensitivity`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel
from repro.core.netlist_builder import build_chain_circuit
from repro.core.stage import STEP_I
from repro.spice.transient import simulate


@dataclass(frozen=True)
class CalibrationResult:
    """Measured stage timing.

    Attributes:
        d_inv_s: Measured intrinsic stage delay.
        d_c_s: Measured per-mismatch delay adder.
        d_inv_analytic_s: The closed-form estimate, for comparison.
        d_c_analytic_s: The closed-form estimate, for comparison.
        n_stages: Chain length used in the measurement.
        n_mismatch: Mismatch count of the second run.
    """

    d_inv_s: float
    d_c_s: float
    d_inv_analytic_s: float
    d_c_analytic_s: float
    n_stages: int
    n_mismatch: int

    @property
    def d_inv_error(self) -> float:
        """Relative error of the analytic d_INV estimate."""
        return abs(self.d_inv_analytic_s - self.d_inv_s) / self.d_inv_s

    @property
    def d_c_error(self) -> float:
        """Relative error of the analytic d_C estimate."""
        return abs(self.d_c_analytic_s - self.d_c_s) / self.d_c_s


def measure_chain_delay(
    config: TDAMConfig,
    stored: Sequence[int],
    query: Sequence[int],
    step: str = STEP_I,
    rising_input: bool = True,
    dt: float = 2e-12,
    rng: Optional[np.random.Generator] = None,
    vth_offsets: Optional[np.ndarray] = None,
) -> float:
    """Transient-measured edge propagation delay of one chain step (s).

    Measured from the input edge's 50% crossing to the output's.
    """
    net = build_chain_circuit(
        config, stored, query, step=step, rising_input=rising_input,
        rng=rng, vth_offsets=vth_offsets,
    )
    result = simulate(net.circuit, t_stop=net.t_stop_hint, dt=dt, v_init=net.v_init)
    w_in = result.waveform(net.input_node)
    w_out = result.waveform(net.output_node)
    level = config.vdd / 2.0
    return w_in.delay_to(
        w_out,
        level,
        rising_self=rising_input,
        rising_other=net.output_edge_rising,
        after=net.t_pulse - 50e-12,
    )


def calibrate_stage_timing(
    config: TDAMConfig,
    n_stages: int = 8,
    n_mismatch: int = 4,
    dt: float = 2e-12,
    seed: int = 11,
) -> CalibrationResult:
    """Measure ``d_INV`` and ``d_C`` on the transient backend.

    Uses a short chain (delays are per-stage quantities, so a small N is
    sufficient and fast) with mismatches on even stages only, evaluated in
    step I.

    Args:
        config: The design point to calibrate (its ``n_stages`` is
            overridden by ``n_stages`` for the measurement).
        n_stages: Measurement chain length (even, >= 2).
        n_mismatch: Mismatches injected among even stages.
        dt: Transient timestep.
        seed: Device-ensemble seed.
    """
    if n_stages < 2 or n_stages % 2 != 0:
        raise ValueError(f"n_stages must be even and >= 2, got {n_stages}")
    n_even = (n_stages + 1) // 2
    if not 1 <= n_mismatch <= n_even:
        raise ValueError(
            f"n_mismatch must be in [1, {n_even}], got {n_mismatch}"
        )
    cfg = config.with_(n_stages=n_stages)
    stored = [0] * n_stages
    query_match = [0] * n_stages
    # Mismatch the first n_mismatch even stages by one level.
    query_mis = list(query_match)
    injected = 0
    for i in range(0, n_stages, 2):
        if injected == n_mismatch:
            break
        query_mis[i] = 1
        injected += 1

    rng = np.random.default_rng(seed)
    d_match = measure_chain_delay(cfg, stored, query_match, dt=dt, rng=rng)
    rng = np.random.default_rng(seed)
    d_mis = measure_chain_delay(cfg, stored, query_mis, dt=dt, rng=rng)

    d_inv = d_match / n_stages
    d_c = (d_mis - d_match) / n_mismatch
    analytic = TimingEnergyModel(cfg)
    return CalibrationResult(
        d_inv_s=d_inv,
        d_c_s=d_c,
        d_inv_analytic_s=analytic.d_inv,
        d_c_analytic_s=analytic.d_c,
        n_stages=n_stages,
        n_mismatch=n_mismatch,
    )


def calibrated_model(
    config: TDAMConfig,
    n_stages: int = 8,
    n_mismatch: int = 4,
    dt: float = 2e-12,
    seed: int = 11,
) -> TimingEnergyModel:
    """A :class:`TimingEnergyModel` with transient-measured delays."""
    cal = calibrate_stage_timing(
        config, n_stages=n_stages, n_mismatch=n_mismatch, dt=dt, seed=seed
    )
    return TimingEnergyModel(
        config, d_inv_override=cal.d_inv_s, d_c_override=cal.d_c_s
    )


def measure_variation_sensitivity(
    config: TDAMConfig,
    shifts_v: Sequence[float] = (-0.06, -0.03, 0.0, 0.03, 0.06),
    n_stages: int = 4,
    dt: float = 2e-12,
    seed: int = 11,
) -> Tuple[float, np.ndarray]:
    """Measure the fractional d_C sensitivity to a conducting-FeFET shift.

    Simulates a chain whose single active stage mismatches, sweeping the
    V_TH offset of the conducting FeFET, and fits the slope of the
    normalized mismatch delay against ``shift / V_DD``.

    Returns:
        ``(sensitivity, delays)`` where ``sensitivity`` is the fitted
        slope (the value :attr:`TDAMConfig.delay_variation_sensitivity`
        models) and ``delays`` are the measured chain delays per shift.
    """
    cfg = config.with_(n_stages=n_stages)
    stored = [0] * n_stages
    query = [0] * n_stages
    query[0] = 1  # stage 0 mismatches with F_A conducting (query > stored)
    delays = []
    for shift in shifts_v:
        offsets = np.zeros((n_stages, 2))
        offsets[0, 0] = shift
        rng = np.random.default_rng(seed)
        delays.append(
            measure_chain_delay(cfg, stored, query, dt=dt, rng=rng,
                                vth_offsets=offsets)
        )
    delays = np.array(delays)
    shifts = np.asarray(shifts_v, dtype=float)
    base = float(delays[shifts == 0.0][0]) if (shifts == 0.0).any() else float(delays.mean())
    analytic = TimingEnergyModel(cfg)
    # d = const + d_c * (1 + s * shift / vdd)  ->  slope/d_c * vdd = s.
    slope = np.polyfit(shifts, delays, 1)[0]
    sensitivity = slope * cfg.vdd / max(base - n_stages * analytic.d_inv, 1e-15)
    return float(sensitivity), delays
