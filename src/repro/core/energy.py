"""Analytic timing and energy model of the TD-AM.

This is the fast backend used for the paper's sweep figures (Fig. 5-8).
It derives the two characteristic delays of the variable-capacitance stage
from the behavioral device models:

- ``d_INV``: intrinsic stage delay -- the inverter's effective switching
  resistance driving the stage parasitics,
- ``d_C``: the additional delay of a mismatched stage.  The load
  capacitor couples through the switch PMOS as a *current-limited charge
  transfer*: the falling stage output must drain the capacitor through
  the inverter NMOS over the switch's coupled swing
  ``V_DD - |V_th,p|``, giving ``d_C ~ C * (V_DD - |V_th,p|) / I_Nsat``
  with a transfer coefficient fitted once against the transient backend
  (see ``tests/core/test_calibration.py`` for the cross-check).

and evaluates the paper's delay law (Sec. III-B)::

    d_rising,even = N_tot * d_INV + N_even,mis * d_C      (step I)
    d_tot         = 2 * N_tot * d_INV + N_mis * d_C       (both steps)

Energy uses CV^2 accounting over the switched capacitances per 2-step
search: every inverter output toggles through a full cycle, each
mismatched stage additionally cycles its load capacitor and discharges /
re-precharges its match node, and the search-line drivers charge the FeFET
gate loads.  The constants are calibratable against the transient backend
(:mod:`repro.core.calibration`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.config import TDAMConfig
from repro.devices.mosfet import nmos, pmos

#: Delay of one RC charge to the 50% level, in units of R*C.
_RC_TO_50PCT = math.log(2.0)

#: Coefficient of the current-limited load-capacitor transfer, fitted to
#: the transient backend over V_DD in 0.5..1.1 V and C_load in
#: 6..96 fF (agreement within ~10% except >=96 fF, ~25%).
_VC_TRANSFER_COEFF = 0.65

#: FeFET gate capacitance seen by a search-line driver, per FeFET (F).
_C_FEFET_GATE = 0.08e-15

#: Energy of one TDC count (counter toggle + registration), per count (J).
#: Representative of a compact ripple counter at the paper's node.
_E_TDC_COUNT = 0.02e-15

#: Mismatch activity at which per-bit energy efficiency is quoted.  The
#: paper's best-efficiency point (0.159 fJ/bit) corresponds to a
#: near-match associative workload; 10% mismatching stages reproduces it.
DEFAULT_REPORT_ACTIVITY = 0.1


@dataclass(frozen=True)
class SearchCost:
    """Latency and energy of one search on one chain.

    Attributes:
        delay_s: Total 2-step delay (the similarity output).
        delay_rising_s: Step I (even stages) delay.
        delay_falling_s: Step II (odd stages) delay.
        energy_j: Total energy drawn from the supplies.
        energy_breakdown_j: Energy per mechanism (inverters, load caps,
            match nodes, search lines, TDC).
    """

    delay_s: float
    delay_rising_s: float
    delay_falling_s: float
    energy_j: float
    energy_breakdown_j: Dict[str, float]


class TimingEnergyModel:
    """Closed-form timing/energy evaluation of one design point.

    Args:
        config: The design point.
        d_inv_override: Calibrated intrinsic stage delay (s); overrides
            the analytic estimate (used after transient calibration).
        d_c_override: Calibrated mismatch delay adder (s).
    """

    def __init__(
        self,
        config: TDAMConfig,
        d_inv_override: Optional[float] = None,
        d_c_override: Optional[float] = None,
    ) -> None:
        self.config = config
        self._nmos = nmos(config.tech, width=config.inverter_nmos_width)
        self._pmos = pmos(config.tech, width=config.inverter_pmos_width)
        self._switch = pmos(config.tech, width=config.switch_pmos_width)
        self._d_inv = d_inv_override
        self._d_c = d_c_override
        self._energy_tables: Dict[bool, "np.ndarray"] = {}

    # ------------------------------------------------------------------
    # Characteristic delays
    # ------------------------------------------------------------------
    @property
    def r_inv(self) -> float:
        """Effective inverter drive resistance (ohm), rise/fall average."""
        r_n = self._nmos.on_resistance(self.config.vdd)
        r_p = self._pmos.on_resistance(self.config.vdd)
        return 0.5 * (r_n + r_p)

    @property
    def r_switch(self) -> float:
        """Load-switch PMOS on-resistance (ohm) at full MN discharge."""
        return self._switch.on_resistance(self.config.vdd)

    @property
    def c_stage(self) -> float:
        """Unswitched capacitance at a stage output (F): parasitics plus
        the next stage's inverter gate load."""
        c_gate_next = (
            self.config.inverter_nmos_width + self.config.inverter_pmos_width
        ) * self.config.tech.c_gate_min_ff * 1e-15
        return self.config.c_stage_par_f + c_gate_next

    @property
    def d_inv(self) -> float:
        """Intrinsic stage delay (s): match-case propagation."""
        if self._d_inv is not None:
            return self._d_inv
        return _RC_TO_50PCT * self.r_inv * self.c_stage

    @property
    def i_drive_n(self) -> float:
        """Inverter NMOS saturation current at V_DD (A) -- the discharge
        limit of the coupled load capacitor on a falling output."""
        return self._nmos.ids(self.config.vdd, self.config.vdd)

    @property
    def coupled_swing(self) -> float:
        """Voltage swing over which the switch couples the load cap (V).

        The switch PMOS (gate at the discharged match node) conducts while
        the output side stays above ``|V_th,p|``; floored at 5% of V_DD so
        deep-low-voltage sweeps stay finite.
        """
        vdd = self.config.vdd
        return max(vdd - abs(self.config.tech.vth_p), 0.05 * vdd)

    @property
    def d_c(self) -> float:
        """Additional delay of a mismatched stage (s)."""
        if self._d_c is not None:
            return self._d_c
        return (
            _VC_TRANSFER_COEFF
            * self.config.c_load_f
            * self.coupled_swing
            / self.i_drive_n
        )

    # ------------------------------------------------------------------
    # Delay law (Sec. III-B)
    # ------------------------------------------------------------------
    def step_delay(self, n_mismatch_active: int) -> float:
        """Delay of one step (one edge): ``N d_INV + N_mis,active d_C``."""
        self._check_mismatches(n_mismatch_active)
        return self.config.n_stages * self.d_inv + n_mismatch_active * self.d_c

    def chain_delay(self, n_mismatch: int) -> float:
        """Total 2-step delay for ``n_mismatch`` mismatched stages.

        The even/odd split does not matter for the total (both steps
        carry the full intrinsic term); per-step delays come from
        :meth:`step_delay` or :meth:`search_cost`.
        """
        self._check_mismatches(n_mismatch)
        return 2 * self.config.n_stages * self.d_inv + n_mismatch * self.d_c

    def delay_to_mismatches(self, delay_s: float) -> float:
        """Invert the delay law: continuous mismatch count for a delay."""
        offset = 2 * self.config.n_stages * self.d_inv
        return (delay_s - offset) / self.d_c

    # ------------------------------------------------------------------
    # Energy accounting
    # ------------------------------------------------------------------
    def search_cost(
        self,
        n_mismatch: int,
        n_mismatch_even: Optional[int] = None,
        include_tdc: bool = True,
    ) -> SearchCost:
        """Latency and energy of one full 2-step search on one chain.

        Args:
            n_mismatch: Total mismatched stages (0..N).
            n_mismatch_even: Mismatches among even stages (for the per-step
                delays); defaults to an even split.
            include_tdc: Whether to include counter TDC energy.
        """
        self._check_mismatches(n_mismatch)
        n = self.config.n_stages
        if n_mismatch_even is None:
            n_mismatch_even = n_mismatch // 2
        if not 0 <= n_mismatch_even <= n_mismatch:
            raise ValueError(
                f"n_mismatch_even={n_mismatch_even} outside [0, {n_mismatch}]"
            )
        vdd = self.config.vdd
        v_sq = vdd * vdd

        # Every inverter output completes one full up/down cycle per
        # 2-step search: one CV^2 drawn from the supply per stage.
        e_inv = n * self.c_stage * v_sq
        # Each mismatched stage cycles its load capacitor over the coupled
        # swing; charge C*dV is replenished from the V_DD rail.
        e_load = n_mismatch * self.config.c_load_f * self.coupled_swing * vdd
        # Each mismatched cell discharges MN and is re-precharged.
        e_mn = n_mismatch * self.config.c_mn_f * v_sq
        # Search-line drivers charge 2 FeFET gates per cell once per
        # search (lines hold their levels across both steps; only the
        # parity swap re-drives them, folded into the mean amplitude).
        v_sl_mean = sum(self.config.vsl_levels) / len(self.config.vsl_levels)
        e_sl = n * 2 * _C_FEFET_GATE * v_sl_mean * v_sl_mean
        e_tdc = (
            (2 * n + n_mismatch) * _E_TDC_COUNT if include_tdc else 0.0
        )
        breakdown = {
            "inverters": e_inv,
            "load_caps": e_load,
            "match_nodes": e_mn,
            "search_lines": e_sl,
            "tdc": e_tdc,
        }
        d_rise = n * self.d_inv + n_mismatch_even * self.d_c
        d_fall = n * self.d_inv + (n_mismatch - n_mismatch_even) * self.d_c
        return SearchCost(
            delay_s=d_rise + d_fall,
            delay_rising_s=d_rise,
            delay_falling_s=d_fall,
            energy_j=sum(breakdown.values()),
            energy_breakdown_j=breakdown,
        )

    def search_energy_table(self, include_tdc: bool = True) -> np.ndarray:
        """Per-chain search energy for every mismatch count 0..N (J).

        ``search_cost`` is affine in the mismatch count, so the whole
        table is evaluated once and cached; batched searches then turn
        energy accounting into an array lookup instead of one
        :meth:`search_cost` object per row.  Entry ``m`` equals
        ``search_cost(m, include_tdc=...).energy_j`` exactly (the table
        is built from those very calls, so scalar and batched paths
        cannot drift apart).  The returned array is cached -- treat it
        as read-only.
        """
        table = self._energy_tables.get(include_tdc)
        if table is None:
            table = np.array(
                [
                    self.search_cost(m, include_tdc=include_tdc).energy_j
                    for m in range(self.config.n_stages + 1)
                ]
            )
            self._energy_tables[include_tdc] = table
        return table

    def energy_per_bit(self, n_mismatch: Optional[int] = None) -> float:
        """Search energy normalized per compared bit (J/bit).

        Args:
            n_mismatch: Mismatch count of the evaluated search; defaults
                to :data:`DEFAULT_REPORT_ACTIVITY` -- the near-match
                workload at which the paper's best-efficiency operating
                point (0.159 fJ/bit at scaled V_DD) is quoted.
        """
        if n_mismatch is None:
            n_mismatch = max(1, round(DEFAULT_REPORT_ACTIVITY * self.config.n_stages))
        cost = self.search_cost(n_mismatch)
        return cost.energy_j / (self.config.n_stages * self.config.bits)

    def array_search_cost(self, mismatch_counts, include_tdc: bool = True) -> SearchCost:
        """Aggregate cost of one parallel search over many chains.

        Latency is the slowest chain (they run concurrently); energy sums.
        """
        costs = [self.search_cost(int(m), include_tdc=include_tdc) for m in mismatch_counts]
        if not costs:
            raise ValueError("mismatch_counts must not be empty")
        breakdown: Dict[str, float] = {}
        for cost in costs:
            for key, value in cost.energy_breakdown_j.items():
                breakdown[key] = breakdown.get(key, 0.0) + value
        slowest = max(costs, key=lambda c: c.delay_s)
        return SearchCost(
            delay_s=slowest.delay_s,
            delay_rising_s=slowest.delay_rising_s,
            delay_falling_s=slowest.delay_falling_s,
            energy_j=sum(c.energy_j for c in costs),
            energy_breakdown_j=breakdown,
        )

    def _check_mismatches(self, n_mismatch: int) -> None:
        if not 0 <= n_mismatch <= self.config.n_stages:
            raise ValueError(
                f"n_mismatch={n_mismatch} outside [0, {self.config.n_stages}]"
            )

    def __repr__(self) -> str:
        return (
            f"TimingEnergyModel(d_inv={self.d_inv * 1e12:.2f} ps, "
            f"d_c={self.d_c * 1e12:.2f} ps, vdd={self.config.vdd} V)"
        )
