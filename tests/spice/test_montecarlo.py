"""Tests of the Monte Carlo harness."""

import concurrent.futures

import numpy as np
import pytest

from repro.spice import montecarlo
from repro.spice.montecarlo import MonteCarloResult, run_monte_carlo


class TestRunMonteCarlo:
    def test_reproducible_with_seed(self):
        trial = lambda rng: float(rng.normal())
        a = run_monte_carlo(trial, n_runs=50, seed=9)
        b = run_monte_carlo(trial, n_runs=50, seed=9)
        assert np.array_equal(a.samples, b.samples)

    def test_streams_are_independent(self):
        trial = lambda rng: float(rng.normal())
        result = run_monte_carlo(trial, n_runs=200, seed=9)
        assert len(set(result.samples)) == 200

    def test_statistics(self):
        trial = lambda rng: float(rng.normal(5.0, 2.0))
        result = run_monte_carlo(trial, n_runs=4000, seed=1)
        assert result.mean == pytest.approx(5.0, abs=0.15)
        assert result.std == pytest.approx(2.0, rel=0.1)
        assert result.coefficient_of_variation == pytest.approx(0.4, rel=0.12)

    def test_failures_propagate_by_default(self):
        def flaky(rng):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            run_monte_carlo(flaky, n_runs=3, seed=1)

    def test_allow_failures_counts_them(self):
        def flaky(rng):
            if rng.random() < 0.5:
                raise RuntimeError("boom")
            return 1.0

        result = run_monte_carlo(flaky, n_runs=100, seed=2, allow_failures=True)
        assert result.failures > 0
        assert len(result.samples) + result.failures == 100

    def test_all_failures_is_an_error(self):
        def always_fails(rng):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="all Monte Carlo trials"):
            run_monte_carlo(always_fails, n_runs=3, seed=1, allow_failures=True)

    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError, match="n_runs"):
            run_monte_carlo(lambda rng: 0.0, n_runs=0)


class TestMonteCarloResult:
    def setup_method(self):
        self.result = MonteCarloResult(
            samples=np.array([1.0, 2.0, 3.0, 4.0, 5.0]), seed=0
        )

    def test_fraction_within(self):
        assert self.result.fraction_within(2.0, 4.0) == pytest.approx(0.6)

    def test_percentile(self):
        assert self.result.percentile(50) == 3.0

    def test_histogram(self):
        hist = self.result.histogram(bins=5)
        assert hist["counts"].sum() == 5
        assert len(hist["edges"]) == 6

    def test_summary_keys(self):
        summary = self.result.summary()
        for key in ("n", "mean", "std", "min", "max", "p01", "p99"):
            assert key in summary

    def test_cv_zero_mean_raises(self):
        result = MonteCarloResult(samples=np.array([-1.0, 1.0]), seed=0)
        with pytest.raises(ValueError, match="zero mean"):
            result.coefficient_of_variation


def _gaussian_trial(rng):
    """Module-level so ProcessPoolExecutor can pickle it."""
    return float(rng.normal())


def _sometimes_failing_trial(rng):
    """Module-level failing trial for parallel failure handling."""
    value = float(rng.normal())
    if value > 1.0:
        raise RuntimeError("boom")
    return value


class TestParallelMonteCarlo:
    """Shard parallelism must never change the sample stream."""

    @pytest.mark.parametrize("n_workers", [2, 3, 7])
    def test_thread_parallel_bit_identical_to_serial(self, n_workers):
        serial = run_monte_carlo(_gaussian_trial, n_runs=40, seed=5)
        parallel = run_monte_carlo(
            _gaussian_trial,
            n_runs=40,
            seed=5,
            n_workers=n_workers,
            executor="thread",
        )
        assert np.array_equal(serial.samples, parallel.samples)

    def test_process_parallel_bit_identical_to_serial(self):
        serial = run_monte_carlo(_gaussian_trial, n_runs=24, seed=5)
        parallel = run_monte_carlo(
            _gaussian_trial, n_runs=24, seed=5, n_workers=3
        )
        assert np.array_equal(serial.samples, parallel.samples)

    def test_workers_capped_at_n_runs(self):
        serial = run_monte_carlo(_gaussian_trial, n_runs=3, seed=2)
        parallel = run_monte_carlo(
            _gaussian_trial, n_runs=3, seed=2, n_workers=16, executor="thread"
        )
        assert np.array_equal(serial.samples, parallel.samples)

    def test_parallel_failures_match_serial(self):
        serial = run_monte_carlo(
            _sometimes_failing_trial, n_runs=60, seed=8, allow_failures=True
        )
        parallel = run_monte_carlo(
            _sometimes_failing_trial,
            n_runs=60,
            seed=8,
            allow_failures=True,
            n_workers=4,
            executor="thread",
        )
        assert serial.failures > 0
        assert parallel.failures == serial.failures
        assert np.array_equal(serial.samples, parallel.samples)

    def test_parallel_failure_propagates_without_allow(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_monte_carlo(
                _sometimes_failing_trial,
                n_runs=60,
                seed=8,
                n_workers=4,
                executor="thread",
            )

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            run_monte_carlo(_gaussian_trial, n_runs=4, n_workers=0)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            run_monte_carlo(
                _gaussian_trial, n_runs=4, n_workers=2, executor="fork"
            )


class TestPersistentPools:
    """The executor pools persist across calls and survive one break."""

    @pytest.fixture(autouse=True)
    def clean_pools(self):
        montecarlo.shutdown_executor_pools()
        yield
        montecarlo.shutdown_executor_pools()

    def test_pool_is_reused_across_calls(self):
        run_monte_carlo(
            _gaussian_trial, n_runs=8, seed=1, n_workers=2, executor="thread"
        )
        pool = montecarlo._POOLS[("thread", 2)]
        run_monte_carlo(
            _gaussian_trial, n_runs=8, seed=2, n_workers=2, executor="thread"
        )
        assert montecarlo._POOLS[("thread", 2)] is pool

    def test_serial_path_creates_no_pool(self):
        run_monte_carlo(_gaussian_trial, n_runs=8, seed=1, n_workers=1)
        assert montecarlo._POOLS == {}

    def test_shutdown_counts_and_clears(self):
        run_monte_carlo(
            _gaussian_trial, n_runs=8, seed=1, n_workers=2, executor="thread"
        )
        run_monte_carlo(
            _gaussian_trial, n_runs=9, seed=1, n_workers=3, executor="thread"
        )
        assert montecarlo.shutdown_executor_pools() == 2
        assert montecarlo._POOLS == {}
        assert montecarlo.shutdown_executor_pools() == 0
        # The next run simply recreates what it needs.
        result = run_monte_carlo(
            _gaussian_trial, n_runs=8, seed=1, n_workers=2, executor="thread"
        )
        assert len(result.samples) == 8

    def test_bit_identical_across_pool_generations(self):
        before = run_monte_carlo(
            _gaussian_trial, n_runs=16, seed=7, n_workers=2, executor="thread"
        )
        montecarlo.shutdown_executor_pools()
        after = run_monte_carlo(
            _gaussian_trial, n_runs=16, seed=7, n_workers=2, executor="thread"
        )
        serial = run_monte_carlo(_gaussian_trial, n_runs=16, seed=7)
        assert np.array_equal(before.samples, after.samples)
        assert np.array_equal(before.samples, serial.samples)

    def test_broken_pool_is_replaced_and_retried(self, monkeypatch):
        class BrokenPool:
            def submit(self, *args, **kwargs):
                raise concurrent.futures.BrokenExecutor("worker died")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        montecarlo._POOLS[("thread", 2)] = BrokenPool()
        result = run_monte_carlo(
            _gaussian_trial, n_runs=8, seed=3, n_workers=2, executor="thread"
        )
        serial = run_monte_carlo(_gaussian_trial, n_runs=8, seed=3)
        assert np.array_equal(result.samples, serial.samples)
        assert not isinstance(
            montecarlo._POOLS[("thread", 2)], BrokenPool
        )

    def test_double_break_propagates(self, monkeypatch):
        class BrokenPool:
            def submit(self, *args, **kwargs):
                raise concurrent.futures.BrokenExecutor("worker died")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(
            montecarlo, "_get_pool", lambda ex, n: BrokenPool()
        )
        with pytest.raises(concurrent.futures.BrokenExecutor):
            run_monte_carlo(
                _gaussian_trial,
                n_runs=8,
                seed=3,
                n_workers=2,
                executor="thread",
            )
