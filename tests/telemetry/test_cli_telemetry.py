"""CLI telemetry wiring: --log-level, --trace-out, --metrics-out."""

import json

from repro.cli import main


class TestCliArtifacts:
    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "run", "table1",
            "--log-level", "debug",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "This work" in out  # the Table I body reached stdout

        trace = json.loads(trace_path.read_text())
        names = [e["name"] for e in trace["traceEvents"]]
        assert "experiment.table1" in names
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in spans)

        metrics = json.loads(metrics_path.read_text())
        assert isinstance(metrics, dict) and metrics  # registry dumped

    def test_trace_out_captures_nested_search_spans(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        code = main([
            "run", "retention", "--fast",
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        # The retention study drives real array searches, so the trace
        # holds the experiment span plus nested search/sense spans.
        assert "experiment.retention" in names
        assert "array.search" in names
        assert "array.sense" in names

    def test_run_without_flags_stays_dark(self, tmp_path, capsys):
        from repro import telemetry

        code = main(["run", "table1"])
        assert code == 0
        assert telemetry.get_tracer().roots() == ()
        assert not telemetry.is_enabled()
