"""Value <-> voltage level encodings of the 2-FeFET cell (Fig. 2(b)(c)).

The cell compares a stored level against a query level with two FeFETs:

- ``F_A`` stores value ``v`` as ``V_TH[v]`` and sees the query as
  ``V_SL[q]``; it conducts exactly when ``q > v``.
- ``F_B`` uses *reversed* encodings (``V_TH[L-1-v]``, ``V_SL[L-1-q]``); it
  conducts exactly when ``q < v``.

On a match neither FeFET conducts and the precharged match node stays
high.  Deactivating a cell (the 2-step scheme parks inactive stages) drives
both search lines to ``V_SL[0]``, the lowest level, which keeps both
FeFETs off for every stored value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import TDAMConfig


def validate_levels(
    values: Sequence[int],
    levels: int,
    *,
    ndim: int = 1,
    name: str = "vector",
) -> np.ndarray:
    """Validate an array of stored/query levels; never clips silently.

    The one shared admission check of every level-carrying input
    (queries, stored vectors, whole matrices): wrong dimensionality,
    non-integral elements, and out-of-range levels each raise a
    ``ValueError`` naming the offending property instead of producing
    clipped or garbage comparisons downstream.

    Args:
        values: The candidate levels (any array-like).
        levels: Number of storable levels (``config.levels``).
        ndim: Required dimensionality (1 for vectors, 2 for matrices).
        name: What to call the input in error messages.

    Returns:
        The validated values as an ``int64`` array.
    """
    arr = np.asarray(values)
    if arr.ndim != ndim:
        raise ValueError(
            f"expected a {ndim}-D {name}, got shape {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        if arr.dtype == bool:
            arr = arr.astype(np.int64)
        elif np.issubdtype(arr.dtype, np.floating) and np.allclose(
            arr, np.round(arr)
        ):
            arr = np.round(arr).astype(np.int64)
        else:
            raise ValueError(f"{name} elements must be integers")
    if arr.size and (arr.min() < 0 or arr.max() >= levels):
        raise ValueError(
            f"{name} elements must be in [0, {levels - 1}], "
            f"got range [{arr.min()}, {arr.max()}]"
        )
    return arr.astype(np.int64)


@dataclass(frozen=True)
class CellDrive:
    """The search-line drive of one cell for one query.

    Attributes:
        vsl_a: Voltage applied to ``F_A``'s search line (V).
        vsl_b: Voltage applied to ``F_B``'s search line (V).
        active: False when the cell is parked by the 2-step scheme.
    """

    vsl_a: float
    vsl_b: float
    active: bool = True


class LevelEncoding:
    """Bidirectional value <-> voltage encoding for one configuration.

    Args:
        config: The design point supplying ladders and precision.
    """

    def __init__(self, config: TDAMConfig) -> None:
        self.config = config
        self.levels = config.levels
        self._vth = config.vth_levels
        self._vsl = config.vsl_levels

    # ------------------------------------------------------------------
    # Stored-side (write) encodings
    # ------------------------------------------------------------------
    def vth_for_fa(self, value: int) -> float:
        """Programmed V_TH of ``F_A`` for a stored value (Fig. 2(b))."""
        self._check(value)
        return self._vth[value]

    def vth_for_fb(self, value: int) -> float:
        """Programmed V_TH of ``F_B``: reversed ladder (Fig. 2(c))."""
        self._check(value)
        return self._vth[self.levels - 1 - value]

    # ------------------------------------------------------------------
    # Query-side (search) encodings
    # ------------------------------------------------------------------
    def drive_for_query(self, query: int) -> CellDrive:
        """Search-line voltages encoding a query value."""
        self._check(query)
        return CellDrive(
            vsl_a=self._vsl[query],
            vsl_b=self._vsl[self.levels - 1 - query],
            active=True,
        )

    def drive_deactivated(self) -> CellDrive:
        """Search-line voltages parking the cell (both lines at V_SL0)."""
        return CellDrive(vsl_a=self._vsl[0], vsl_b=self._vsl[0], active=False)

    # ------------------------------------------------------------------
    # Ideal comparison semantics
    # ------------------------------------------------------------------
    def fa_conducts(self, stored: int, query: int) -> bool:
        """Whether ``F_A`` conducts: query greater than stored."""
        self._check(stored)
        self._check(query)
        return query > stored

    def fb_conducts(self, stored: int, query: int) -> bool:
        """Whether ``F_B`` conducts: query smaller than stored."""
        self._check(stored)
        self._check(query)
        return query < stored

    def matches(self, stored: int, query: int) -> bool:
        """Whether the cell reports a match (equal values)."""
        self._check(stored)
        self._check(query)
        return stored == query

    # ------------------------------------------------------------------
    # Vectorized helpers (used by the fast array and HDC mapping)
    # ------------------------------------------------------------------
    def validate_vector(self, values: Sequence[int]) -> np.ndarray:
        """Validate and return a vector of levels as an int array."""
        return validate_levels(values, self.levels, ndim=1)

    def mismatch_vector(self, stored: Sequence[int], query: Sequence[int]) -> np.ndarray:
        """Boolean per-element mismatch between two level vectors."""
        s = self.validate_vector(stored)
        q = self.validate_vector(query)
        if s.shape != q.shape:
            raise ValueError(f"shape mismatch: {s.shape} vs {q.shape}")
        return s != q

    def hamming_distance(self, stored: Sequence[int], query: Sequence[int]) -> int:
        """Number of mismatching elements (the paper's SC metric)."""
        return int(self.mismatch_vector(stored, query).sum())

    def _check(self, value: int) -> None:
        if not 0 <= int(value) < self.levels:
            raise ValueError(
                f"value {value} out of range [0, {self.levels - 1}] "
                f"for {self.config.bits}-bit encoding"
            )
