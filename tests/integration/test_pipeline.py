"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.core.array import FastTDAMArray, TDAMArray
from repro.core.config import TDAMConfig
from repro.datasets.synthetic import make_face_like
from repro.devices.variation import VariationModel
from repro.hdc.encoder import RandomProjectionEncoder
from repro.hdc.mapping import TDAMInference
from repro.hdc.model import HDCClassifier
from repro.hdc.quantize import quantize_equal_area


class TestHDCtoTDAMPipeline:
    """Features -> encode -> train -> quantize -> TD-AM inference."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        ds = make_face_like(n_train=500, n_test=250)
        encoder = RandomProjectionEncoder(ds.n_features, 2048, seed=7)
        clf = HDCClassifier(encoder, ds.n_classes).fit(
            ds.x_train, ds.y_train, epochs=5
        )
        quantized = quantize_equal_area(clf.prototypes, bits=2)
        inference = TDAMInference(
            quantized,
            config=TDAMConfig(bits=2, n_stages=128, vdd=0.6),
            n_features=ds.n_features,
        )
        return ds, clf, quantized, inference

    def test_reference_accuracy(self, pipeline):
        ds, clf, _, _ = pipeline
        assert clf.accuracy(ds.x_test, ds.y_test) > 0.9

    def test_quantized_model_accuracy(self, pipeline):
        ds, clf, quantized, _ = pipeline
        queries = clf.encode(ds.x_test)
        assert quantized.accuracy_cosine(queries, ds.y_test) > 0.85

    def test_hardware_hamming_accuracy(self, pipeline):
        ds, clf, quantized, inference = pipeline
        levels = quantized.quantize_queries(clf.encode(ds.x_test))
        assert inference.accuracy(levels, ds.y_test) > 0.75

    def test_cost_model_sane(self, pipeline):
        _, _, _, inference = pipeline
        cost = inference.query_cost()
        assert cost.tiles == 16
        assert 10e-9 < cost.latency_s < 10e-6
        assert 1e-12 < cost.energy_j < 1e-6

    def test_variation_degrades_gracefully(self, pipeline):
        """Measured per-state sigmas barely move hardware accuracy."""
        ds, clf, quantized, inference = pipeline
        noisy = TDAMInference(
            quantized,
            config=TDAMConfig(bits=2, n_stages=128, vdd=0.6),
            n_features=ds.n_features,
            variation=VariationModel(seed=11),  # measured sigmas
        )
        levels = quantized.quantize_queries(clf.encode(ds.x_test))
        clean_acc = inference.accuracy(levels, ds.y_test)
        noisy_acc = noisy.accuracy(levels, ds.y_test)
        assert noisy_acc > clean_acc - 0.05


class TestSmallVectorRecallOnHardware:
    """A classic associative-memory task run through the full device-
    accurate array: store patterns, recall from corrupted queries."""

    def test_nearest_pattern_recall(self):
        config = TDAMConfig(bits=2, n_stages=16)
        rng = np.random.default_rng(21)
        array = TDAMArray(config, n_rows=6, rng=rng)
        patterns = rng.integers(0, 4, size=(6, 16))
        array.write_all(patterns)
        for target in range(6):
            query = patterns[target].copy()
            corrupt = rng.choice(16, size=3, replace=False)
            query[corrupt] = (query[corrupt] + rng.integers(1, 4)) % 4
            result = array.search(query)
            assert result.best_row == target

    def test_fast_array_at_hdc_scale(self):
        """The vectorized array handles HDC-sized rows quickly."""
        config = TDAMConfig(bits=2, n_stages=128)
        array = FastTDAMArray(config, n_rows=26)
        rng = np.random.default_rng(3)
        stored = rng.integers(0, 4, size=(26, 128))
        array.write_all(stored)
        query = stored[13]
        result = array.search(query)
        assert result.best_row == 13
        assert result.hamming_distances[13] == 0


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        def run():
            ds = make_face_like(200, 100, seed=4)
            encoder = RandomProjectionEncoder(ds.n_features, 512, seed=7)
            clf = HDCClassifier(encoder, 2).fit(ds.x_train, ds.y_train,
                                                epochs=3)
            qm = quantize_equal_area(clf.prototypes, 2)
            inference = TDAMInference(qm, n_features=ds.n_features)
            levels = qm.quantize_queries(clf.encode(ds.x_test))
            return inference.accuracy(levels, ds.y_test)

        assert run() == run()
