"""The Monte Carlo worker heuristic: explicit counts honored, auto mode
sharding only when parallelism can win, telemetry on fallback."""

import numpy as np
import pytest

from repro import telemetry
from repro.spice.montecarlo import (
    MIN_PROCESS_TRIALS_PER_WORKER,
    MIN_THREAD_TRIALS_PER_WORKER,
    resolve_worker_count,
    run_monte_carlo,
)


def _trial(rng):
    return float(rng.normal(1.0, 0.1))


class TestResolveWorkerCount:
    def test_explicit_count_honored_even_on_one_cpu(self):
        workers, reason = resolve_worker_count(
            100, 4, executor="process", cpu_count=1
        )
        assert (workers, reason) == (4, None)

    def test_explicit_count_clamped_to_trials(self):
        workers, _ = resolve_worker_count(3, 16, executor="thread")
        assert workers == 3

    def test_explicit_zero_raises(self):
        with pytest.raises(ValueError, match="n_workers"):
            resolve_worker_count(10, 0)

    def test_auto_falls_back_on_single_cpu_process_pool(self):
        workers, reason = resolve_worker_count(
            10_000, None, executor="process", cpu_count=1
        )
        assert workers == 1
        assert "single CPU" in reason

    def test_auto_falls_back_when_trials_cannot_amortize(self):
        n = MIN_PROCESS_TRIALS_PER_WORKER  # one worker's worth only
        workers, reason = resolve_worker_count(
            n, None, executor="process", cpu_count=8
        )
        assert workers == 1
        assert "amortize" in reason

    def test_auto_shards_when_it_can_win(self):
        workers, reason = resolve_worker_count(
            4 * MIN_PROCESS_TRIALS_PER_WORKER, None,
            executor="process", cpu_count=4,
        )
        assert (workers, reason) == (4, None)

    def test_auto_never_exceeds_cpu_count(self):
        workers, _ = resolve_worker_count(
            100 * MIN_PROCESS_TRIALS_PER_WORKER, None,
            executor="process", cpu_count=3,
        )
        assert workers == 3

    def test_thread_threshold_is_lower(self):
        workers, reason = resolve_worker_count(
            4 * MIN_THREAD_TRIALS_PER_WORKER, None,
            executor="thread", cpu_count=4,
        )
        assert (workers, reason) == (4, None)

    def test_zero_min_trials_disables_amortization_bound(self):
        workers, reason = resolve_worker_count(
            8, None, executor="thread", cpu_count=4,
            min_trials_per_worker=0,
        )
        assert (workers, reason) == (4, None)


class TestRunMonteCarloAuto:
    def test_auto_mode_bit_identical_to_serial(self):
        serial = run_monte_carlo(_trial, n_runs=40, seed=5, n_workers=1)
        auto = run_monte_carlo(_trial, n_runs=40, seed=5, n_workers=None)
        assert np.array_equal(serial.samples, auto.samples)

    def test_fallback_emits_probe_when_enabled(self, monkeypatch):
        import repro.spice.montecarlo as mc

        monkeypatch.setattr(mc.os, "cpu_count", lambda: 1)
        telemetry.reset()
        telemetry.enable()
        rec = telemetry.ProbeRecorder()
        telemetry.register_probe("mc.fallback_serial", rec)
        try:
            run_monte_carlo(_trial, n_runs=8, seed=1, n_workers=None)
            payloads = rec.payloads("mc.fallback_serial")
            assert payloads and payloads[0]["requested"] == "auto"
            assert "single CPU" in payloads[0]["reason"]
        finally:
            telemetry.reset()

    def test_no_probe_for_explicit_serial(self):
        telemetry.reset()
        telemetry.enable()
        rec = telemetry.ProbeRecorder()
        telemetry.register_probe("mc.fallback_serial", rec)
        try:
            run_monte_carlo(_trial, n_runs=8, seed=1, n_workers=1)
            assert rec.records == []
        finally:
            telemetry.reset()

    def test_shard_and_run_probes_fire(self):
        telemetry.reset()
        telemetry.enable()
        rec = telemetry.ProbeRecorder()
        telemetry.register_probe("mc.shard", rec)
        telemetry.register_probe("mc.run", rec)
        try:
            run_monte_carlo(
                _trial, n_runs=12, seed=1, n_workers=3, executor="thread"
            )
            shards = rec.payloads("mc.shard")
            assert len(shards) == 3
            assert sum(s["trials"] for s in shards) == 12
            runs = rec.payloads("mc.run")
            assert runs[-1]["n_runs"] == 12 and runs[-1]["workers"] == 3
        finally:
            telemetry.reset()
