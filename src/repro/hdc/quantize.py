"""Class-hypervector quantization (the paper's Sec. IV-B scheme).

"By thoroughly mapping the class hypervector values based on probability
distributions into ``2**n`` blocks of equal areas, we achieved a nuanced
representation, allocating smaller widths to more significant values."

That is quantile (equal-probability-mass) quantization: the bin edges are
the ``k / 2**n`` quantiles of the class-hypervector value distribution,
so densely populated value regions get narrow bins.  Queries are
quantized with the *same* edges so that exact-level matches are
meaningful on the TD-AM.

Scale alignment: class prototypes are bundles of many encodings while a
query is a single encoding, so both are L2-normalized per row before the
shared bins apply (the classifier already centers and normalizes its
encodings; see :class:`repro.hdc.model.HDCClassifier`).

A plain uniform quantizer is included for the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizedModel:
    """A quantized HDC model ready for TD-AM mapping.

    Attributes:
        levels: Integer class-hypervector levels, shape (n_classes, D),
            values in [0, 2**bits).
        edges: Bin edges used for quantization (len ``2**bits - 1``).
        centers: Representative value per level (bin medians), used to
            reconstruct approximate float prototypes.
        bits: Element precision.
        method: "equal-area" or "uniform".
    """

    levels: np.ndarray
    edges: np.ndarray
    centers: np.ndarray
    bits: int
    method: str

    @property
    def n_levels(self) -> int:
        return 2**self.bits

    @property
    def dimension(self) -> int:
        return self.levels.shape[1]

    @property
    def n_classes(self) -> int:
        return self.levels.shape[0]

    def quantize_queries(self, queries: np.ndarray) -> np.ndarray:
        """Quantize query hypervectors with the model's bin edges.

        Queries are L2-normalized per row first, matching the prototype
        normalization applied when the edges were fitted.
        """
        q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if q.shape[1] != self.dimension:
            raise ValueError(
                f"query dimension {q.shape[1]} != model dimension {self.dimension}"
            )
        norms = np.linalg.norm(q, axis=1, keepdims=True)
        q = q / np.maximum(norms, 1e-12)
        return np.digitize(q, self.edges).astype(np.int64)

    def reconstruct(self) -> np.ndarray:
        """Approximate float prototypes from the level centers."""
        return self.centers[self.levels]

    def predict_cosine(self, queries: np.ndarray) -> np.ndarray:
        """Model-precision inference: cosine against the *quantized*
        prototypes (reconstructed through the level centers).

        This is the semantics of the paper's Fig. 7 quantization study:
        how much classification accuracy an ``n``-bit class-hypervector
        representation retains versus the 32-bit reference.  (The TD-AM's
        native exact-match Hamming inference lives in
        :class:`repro.hdc.mapping.TDAMInference`; EXPERIMENTS.md reports
        both.)
        """
        from repro.hdc.metrics import cosine_similarity

        return cosine_similarity(queries, self.reconstruct()).argmax(axis=1)

    def accuracy_cosine(self, queries: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of :meth:`predict_cosine` on a labelled set."""
        labels = np.asarray(labels)
        return float((self.predict_cosine(queries) == labels).mean())


def quantize_equal_area(
    prototypes: np.ndarray, bits: int, per_class: bool = False
) -> QuantizedModel:
    """Equal-probability-area quantization of class hypervectors.

    Args:
        prototypes: Float class hypervectors, shape (n_classes, D).
        bits: Element precision; ``2**bits`` levels.
        per_class: Fit edges per class instead of globally.  The paper
            fits one mapping for the model (queries must share the edges),
            so the default is global; per-class is exposed for analysis.

    Returns:
        The quantized model (with globally fitted edges even when
        ``per_class`` statistics are requested -- see note above).
    """
    p = _check_prototypes(prototypes, bits)
    p = p / np.maximum(np.linalg.norm(p, axis=1, keepdims=True), 1e-12)
    n_levels = 2**bits
    values = p.reshape(-1)
    quantiles = np.linspace(0, 1, n_levels + 1)[1:-1]
    edges = np.quantile(values, quantiles)
    # Degenerate distributions can produce duplicate edges; nudge them so
    # np.digitize stays monotone.
    edges = _make_strictly_increasing(edges)
    levels = np.digitize(p, edges).astype(np.int64)
    centers = _level_centers(values, edges, n_levels)
    if per_class:
        # Informational only: per-class digitization with shared centers.
        levels = np.stack(
            [
                np.digitize(
                    p[c], _make_strictly_increasing(np.quantile(p[c], quantiles))
                )
                for c in range(p.shape[0])
            ]
        ).astype(np.int64)
    return QuantizedModel(
        levels=levels, edges=edges, centers=centers, bits=bits,
        method="equal-area",
    )


def quantize_uniform(prototypes: np.ndarray, bits: int) -> QuantizedModel:
    """Uniform-width quantization over the value range (ablation baseline)."""
    p = _check_prototypes(prototypes, bits)
    p = p / np.maximum(np.linalg.norm(p, axis=1, keepdims=True), 1e-12)
    n_levels = 2**bits
    lo, hi = float(p.min()), float(p.max())
    if hi <= lo:
        raise ValueError("prototypes are constant; nothing to quantize")
    edges = np.linspace(lo, hi, n_levels + 1)[1:-1]
    levels = np.digitize(p, edges).astype(np.int64)
    centers = _level_centers(p.reshape(-1), edges, n_levels)
    return QuantizedModel(
        levels=levels, edges=edges, centers=centers, bits=bits,
        method="uniform",
    )


def _check_prototypes(prototypes: np.ndarray, bits: int) -> np.ndarray:
    p = np.asarray(prototypes, dtype=np.float64)
    if p.ndim != 2:
        raise ValueError(f"prototypes must be 2-D, got shape {p.shape}")
    if not 1 <= bits <= 8:
        raise ValueError(f"bits must be in 1..8, got {bits}")
    return p


def _make_strictly_increasing(edges: np.ndarray) -> np.ndarray:
    edges = np.asarray(edges, dtype=np.float64).copy()
    for k in range(1, len(edges)):
        if edges[k] <= edges[k - 1]:
            edges[k] = np.nextafter(edges[k - 1], np.inf)
    return edges


def _level_centers(values: np.ndarray, edges: np.ndarray, n_levels: int) -> np.ndarray:
    """Median value of each bin (empty bins fall back to edge midpoints)."""
    assignments = np.digitize(values, edges)
    centers = np.empty(n_levels)
    padded = np.concatenate([[values.min()], edges, [values.max()]])
    for level in range(n_levels):
        members = values[assignments == level]
        if members.size:
            centers[level] = np.median(members)
        else:
            centers[level] = 0.5 * (padded[level] + padded[level + 1])
    return centers
