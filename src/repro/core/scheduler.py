"""Array-level operation scheduling: phases, pipelining, and tiling.

A TD-AM search is a fixed sequence of phases (Sec. III):

1. **precharge** -- all match nodes pulled to V_DD,
2. **SL setup** -- search lines driven with the query encoding,
3. **step I** -- rising edge propagates (even stages active),
4. **step II** -- falling edge propagates (odd stages active),
5. **TDC readout** -- counters latched and decoded.

:class:`OperationScheduler` turns a design point into a phase schedule
and computes single-query latency and steady-state throughput, including
the pipelining the structure permits: while a tile's edges propagate,
the *next* tile's match nodes can precharge and its search lines settle
(they are independent arrays), so in steady state the tile cadence is
bounded by ``max(propagation, precharge + SL setup)``.

Vectors longer than one chain are handled by :class:`TileSchedule`:
``ceil(D / N)`` tiles processed serially with per-tile TDC accumulation
-- the mapping used by the Fig. 8 system evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import TDAMConfig
from repro.core.energy import TimingEnergyModel

#: Match-node precharge phase duration (s); set by the precharge PMOS
#: drive and MN capacitance, generous at 0.2 ns (cf. netlist builder).
T_PRECHARGE_S = 0.2e-9
#: Search-line settle time (s): driver slew + FeFET gate loading.
T_SL_SETUP_S = 0.25e-9
#: TDC latch + decode time per tile (s).
T_TDC_READOUT_S = 3.5e-9


@dataclass(frozen=True)
class PhaseSchedule:
    """Single-search phase timing for one array/tile.

    Attributes:
        t_precharge_s: Match-node precharge.
        t_sl_setup_s: Search-line settle.
        t_step1_s: Worst-case rising-edge propagation.
        t_step2_s: Worst-case falling-edge propagation.
        t_readout_s: TDC latch/decode.
    """

    t_precharge_s: float
    t_sl_setup_s: float
    t_step1_s: float
    t_step2_s: float
    t_readout_s: float

    @property
    def latency_s(self) -> float:
        """Unpipelined single-search latency (sum of all phases)."""
        return (
            self.t_precharge_s
            + self.t_sl_setup_s
            + self.t_step1_s
            + self.t_step2_s
            + self.t_readout_s
        )

    @property
    def pipelined_interval_s(self) -> float:
        """Steady-state search-to-search interval with phase overlap.

        Precharge/SL setup of search ``k+1`` overlaps propagation and
        readout of search ``k`` (double-buffered SL drivers), so the
        cadence is the slower of the two groups.
        """
        propagate = self.t_step1_s + self.t_step2_s + self.t_readout_s
        prepare = self.t_precharge_s + self.t_sl_setup_s
        return max(propagate, prepare)


class OperationScheduler:
    """Phase scheduling and throughput for one TD-AM array.

    Args:
        config: The design point.
        timing: Shared timing model (constructed from config if omitted).
    """

    def __init__(self, config: TDAMConfig, timing: Optional[TimingEnergyModel] = None):
        self.config = config
        self.timing = timing or TimingEnergyModel(config)

    def schedule(self, worst_case: bool = True,
                 n_mismatch: Optional[int] = None) -> PhaseSchedule:
        """Phase schedule for one search.

        Args:
            worst_case: Budget the steps for all stages mismatching (a
                synchronous controller must); otherwise use
                ``n_mismatch``.
            n_mismatch: Mismatch count when ``worst_case=False``.
        """
        n = self.config.n_stages
        if worst_case:
            n_even = (n + 1) // 2
            n_odd = n // 2
        else:
            if n_mismatch is None:
                raise ValueError("n_mismatch required when worst_case=False")
            if not 0 <= n_mismatch <= n:
                raise ValueError(
                    f"n_mismatch must be in [0, {n}], got {n_mismatch}"
                )
            n_even = n_mismatch // 2
            n_odd = n_mismatch - n_even
        return PhaseSchedule(
            t_precharge_s=T_PRECHARGE_S,
            t_sl_setup_s=T_SL_SETUP_S,
            t_step1_s=self.timing.step_delay(n_even),
            t_step2_s=self.timing.step_delay(n_odd),
            t_readout_s=T_TDC_READOUT_S,
        )

    def searches_per_second(self, pipelined: bool = True) -> float:
        """Steady-state search throughput of one array."""
        schedule = self.schedule()
        interval = (
            schedule.pipelined_interval_s if pipelined else schedule.latency_s
        )
        return 1.0 / interval

    def tile_schedule(self, dimension: int) -> "TileSchedule":
        """Tiling plan for vectors longer than one chain."""
        return TileSchedule(self, dimension)


@dataclass
class TileSchedule:
    """Serial tile processing of a D-dimensional query.

    Args:
        scheduler: The per-tile scheduler.
        dimension: Query/stored vector length.
    """

    scheduler: OperationScheduler
    dimension: int

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {self.dimension}")

    @property
    def n_tiles(self) -> int:
        """Number of N-stage tiles covering the dimension."""
        return math.ceil(self.dimension / self.scheduler.config.n_stages)

    @property
    def padding(self) -> int:
        """Always-match padding elements in the last tile."""
        return self.n_tiles * self.scheduler.config.n_stages - self.dimension

    def query_latency_s(self, pipelined: bool = True) -> float:
        """End-to-end latency of one D-dimensional query.

        With pipelining, tiles stream at the pipelined interval and only
        the first tile pays the full phase latency.
        """
        schedule = self.scheduler.schedule()
        if not pipelined or self.n_tiles == 1:
            return self.n_tiles * schedule.latency_s
        return (
            schedule.latency_s
            + (self.n_tiles - 1) * schedule.pipelined_interval_s
        )

    def queries_per_second(self, pipelined: bool = True) -> float:
        """Steady-state query throughput."""
        schedule = self.scheduler.schedule()
        interval = (
            schedule.pipelined_interval_s if pipelined else schedule.latency_s
        )
        return 1.0 / (self.n_tiles * interval)

    def phase_timeline(self) -> List[str]:
        """Human-readable per-tile phase timeline (for reports/debug)."""
        schedule = self.scheduler.schedule()
        lines = []
        t = 0.0
        for tile in range(self.n_tiles):
            lines.append(
                f"tile {tile}: precharge@{t * 1e9:.2f}ns "
                f"stepI@{(t + schedule.t_precharge_s + schedule.t_sl_setup_s) * 1e9:.2f}ns "
                f"readout@{(t + schedule.latency_s - schedule.t_readout_s) * 1e9:.2f}ns"
            )
            t += schedule.pipelined_interval_s
        return lines
