"""The three network chaos scenarios, run small, must pass their SLOs."""

import pytest

from repro.core.config import TDAMConfig
from repro.net.chaos import (
    scenario_net_flaky_link,
    scenario_net_server_kill,
    scenario_net_slow_loris,
)
from repro.service.chaos import _SCENARIOS, run_chaos_suite


def test_net_scenarios_registered_in_suite():
    for name in ("net_flaky_link", "net_slow_loris", "net_server_kill"):
        assert name in _SCENARIOS


@pytest.mark.timeout(120)
@pytest.mark.parametrize(
    "scenario",
    [
        scenario_net_flaky_link,
        scenario_net_slow_loris,
        scenario_net_server_kill,
    ],
    ids=lambda s: s.__name__,
)
def test_scenario_passes_honesty_slo(scenario):
    config = TDAMConfig(n_stages=16)
    result = scenario(config, n_rows=8, n_requests=12, seed=3)
    assert result.passed, result.notes
    assert result.wrong_unflagged == 0


@pytest.mark.timeout(240)
def test_suite_runs_net_scenarios_by_name():
    report = run_chaos_suite(
        quick=True,
        seed=7,
        scenarios=["net_flaky_link", "net_server_kill"],
    )
    assert report.passed
    assert {s.name for s in report.scenarios} == {
        "net_flaky_link", "net_server_kill"
    }
