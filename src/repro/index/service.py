"""Serving adapter: a :class:`ClusteredTDAMIndex` as a service backend.

:class:`IndexSearchService` speaks the same backend contract as
:class:`~repro.service.server.TDAMSearchService` -- ``validate_query``,
``search`` / ``search_batch`` / ``top_k`` with per-request deadlines,
``n_rows``, ``default_deadline_s`` -- so
:class:`~repro.service.frontend.CoalescingFrontend` (and anything else
written against that contract) can put admission control, coalescing,
and load shedding in front of a million-row memmapped index unchanged.

One semantic deliberately differs from the replicated service:
``nprobe < n_clusters`` answers are **approximate by request**, not
degraded by failure.  Responses carry ``approximate=True`` in that case
while ``degraded`` stays ``False`` -- the index is healthy and served
exactly what was asked; recall is the client's chosen operating point.
``degraded`` keeps meaning "the answer may be worse than what you
asked for".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.encoding import validate_levels
from repro.index.cluster_index import ClusteredTDAMIndex
from repro.service.errors import DeadlineExceededError, InvalidRequestError
from repro.telemetry.profile import emit_probe as _emit_probe
from repro.telemetry.state import STATE as _TM
from repro.telemetry.trace import span as _span

__all__ = [
    "IndexSearchResponse",
    "IndexSearchService",
    "IndexTopKResponse",
]

#: Default per-request deadline (generous: a routed probe of a
#: million-row corpus completes in a few milliseconds per query block).
DEFAULT_INDEX_DEADLINE_S = 0.25


@dataclass(frozen=True)
class IndexSearchResponse:
    """The index's answer to one nearest-row request.

    Field names follow the serving layer's response conventions
    (``outcome``, ``degraded``, ``elapsed_s`` ...), so frontend
    accounting treats index answers like any shard answer.
    """

    best_row: int
    best_distance: int
    approximate: bool
    nprobe: int
    rows_probed: int
    degraded: bool
    pruned: bool
    shard_id: str
    attempts: int
    retries: int
    elapsed_s: float
    outcome: str


@dataclass(frozen=True)
class IndexTopKResponse:
    """The index's answer to a batched top-k request.

    ``rows`` / ``distances`` are (Q, k) with ``-1`` pads when fewer
    than ``k`` rows were reachable in the probed shards; the
    coalescing frontend slices per-query views out of it via
    ``dataclasses.replace``.
    """

    rows: np.ndarray
    distances: np.ndarray
    approximate: bool
    nprobe: int
    rows_probed: int
    degraded: bool
    pruned: bool
    shard_id: str
    attempts: int
    retries: int
    elapsed_s: float
    outcome: str


class IndexSearchService:
    """Deadline-aware serving facade over a clustered ANN index.

    Args:
        index: The routed index to serve.
        default_deadline_s: Deadline when a request names none.
        nprobe: Default routing width (``None``: the index's own).
        clock: Injectable monotonic clock (tests use a fake).
    """

    def __init__(
        self,
        index: ClusteredTDAMIndex,
        default_deadline_s: float = DEFAULT_INDEX_DEADLINE_S,
        nprobe: Optional[int] = None,
        clock=time.monotonic,
    ) -> None:
        if default_deadline_s <= 0:
            raise ValueError(
                f"default_deadline_s must be > 0, got {default_deadline_s}"
            )
        self.index = index
        self.config = index.config
        self.default_deadline_s = default_deadline_s
        self.nprobe = nprobe
        self._clock = clock

    @property
    def n_rows(self) -> int:
        """Corpus rows served."""
        return self.index.n_rows

    def validate_query(self, query) -> np.ndarray:
        """Admission: validate one query without serving it.

        Raises:
            InvalidRequestError: Shape, dtype, or level range is wrong.
        """
        try:
            q = validate_levels(
                query, self.config.levels, ndim=1, name="query"
            )
        except ValueError as exc:
            raise InvalidRequestError(str(exc)) from exc
        if q.shape[0] != self.config.n_stages:
            raise InvalidRequestError(
                f"query has {q.shape[0]} stages, the index serves "
                f"{self.config.n_stages}"
            )
        return q

    def _admit_matrix(self, queries) -> np.ndarray:
        try:
            qs = validate_levels(
                queries, self.config.levels, ndim=2, name="query batch"
            )
        except ValueError as exc:
            raise InvalidRequestError(str(exc)) from exc
        if qs.shape[1] != self.config.n_stages:
            raise InvalidRequestError(
                f"queries have {qs.shape[1]} stages, the index serves "
                f"{self.config.n_stages}"
            )
        if qs.shape[0] < 1:
            raise InvalidRequestError("query batch is empty")
        return qs

    def _resolve_deadline(self, deadline_s: Optional[float]) -> float:
        deadline = (
            deadline_s if deadline_s is not None else self.default_deadline_s
        )
        if deadline <= 0:
            self._count("rejected")
            raise InvalidRequestError(
                f"deadline_s must be > 0, got {deadline}"
            )
        return deadline

    def _count(self, outcome: str, elapsed: Optional[float] = None) -> None:
        if _TM.enabled:
            _emit_probe(
                "service.request",
                outcome=outcome,
                shard="index",
                attempts=1,
                elapsed_s=float(elapsed if elapsed is not None else 0.0),
            )

    def _finish(self, start: float, deadline_s: float) -> float:
        """Elapsed time, or a deadline miss raised the service way."""
        elapsed = self._clock() - start
        if elapsed > deadline_s:
            if _TM.enabled:
                _emit_probe(
                    "service.deadline_miss",
                    elapsed_s=elapsed,
                    deadline_s=deadline_s,
                    attempts=1,
                )
            self._count("deadline", elapsed)
            raise DeadlineExceededError(
                f"deadline of {deadline_s:.6f}s exceeded after "
                f"{elapsed:.6f}s serving the index probe"
            )
        self._count("ok", elapsed)
        return elapsed

    def top_k(
        self,
        queries: Sequence[Sequence[int]],
        k: int,
        deadline_s: Optional[float] = None,
        nprobe: Optional[int] = None,
    ) -> IndexTopKResponse:
        """Routed batched top-k under one shared deadline.

        Raises:
            InvalidRequestError: Admission failure (queries, ``k``, or
                a non-positive deadline).
            DeadlineExceededError: The probe finished too late; the
                answer is withheld, as in the replicated service.
        """
        qs = self._admit_matrix(queries)
        if not 1 <= k <= self.n_rows:
            self._count("rejected")
            raise InvalidRequestError(
                f"k must be in [1, {self.n_rows}], got {k}"
            )
        deadline = self._resolve_deadline(deadline_s)
        start = self._clock()
        nprobe_eff = nprobe if nprobe is not None else self.nprobe
        # Inherits the active request/batch context: the routed probe
        # is attributable to the request ids it serves.
        with _span(
            "index.topk", queries=int(qs.shape[0]), k=k,
            nprobe=nprobe_eff,
        ):
            result = self.index.top_k(qs, k, nprobe=nprobe_eff)
        elapsed = self._finish(start, deadline)
        return IndexTopKResponse(
            rows=result.rows,
            distances=result.distances,
            approximate=result.nprobe < self.index.n_clusters,
            nprobe=result.nprobe,
            rows_probed=result.rows_probed,
            degraded=False,
            pruned=True,
            shard_id="index",
            attempts=1,
            retries=0,
            elapsed_s=elapsed,
            outcome="ok",
        )

    def search(
        self, query: Sequence[int], deadline_s: Optional[float] = None
    ) -> IndexSearchResponse:
        """Serve one nearest-row query within a deadline."""
        q = self.validate_query(query)
        return self.search_batch(q[None, :], deadline_s=deadline_s)[0]

    def search_batch(
        self,
        queries: Sequence[Sequence[int]],
        deadline_s: Optional[float] = None,
        nprobe: Optional[int] = None,
    ) -> "list[IndexSearchResponse]":
        """Serve a query batch; one nearest-row response per query."""
        qs = self._admit_matrix(queries)
        deadline = self._resolve_deadline(deadline_s)
        start = self._clock()
        nprobe_eff = nprobe if nprobe is not None else self.nprobe
        with _span(
            "index.search_batch", queries=int(qs.shape[0]),
            nprobe=nprobe_eff,
        ):
            result = self.index.top_k(qs, 1, nprobe=nprobe_eff)
        elapsed = self._finish(start, deadline)
        approximate = result.nprobe < self.index.n_clusters
        return [
            IndexSearchResponse(
                best_row=int(result.rows[i, 0]),
                best_distance=int(result.distances[i, 0]),
                approximate=approximate,
                nprobe=result.nprobe,
                rows_probed=result.rows_probed,
                degraded=False,
                pruned=True,
                shard_id="index",
                attempts=1,
                retries=0,
                elapsed_s=elapsed,
                outcome="ok",
            )
            for i in range(qs.shape[0])
        ]
