"""Event-level digital controller of the TD-AM array.

The papers' circuits need a small digital wrapper in any real deployment:
something has to sequence precharge / search-line setup / step I /
step II / readout, gate the TDC counters, and expose a command interface.
This module provides that wrapper as an event-driven behavioral model:

- :class:`ArrayController` accepts a stream of :class:`Command` objects
  (WRITE / SEARCH / READ / IDLE) and executes them against a
  :class:`~repro.core.array.FastTDAMArray`,
- every phase transition is logged as a timestamped :class:`Event`, so
  tests (and curious users) can audit exactly when each signal fired,
- timing comes from the :class:`~repro.core.scheduler.OperationScheduler`
  and the TDC behaviour from :class:`~repro.core.sensing.CounterTDC`, so
  the controller's end-to-end numbers agree with the analytic model by
  construction -- asserted in ``tests/core/test_controller.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.array import FastTDAMArray, SearchResult
from repro.core.config import TDAMConfig
from repro.core.scheduler import OperationScheduler
from repro.core.sensing import CounterTDC
from repro.devices.variation import VariationModel

#: Time to program one row (erase + program + verify pulses), seconds.
#: FeFET write pulses are ~100 ns class; a verified multi-level write
#: takes a few of them per cell, cells written column-parallel.
T_ROW_WRITE_S = 1.2e-6
#: Counter read-and-clear time per row (s).
T_COUNTER_READ_S = 0.8e-9


class Phase(enum.Enum):
    """Controller phases."""

    IDLE = "idle"
    WRITE = "write"
    PRECHARGE = "precharge"
    SL_SETUP = "sl_setup"
    STEP_I = "step_i"
    STEP_II = "step_ii"
    READOUT = "readout"


@dataclass(frozen=True)
class Command:
    """One controller command.

    Attributes:
        op: "write", "search", or "read".
        row: Target row for writes.
        vector: Stored vector (write) or query (search).
    """

    op: str
    row: Optional[int] = None
    vector: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.op not in ("write", "search", "read"):
            raise ValueError(
                f"op must be 'write', 'search' or 'read', got {self.op!r}"
            )
        if self.op == "write" and self.row is None:
            raise ValueError("write command requires a row")
        if self.op in ("write", "search") and self.vector is None:
            raise ValueError(f"{self.op} command requires a vector")


@dataclass(frozen=True)
class Event:
    """One timestamped phase event in the controller trace.

    Attributes:
        t_start_s: Phase entry time.
        t_end_s: Phase exit time.
        phase: The phase.
        detail: Human-readable annotation (row, counts, ...).
    """

    t_start_s: float
    t_end_s: float
    phase: Phase
    detail: str = ""

    @property
    def duration_s(self) -> float:
        return self.t_end_s - self.t_start_s


@dataclass
class ControllerState:
    """Mutable controller bookkeeping.

    Attributes:
        time_s: Current simulation time.
        events: Phase trace.
        last_result: Most recent search result.
        counters: Latched TDC codes of the last search.
    """

    time_s: float = 0.0
    events: List[Event] = field(default_factory=list)
    last_result: Optional[SearchResult] = None
    counters: Optional[np.ndarray] = None


class ArrayController:
    """Command-driven controller over one TD-AM array.

    Args:
        config: Design point.
        n_rows: Array rows.
        variation: Optional write-time variation model.
        seed: RNG seed for the underlying array.
    """

    def __init__(
        self,
        config: TDAMConfig,
        n_rows: int,
        variation: Optional[VariationModel] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config
        self.array = FastTDAMArray(
            config, n_rows=n_rows, variation=variation,
            rng=np.random.default_rng(seed),
        )
        self.scheduler = OperationScheduler(config)
        self.tdc = CounterTDC(config)
        self.state = ControllerState()

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------
    def execute(self, command: Command) -> Optional[SearchResult]:
        """Execute one command, advancing time and logging events."""
        if command.op == "write":
            return self._do_write(command)
        if command.op == "search":
            return self._do_search(command)
        return self._do_read()

    def run(self, commands: Sequence[Command]) -> List[Optional[SearchResult]]:
        """Execute a command stream; returns each command's result."""
        return [self.execute(c) for c in commands]

    def _log(self, phase: Phase, duration_s: float, detail: str = "") -> None:
        start = self.state.time_s
        self.state.time_s += duration_s
        self.state.events.append(
            Event(t_start_s=start, t_end_s=self.state.time_s,
                  phase=phase, detail=detail)
        )

    def _do_write(self, command: Command) -> None:
        self.array.write(int(command.row), command.vector)
        self._log(Phase.WRITE, T_ROW_WRITE_S, detail=f"row {command.row}")
        return None

    def _do_search(self, command: Command) -> SearchResult:
        schedule = self.scheduler.schedule()
        self._log(Phase.PRECHARGE, schedule.t_precharge_s)
        self._log(Phase.SL_SETUP, schedule.t_sl_setup_s)
        result = self.array.search(command.vector)
        # The synchronous controller budgets the worst case per step; the
        # actual edge arrives earlier, the counters latch what it measured.
        self._log(Phase.STEP_I, schedule.t_step1_s,
                  detail=f"worst-case window")
        self._log(Phase.STEP_II, schedule.t_step2_s)
        self._log(
            Phase.READOUT,
            schedule.t_readout_s,
            detail=f"counts {result.counts.tolist()}",
        )
        self.state.last_result = result
        self.state.counters = result.counts.copy()
        return result

    def _do_read(self) -> Optional[SearchResult]:
        if self.state.counters is None:
            raise RuntimeError("read before any search latched the counters")
        self._log(
            Phase.READOUT,
            self.array.n_rows * T_COUNTER_READ_S,
            detail="counter drain",
        )
        return self.state.last_result

    # ------------------------------------------------------------------
    # Trace inspection
    # ------------------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        """Total simulated time."""
        return self.state.time_s

    def phase_durations(self) -> "dict[Phase, float]":
        """Accumulated time per phase over the whole trace."""
        out: "dict[Phase, float]" = {}
        for event in self.state.events:
            out[event.phase] = out.get(event.phase, 0.0) + event.duration_s
        return out

    def search_latency_s(self) -> float:
        """Latency of one search per the logged schedule (for checking
        against :class:`~repro.core.scheduler.PhaseSchedule`)."""
        return self.scheduler.schedule().latency_s

    def format_trace(self, last: int = 20) -> str:
        """The last ``last`` events as aligned text."""
        lines = []
        for event in self.state.events[-last:]:
            lines.append(
                f"{event.t_start_s * 1e9:10.2f} ns  "
                f"{event.phase.value:<10} "
                f"{event.duration_s * 1e9:7.2f} ns  {event.detail}"
            )
        return "\n".join(lines)
